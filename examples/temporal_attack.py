#!/usr/bin/env python
"""Temporally stable attack: one mask effective across a frame sequence.

The paper notes (Section IV-B) that the filter-mask formulation directly
extends to perturbations that stay effective across multiple image frames —
the setting of a physical sticker seen by a moving camera.  This example
optimises a single mask over a short synthetic driving sequence and reports
the per-frame degradation it achieves, compared with a mask optimised for
the first frame only.

Run with::

    python examples/temporal_attack.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import AttackConfig, ButterflyAttack, HalfImageRegion
from repro.core.objectives import ButterflyObjectives
from repro.core.temporal import TemporalAttack
from repro.data import generate_sequence
from repro.detectors import build_detector


def main() -> None:
    sequence = generate_sequence(num_frames=4, seed=19, half="left")
    detector = build_detector("detr", seed=1)
    config = AttackConfig.fast(
        region=HalfImageRegion("right"), num_iterations=6, population_size=10
    )

    print("Optimising one mask over the whole sequence (temporal attack)...")
    temporal_result = TemporalAttack(detector, config).attack(sequence)
    temporal_best = temporal_result.best_by("degradation")

    print("Optimising a mask for the first frame only (single-frame attack)...")
    single_result = ButterflyAttack(detector, config).attack(sequence.frame(0))
    single_best = single_result.best_by("degradation")

    rows = []
    for index, frame in enumerate(sequence):
        frame_objectives = ButterflyObjectives(detector=detector, image=frame)
        rows.append(
            {
                "frame": index,
                "temporal_mask_degrad": frame_objectives.degradation(
                    temporal_best.mask.values
                ),
                "single_frame_mask_degrad": frame_objectives.degradation(
                    single_best.mask.values
                ),
            }
        )
    print()
    print("Per-frame obj_degrad (lower = stronger attack):")
    print(format_table(rows))
    print()
    print(
        "The temporally optimised mask should stay effective on later frames, "
        "while the single-frame mask typically loses effect as objects move."
    )


if __name__ == "__main__":
    main()
