#!/usr/bin/env python
"""Quickstart: run a butterfly-effect attack against one detector.

This example builds a synthetic road scene, trains a simulated transformer
(DETR-like) detector, restricts perturbations to the right half of the image
and runs a short NSGA-II search.  It then prints the Pareto front in the
paper's three objectives and shows which qualitative error types the best
perturbation caused, together with an ASCII sketch of the clean and
perturbed predictions.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import format_table, prediction_to_ascii, side_by_side
from repro.core import AttackConfig, ButterflyAttack, HalfImageRegion
from repro.core.masks import apply_mask
from repro.data import generate_dataset
from repro.detectors import build_detector


def main() -> None:
    # A scene with objects only on the left; the attack may only touch the
    # right half, so any change of the prediction is a butterfly effect.
    dataset = generate_dataset(num_images=1, seed=7, half="left")
    sample = dataset[0]

    detector = build_detector("detr", seed=1)
    print(f"Detector: {detector.name}")
    print(f"Clean prediction: {detector.predict(sample.image).summary()}")

    config = AttackConfig.fast(
        region=HalfImageRegion("right"), num_iterations=10, population_size=16
    )
    attack = ButterflyAttack(detector, config)
    result = attack.attack(sample.image)

    print()
    print(result.summary())
    print()
    rows = [
        {
            "solution": i,
            "obj_intensity": s.intensity,
            "obj_degrad": s.degradation,
            "obj_dist": s.distance,
        }
        for i, s in enumerate(result.pareto_front)
    ]
    print("Pareto front (intensity and degradation minimised, distance maximised):")
    print(format_table(rows))

    best = result.best_by("degradation")
    perturbed = detector.predict(apply_mask(sample.image, best.mask.values))
    print()
    print("Error types caused by the most-degrading front solution:")
    for transition in best.transitions:
        print("  -", transition.describe())

    print()
    print("Clean prediction (left) vs perturbed prediction (right);")
    print("the '|' marks the image mid-line — only the right half was perturbed:")
    print(
        side_by_side(
            prediction_to_ascii(result.clean_prediction, *sample.image.shape[:2]),
            prediction_to_ascii(perturbed, *sample.image.shape[:2]),
        )
    )


if __name__ == "__main__":
    main()
