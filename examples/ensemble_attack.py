#!/usr/bin/env python
"""Attacking an ensemble of detectors with a single shared perturbation.

Section IV-B of the paper extends the butterfly attack to ensembles: the
same filter mask must degrade every member (Equations 1-3 average the
degradation and distance objectives over the members).  Ensembling is a
common adversarial defence; this example shows the attack still finds
perturbations that degrade all members at once and also degrade the
ensemble's fused (consensus) prediction.

Run with::

    python examples/ensemble_attack.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import AttackConfig, HalfImageRegion
from repro.core.ensemble import EnsembleAttack, EnsembleObjectives
from repro.core.masks import apply_mask
from repro.data import generate_dataset
from repro.detection import prediction_agreement
from repro.detectors import DetectorEnsemble, build_model_zoo


def main() -> None:
    dataset = generate_dataset(num_images=1, seed=13, half="left")
    image = dataset[0].image

    # A small transformer ensemble (the paper uses 16 members; 3 keeps this
    # example fast while exercising the same aggregation).
    members = build_model_zoo("detr", seeds=(1, 2, 3))
    ensemble = DetectorEnsemble(members)
    print(f"Ensemble: {ensemble.name}")

    config = AttackConfig.fast(
        region=HalfImageRegion("right"), num_iterations=8, population_size=12
    )
    attack = EnsembleAttack(ensemble, config)
    result = attack.attack(image)
    print(result.summary())

    best = result.best_by("degradation")
    perturbed_image = apply_mask(image, best.mask.values)

    rows = []
    objectives = EnsembleObjectives(ensemble, image)
    for member, member_objectives in zip(ensemble, objectives.members):
        clean = member_objectives.clean_prediction
        perturbed = member.predict(perturbed_image)
        rows.append(
            {
                "member": member.name,
                "clean_boxes": clean.num_valid,
                "perturbed_boxes": perturbed.num_valid,
                "agreement": prediction_agreement(clean, perturbed),
                "obj_degrad": member_objectives.degradation(
                    best.mask.values, perturbed
                ),
            }
        )
    print()
    print("Effect of the single shared mask on every ensemble member:")
    print(format_table(rows))

    fused_clean = ensemble.predict_fused(image)
    fused_perturbed = ensemble.predict_fused(perturbed_image)
    print()
    print(
        "Fused (consensus) prediction agreement after the attack: "
        f"{prediction_agreement(fused_clean, fused_perturbed):.2f} "
        f"({fused_clean.num_valid} -> {fused_perturbed.num_valid} boxes)"
    )


if __name__ == "__main__":
    main()
