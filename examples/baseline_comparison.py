#!/usr/bin/env python
"""Comparing the butterfly attack against baseline attacks.

Three baselines are compared on the same image and detector:

* random Gaussian noise of increasing strength (the classic robustness
  test the paper's introduction argues is insufficient),
* a GenAttack-style single-objective genetic attack (the closest related
  work; degradation only, fixed perturbation bound),
* the finite-difference gradient-estimation attack.

The butterfly attack's advantage is not only the degradation it reaches but
that it *simultaneously* keeps the perturbation small and far away from the
objects — which none of the baselines optimise.

Run with::

    python examples/baseline_comparison.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.baselines import (
    FiniteDifferenceAttack,
    FiniteDifferenceConfig,
    GenAttackBaseline,
    GenAttackConfig,
    RandomNoiseAttack,
)
from repro.core import AttackConfig, ButterflyAttack, HalfImageRegion
from repro.core.objectives import ButterflyObjectives
from repro.data import generate_dataset
from repro.detectors import build_detector


def main() -> None:
    dataset = generate_dataset(num_images=1, seed=23, half="left")
    image = dataset[0].image
    detector = build_detector("detr", seed=1)
    region = HalfImageRegion("right")
    objectives = ButterflyObjectives(detector=detector, image=image)

    rows = []

    butterfly = ButterflyAttack(
        detector, AttackConfig.fast(region=region, num_iterations=10, population_size=16)
    ).attack(image)
    best = butterfly.best_by("degradation")
    rows.append(
        {
            "attack": "butterfly (NSGA-II)",
            "obj_degrad": best.degradation,
            "obj_intensity": best.intensity,
            "obj_dist": best.distance,
        }
    )

    genattack = GenAttackBaseline(
        detector,
        GenAttackConfig(population_size=16, num_iterations=10, linf_bound=24.0),
        region=region,
    ).attack(image)
    rows.append(
        {
            "attack": "GenAttack-style (single objective)",
            "obj_degrad": genattack.best_degradation,
            "obj_intensity": objectives.intensity(genattack.best_mask.values),
            "obj_dist": objectives.distance(genattack.best_mask.values),
        }
    )

    finite = FiniteDifferenceAttack(
        detector, FiniteDifferenceConfig(block=16, num_steps=2), region=region
    ).attack(image)
    rows.append(
        {
            "attack": "finite difference",
            "obj_degrad": finite.best_degradation,
            "obj_intensity": objectives.intensity(finite.best_mask.values),
            "obj_dist": objectives.distance(finite.best_mask.values),
        }
    )

    noise = RandomNoiseAttack(detector, region=region).evaluate(
        image, sigmas=(8.0, 32.0, 64.0), trials_per_sigma=3
    )
    for level in noise:
        rows.append(
            {
                "attack": f"random gaussian (sigma={level.sigma:.0f})",
                "obj_degrad": level.mean_degradation,
                "obj_intensity": level.mean_intensity / objectives.intensity_scale,
                "obj_dist": float("nan"),
            }
        )

    print("All attacks restricted to the right half; objects are on the left.")
    print(format_table(rows))
    print()
    print(
        "The butterfly attack reaches comparable or stronger degradation while "
        "explicitly keeping the perturbation small (obj_intensity) and far from "
        "the objects (obj_dist) — the baselines optimise neither."
    )


if __name__ == "__main__":
    main()
