#!/usr/bin/env python
"""Architecture comparison: is the transformer more susceptible than YOLO?

Reproduces the protocol behind the paper's Figure 2 at laptop scale: both
architectures are attacked on the same images with right-half-only
perturbations, and the Pareto objectives are compared.  The expected shape
of the result (matching the paper) is that the transformer reaches a lower
``obj_degrad`` at comparable or lower ``obj_intensity``.

Run with::

    python examples/detector_comparison.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.experiments import ExperimentConfig, run_architecture_comparison
from repro.nsga import NSGAConfig


def main() -> None:
    experiment = ExperimentConfig.reduced(
        models_per_architecture=2, images_per_model=2
    )
    nsga = NSGAConfig(num_iterations=10, population_size=16, seed=0)

    print("Running the architecture comparison (reduced Table I protocol)...")
    comparison = run_architecture_comparison(experiment=experiment, nsga=nsga)

    print()
    print("Per-architecture Pareto-front summary (Figure 2 analogue):")
    print(comparison.report.to_text())

    summary = comparison.susceptibility_summary()
    rows = [
        {"architecture": label, **values} for label, values in summary.items()
    ]
    print()
    print(format_table(rows))

    single_stage = comparison.best_degradation("single_stage")
    transformer = comparison.best_degradation("transformer")
    print()
    print(f"Best obj_degrad — single-stage: {single_stage:.3f}, transformer: {transformer:.3f}")
    if transformer < single_stage:
        print(
            "=> The transformer detector is more susceptible to butterfly-effect "
            "attacks, matching the paper's conclusion."
        )
    else:
        print(
            "=> At this reduced budget the asymmetry did not appear; increase the "
            "number of iterations / models to approach the paper's protocol."
        )


if __name__ == "__main__":
    main()
