#!/usr/bin/env python
"""Defence evaluation and mask transferability.

Two follow-up questions the paper raises:

1. *Is noise-augmented training enough?*  The introduction argues it is not:
   butterfly perturbations are structured, not random.  This example
   retrains the transformer's classification head on noise-augmented scenes
   and attacks both the defended and the undefended model with the same
   budget.
2. *Do butterfly masks transfer between models?*  The paper trains 25
   seed-varied models per architecture; this example optimises a mask
   against one seed and measures its effect on another.

Run with::

    python examples/defense_and_transfer.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import AttackConfig, HalfImageRegion
from repro.data import generate_dataset
from repro.defenses import NoiseAugmentationConfig, evaluate_defense, noise_augmented_detector
from repro.detectors import TrainingConfig, build_detector, build_model_zoo
from repro.experiments import run_transferability_experiment


def main() -> None:
    dataset = generate_dataset(num_images=1, seed=31, half="left")
    sample = dataset[0]
    attack_config = AttackConfig.fast(
        region=HalfImageRegion("right"), num_iterations=8, population_size=12
    )

    print("=== 1. Noise-augmentation defence ===")
    undefended = build_detector("detr", seed=1)
    defended = noise_augmented_detector(
        build_detector("detr", seed=1),
        training=TrainingConfig(),
        augmentation=NoiseAugmentationConfig(augmented_copies=2),
    )
    evaluation = evaluate_defense(
        undefended=undefended,
        defended=defended,
        image=sample.image,
        ground_truth=sample.ground_truth,
        attack_config=attack_config,
    )
    print(format_table(evaluation.summary_rows()))
    if evaluation.attack_still_succeeds:
        print(
            "=> The butterfly attack still degrades the noise-augmented model, "
            "matching the paper's insufficiency argument."
        )
    else:
        print("=> At this budget the defended model resisted; increase the budget.")

    print()
    print("=== 2. Transferability across model seeds ===")
    # Both sweeps run on the generic experiment engine; pass n_jobs=2 (or
    # backend="process") to fan the per-model attacks out over worker
    # processes — results are bit-identical for every worker count.
    models = build_model_zoo("detr", seeds=(1, 2))
    transfer = run_transferability_experiment(models, sample.image, attack_config)
    print(format_table(transfer.as_rows()))
    print(
        f"white-box obj_degrad: {transfer.self_degradation():.3f}, "
        f"transferred obj_degrad: {transfer.transfer_degradation():.3f}"
    )
    execution = transfer.execution
    print(
        f"engine: backend={execution['backend']} "
        f"wall={execution['duration_seconds']:.2f}s "
        f"cache hits={execution['cache_stats']['hits']}"
    )


if __name__ == "__main__":
    main()
