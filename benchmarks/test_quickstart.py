"""Quickstart smoke benchmark: one tiny attack per architecture.

This is the benchmark CI runs on every push (``pytest benchmarks -k
quickstart --benchmark-disable``): it exercises the full batched
attack pipeline — population stacking, vectorised detector pass,
evaluation cache, NSGA-II selection — at the smallest useful budget, so
both the benchmark harness and the perf-critical code paths stay green
without the cost of the full suite.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.attack import ButterflyAttack


def _attack(detector, config, image):
    return ButterflyAttack(detector, config).attack(image)


class TestQuickstart:
    def test_quickstart_attack_yolo(
        self, benchmark, bench_yolo, bench_dataset, bench_attack_config
    ):
        result = run_once(
            benchmark, _attack, bench_yolo, bench_attack_config, bench_dataset[0].image
        )
        assert result.solutions
        assert result.num_evaluations == (
            result.cache_hits + result.num_queries
        )

    def test_quickstart_attack_detr(
        self, benchmark, bench_detr, bench_dataset, bench_attack_config
    ):
        result = run_once(
            benchmark, _attack, bench_detr, bench_attack_config, bench_dataset[0].image
        )
        assert result.solutions
        print(
            f"quickstart detr: evaluations={result.num_evaluations} "
            f"cache_hits={result.cache_hits}"
        )
