"""A/B benchmark of the persistent worker runtime against serial execution.

PR 6 replaces the fire-and-forget process pool with a persistent runtime:
long-lived workers with model-affinity scheduling, shared-memory scene and
activation payloads, and the serial backend's per-model cache lifecycle.
This benchmark measures the two claims that matter and **fails** (exit 1)
when a gate is missed:

* **Scenario A — one attack plan** (models × images sweep): serial vs the
  persistent backend at each requested worker count.  Parity is a hard
  gate on every machine; on multi-core hardware the 2-worker run must not
  be slower than serial and the 4-worker run must reach 2x (the PR 4
  targets, now for the persistent backend).
* **Scenario C — warm evaluation service**: the workload the one-shot pool
  structurally loses: repeated rounds of transfer-evaluation plans (fresh
  masks each round) over the *same pinned models and scene*.  Serial
  rebuilds its activation store every round; persistent workers keep the
  bundles warm across rounds, so in the service's steady state **even one
  worker on one core** must reach serial speed
  (``EQUAL_SPEED_TOLERANCE``).  This is the 1-core acceptance gate, plus
  a mechanism gate: warm rounds must re-miss nothing.  Service startup
  (worker spawn + the first round's bundle builds) is hoisted out of the
  timed region for *both* sides, exactly like model training: a service
  pays it once, and timing it would compare process spawn against zero
  instead of steady-state throughput.
* **Leak audit**: after every persistent backend is closed, no shared
  memory segment created by this process may remain in ``/dev/shm``.

Model training is hoisted out of every timed region (the parent builds the
zoo once; fork workers inherit it copy-on-write), so timings compare sweep
execution, not detector construction.

Usage::

    PYTHONPATH=src python benchmarks/bench_persistent.py \
        [--output BENCH_pr6.json] [--workers 2 4] [--models 2] [--images 2] \
        [--iterations 6] [--population 12] [--rounds 4] [--eval-seeds 2]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import time
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from benchmarks.conftest import BENCH_LENGTH, BENCH_WIDTH, bench_training_config
from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.data.dataset import generate_dataset
from repro.experiments.engine import SerialBackend, execute_plan
from repro.experiments.jobs import ModelSpec, build_attack_plan, build_cached
from repro.experiments.persistent import PersistentPoolBackend
from repro.experiments.shm import list_segments
from repro.experiments.transfer import (
    build_transfer_attack_plan,
    build_transfer_eval_plan,
)
from repro.nsga.algorithm import NSGAConfig

#: Ratio tolerance for every "must not be slower than serial" gate — a few
#: percent absorbs timer noise without hiding a real regression.  The same
#: tolerance guards the warm-eval scenario on ONE core: persistence must
#: pay for its own IPC out of the rebuild work it avoids.
EQUAL_SPEED_TOLERANCE = 0.95

#: The acceptance-criterion speedup for the 4-worker sweep on >= 4 cores.
FOUR_WORKER_TARGET = 2.0


def _fingerprint(report) -> list:
    """Exact per-result digest of an attack-plan execution."""
    fingerprints = []
    for outcome in report.outcomes:
        result = outcome.result
        fingerprints.append(
            (
                result.detector_name,
                result.num_evaluations,
                result.cache_hits,
                tuple(
                    (
                        solution.mask.values.tobytes(),
                        solution.intensity,
                        solution.degradation,
                        solution.distance,
                        solution.rank,
                    )
                    for solution in result.solutions
                ),
            )
        )
    return fingerprints


def _eval_fingerprint(report) -> list:
    """Exact digest of a transfer-evaluation execution (matrix columns)."""
    return [
        (outcome.result.target_name, outcome.result.degradations.tobytes())
        for outcome in report.outcomes
    ]


def _fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform.

    All timed comparisons pre-build the zoo in the parent and rely on fork
    workers inheriting it copy-on-write; under spawn/forkserver each worker
    retrains inside the timed region, so the speed gates would measure
    training, not sweep execution.
    """
    return "fork" in multiprocessing.get_all_start_methods()


def _attack_config(args) -> AttackConfig:
    return AttackConfig(
        nsga=NSGAConfig(
            num_iterations=args.iterations,
            population_size=args.population,
            seed=0,
        ),
        region=HalfImageRegion("right"),
    )


def bench_attack_plan(args, start_method, leak_prefixes) -> dict:
    """Scenario A: one models × images sweep, serial vs persistent."""
    training = bench_training_config()
    dataset = generate_dataset(
        num_images=args.images,
        seed=11,
        image_length=BENCH_LENGTH,
        image_width=BENCH_WIDTH,
        half="left",
    )
    plan = build_attack_plan(
        architectures=("yolo", "detr"),
        seeds=range(1, args.models + 1),
        dataset=dataset,
        attack_config=_attack_config(args),
        training=training,
        experiment_seed=args.experiment_seed,
    )
    for spec in plan.model_specs():
        build_cached(spec)

    runs: dict[str, dict] = {}
    start = time.perf_counter()
    serial_report = execute_plan(plan, SerialBackend())
    serial_seconds = time.perf_counter() - start
    reference = _fingerprint(serial_report)
    runs["serial"] = {
        "backend": "serial",
        "n_jobs": 1,
        "wall_seconds": serial_seconds,
        "parity": True,
    }

    for workers in args.workers:
        backend = PersistentPoolBackend(n_jobs=workers, start_method=start_method)
        try:
            start = time.perf_counter()
            report = execute_plan(plan, backend)
            wall = time.perf_counter() - start
            if backend.runtime is not None:
                leak_prefixes.append(backend.runtime.segment_prefix)
        finally:
            backend.close()
        runs[f"persistent_{workers}"] = {
            "backend": "persistent",
            "n_jobs": workers,
            "wall_seconds": wall,
            "speedup_vs_serial": serial_seconds / wall if wall > 0 else float("inf"),
            "parity": _fingerprint(report) == reference,
        }

    return {
        "num_jobs": len(plan.jobs),
        "models_per_architecture": args.models,
        "images_per_model": args.images,
        "runs": runs,
    }


def bench_warm_eval(args, start_method, leak_prefixes) -> dict:
    """Scenario C: rounds of fresh-mask evaluations over pinned warm models.

    The repeated-sweep service shape (evaluate incoming masks against a
    fixed zoo): stage 1 optimises one mask per model (untimed — identical
    work for both sides), then each round evaluates one fresh candidate
    mask (a perturbed variant of a stage-1 mask) on every model.  Serial
    pays one activation-bundle build per model **per round**; persistent
    workers build once (during the untimed warm-up round) and hit
    thereafter, which is what lets one worker beat serial on one core in
    steady state.
    """
    training = bench_training_config()
    dataset = generate_dataset(
        num_images=1,
        seed=11,
        image_length=BENCH_LENGTH,
        image_width=BENCH_WIDTH,
        half="left",
    )
    image = dataset[0].image
    specs = [
        ModelSpec(architecture, seed, training=training)
        for architecture in ("yolo", "detr")
        for seed in range(1, args.eval_seeds + 1)
    ]
    # Provision each worker's activation store to hold the whole zoo — a
    # service sizes its cache to its models; the default cap (4) would
    # LRU-thrash a larger zoo and silently erase the reuse being measured.
    config = replace(
        _attack_config(args), activation_cache_size=max(4, len(specs))
    )
    for spec in specs:
        build_cached(spec)

    optimise_plan = build_transfer_attack_plan(
        specs, image, config, experiment_seed=args.experiment_seed
    )
    optimise = execute_plan(optimise_plan, SerialBackend())
    best_masks = []
    dirty_bounds = []
    for outcome in optimise.outcomes:
        best = outcome.result.best_by("degradation")
        best_masks.append(best.mask.values)
        dirty_bounds.append(best.mask.nonzero_bbox())

    # One fresh candidate mask per round (a scaled variant keeps the
    # sparsity pattern, so its dirty bound stays exact) over the same scene
    # and models.  Plan 0 is the shared untimed warm-up round.
    round_plans = [
        build_transfer_eval_plan(
            specs,
            image,
            [best_masks[index % len(best_masks)] * (1.0 - 0.02 * index)],
            [dirty_bounds[index % len(dirty_bounds)]],
            config,
        )
        for index in range(args.rounds + 1)
    ]

    warmup_serial = execute_plan(round_plans[0], SerialBackend())
    start = time.perf_counter()
    serial_rounds = [
        execute_plan(plan, SerialBackend()) for plan in round_plans[1:]
    ]
    serial_seconds = time.perf_counter() - start
    reference = [_eval_fingerprint(report) for report in serial_rounds]
    serial_cache = [report.cache_stats.as_dict() for report in serial_rounds]

    backend = PersistentPoolBackend(n_jobs=1, start_method=start_method)
    backend.pin_models(specs)
    try:
        # Service startup: spawn the worker and build the pinned bundles.
        warmup_persistent = execute_plan(round_plans[0], backend)
        start = time.perf_counter()
        persistent_rounds = [
            execute_plan(plan, backend) for plan in round_plans[1:]
        ]
        persistent_seconds = time.perf_counter() - start
        if backend.runtime is not None:
            leak_prefixes.append(backend.runtime.segment_prefix)
    finally:
        backend.unpin_models(specs)
        backend.close()
    warmup_parity = _eval_fingerprint(warmup_persistent) == _eval_fingerprint(
        warmup_serial
    )
    persistent_cache = [report.cache_stats.as_dict() for report in persistent_rounds]

    return {
        "rounds": args.rounds,
        "num_models": len(specs),
        "runs": {
            "serial": {
                "backend": "serial",
                "n_jobs": 1,
                "wall_seconds": serial_seconds,
                "parity": True,
                "round_cache_stats": serial_cache,
            },
            "persistent_1": {
                "backend": "persistent",
                "n_jobs": 1,
                "wall_seconds": persistent_seconds,
                "speedup_vs_serial": (
                    serial_seconds / persistent_seconds
                    if persistent_seconds > 0
                    else float("inf")
                ),
                "parity": warmup_parity
                and [_eval_fingerprint(report) for report in persistent_rounds]
                == reference,
                "warmup_cache_stats": warmup_persistent.cache_stats.as_dict(),
                "round_cache_stats": persistent_cache,
            },
        },
    }


def run_benchmark(args) -> dict:
    start_method = "fork" if _fork_available() else None
    leak_prefixes: list[str] = []
    scenarios = {
        "attack_plan": bench_attack_plan(args, start_method, leak_prefixes),
        "warm_eval": bench_warm_eval(args, start_method, leak_prefixes),
    }
    leaked = sorted(
        segment
        for prefix in set(leak_prefixes) | {f"rpr{os.getpid()}"}
        for segment in list_segments(prefix)
    )
    return {
        "benchmark": "persistent worker runtime vs serial",
        "image_shape": [BENCH_LENGTH, BENCH_WIDTH, 3],
        "nsga": {"iterations": args.iterations, "population": args.population},
        "experiment_seed": args.experiment_seed,
        "cpu_count": os.cpu_count(),
        "start_method": start_method or multiprocessing.get_start_method(),
        "fork_available": _fork_available(),
        "scenarios": scenarios,
        "runtime_prefixes": sorted(set(leak_prefixes)),
        "leaked_segments": leaked,
    }


def check_gates(report: dict) -> tuple[list[str], list[str]]:
    """Returns (failures, skipped) gate lists."""
    failures: list[str] = []
    skipped: list[str] = []
    cores = report["cpu_count"] or 1
    fork = report["fork_available"]

    for scenario_name, scenario in report["scenarios"].items():
        for name, run in scenario["runs"].items():
            if run["parity"] is not True:
                failures.append(
                    f"{scenario_name}/{name}: results differ from the serial "
                    "reference (parity gate)"
                )

    if report["leaked_segments"]:
        failures.append(
            "leak audit: shared-memory segments survived close(): "
            + ", ".join(report["leaked_segments"])
        )

    # Scenario A: multi-core speed targets for a single cold plan.
    attack_runs = report["scenarios"]["attack_plan"]["runs"]
    serial_seconds = attack_runs["serial"]["wall_seconds"]
    for name, run in attack_runs.items():
        if run["backend"] != "persistent" or run["parity"] is not True:
            continue
        workers = run["n_jobs"]
        speedup = run["speedup_vs_serial"]
        if not fork:
            skipped.append(
                f"attack_plan/{name}: speed gate skipped — requires the fork "
                f"start method (platform offers {report['start_method']})"
            )
            continue
        if cores < 2 or cores < workers:
            skipped.append(
                f"attack_plan/{name}: speed gate skipped — {workers} workers "
                f"need >= {workers} cores, machine has {cores}"
            )
            continue
        if speedup < EQUAL_SPEED_TOLERANCE:
            failures.append(
                f"attack_plan/{name}: persistent sweep slower than serial "
                f"({run['wall_seconds']:.2f}s vs {serial_seconds:.2f}s, "
                f"speedup {speedup:.2f}x < {EQUAL_SPEED_TOLERANCE}x)"
            )
        if workers >= 4 and speedup < FOUR_WORKER_TARGET:
            failures.append(
                f"attack_plan/{name}: {workers}-worker speedup {speedup:.2f}x "
                f"below the {FOUR_WORKER_TARGET}x acceptance target"
            )

    # Scenario C: the 1-core acceptance gate — no core-count precondition.
    warm = report["scenarios"]["warm_eval"]["runs"]
    persistent = warm["persistent_1"]
    if not fork:
        skipped.append(
            "warm_eval/persistent_1: speed gate skipped — requires the fork "
            f"start method (platform offers {report['start_method']})"
        )
    elif persistent["parity"] is True:
        speedup = persistent["speedup_vs_serial"]
        if speedup < EQUAL_SPEED_TOLERANCE:
            failures.append(
                "warm_eval/persistent_1: warm persistent service slower than "
                f"serial on this machine ({persistent['wall_seconds']:.2f}s vs "
                f"{warm['serial']['wall_seconds']:.2f}s, speedup "
                f"{speedup:.2f}x < {EQUAL_SPEED_TOLERANCE}x)"
            )
        # Mechanism gate: when the store is in play at all (the warm-up
        # round built bundles), every timed round must be pure hits —
        # re-misses mean the pinning machinery silently stopped retaining
        # state and the speed comparison is measuring nothing.
        if persistent["warmup_cache_stats"]["misses"] > 0:
            warm_misses = sum(
                stats["misses"] for stats in persistent["round_cache_stats"]
            )
            if warm_misses:
                failures.append(
                    f"warm_eval/persistent_1: {warm_misses} cache misses in "
                    "warm rounds — pinned bundles were not retained"
                )
    return failures, skipped


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_pr6.json")
    parser.add_argument("--workers", type=int, nargs="+", default=[2, 4])
    parser.add_argument("--models", type=int, default=2,
                        help="models per architecture (scenario A)")
    parser.add_argument("--images", type=int, default=2,
                        help="scenes per model (scenario A)")
    parser.add_argument("--iterations", type=int, default=6)
    parser.add_argument("--population", type=int, default=12)
    parser.add_argument("--rounds", type=int, default=10,
                        help="evaluation rounds (scenario C)")
    parser.add_argument("--eval-seeds", type=int, default=3,
                        help="model seeds per architecture (scenario C)")
    parser.add_argument(
        "--experiment-seed", type=int, default=2023,
        help="root seed for the per-job NSGA-II seed derivation",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(args)
    failures, skipped = check_gates(report)
    report["gates_passed"] = not failures
    if failures:
        report["gate_failures"] = failures
    if skipped:
        report["gates_skipped"] = skipped

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if failures:
        print("\n".join(["GATE FAILURES:"] + failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
