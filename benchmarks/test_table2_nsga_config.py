"""Table II — NSGA-II configuration.

Regenerates Table II from the :data:`NSGA_TABLE_II` configuration object and
checks every row against the paper, then times one generation of NSGA-II at
the paper's population size (101) on a synthetic objective, which is the
work unit Table II parametrises.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.experiments.config import NSGA_TABLE_II, nsga_table_rows
from repro.nsga.algorithm import NSGAConfig, NSGAII
from repro.nsga.mutation import MutationConfig


def test_table2_values(benchmark):
    rows = benchmark(lambda: nsga_table_rows(NSGA_TABLE_II))

    print("\nTable II (reproduced):")
    print(format_table(rows))

    values = {row["Parameter"]: row["Value"] for row in rows}
    assert values["Number of iterations"] == "100"
    assert values["Population size"] == "101"
    assert values["Crossover probability"] == "pc = 0.5"
    assert values["Mutation probability"] == "pm = 0.45"
    assert values["Mutation window size"] == "w = 1%"


def test_table2_generation_throughput(benchmark):
    """One NSGA-II generation at the paper's population size (101)."""

    def objective(genome: np.ndarray) -> np.ndarray:
        x = float(genome.mean()) / 50.0
        return np.array([x**2, (x - 2.0) ** 2, abs(x)])

    config = NSGAConfig(
        num_iterations=1,
        population_size=NSGA_TABLE_II.population_size,
        crossover_probability=NSGA_TABLE_II.crossover_probability,
        mutation=MutationConfig(probability=0.45, window_fraction=0.01),
        seed=0,
    )

    result = benchmark.pedantic(
        lambda: NSGAII(objective, (64, 208, 3), config).run(), rounds=1, iterations=1
    )
    assert len(result.population) == 101
    assert result.num_evaluations == 2 * 101
