"""A/B benchmark of cross-generation delta-activation reuse.

Times the PR 2 clean-splice path (every mask re-spliced against the clean
bundle over its whole dirty region) against the PR 7 delta-reuse path
(descendants re-spliced against an evaluated ancestor's stored grids over
only the *relative* dirty window) on the benchmark scenes, verifies the
two paths stay bit-identical while timing, writes everything to
``BENCH_pr7.json`` and **fails** (exit 1) when the gates are not met:

* every scenario: reuse-on must be bit-identical to reuse-off (hard),
* single_stage lineage scenario (large-support masks, tiny diffs): the
  reuse path must reach >= 1.3x over the clean-splice baseline,
* transformer lineage and the dense regime must never regress (a small
  measurement tolerance absorbs timer noise on shared CI runners),
* a warm seeded attack must record a delta hit-rate > 0,
* a shared-memory store carrying delta entries must leave zero segments
  after shutdown.

Usage::

    PYTHONPATH=src python benchmarks/bench_delta_reuse.py \
        [--output BENCH_pr7.json] [--repeats 12]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.conftest import BENCH_LENGTH, BENCH_WIDTH, bench_training_config
from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.objectives import ButterflyObjectives
from repro.core.regions import HalfImageRegion
from repro.data.dataset import generate_dataset
from repro.detectors.activation_cache import (
    ActivationCacheStore,
    SharedMemoryActivationStore,
)
from repro.detectors.zoo import build_detector
from repro.experiments.shm import list_segments
from repro.nn.incremental import mask_nonzero_bbox, masks_differ_bbox
from repro.nsga.algorithm import NSGAConfig

#: Gate: the single-stage lineage scenario must reach this speedup.
SINGLE_STAGE_MIN_SPEEDUP = 1.3

#: Gate: scenarios that cannot profit (transformer attention recompute,
#: dense fallback) must not regress beyond timer noise.  The dense regime
#: does identical work either way (the ancestry lookup short-circuits), so
#: the floor only needs to absorb shared-runner jitter.
NO_REGRESSION_FLOOR = 0.90

POPULATION = 16


def _time(function, repeats):
    """Best-of-``repeats`` wall time of one call (interference only adds)."""
    function()  # warm-up (allocations, caches, delta-store state)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_image():
    return generate_dataset(
        num_images=1,
        seed=5,
        image_length=BENCH_LENGTH,
        image_width=BENCH_WIDTH,
        half="left",
        num_objects=(2, 3),
    )[0].image


def _lineage_population(image_shape, seed=3):
    """An evaluated ancestor plus descendants with tiny relative diffs.

    The ancestor's support is a large window (~30% of the frame — well
    under the dense-route threshold, so the clean-splice baseline still
    pays the windowed recompute over the whole support); each descendant
    perturbs a 3x5 patch inside it, the NSGA mutation regime the delta
    store exists for.
    """
    rng = np.random.default_rng(seed)
    length, width = image_shape[0], image_shape[1]
    r0, r1 = length // 6, length // 6 + (40 * length) // 64
    c0, c1 = width // 4, width // 4 + (100 * width) // 208
    ancestor = np.zeros(image_shape)
    ancestor[r0:r1, c0:c1] = rng.integers(-255, 256, size=(r1 - r0, c1 - c0, 3))
    children = np.zeros((POPULATION,) + image_shape)
    for index in range(POPULATION):
        child = ancestor.copy()
        rr = int(rng.integers(r0, r1 - 3))
        cc = int(rng.integers(c0, c1 - 5))
        child[rr : rr + 3, cc : cc + 5] = rng.integers(-255, 256, size=(3, 5, 3))
        children[index] = child
    return ancestor, children


def _dense_population(image_shape, seed=4):
    rng = np.random.default_rng(seed)
    return rng.integers(-40, 41, size=(POPULATION,) + image_shape).astype(
        np.float64
    )


def _assert_identical(expected, actual, label):
    if not np.array_equal(expected, actual):
        raise AssertionError(f"{label}: delta-reuse path diverged from baseline")


def run_lineage_benchmarks(image, repeats):
    """Clean-splice vs ancestor-splice on both architectures."""
    scenarios = {}
    for architecture in ("yolo", "detr"):
        detector = build_detector(
            architecture, seed=1, training=bench_training_config()
        )
        label = detector.architecture
        ancestor, children = _lineage_population(image.shape)
        bounds = [mask_nonzero_bbox(mask) for mask in children]
        diffs = [masks_differ_bbox(child, ancestor) for child in children]
        # Children carry no fingerprint of their own, so repeated timing
        # runs keep exercising the ancestor-splice path instead of exact
        # self-hits — the honest steady-state cost of one generation.
        ancestry = [
            {"fingerprint": None, "ancestor": b"ancestor", "diff_bound": diff}
            for diff in diffs
        ]

        baseline = ButterflyObjectives(
            detector=detector, image=image, use_delta_reuse=False
        )
        reuse = ButterflyObjectives(
            detector=detector, image=image, use_delta_reuse=True
        )
        # Warm the store with the evaluated ancestor (one generation back).
        reuse.evaluate_population(
            ancestor[None],
            dirty_bounds=[mask_nonzero_bbox(ancestor)],
            ancestry=[
                {"fingerprint": b"ancestor", "ancestor": None, "diff_bound": None}
            ],
        )
        _assert_identical(
            baseline.evaluate_population(children, dirty_bounds=bounds),
            reuse.evaluate_population(
                children, dirty_bounds=bounds, ancestry=ancestry
            ),
            f"{label} lineage",
        )
        scenarios[label] = {
            "population_lineage_ms": {
                "clean_splice": 1e3
                * _time(
                    lambda: baseline.evaluate_population(
                        children, dirty_bounds=bounds
                    ),
                    repeats,
                ),
                "delta_reuse": 1e3
                * _time(
                    lambda: reuse.evaluate_population(
                        children, dirty_bounds=bounds, ancestry=ancestry
                    ),
                    repeats,
                ),
            }
        }
    return scenarios


def run_dense_benchmark(image, repeats):
    """Dense masks route both modes through the stacked fallback."""
    detector = build_detector("yolo", seed=1, training=bench_training_config())
    masks = _dense_population(image.shape)
    ancestry = [
        {"fingerprint": None, "ancestor": None, "diff_bound": None}
        for _ in range(masks.shape[0])
    ]
    baseline = ButterflyObjectives(
        detector=detector, image=image, use_delta_reuse=False
    )
    reuse = ButterflyObjectives(detector=detector, image=image, use_delta_reuse=True)
    _assert_identical(
        baseline.evaluate_population(masks),
        reuse.evaluate_population(masks, ancestry=ancestry),
        "dense fallback",
    )
    return {
        "population_dense_ms": {
            "clean_splice": 1e3
            * _time(lambda: baseline.evaluate_population(masks), repeats),
            "delta_reuse": 1e3
            * _time(
                lambda: reuse.evaluate_population(masks, ancestry=ancestry), repeats
            ),
        }
    }


def run_warm_attack(image):
    """A seeded warm attack must actually hit the delta store."""
    detector = build_detector("yolo", seed=1, training=bench_training_config())
    store = ActivationCacheStore(max_entries=2, delta_store_size=256)
    config = AttackConfig(
        nsga=NSGAConfig(num_iterations=10, population_size=16, seed=0),
        region=HalfImageRegion("right"),
        use_delta_reuse=True,
    )
    ButterflyAttack(detector, config, activation_store=store).attack(image)
    stats = store.stats
    requests = stats.get("delta_hits", 0) + stats.get("delta_misses", 0)
    return {
        "delta_hits": stats.get("delta_hits", 0),
        "delta_misses": stats.get("delta_misses", 0),
        "delta_bytes": stats.get("delta_bytes", 0),
        "delta_hit_rate": stats.get("delta_hits", 0) / requests if requests else 0.0,
    }


def run_shm_audit(image):
    """Delta entries in shared memory must die with their store."""
    detector = build_detector("yolo", seed=1, training=bench_training_config())
    store = SharedMemoryActivationStore(max_entries=1, delta_store_size=8)
    prefix = store.segment_prefix
    clean = store.get(detector, image)
    ancestor, children = _lineage_population(image.shape, seed=6)
    detector.predict_delta_batch(
        image,
        ancestor[None],
        clean=clean,
        ancestry=[{"fingerprint": b"a", "ancestor": None, "diff_bound": None}],
    )
    detector.predict_delta_batch(
        image,
        children[:4],
        clean=clean,
        ancestry=[
            {
                "fingerprint": f"c{index}".encode(),
                "ancestor": b"a",
                "diff_bound": masks_differ_bbox(children[index], ancestor),
            }
            for index in range(4)
        ],
    )
    segments_while_live = len(list_segments(prefix))
    store.shutdown()
    return {
        "segments_while_live": segments_while_live,
        "segments_after_shutdown": len(list_segments(prefix)),
    }


def check_gates(report):
    failures = []
    for label, entry in report["scenarios"].items():
        for metric_name, metric in entry.items():
            speedup = metric["speedup"]
            if label == "single_stage" and metric_name == "population_lineage_ms":
                if speedup < SINGLE_STAGE_MIN_SPEEDUP:
                    failures.append(
                        f"{label}.{metric_name}: {speedup:.2f}x < required "
                        f"{SINGLE_STAGE_MIN_SPEEDUP}x"
                    )
            elif speedup < NO_REGRESSION_FLOOR:
                failures.append(
                    f"{label}.{metric_name}: delta reuse regressed "
                    f"({speedup:.2f}x < {NO_REGRESSION_FLOOR}x floor)"
                )
    if report["warm_attack"]["delta_hit_rate"] <= 0.0:
        failures.append("warm attack recorded no delta hits")
    if report["shm_audit"]["segments_after_shutdown"] != 0:
        failures.append(
            f"{report['shm_audit']['segments_after_shutdown']} shm segments "
            "leaked after shutdown"
        )
    if report["shm_audit"]["segments_while_live"] == 0:
        failures.append("shm audit saw no live segments (nothing was shared)")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_pr7.json")
    parser.add_argument("--repeats", type=int, default=12)
    args = parser.parse_args(argv)

    image = _bench_image()
    scenarios = run_lineage_benchmarks(image, args.repeats)
    scenarios["single_stage"].update(run_dense_benchmark(image, args.repeats))
    for entry in scenarios.values():
        for metric in entry.values():
            metric["speedup"] = metric["clean_splice"] / metric["delta_reuse"]

    report = {
        "benchmark": "cross-generation delta-activation reuse vs PR 2 clean splice",
        "image_shape": [BENCH_LENGTH, BENCH_WIDTH, 3],
        "population_size": POPULATION,
        "repeats": args.repeats,
        "single_stage_min_speedup": SINGLE_STAGE_MIN_SPEEDUP,
        "no_regression_floor": NO_REGRESSION_FLOOR,
        "scenarios": scenarios,
        "warm_attack": run_warm_attack(image),
        "shm_audit": run_shm_audit(image),
    }

    failures = check_gates(report)
    report["gates_passed"] = not failures
    if failures:
        report["gate_failures"] = failures

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if failures:
        print("\n".join(["GATE FAILURES:"] + failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
