"""A/B benchmark of the engine-based transfer and defense sweeps.

PR 5 rebuilt the transferability and defense evaluations as declarative
plans over the generic experiment engine.  This benchmark runs both sweeps

* on the in-process ``SerialBackend`` (the reference executor),
* on ``ProcessPoolBackend`` at each requested worker count (default 2, 4),
* and (transfer only) through the preserved pre-engine reference loop,

verifies that every run is **bit-identical** (parity is a hard gate on
every machine), writes ``BENCH_pr5.json`` and **fails** (exit 1) when a
gate is missed:

* parity: any backend or the reference loop producing different results
  fails immediately;
* engine vs reference: the serial engine transfer sweep must not be slower
  than the pre-engine loop (the batched cross-evaluation replaces one
  dense ``predict`` per matrix cell);
* ≥ 2 cores: the 2-worker pooled sweeps must not be slower than serial;
* ≥ 4 cores: the 4-worker pooled sweeps must reach 2x over serial.

Speed gates are recorded but skipped on machines with fewer cores than
workers (mirroring ``bench_parallel.py``); the JSON records ``cpu_count``
so CI results are interpretable.  Model training is hoisted out of the
timed region (the parent pre-builds the models once; ``fork`` workers
inherit them copy-on-write).

Usage::

    PYTHONPATH=src python benchmarks/bench_experiments.py \
        [--output BENCH_pr5.json] [--workers 2 4] [--models 3] \
        [--iterations 4] [--population 10]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from benchmarks.conftest import BENCH_LENGTH, BENCH_WIDTH, bench_training_config
from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.data.dataset import generate_dataset
from repro.defenses.augmentation import NoiseAugmentationConfig
from repro.defenses.evaluation import evaluate_defense, evaluate_defense_reference
from repro.defenses.jobs import DefendedModelSpec
from repro.experiments.engine import ProcessPoolBackend
from repro.experiments.jobs import ModelSpec, build_cached
from repro.experiments.transfer import (
    run_transferability_experiment,
    run_transferability_reference,
)
from repro.nsga.algorithm import NSGAConfig

#: Ratio tolerance for "must not be slower" gates — pool startup, IPC and
#: timer noise cost a few percent on small CI sweeps.
EQUAL_SPEED_TOLERANCE = 0.95

#: The acceptance-criterion speedup for the 4-worker sweeps on >= 4 cores.
FOUR_WORKER_TARGET = 2.0


def _transfer_fingerprint(result) -> tuple:
    """Exact digest of a transferability report's asserted content."""
    return (
        tuple(result.model_names),
        result.matrix.tobytes(),
        tuple(result.masks_intensity),
        tuple(mask.tobytes() for mask in result.best_masks),
    )


def _defense_fingerprint(evaluation) -> tuple:
    """Exact digest of a defense evaluation's asserted content."""
    return (
        evaluation.undefended_result.fingerprint(),
        evaluation.defended_result.fingerprint(),
        evaluation.undefended_best_degradation,
        evaluation.defended_best_degradation,
        evaluation.clean_recall_undefended,
        evaluation.clean_recall_defended,
    )


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _timed(fn, repeats: int = 1):
    """Run ``fn`` ``repeats`` times; return (last result, best wall-clock).

    Best-of-N damps scheduler noise on small sweeps; every repeat computes
    the identical (deterministic) result, so returning the last is safe.
    """
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def run_benchmark(args) -> dict:
    training = bench_training_config()
    dataset = generate_dataset(
        num_images=1,
        seed=11,
        image_length=BENCH_LENGTH,
        image_width=BENCH_WIDTH,
        half="left",
    )
    sample = dataset[0]
    attack_config = AttackConfig(
        nsga=NSGAConfig(
            num_iterations=args.iterations,
            population_size=args.population,
            seed=0,
        ),
        region=HalfImageRegion("right"),
    )
    start_method = "fork" if _fork_available() else None

    transfer_specs = [
        ModelSpec("detr", seed, training=training)
        for seed in range(1, args.models + 1)
    ]
    undefended = ModelSpec("detr", 1, training=training)
    defended = DefendedModelSpec(
        base=undefended,
        augmentation=NoiseAugmentationConfig(augmented_copies=1),
        training=training,
    )

    # Hoist deterministic model training out of the timed region: the
    # parent builds every spec once and fork workers inherit the memo.
    build_start = time.perf_counter()
    for spec in (*transfer_specs, undefended, defended):
        build_cached(spec)
    build_seconds = time.perf_counter() - build_start

    sweeps: dict[str, dict] = {}

    # --- transfer sweep ----------------------------------------------------
    reference, reference_seconds = _timed(
        lambda: run_transferability_reference(
            [build_cached(spec) for spec in transfer_specs],
            sample.image,
            attack_config,
        ),
        repeats=args.repeats,
    )
    serial, serial_seconds = _timed(
        lambda: run_transferability_experiment(
            transfer_specs, sample.image, attack_config, release_models=False
        ),
        repeats=args.repeats,
    )
    transfer_runs = {
        "reference_loop": {
            "backend": "pre-engine loop",
            "n_jobs": 1,
            "wall_seconds": reference_seconds,
            "parity": True,
        },
        "serial": {
            "backend": "serial",
            "n_jobs": 1,
            "wall_seconds": serial_seconds,
            "speedup_vs_reference": (
                reference_seconds / serial_seconds if serial_seconds > 0 else float("inf")
            ),
            "parity": _transfer_fingerprint(serial) == _transfer_fingerprint(reference),
        },
    }
    for workers in args.workers:
        pooled, wall = _timed(
            lambda: run_transferability_experiment(
                transfer_specs,
                sample.image,
                attack_config,
                n_jobs=workers,
                backend=ProcessPoolBackend(n_jobs=workers, start_method=start_method),
                release_models=False,
            )
        )
        transfer_runs[f"pool_{workers}"] = {
            "backend": "process",
            "n_jobs": workers,
            "wall_seconds": wall,
            "speedup_vs_serial": serial_seconds / wall if wall > 0 else float("inf"),
            "parity": _transfer_fingerprint(pooled) == _transfer_fingerprint(serial),
        }
    sweeps["transfer"] = transfer_runs

    # --- defense sweep -----------------------------------------------------
    defense_args = (sample.image, sample.ground_truth, attack_config)
    reference, reference_seconds = _timed(
        lambda: evaluate_defense_reference(
            build_cached(undefended), build_cached(defended), *defense_args
        ),
        repeats=args.repeats,
    )
    serial, serial_seconds = _timed(
        lambda: evaluate_defense(
            undefended, defended, *defense_args, release_models=False
        ),
        repeats=args.repeats,
    )
    defense_runs = {
        "reference_loop": {
            "backend": "pre-engine loop",
            "n_jobs": 1,
            "wall_seconds": reference_seconds,
            "parity": True,
        },
        "serial": {
            "backend": "serial",
            "n_jobs": 1,
            "wall_seconds": serial_seconds,
            "speedup_vs_reference": (
                reference_seconds / serial_seconds if serial_seconds > 0 else float("inf")
            ),
            "parity": _defense_fingerprint(serial) == _defense_fingerprint(reference),
        },
    }
    for workers in args.workers:
        pooled, wall = _timed(
            lambda: evaluate_defense(
                undefended,
                defended,
                *defense_args,
                n_jobs=workers,
                backend=ProcessPoolBackend(n_jobs=workers, start_method=start_method),
                release_models=False,
            )
        )
        defense_runs[f"pool_{workers}"] = {
            "backend": "process",
            "n_jobs": workers,
            "wall_seconds": wall,
            "speedup_vs_serial": serial_seconds / wall if wall > 0 else float("inf"),
            "parity": _defense_fingerprint(pooled) == _defense_fingerprint(serial),
        }
    sweeps["defense"] = defense_runs

    return {
        "benchmark": "engine-based transfer/defense sweeps vs reference loops",
        "image_shape": [BENCH_LENGTH, BENCH_WIDTH, 3],
        "transfer_models": args.models,
        "nsga": {"iterations": args.iterations, "population": args.population},
        "cpu_count": os.cpu_count(),
        "start_method": start_method or multiprocessing.get_start_method(),
        "fork_available": _fork_available(),
        "model_build_seconds": build_seconds,
        "sweeps": sweeps,
    }


def check_gates(report: dict) -> tuple[list[str], list[str]]:
    """Returns (failures, skipped) gate lists."""
    failures: list[str] = []
    skipped: list[str] = []
    cores = report["cpu_count"] or 1

    for sweep_name, runs in report["sweeps"].items():
        for name, run in runs.items():
            if not run["parity"]:
                failures.append(
                    f"{sweep_name}/{name}: results differ from the reference "
                    f"(parity gate)"
                )

        serial = runs["serial"]
        if serial["parity"] and serial.get("speedup_vs_reference") is not None:
            if serial["speedup_vs_reference"] < EQUAL_SPEED_TOLERANCE:
                failures.append(
                    f"{sweep_name}/serial: engine sweep slower than the "
                    f"pre-engine loop "
                    f"({serial['speedup_vs_reference']:.2f}x < "
                    f"{EQUAL_SPEED_TOLERANCE}x)"
                )

        serial_seconds = serial["wall_seconds"]
        for name, run in runs.items():
            if run["backend"] != "process" or not run["parity"]:
                continue
            workers = run["n_jobs"]
            speedup = run["speedup_vs_serial"]
            if not report["fork_available"]:
                skipped.append(
                    f"{sweep_name}/{name}: speed gate skipped — requires the "
                    f"fork start method (platform offers "
                    f"{report['start_method']})"
                )
                continue
            if cores < 2 or cores < workers:
                skipped.append(
                    f"{sweep_name}/{name}: speed gate skipped — {workers} "
                    f"workers need >= {workers} cores, machine has {cores}"
                )
                continue
            if speedup < EQUAL_SPEED_TOLERANCE:
                failures.append(
                    f"{sweep_name}/{name}: pooled sweep slower than serial "
                    f"({run['wall_seconds']:.2f}s vs {serial_seconds:.2f}s, "
                    f"speedup {speedup:.2f}x < {EQUAL_SPEED_TOLERANCE}x)"
                )
            if workers >= 4 and speedup < FOUR_WORKER_TARGET:
                failures.append(
                    f"{sweep_name}/{name}: {workers}-worker speedup "
                    f"{speedup:.2f}x below the {FOUR_WORKER_TARGET}x target"
                )
    return failures, skipped


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_pr5.json")
    parser.add_argument("--workers", type=int, nargs="+", default=[2, 4])
    parser.add_argument("--models", type=int, default=3,
                        help="seed-varied models in the transfer sweep")
    parser.add_argument("--iterations", type=int, default=4)
    parser.add_argument("--population", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing for the serial/reference runs")
    args = parser.parse_args(argv)

    report = run_benchmark(args)
    failures, skipped = check_gates(report)
    report["gates_passed"] = not failures
    if failures:
        report["gate_failures"] = failures
    if skipped:
        report["gates_skipped"] = skipped

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if failures:
        print("\n".join(["GATE FAILURES:"] + failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
