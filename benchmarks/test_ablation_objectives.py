"""Ablation — the third objective ("degree of unrelatedness").

The paper's key formal novelty over single-objective attacks (GenAttack) is
the obj_dist objective that pushes perturbations away from the objects.
This ablation compares the three-objective butterfly attack against a
degradation-only genetic baseline under the same query budget and measures
where the resulting perturbations sit relative to the objects.

Expected shape: the butterfly attack's most-unrelated front solution has a
clearly higher obj_dist than the single-objective baseline's best mask,
because the baseline has no incentive to stay away from the objects.
"""

from benchmarks.conftest import run_once
from repro.baselines.genattack import GenAttackBaseline, GenAttackConfig
from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.objectives import ButterflyObjectives
from repro.core.regions import FullImageRegion
from repro.nsga.algorithm import NSGAConfig


def test_ablation_distance_objective(benchmark, bench_detr, bench_dataset):
    # Full-image perturbations: without the region restriction the only
    # thing keeping perturbations away from objects is obj_dist itself.
    image = bench_dataset[0].image
    region = FullImageRegion()
    objectives = ButterflyObjectives(detector=bench_detr, image=image)

    def run_both():
        butterfly = ButterflyAttack(
            bench_detr,
            AttackConfig(
                nsga=NSGAConfig(num_iterations=8, population_size=12, seed=0),
                region=region,
            ),
        ).attack(image)
        baseline = GenAttackBaseline(
            bench_detr,
            GenAttackConfig(
                population_size=12, num_iterations=8, linf_bound=32.0, seed=0
            ),
            region=region,
        ).attack(image)
        return butterfly, baseline

    butterfly, baseline = run_once(benchmark, run_both)

    butterfly_distance = butterfly.best_by("distance").distance
    baseline_distance = objectives.distance(baseline.best_mask.values)

    print("\nObjective ablation (obj_dist of the resulting perturbations):")
    print(f"  butterfly attack (3 objectives)   : {butterfly_distance:.4f}")
    print(f"  GenAttack-style (degradation only): {baseline_distance:.4f}")

    # The three-objective search produces perturbations at least as
    # "unrelated" as the single-objective baseline's.
    assert butterfly_distance >= baseline_distance - 1e-9
    # Both attacks change the prediction under this budget.
    assert butterfly.best_by("degradation").degradation < 1.0
