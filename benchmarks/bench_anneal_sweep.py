"""Sweep of the sparsity-annealing schedule on the quickstart budget.

Closes the ROADMAP measurement item left open by PRs 4 and 9: both
``sparse_init_fraction`` (patch-confined sparse initial population) and
``anneal_final_window`` (mutation window annealed from its base 0.01
down to a final value) shipped default-off because no end-to-end
quality/speed measurement existed to pick defaults.  This benchmark runs
the full grid on the quickstart attack budget (single-stage detector,
10 x 16 NSGA budget, two seeds), scores every cell's Pareto front
against the stock schedule with the shared-reference hypervolume ratio,
and reports the best cell so the defaults recorded in ROADMAP.md are
reproducible numbers, not folklore.

The stock schedule stays the default regardless of the winner — both
knobs preserve the historical RNG stream only when off — so the gates
here check measurement sanity, not a quality target: every cell must
produce a non-empty front, and the recommended cell must not lose more
than 20% hypervolume against stock.

Usage::

    PYTHONPATH=src python benchmarks/bench_anneal_sweep.py \
        [--output BENCH_pr10_anneal.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.conftest import BENCH_LENGTH, BENCH_WIDTH, bench_training_config
from repro.analysis.front_quality import compare_front_quality
from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.data.dataset import generate_dataset
from repro.detectors.zoo import build_detector
from repro.nsga.algorithm import NSGAConfig

ATTACK_ITERATIONS = 10
ATTACK_POPULATION = 16
ATTACK_SEEDS = (0, 1)

#: The grid: sparse seeding fraction x annealed final mutation window
#: (base window_fraction is 0.01; ``None`` keeps the constant schedule).
SPARSE_FRACTIONS = (0.0, 0.5, 1.0)
ANNEAL_TARGETS = (None, 0.005, 0.0025)

#: Gate: the recommended cell must keep at least this much of the stock
#: schedule's hypervolume (mean over seeds).
MIN_RECOMMENDED_RATIO = 0.8


def _bench_image():
    return generate_dataset(
        num_images=1,
        seed=5,
        image_length=BENCH_LENGTH,
        image_width=BENCH_WIDTH,
        half="left",
        num_objects=(2, 3),
    )[0].image


def _attack_config(fraction, target, seed):
    return AttackConfig(
        nsga=NSGAConfig(
            num_iterations=ATTACK_ITERATIONS,
            population_size=ATTACK_POPULATION,
            seed=seed,
        ),
        region=HalfImageRegion("right"),
        sparse_init_fraction=fraction,
        anneal_final_window=target,
    )


def _front_matrix(result):
    return np.array(
        [
            [solution.intensity, solution.degradation, -solution.distance]
            for solution in result.pareto_front
        ]
    )


def _cell_name(fraction, target):
    anneal = "off" if target is None else f"{target:g}"
    return f"sparse={fraction:g},anneal={anneal}"


def run_sweep(image):
    detector = build_detector("yolo", seed=1, training=bench_training_config())

    # Stock-schedule reference fronts, one per seed.
    references = {}
    for seed in ATTACK_SEEDS:
        result = ButterflyAttack(detector, _attack_config(0.0, None, seed)).attack(
            image
        )
        references[seed] = _front_matrix(result)

    cells = {}
    for fraction in SPARSE_FRACTIONS:
        for target in ANNEAL_TARGETS:
            ratios, seconds, front_sizes, best_degradations = [], [], [], []
            for seed in ATTACK_SEEDS:
                start = time.perf_counter()
                result = ButterflyAttack(
                    detector, _attack_config(fraction, target, seed)
                ).attack(image)
                seconds.append(time.perf_counter() - start)
                front = _front_matrix(result)
                front_sizes.append(int(front.shape[0]))
                best_degradations.append(float(front[:, 1].min()))
                quality = compare_front_quality(front, references[seed])
                ratios.append(quality["hypervolume_ratio"])
            cells[_cell_name(fraction, target)] = {
                "sparse_init_fraction": fraction,
                "anneal_final_window": target,
                "mean_hypervolume_ratio": float(np.mean(ratios)),
                "mean_attack_seconds": float(np.mean(seconds)),
                "mean_best_degradation": float(np.mean(best_degradations)),
                "min_front_size": min(front_sizes),
            }
    return cells


def recommend(cells):
    """Best mean hypervolume ratio; speed breaks ties within noise (2%)."""
    ranked = sorted(
        cells.items(),
        key=lambda item: (
            -round(item[1]["mean_hypervolume_ratio"], 2),
            item[1]["mean_attack_seconds"],
        ),
    )
    return ranked[0][0]


def check_gates(report):
    failures = []
    for name, cell in report["cells"].items():
        if cell["min_front_size"] == 0:
            failures.append(f"{name}: produced an empty Pareto front")
    chosen = report["cells"][report["recommended"]]
    if chosen["mean_hypervolume_ratio"] < MIN_RECOMMENDED_RATIO:
        failures.append(
            f"recommended cell {report['recommended']} keeps only "
            f"{chosen['mean_hypervolume_ratio']:.2f} of stock hypervolume "
            f"(< {MIN_RECOMMENDED_RATIO})"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_pr10_anneal.json")
    args = parser.parse_args(argv)

    image = _bench_image()
    cells = run_sweep(image)
    report = {
        "benchmark": "sparsity-annealing schedule sweep on the quickstart budget",
        "image_shape": [BENCH_LENGTH, BENCH_WIDTH, 3],
        "attack_budget": {
            "iterations": ATTACK_ITERATIONS,
            "population": ATTACK_POPULATION,
            "seeds": list(ATTACK_SEEDS),
        },
        "base_window_fraction": 0.01,
        "cells": cells,
        "recommended": recommend(cells),
        "min_recommended_ratio": MIN_RECOMMENDED_RATIO,
    }

    failures = check_gates(report)
    report["gates_passed"] = not failures
    if failures:
        report["gate_failures"] = failures

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if failures:
        print("\n".join(["GATE FAILURES:"] + failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
