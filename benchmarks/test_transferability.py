"""Extension — transferability of butterfly masks across seed-varied models.

The paper trains 25 seed-varied models per architecture (Table I) and the
related work discusses transfer-based black-box attacks.  This benchmark
measures how well a mask optimised against one transformer model transfers
to another seed of the same architecture, producing the white-box vs
transfer degradation matrix.

Expected shape: masks are most effective on the model they were optimised
for (diagonal of the matrix), and transfer to other seeds is weaker
(off-diagonal obj_degrad closer to 1).
"""

import numpy as np

from benchmarks.conftest import bench_training_config, run_once
from repro.analysis.reporting import format_table
from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.detectors.zoo import build_model_zoo
from repro.experiments.transfer import run_transferability_experiment
from repro.nsga.algorithm import NSGAConfig


def test_transferability(benchmark, bench_dataset):
    models = build_model_zoo("detr", seeds=(1, 2), training=bench_training_config())
    config = AttackConfig(
        nsga=NSGAConfig(num_iterations=8, population_size=12, seed=0),
        region=HalfImageRegion("right"),
    )

    result = run_once(
        benchmark, run_transferability_experiment, models, bench_dataset[0].image, config
    )

    print("\nTransferability of butterfly masks across model seeds:")
    print(format_table(result.as_rows()))
    print(
        f"  white-box obj_degrad (diagonal mean): {result.self_degradation():.3f}; "
        f"transfer obj_degrad (off-diagonal mean): {result.transfer_degradation():.3f}"
    )

    assert result.matrix.shape == (2, 2)
    assert np.all(result.matrix <= 1.0 + 1e-9)
    # Masks are effective against their own model...
    assert result.self_degradation() < 1.0
    # ...and transferring costs effectiveness (or at best is equal).
    assert result.transfer_gap() >= -0.05
