"""A/B benchmark of the process-pool execution engine against serial.

The models × images sweep is embarrassingly parallel per (model, scene)
job; PR 4 turned it into a declarative work plan executed by pluggable
backends.  This benchmark builds one benchmark-scale plan, executes it on

* the in-process ``SerialBackend`` (the reference executor), and
* ``ProcessPoolBackend`` at each requested worker count (default 2 and 4),

verifies that every run is **bit-identical** to the serial reference while
timing (parity is a hard gate on every machine), writes ``BENCH_pr4.json``
and **fails** (exit 1) when a gate is missed:

* parity: any backend producing different results fails immediately;
* ≥ 2 cores: the 2-worker pooled sweep must not be slower than serial;
* ≥ 4 cores: the 4-worker pooled sweep must reach 2x over serial
  (the PR 4 acceptance criterion, evaluated on CI hardware).

Speed gates are recorded but skipped on machines with fewer cores than
workers — a pool cannot beat serial without parallel hardware; the JSON
records ``cpu_count`` so CI results are interpretable.

Model training is hoisted out of the timed region (the parent pre-builds
the zoo once; ``fork`` workers inherit it copy-on-write), so the timings
compare sweep execution, not detector construction.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py \
        [--output BENCH_pr4.json] [--workers 2 4] [--models 2] [--images 2] \
        [--iterations 6] [--population 12]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from benchmarks.conftest import BENCH_LENGTH, BENCH_WIDTH, bench_training_config
from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.data.dataset import generate_dataset
from repro.experiments.engine import (
    ProcessPoolBackend,
    SerialBackend,
    execute_plan,
)
from repro.experiments.jobs import build_attack_plan, build_cached
from repro.nsga.algorithm import NSGAConfig

#: Ratio tolerance for the "pooled must not be slower than serial" gate —
#: pool startup and IPC cost a few percent on small CI sweeps; 5% absorbs
#: timer noise without hiding a real regression.
EQUAL_SPEED_TOLERANCE = 0.95

#: The acceptance-criterion speedup for the 4-worker sweep on >= 4 cores.
FOUR_WORKER_TARGET = 2.0


def _fingerprint(report) -> list:
    """Exact per-result digest: solutions, objectives, bookkeeping."""
    fingerprints = []
    for outcome in report.outcomes:
        result = outcome.result
        fingerprints.append(
            (
                result.detector_name,
                result.num_evaluations,
                result.cache_hits,
                tuple(
                    (
                        solution.mask.values.tobytes(),
                        solution.intensity,
                        solution.degradation,
                        solution.distance,
                        solution.rank,
                    )
                    for solution in result.solutions
                ),
            )
        )
    return fingerprints


def build_benchmark_plan(args):
    """The benchmark sweep: both architectures, seeded models, shared scenes."""
    training = bench_training_config()
    dataset = generate_dataset(
        num_images=args.images,
        seed=11,
        image_length=BENCH_LENGTH,
        image_width=BENCH_WIDTH,
        half="left",
    )
    attack_config = AttackConfig(
        nsga=NSGAConfig(
            num_iterations=args.iterations,
            population_size=args.population,
            seed=0,
        ),
        region=HalfImageRegion("right"),
    )
    return build_attack_plan(
        architectures=("yolo", "detr"),
        seeds=range(1, args.models + 1),
        dataset=dataset,
        attack_config=attack_config,
        training=training,
        experiment_seed=args.experiment_seed,
    )


def _fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform.

    The timed comparison pre-builds the zoo in the parent and relies on
    fork workers inheriting it copy-on-write; under spawn/forkserver each
    worker retrains the zoo inside the timed region, so the speed gates
    would measure training, not sweep execution.
    """
    return "fork" in multiprocessing.get_all_start_methods()


def run_benchmark(args) -> dict:
    plan = build_benchmark_plan(args)
    start_method = "fork" if _fork_available() else None

    # Hoist deterministic model training out of the timed region: the
    # parent builds the zoo once and fork workers inherit it.
    build_start = time.perf_counter()
    for spec in plan.model_specs():
        build_cached(spec)
    build_seconds = time.perf_counter() - build_start

    runs: dict[str, dict] = {}

    start = time.perf_counter()
    serial_report = execute_plan(plan, SerialBackend())
    serial_seconds = time.perf_counter() - start
    reference = _fingerprint(serial_report)
    runs["serial"] = {
        "backend": "serial",
        "n_jobs": 1,
        "wall_seconds": serial_seconds,
        "parity": True,
    }

    for workers in args.workers:
        start = time.perf_counter()
        pooled_report = execute_plan(
            plan, ProcessPoolBackend(n_jobs=workers, start_method=start_method)
        )
        wall = time.perf_counter() - start
        runs[f"pool_{workers}"] = {
            "backend": "process",
            "n_jobs": workers,
            "wall_seconds": wall,
            "speedup_vs_serial": serial_seconds / wall if wall > 0 else float("inf"),
            "parity": _fingerprint(pooled_report) == reference,
        }

    return {
        "benchmark": "serial vs process-pool models x images sweep",
        "image_shape": [BENCH_LENGTH, BENCH_WIDTH, 3],
        "models_per_architecture": args.models,
        "images_per_model": args.images,
        "num_jobs": len(plan.jobs),
        "nsga": {"iterations": args.iterations, "population": args.population},
        "experiment_seed": args.experiment_seed,
        "cpu_count": os.cpu_count(),
        "start_method": start_method or multiprocessing.get_start_method(),
        "fork_available": _fork_available(),
        "model_build_seconds": build_seconds,
        "runs": runs,
    }


def check_gates(report: dict) -> tuple[list[str], list[str]]:
    """Returns (failures, skipped) gate lists."""
    failures: list[str] = []
    skipped: list[str] = []
    cores = report["cpu_count"] or 1
    serial_seconds = report["runs"]["serial"]["wall_seconds"]

    for name, run in report["runs"].items():
        if not run["parity"]:
            failures.append(
                f"{name}: results differ from the serial reference (parity gate)"
            )

    for name, run in report["runs"].items():
        if run["backend"] != "process" or not run["parity"]:
            continue
        workers = run["n_jobs"]
        speedup = run["speedup_vs_serial"]
        if not report["fork_available"]:
            # Without fork the timed pooled run includes per-worker zoo
            # retraining (no copy-on-write warm start), so a speed gate
            # would measure training, not sweep execution.
            skipped.append(
                f"{name}: speed gate skipped — requires the fork start "
                f"method (platform offers {report['start_method']})"
            )
            continue
        if cores < 2 or cores < workers:
            skipped.append(
                f"{name}: speed gate skipped — {workers} workers need "
                f">= {workers} cores, machine has {cores}"
            )
            continue
        if speedup < EQUAL_SPEED_TOLERANCE:
            failures.append(
                f"{name}: pooled sweep slower than serial "
                f"({run['wall_seconds']:.2f}s vs {serial_seconds:.2f}s, "
                f"speedup {speedup:.2f}x < {EQUAL_SPEED_TOLERANCE}x)"
            )
        if workers >= 4 and speedup < FOUR_WORKER_TARGET:
            failures.append(
                f"{name}: {workers}-worker speedup {speedup:.2f}x below the "
                f"{FOUR_WORKER_TARGET}x acceptance target"
            )
    return failures, skipped


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_pr4.json")
    parser.add_argument("--workers", type=int, nargs="+", default=[2, 4])
    parser.add_argument("--models", type=int, default=2,
                        help="models per architecture")
    parser.add_argument("--images", type=int, default=2,
                        help="scenes per model")
    parser.add_argument("--iterations", type=int, default=6)
    parser.add_argument("--population", type=int, default=12)
    parser.add_argument(
        "--experiment-seed", type=int, default=2023,
        help="root seed for the per-job NSGA-II seed derivation",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(args)
    failures, skipped = check_gates(report)
    report["gates_passed"] = not failures
    if failures:
        report["gate_failures"] = failures
    if skipped:
        report["gates_skipped"] = skipped

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if failures:
        print("\n".join(["GATE FAILURES:"] + failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
