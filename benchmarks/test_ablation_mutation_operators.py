"""Ablation — the four mutation operators of Section IV-A.

The paper investigates four mutation operations (complement, shuffle,
random value, inversion) and plans to refine them in future work.  This
ablation runs the attack with the full operator set and with a single
operator ("random" only), comparing the best degradation reached under an
identical budget.  The assertion is deliberately weak — it checks the
pipeline supports operator ablation and that both variants still find
perturbations — because operator superiority is budget- and seed-dependent.
"""

from benchmarks.conftest import run_once
from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.nsga.algorithm import NSGAConfig
from repro.nsga.mutation import MutationConfig


def _config(operators):
    return AttackConfig(
        nsga=NSGAConfig(
            num_iterations=8,
            population_size=12,
            crossover_probability=0.5,
            mutation=MutationConfig(
                probability=0.45, window_fraction=0.01, operators=operators
            ),
            seed=0,
        ),
        region=HalfImageRegion("right"),
    )


def test_ablation_mutation_operators(benchmark, bench_detr, bench_dataset):
    image = bench_dataset[0].image

    def run_both_variants():
        full = ButterflyAttack(
            bench_detr, _config(("complement", "shuffle", "random", "inversion"))
        ).attack(image)
        single = ButterflyAttack(bench_detr, _config(("random",))).attack(image)
        return full, single

    full, single = run_once(benchmark, run_both_variants)

    full_best = full.best_by("degradation").degradation
    single_best = single.best_by("degradation").degradation
    print("\nMutation-operator ablation (best obj_degrad, lower = stronger):")
    print(f"  all four operators : {full_best:.3f}")
    print(f"  'random' only      : {single_best:.3f}")

    assert 0.0 <= full_best <= 1.0
    assert 0.0 <= single_best <= 1.0
    # Both variants keep the zero mask in the population, so neither can
    # report a front without a zero-intensity solution.
    assert any(s.intensity == 0.0 for s in full.solutions)
    assert any(s.intensity == 0.0 for s in single.solutions)
