"""Fault-tolerance benchmark: crash-resume parity and checkpoint overhead.

PR 8 adds journaled plan execution (:mod:`repro.experiments.checkpoint`):
every completed job streams into an append-only JSONL journal, and a
resumed ``execute_plan`` skips journaled jobs bit-exactly.  This benchmark
measures the two costs that matter and **fails** (exit 1) when a gate is
missed:

* **Scenario A — crash and resume** (hard gates): a real attack plan is
  run uninterrupted on the serial backend, then re-run on the persistent
  backend with its *last* job rigged to hard-kill its worker
  (``os._exit`` mid-NSGA, crash budget 1).  The crash must surface as
  ``WorkerCrashError``, the journal must hold at least one completed
  outcome, and the resumed run — on the *same* backend instance, through
  the respawned worker — must reproduce the uninterrupted serial report
  bit-identically while restoring every journaled job (no re-execution).
* **Scenario B — checkpoint overhead** (``<= 5%``): the warm
  evaluation-service workload from the persistent-runtime benchmark
  (repeated transfer-evaluation rounds over pinned warm models) timed
  with and without a journal on the same warm backend.  Journaling small
  per-round payloads must cost at most ``OVERHEAD_CEILING`` relative
  wall-clock (best-of across repeats absorbs shared-runner jitter).  A
  mechanism gate keeps the comparison honest: the journaled sweep must
  restore *zero* jobs (fresh journal directory per repeat), otherwise it
  timed skipped work.
* **Leak audit**: after the induced worker crash and every ``close()``,
  no shared-memory segment created by this process may remain in
  ``/dev/shm``.

Model training is hoisted out of every timed region (the parent builds the
zoo once; fork workers inherit it copy-on-write).

Usage::

    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py \
        [--output BENCH_pr8.json] [--workers 2] [--models 1] [--images 2] \
        [--iterations 4] [--population 10] [--rounds 10] [--eval-seeds 3] \
        [--repeats 5]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import tempfile
import time
from dataclasses import dataclass, replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from benchmarks.conftest import BENCH_LENGTH, BENCH_WIDTH, bench_training_config
from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.data.dataset import generate_dataset
from repro.experiments.checkpoint import PlanCheckpoint
from repro.experiments.engine import (
    SerialBackend,
    WorkerCrashError,
    execute_plan,
)
from repro.experiments.jobs import (
    AttackJob,
    ModelSpec,
    build_attack_plan,
    build_cached,
)
from repro.experiments.persistent import PersistentPoolBackend
from repro.experiments.shm import list_segments
from repro.experiments.transfer import (
    build_transfer_attack_plan,
    build_transfer_eval_plan,
)
from repro.nsga.algorithm import NSGAConfig

#: Gate: journaling may cost at most this relative wall-clock on the warm
#: evaluation-service workload (checkpointed / plain, best-of repeats).
OVERHEAD_CEILING = 1.05


@dataclass
class KillOnceAttackJob(AttackJob):
    """A real attack job that hard-kills its worker on first dispatch.

    ``os._exit`` (not an exception) simulates an OOM-kill or segfault
    mid-NSGA.  The sentinel file marks the first dispatch, so the resumed
    job runs the plain attack and returns the exact outcome the
    uninterrupted plan would.
    """

    sentinel: str = ""

    def execute(self, context):
        if self.sentinel and not os.path.exists(self.sentinel):
            with open(self.sentinel, "w"):
                pass
            os._exit(13)
        return super().execute(context)


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _attack_config(args) -> AttackConfig:
    return AttackConfig(
        nsga=NSGAConfig(
            num_iterations=args.iterations,
            population_size=args.population,
            seed=0,
        ),
        region=HalfImageRegion("right"),
    )


def _fingerprints(report) -> list:
    return [outcome.result.fingerprint() for outcome in report.outcomes]


def _eval_fingerprints(report) -> list:
    return [
        (outcome.result.target_name, outcome.result.degradations.tobytes())
        for outcome in report.outcomes
    ]


def bench_crash_resume(args, start_method, leak_prefixes, workdir) -> dict:
    """Scenario A: hard-kill a worker mid-plan, resume from the journal."""
    training = bench_training_config()
    dataset = generate_dataset(
        num_images=args.images,
        seed=11,
        image_length=BENCH_LENGTH,
        image_width=BENCH_WIDTH,
        half="left",
    )
    plan = build_attack_plan(
        architectures=("yolo", "detr"),
        seeds=range(1, args.models + 1),
        dataset=dataset,
        attack_config=_attack_config(args),
        training=training,
        experiment_seed=args.experiment_seed,
    )
    for spec in plan.model_specs():
        build_cached(spec)

    start = time.perf_counter()
    serial_report = execute_plan(plan, SerialBackend())
    serial_seconds = time.perf_counter() - start
    reference = _fingerprints(serial_report)

    # The kill job is the *last* job, so its worker journals at least one
    # sibling job before dying — the resume is guaranteed a journal hit.
    jobs = list(plan.jobs)
    last = jobs[-1]
    jobs[-1] = KillOnceAttackJob(
        job_id=last.job_id,
        model=last.model,
        image=last.image,
        config=last.config,
        scene_index=last.scene_index,
        nsga_seed=last.nsga_seed,
        sentinel=str(workdir / "crashed-once"),
    )
    faulty = replace(plan, jobs=jobs)

    checkpoint_dir = workdir / "crash-journal"
    backend = PersistentPoolBackend(
        n_jobs=args.workers,
        max_crashes_per_job=1,
        start_method=start_method,
    )
    crash_surfaced = False
    try:
        checkpoint = PlanCheckpoint(checkpoint_dir)
        try:
            execute_plan(faulty, backend, checkpoint=checkpoint)
        except WorkerCrashError:
            crash_surfaced = True
        finally:
            checkpoint.close()
        # Resume on the SAME backend: the respawned replacement worker (a
        # PR 8 crash-path fix) must serve the remainder of the plan.
        checkpoint = PlanCheckpoint(checkpoint_dir)
        start = time.perf_counter()
        try:
            resumed = execute_plan(faulty, backend, checkpoint=checkpoint)
        finally:
            checkpoint.close()
        resume_seconds = time.perf_counter() - start
        if backend.runtime is not None:
            leak_prefixes.append(backend.runtime.segment_prefix)
    finally:
        backend.close()

    return {
        "num_jobs": len(plan.jobs),
        "workers": args.workers,
        "crash_surfaced": crash_surfaced,
        "journal_hits": resumed.journal_hits,
        "serial_wall_seconds": serial_seconds,
        "resume_wall_seconds": resume_seconds,
        "parity": _fingerprints(resumed) == reference,
    }


def bench_checkpoint_overhead(args, start_method, leak_prefixes, workdir) -> dict:
    """Scenario B: warm evaluation-service rounds, journal on vs off."""
    training = bench_training_config()
    dataset = generate_dataset(
        num_images=1,
        seed=11,
        image_length=BENCH_LENGTH,
        image_width=BENCH_WIDTH,
        half="left",
    )
    image = dataset[0].image
    specs = [
        ModelSpec(architecture, seed, training=training)
        for architecture in ("yolo", "detr")
        for seed in range(1, args.eval_seeds + 1)
    ]
    config = replace(
        _attack_config(args), activation_cache_size=max(4, len(specs))
    )
    for spec in specs:
        build_cached(spec)

    optimise_plan = build_transfer_attack_plan(
        specs, image, config, experiment_seed=args.experiment_seed
    )
    optimise = execute_plan(optimise_plan, SerialBackend())
    best_masks = []
    dirty_bounds = []
    for outcome in optimise.outcomes:
        best = outcome.result.best_by("degradation")
        best_masks.append(best.mask.values)
        dirty_bounds.append(best.mask.nonzero_bbox())

    # One fresh candidate mask per round; per-round plan names give every
    # round its own journal file (plan 0 is the untimed warm-up round).
    round_plans = [
        replace(
            build_transfer_eval_plan(
                specs,
                image,
                [best_masks[index % len(best_masks)] * (1.0 - 0.02 * index)],
                [dirty_bounds[index % len(dirty_bounds)]],
                config,
            ),
            name=f"eval-round-{index:02d}",
        )
        for index in range(args.rounds + 1)
    ]

    backend = PersistentPoolBackend(n_jobs=1, start_method=start_method)
    backend.pin_models(specs)
    plain_best = float("inf")
    checkpointed_best = float("inf")
    reference = None
    parity = True
    restored_total = 0
    journal_bytes = 0
    try:
        # Service startup: spawn the worker and build the pinned bundles.
        execute_plan(round_plans[0], backend)
        for repeat in range(args.repeats):
            start = time.perf_counter()
            plain_reports = [
                execute_plan(plan, backend) for plan in round_plans[1:]
            ]
            plain_best = min(plain_best, time.perf_counter() - start)

            journal_dir = workdir / f"overhead-{repeat}"
            checkpoint = PlanCheckpoint(journal_dir)
            start = time.perf_counter()
            try:
                checkpointed_reports = [
                    execute_plan(plan, backend, checkpoint=checkpoint)
                    for plan in round_plans[1:]
                ]
            finally:
                checkpoint.close()
            checkpointed_best = min(
                checkpointed_best, time.perf_counter() - start
            )

            fingerprints = [_eval_fingerprints(r) for r in plain_reports]
            if reference is None:
                reference = fingerprints
            parity = (
                parity
                and fingerprints == reference
                and [_eval_fingerprints(r) for r in checkpointed_reports]
                == reference
            )
            restored_total += sum(
                report.journal_hits for report in checkpointed_reports
            )
            journal_bytes = sum(
                path.stat().st_size for path in journal_dir.glob("*.jsonl")
            )
        if backend.runtime is not None:
            leak_prefixes.append(backend.runtime.segment_prefix)
    finally:
        backend.unpin_models(specs)
        backend.close()

    return {
        "rounds": args.rounds,
        "repeats": args.repeats,
        "num_models": len(specs),
        "plain_wall_seconds": plain_best,
        "checkpointed_wall_seconds": checkpointed_best,
        "overhead_ratio": (
            checkpointed_best / plain_best if plain_best > 0 else float("inf")
        ),
        "journal_bytes_per_sweep": journal_bytes,
        "restored_in_timed_sweeps": restored_total,
        "parity": parity,
    }


def run_benchmark(args) -> dict:
    start_method = "fork" if _fork_available() else None
    leak_prefixes: list[str] = []
    with tempfile.TemporaryDirectory(prefix="bench-fault-") as tmp:
        workdir = Path(tmp)
        scenarios = {
            "crash_resume": bench_crash_resume(
                args, start_method, leak_prefixes, workdir
            ),
            "checkpoint_overhead": bench_checkpoint_overhead(
                args, start_method, leak_prefixes, workdir
            ),
        }
    leaked = sorted(
        segment
        for prefix in set(leak_prefixes) | {f"rpr{os.getpid()}"}
        for segment in list_segments(prefix)
    )
    return {
        "benchmark": "fault-tolerant checkpointed plan execution",
        "image_shape": [BENCH_LENGTH, BENCH_WIDTH, 3],
        "nsga": {"iterations": args.iterations, "population": args.population},
        "experiment_seed": args.experiment_seed,
        "cpu_count": os.cpu_count(),
        "start_method": start_method or multiprocessing.get_start_method(),
        "scenarios": scenarios,
        "runtime_prefixes": sorted(set(leak_prefixes)),
        "leaked_segments": leaked,
    }


def check_gates(report: dict) -> list[str]:
    failures: list[str] = []

    crash = report["scenarios"]["crash_resume"]
    if not crash["crash_surfaced"]:
        failures.append(
            "crash_resume: the rigged worker kill never surfaced as "
            "WorkerCrashError — the crash path was not exercised"
        )
    if crash["journal_hits"] < 1:
        failures.append(
            "crash_resume: the resumed run restored no journaled outcomes "
            f"(journal_hits={crash['journal_hits']})"
        )
    if crash["parity"] is not True:
        failures.append(
            "crash_resume: resumed report differs from the uninterrupted "
            "serial reference (parity gate)"
        )

    overhead = report["scenarios"]["checkpoint_overhead"]
    if overhead["parity"] is not True:
        failures.append(
            "checkpoint_overhead: journaled and plain sweeps diverged "
            "(parity gate)"
        )
    elif overhead["restored_in_timed_sweeps"]:
        failures.append(
            "checkpoint_overhead: the journaled sweep restored "
            f"{overhead['restored_in_timed_sweeps']} outcomes — it timed "
            "skipped work, the overhead number is invalid"
        )
    elif overhead["overhead_ratio"] > OVERHEAD_CEILING:
        failures.append(
            "checkpoint_overhead: journaling cost "
            f"{(overhead['overhead_ratio'] - 1.0) * 100:.1f}% on the warm "
            f"evaluation service ({overhead['checkpointed_wall_seconds']:.2f}s "
            f"vs {overhead['plain_wall_seconds']:.2f}s), ceiling is "
            f"{(OVERHEAD_CEILING - 1.0) * 100:.0f}%"
        )

    if report["leaked_segments"]:
        failures.append(
            "leak audit: shared-memory segments survived the induced crash "
            "and close(): " + ", ".join(report["leaked_segments"])
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_pr8.json")
    parser.add_argument("--workers", type=int, default=2,
                        help="persistent workers (scenario A)")
    parser.add_argument("--models", type=int, default=1,
                        help="model seeds per architecture (scenario A)")
    parser.add_argument("--images", type=int, default=2,
                        help="scenes per model (scenario A)")
    parser.add_argument("--iterations", type=int, default=4)
    parser.add_argument("--population", type=int, default=10)
    parser.add_argument("--rounds", type=int, default=10,
                        help="evaluation rounds per sweep (scenario B)")
    parser.add_argument("--eval-seeds", type=int, default=3,
                        help="model seeds per architecture (scenario B)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="best-of repeats for the overhead timing")
    parser.add_argument(
        "--experiment-seed", type=int, default=2023,
        help="root seed for the per-job NSGA-II seed derivation",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(args)
    failures = check_gates(report)
    report["gates_passed"] = not failures
    if failures:
        report["gate_failures"] = failures

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if failures:
        print("\n".join(["GATE FAILURES:"] + failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
