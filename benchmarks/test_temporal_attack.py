"""Section IV-B — temporally stable perturbations across image frames.

The paper notes that the filter-mask formulation extends to a single mask
that stays effective over a sequence of frames.  This benchmark optimises
one mask over a short synthetic driving sequence and checks that the mask
degrades more than one frame (temporal stability), which a purely
single-frame mask is not required to do.
"""

import numpy as np

from benchmarks.conftest import BENCH_LENGTH, BENCH_WIDTH, run_once
from repro.core.config import AttackConfig
from repro.core.objectives import ButterflyObjectives
from repro.core.regions import HalfImageRegion
from repro.core.temporal import TemporalAttack
from repro.data.sequences import generate_sequence
from repro.nsga.algorithm import NSGAConfig


def test_temporal_attack(benchmark, bench_detr):
    sequence = generate_sequence(
        num_frames=3,
        seed=19,
        image_length=BENCH_LENGTH,
        image_width=BENCH_WIDTH,
        half="left",
    )
    config = AttackConfig(
        nsga=NSGAConfig(num_iterations=8, population_size=12, seed=0),
        region=HalfImageRegion("right"),
    )

    result = run_once(benchmark, TemporalAttack(bench_detr, config).attack, sequence)
    best = result.best_by("degradation")

    per_frame = [
        ButterflyObjectives(detector=bench_detr, image=frame).degradation(
            best.mask.values
        )
        for frame in sequence
    ]

    print("\nTemporal attack (reproduced):")
    print("  per-frame obj_degrad of the shared mask:", [f"{v:.3f}" for v in per_frame])
    print(f"  mean over frames: {np.mean(per_frame):.3f}")

    # The shared mask degrades the sequence on average (the optimised
    # objective) and affects more than a single frame.
    assert best.degradation < 1.0
    assert sum(1 for value in per_frame if value < 1.0) >= 2
