"""Section V-B (text) — the attack is "equally applicable on ensembles".

Table I's protocol includes 16-model ensembles attacked with the aggregated
objectives of Equations 1-3.  This benchmark attacks a reduced transformer
ensemble (3 members) with a single shared mask and checks that the mean
degradation over members drops below 1 (every member is affected by the
same perturbation), which is the paper's qualitative claim.
"""

import numpy as np

from benchmarks.conftest import bench_training_config, run_once
from repro.core.config import AttackConfig
from repro.core.ensemble import EnsembleAttack, EnsembleObjectives
from repro.core.regions import HalfImageRegion
from repro.detectors.ensemble import DetectorEnsemble
from repro.detectors.zoo import build_model_zoo
from repro.nsga.algorithm import NSGAConfig


def test_ensemble_attack(benchmark, bench_dataset):
    members = build_model_zoo("detr", seeds=(1, 2, 3), training=bench_training_config())
    ensemble = DetectorEnsemble(members)
    image = bench_dataset[0].image
    config = AttackConfig(
        nsga=NSGAConfig(num_iterations=8, population_size=12, seed=0),
        region=HalfImageRegion("right"),
    )

    result = run_once(benchmark, EnsembleAttack(ensemble, config).attack, image)
    best = result.best_by("degradation")

    # Recompute the per-member degradation of the winning shared mask.
    objectives = EnsembleObjectives(ensemble=ensemble, image=image)
    per_member = [
        member.degradation(best.mask.values) for member in objectives.members
    ]

    print("\nEnsemble attack (reproduced, 3-member transformer ensemble):")
    print(f"  best ensemble obj_degrad (mean over members): {best.degradation:.3f}")
    print("  per-member obj_degrad:", [f"{value:.3f}" for value in per_member])

    # The single shared mask degrades the ensemble objective...
    assert best.degradation < 1.0
    # ...and the reported ensemble value is the average of the members.
    assert best.degradation == float(np.mean(per_member)) or abs(
        best.degradation - float(np.mean(per_member))
    ) < 1e-6
    # At least one member is individually affected.
    assert min(per_member) < 1.0
