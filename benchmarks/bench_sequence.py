"""A/B benchmark of temporal frame-to-frame activation reuse.

Times the streaming temporal path (frame t's clean bundle derived from
frame t-1's cached bundle by splicing only the inter-frame dirty region)
against dense per-frame clean builds on a KITTI-style moving-object
sequence at default motion, verifies the two paths stay bit-identical
while timing, writes everything to ``BENCH_pr10.json`` and **fails**
(exit 1) when the gates are not met:

* both architectures: every temporally derived bundle must be
  bit-identical to an independent dense build of that frame (hard),
* single_stage: the per-frame incremental derivation must reach
  >= 1.5x over the dense per-frame build,
* transformer: the temporal path must never regress (a measurement
  tolerance absorbs timer noise on shared CI runners),
* a warm sequence attack must record a frame-cache hit rate > 0,
* a shared-memory-backed sequence cache must leave zero segments
  after shutdown.

Usage::

    PYTHONPATH=src python benchmarks/bench_sequence.py \
        [--output BENCH_pr10.json] [--repeats 12] [--frames 8]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.core.temporal import SequenceAttack
from repro.data.sequences import generate_sequence
from repro.detectors.activation_cache import (
    SequenceActivationCache,
    SharedMemoryActivationStore,
)
from repro.detectors.training import TrainingConfig
from repro.detectors.zoo import build_detector
from repro.experiments.shm import list_segments
from repro.nsga.algorithm import NSGAConfig

#: The streaming workload runs at the sequence generator's native
#: KITTI-like geometry (96x320) rather than the still-image benchmark
#: scale: dense per-frame cost grows with frame area while the temporal
#: splice cost tracks the moving objects, so this is the regime the
#: temporal path exists for.
SEQ_LENGTH = 96
SEQ_WIDTH = 320

#: Gate: the single-stage per-frame derivation must reach this speedup.
SINGLE_STAGE_MIN_SPEEDUP = 1.5

#: Gate: the transformer must not regress beyond timer noise.  Its
#: attention stage recomputes globally, so the temporal win is smaller —
#: the floor only needs to absorb shared-runner jitter.
NO_REGRESSION_FLOOR = 0.90

#: Default motion: the generator's stock ``max_speed`` (4 px/frame).
DEFAULT_MAX_SPEED = 4.0


def _time(function, repeats):
    """Best-of-``repeats`` wall time of one call (interference only adds)."""
    function()  # warm-up (allocations, caches)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _seq_training_config():
    return TrainingConfig(
        scenes_per_class=4,
        image_length=SEQ_LENGTH,
        image_width=SEQ_WIDTH,
        background_clusters=32,
    )


def _bench_sequence(frames):
    return generate_sequence(
        num_frames=frames,
        seed=5,
        image_length=SEQ_LENGTH,
        image_width=SEQ_WIDTH,
        half="left",
        num_objects=(2, 3),
        max_speed=DEFAULT_MAX_SPEED,
    )


def _assert_bundle_identical(bundle, dense, label):
    """Hard parity gate: a temporally derived bundle vs a dense build."""
    if not np.array_equal(bundle.clean_image, dense.clean_image):
        raise AssertionError(f"{label}: clean image diverged")
    if set(bundle.tensors) != set(dense.tensors):
        raise AssertionError(f"{label}: tensor stages diverged")
    for name, tensor in dense.tensors.items():
        if not np.array_equal(bundle.tensors[name], tensor):
            raise AssertionError(f"{label}: stage {name!r} diverged")
    boxes = [(b.cl, b.x, b.y, b.l, b.w, b.score) for b in bundle.prediction]
    expected = [(b.cl, b.x, b.y, b.l, b.w, b.score) for b in dense.prediction]
    if boxes != expected:
        raise AssertionError(f"{label}: prediction diverged")


def run_frame_derivation_benchmarks(sequence, repeats):
    """Temporal derivation vs dense per-frame builds on both architectures."""
    bounds = sequence.dirty_bounds()
    frames = list(sequence)
    scenarios = {}
    for architecture in ("yolo", "detr"):
        detector = build_detector(
            architecture, seed=1, training=_seq_training_config()
        )
        label = detector.architecture

        # Hard parity gate first: walk the whole sequence through the
        # rolling cache and compare every bundle to a dense build.
        cache = SequenceActivationCache(detector, max_frames=2)
        for index, (frame, bound) in enumerate(zip(frames, bounds)):
            bundle = cache.advance(frame, bound)
            _assert_bundle_identical(
                bundle, detector.clean_activations(frame), f"{label} frame {index}"
            )
        stats = cache.snapshot()
        if stats.frame_hits != len(frames) - 1:
            raise AssertionError(
                f"{label}: expected {len(frames) - 1} temporal derivations, "
                f"saw {stats.frame_hits}"
            )

        # Steady-state timing: derive frames 1..n-1 from their already
        # cached predecessors vs building each densely from scratch.
        previous = [detector.clean_activations(frame) for frame in frames[:-1]]

        def derive_chain():
            for index in range(1, len(frames)):
                detector.clean_activations_delta(
                    frames[index], previous[index - 1], bounds[index]
                )

        def dense_chain():
            for index in range(1, len(frames)):
                detector.clean_activations(frames[index])

        scenarios[label] = {
            "per_frame_ms": {
                "dense": 1e3 * _time(dense_chain, repeats) / (len(frames) - 1),
                "temporal": 1e3 * _time(derive_chain, repeats) / (len(frames) - 1),
            },
            "frame_hit_rate": stats.frame_hit_rate,
        }
    return scenarios


def run_warm_sequence_attack(sequence):
    """A sequence attack must actually ride the temporal path."""
    detector = build_detector("yolo", seed=1, training=_seq_training_config())
    config = AttackConfig(
        nsga=NSGAConfig(num_iterations=6, population_size=12, seed=0),
        region=HalfImageRegion("right"),
    )
    start = time.perf_counter()
    result = SequenceAttack(detector, config).attack(sequence)
    seconds = time.perf_counter() - start
    frame_stats = result.incremental["frame_cache"]
    survival = min(
        solution.extras["track_survival"] for solution in result.pareto_front
    )
    return {
        "attack_seconds": seconds,
        "frame_hits": frame_stats.get("frame_hits", 0),
        "frame_misses": frame_stats.get("frame_misses", 0),
        "frame_hit_rate": frame_stats.get("frame_hit_rate", 0.0),
        "best_track_survival": survival,
        "front_size": len(result.pareto_front),
    }


def run_shm_audit(sequence):
    """Frame bundles in shared memory must die with their store."""
    detector = build_detector("yolo", seed=1, training=_seq_training_config())
    store = SharedMemoryActivationStore(max_entries=4, segment_prefix="benchseq")
    prefix = store.segment_prefix
    try:
        cache = SequenceActivationCache(detector, max_frames=2, store=store)
        for frame, bound in zip(sequence.images, sequence.dirty_bounds()):
            cache.advance(frame, bound)
        segments_while_live = len(list_segments(prefix))
    finally:
        store.shutdown()
    return {
        "segments_while_live": segments_while_live,
        "segments_after_shutdown": len(list_segments(prefix)),
    }


def check_gates(report):
    failures = []
    for label, entry in report["scenarios"].items():
        speedup = entry["per_frame_ms"]["speedup"]
        if label == "single_stage":
            if speedup < SINGLE_STAGE_MIN_SPEEDUP:
                failures.append(
                    f"{label}.per_frame_ms: {speedup:.2f}x < required "
                    f"{SINGLE_STAGE_MIN_SPEEDUP}x"
                )
        elif speedup < NO_REGRESSION_FLOOR:
            failures.append(
                f"{label}.per_frame_ms: temporal path regressed "
                f"({speedup:.2f}x < {NO_REGRESSION_FLOOR}x floor)"
            )
        if entry["frame_hit_rate"] <= 0.0:
            failures.append(f"{label}: frame cache recorded no temporal hits")
    if report["warm_attack"]["frame_hit_rate"] <= 0.0:
        failures.append("warm sequence attack recorded no frame-cache hits")
    if report["shm_audit"]["segments_after_shutdown"] != 0:
        failures.append(
            f"{report['shm_audit']['segments_after_shutdown']} shm segments "
            "leaked after shutdown"
        )
    if report["shm_audit"]["segments_while_live"] == 0:
        failures.append("shm audit saw no live segments (nothing was shared)")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_pr10.json")
    parser.add_argument("--repeats", type=int, default=12)
    parser.add_argument("--frames", type=int, default=8)
    args = parser.parse_args(argv)

    sequence = _bench_sequence(args.frames)
    scenarios = run_frame_derivation_benchmarks(sequence, args.repeats)
    for entry in scenarios.values():
        metric = entry["per_frame_ms"]
        metric["speedup"] = metric["dense"] / metric["temporal"]

    report = {
        "benchmark": "temporal frame-to-frame activation reuse vs dense per-frame builds",
        "image_shape": [SEQ_LENGTH, SEQ_WIDTH, 3],
        "num_frames": args.frames,
        "max_speed": DEFAULT_MAX_SPEED,
        "repeats": args.repeats,
        "single_stage_min_speedup": SINGLE_STAGE_MIN_SPEEDUP,
        "no_regression_floor": NO_REGRESSION_FLOOR,
        "scenarios": scenarios,
        "warm_attack": run_warm_sequence_attack(sequence),
        "shm_audit": run_shm_audit(sequence),
    }

    failures = check_gates(report)
    report["gates_passed"] = not failures
    if failures:
        report["gate_failures"] = failures

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if failures:
        print("\n".join(["GATE FAILURES:"] + failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
