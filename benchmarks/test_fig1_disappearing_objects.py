"""Figure 1 — disappearing objects on the unperturbed half of the image.

The paper's Figure 1 shows that perturbing only one half of a KITTI image
makes objects on the *other*, untouched half disappear (missed bicycles).
This benchmark reruns that scenario against the transformer detector:
objects live in the left half, the attack may only touch the right half,
and the best front solution must change the left-side prediction.
"""

from benchmarks.conftest import BENCH_LENGTH, BENCH_WIDTH, run_once
from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.experiments.figures import figure1_disappearing_objects
from repro.nsga.algorithm import NSGAConfig


def test_fig1_disappearing_objects(benchmark, bench_detr):
    config = AttackConfig(
        nsga=NSGAConfig(num_iterations=12, population_size=16, seed=0),
        region=HalfImageRegion("right"),
    )
    outcome = run_once(
        benchmark,
        figure1_disappearing_objects,
        bench_detr,
        attack_config=config,
        dataset_seed=21,
        image_length=BENCH_LENGTH,
        image_width=BENCH_WIDTH,
    )

    print("\nFigure 1 (reproduced):")
    print(outcome.summary())
    print(outcome.rendering)

    measurements = outcome.measurements
    # The clean prediction contains objects (all on the left half).
    assert measurements["clean_objects"] >= 1
    # The attack changed the prediction even though it only touched the
    # right half (the butterfly effect).
    assert measurements["best_degradation"] < 1.0
    # The paper's Figure 1 effect is object disappearance (TP -> FN) or an
    # equivalent left-side change: either a disappearance was observed on
    # the front or the number of predicted objects changed.
    assert (
        measurements["tp_to_fn_on_front"] >= 1
        or measurements["perturbed_objects"] != measurements["clean_objects"]
        or measurements["best_degradation"] < 0.95
    )
