"""Ablation — the Algorithm 2 buffer ``ϵ`` around bounding boxes.

Algorithm 2 grows every bounding box by a buffer ``ϵ`` and penalises
perturbations inside the grown box.  This ablation sweeps ``ϵ`` and reports
how the front statistics change: with a larger buffer the "unrelatedness"
constraint becomes stricter, so the best reachable distance should not
decrease while the attack strength may drop slightly.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.analysis.sweep import epsilon_sweep
from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.nsga.algorithm import NSGAConfig


def test_ablation_epsilon_buffer(benchmark, bench_detr, bench_dataset):
    base = AttackConfig(
        nsga=NSGAConfig(num_iterations=6, population_size=10, seed=0),
        region=HalfImageRegion("right"),
    )
    rows = run_once(
        benchmark,
        epsilon_sweep,
        bench_detr,
        bench_dataset[0].image,
        epsilons=(0.0, 8.0),
        base_config=base,
    )

    print("\nAlgorithm 2 buffer (epsilon) ablation:")
    print(format_table(rows))

    assert len(rows) == 2
    for row in rows:
        assert 0.0 <= row["best_degradation"] <= 1.0 + 1e-9
        assert row["front_size"] >= 1
