"""Figure 4 — DETR: a small right-half perturbation degrades the left side.

The paper's Figure 4 shows, on the same image as Figure 3, that a small
perturbation on the right already changes the transformer's prediction of
the car on the left (the bounding box shrinks).  This benchmark runs the
same-image, same-budget contrast between the two architectures and checks
the paper's qualitative ordering.
"""

from benchmarks.conftest import BENCH_LENGTH, BENCH_WIDTH, run_once
from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.detection.errors import ErrorType
from repro.experiments.figures import figure3_figure4_contrast
from repro.nsga.algorithm import NSGAConfig


def test_fig4_transformer_more_susceptible_than_single_stage(
    benchmark, bench_yolo, bench_detr
):
    config = AttackConfig(
        nsga=NSGAConfig(num_iterations=10, population_size=16, seed=0),
        region=HalfImageRegion("right"),
    )
    outcome = run_once(
        benchmark,
        figure3_figure4_contrast,
        bench_yolo,
        bench_detr,
        attack_config=config,
        dataset_seed=10,
        image_length=BENCH_LENGTH,
        image_width=BENCH_WIDTH,
    )

    print("\nFigures 3 & 4 (reproduced) — same image, same budget:")
    print(outcome.summary())

    measurements = outcome.measurements
    # Paper shape: the transformer reaches a stronger degradation than the
    # single-stage detector on the same image.
    assert (
        measurements["transformer_best_degradation"]
        <= measurements["single_stage_best_degradation"] + 1e-9
    )

    # The transformer's degradation is of the "boxes changed" kind the
    # paper's Figure 4 shows (shrinking bounding box), i.e. the front
    # contains box-level transitions for the transformer.
    transformer_result = outcome.results[bench_detr.name]
    transitions = [
        transition.error_type
        for solution in transformer_result.pareto_front
        for transition in solution.transitions
    ]
    assert any(
        error
        in (ErrorType.BOX_CHANGED, ErrorType.TP_TO_FN, ErrorType.CLASS_CHANGED, ErrorType.TN_TO_FP)
        for error in transitions
    )
