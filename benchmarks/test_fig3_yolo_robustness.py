"""Figure 3 — YOLO: strong right-half noise, little left-side degradation.

The paper's Figure 3 shows that for the single-stage detector, even a
human-recognisable perturbation on the right does not change the prediction
on the left.  This benchmark verifies both halves of that claim on the
simulated single-stage detector:

* random right-half noise of *large* intensity leaves the left-side
  prediction essentially unchanged, and
* even a dedicated NSGA-II attack only achieves a mild degradation compared
  with what the same budget achieves against the transformer (Figure 4's
  benchmark).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.attack import ButterflyAttack
from repro.core.objectives import ButterflyObjectives
from repro.core.regions import HalfImageRegion
from repro.data.noise import gaussian_mask


def test_fig3_single_stage_robust_to_strong_right_noise(
    benchmark, bench_yolo, bench_dataset
):
    image = bench_dataset[0].image
    region = HalfImageRegion("right")
    objectives = ButterflyObjectives(detector=bench_yolo, image=image)

    def strong_noise_trials():
        rng = np.random.default_rng(0)
        degradations = []
        for _ in range(5):
            mask = region.project(gaussian_mask(image.shape, 80.0, rng))
            degradations.append(objectives.degradation(mask))
        return degradations

    degradations = run_once(benchmark, strong_noise_trials)

    print("\nFigure 3 (reproduced) — single-stage obj_degrad under strong right-half noise:")
    print([f"{value:.3f}" for value in degradations])

    # Paper shape: the prediction on the left stays essentially intact
    # (high obj_degrad) despite human-recognisable noise on the right.
    assert float(np.mean(degradations)) > 0.85


def test_fig3_single_stage_attack_best_degradation(
    benchmark, bench_yolo, bench_dataset, bench_attack_config
):
    attack = ButterflyAttack(bench_yolo, bench_attack_config)
    result = run_once(benchmark, attack.attack, bench_dataset[0].image)

    best = result.best_by("degradation")
    print(
        "\nFigure 3 (reproduced) — single-stage best front solution: "
        f"obj_degrad={best.degradation:.3f}, obj_intensity={best.intensity:.4f}"
    )
    # The single-stage detector largely resists the attack at this budget.
    assert best.degradation > 0.6
