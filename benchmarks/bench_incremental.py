"""A/B benchmark of the incremental (dirty-region) inference path.

Times the PR 1 dense batched path against the PR 2 incremental path on the
benchmark scenes — per-predict (one sparse mask) and per-population (16
sparse masks, the patch and single-pixel regimes) for both detector
architectures — verifies the two paths stay bit-identical while timing,
writes everything to ``BENCH_pr2.json`` and **fails** (exit 1) when the
incremental path does not meet its gates:

* every scenario: incremental must not be slower than the dense baseline,
* single-stage population scenarios: >= 2x (the tentpole target; the
  single-stage detector is fully local, so the sparse-mask regime skips
  almost the whole forward pass).

The transformer's global attention stage must be recomputed exactly for
every mask (bit-parity forbids approximating the softmax mixing), which
caps its speedup well below the single-stage detector's — the JSON records
both so the gap stays visible.

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental.py \
        [--output BENCH_pr2.json] [--repeats 12] [--suite none|quickstart|full]

``--suite`` additionally runs ``pytest benchmarks --benchmark-disable``
once with ``REPRO_ACTIVATION_CACHE=0`` and once with it on, recording the
wall-clock of each run (CI uses ``quickstart``; the committed JSON was
produced with ``full``).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.conftest import BENCH_LENGTH, BENCH_WIDTH, bench_training_config
from benchmarks.test_incremental_population import (
    sparse_patch_population,
    sparse_pixel_population,
)
from repro.core.objectives import ButterflyObjectives
from repro.data.dataset import generate_dataset
from repro.detectors.zoo import build_detector
from repro.nn.incremental import mask_nonzero_bbox

#: Gate: the single-stage population scenarios must reach this speedup.
SINGLE_STAGE_MIN_SPEEDUP = 2.0


def _time(function, repeats):
    """Best-of-``repeats`` wall time of one call.

    The minimum is the standard robust estimator on shared machines (CI
    runners): interference only ever adds time, so the fastest observed
    run is the closest to the code's true cost.
    """
    function()  # warm-up (allocations, caches)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _sparse_single_mask(image_shape, seed=3):
    rng = np.random.default_rng(seed)
    mask = np.zeros(image_shape)
    r = int(rng.integers(0, image_shape[0] - 4))
    c = int(rng.integers(0, image_shape[1] - 6))
    mask[r : r + 4, c : c + 6] = rng.integers(-255, 256, size=(4, 6, 3))
    return mask


def _assert_identical(expected, actual, label):
    if not np.array_equal(expected, actual):
        raise AssertionError(f"{label}: incremental path diverged from dense path")


def run_micro_benchmarks(repeats):
    """Per-predict and per-population timings for both architectures."""
    image = generate_dataset(
        num_images=1,
        seed=5,
        image_length=BENCH_LENGTH,
        image_width=BENCH_WIDTH,
        half="left",
        num_objects=(2, 3),
    )[0].image

    scenarios = {}
    for architecture in ("yolo", "detr"):
        detector = build_detector(
            architecture, seed=1, training=bench_training_config()
        )
        dense = ButterflyObjectives(
            detector=detector, image=image, use_activation_cache=False
        )
        incremental = ButterflyObjectives(
            detector=detector, image=image, use_activation_cache=True
        )
        label = detector.architecture
        entry = {}

        mask = _sparse_single_mask(image.shape)
        bound = mask_nonzero_bbox(mask)
        _assert_identical(dense(mask), incremental(mask), f"{label} predict")
        entry["per_predict_ms"] = {
            "dense": 1e3 * _time(lambda: dense(mask), repeats * 4),
            "incremental": 1e3
            * _time(lambda: incremental(mask, dirty_bound=bound), repeats * 4),
        }

        for name, masks in (
            ("population_sparse_patch", sparse_patch_population(image.shape)),
            ("population_sparse_pixel", sparse_pixel_population(image.shape)),
        ):
            bounds = [mask_nonzero_bbox(m) for m in masks]
            _assert_identical(
                dense.evaluate_population(masks),
                incremental.evaluate_population(masks, dirty_bounds=bounds),
                f"{label} {name}",
            )
            entry[f"{name}_ms"] = {
                "dense": 1e3 * _time(lambda: dense.evaluate_population(masks), repeats),
                "incremental": 1e3
                * _time(
                    lambda: incremental.evaluate_population(
                        masks, dirty_bounds=bounds
                    ),
                    repeats,
                ),
            }

        for metric in entry.values():
            metric["speedup"] = metric["dense"] / metric["incremental"]
        scenarios[label] = entry
    return scenarios


def run_suite(selector):
    """Run ``pytest benchmarks`` with the activation cache off, then on."""
    timings = {}
    for mode, env_value in (("dense", "0"), ("incremental", "1")):
        env = dict(os.environ, REPRO_ACTIVATION_CACHE=env_value)
        command = [
            sys.executable, "-m", "pytest", "benchmarks", "--benchmark-disable", "-q",
        ]
        if selector == "quickstart":
            command += ["-k", "quickstart"]
        start = time.perf_counter()
        completed = subprocess.run(
            command, env=env, cwd=Path(__file__).resolve().parent.parent
        )
        if completed.returncode != 0:
            raise SystemExit(f"benchmark suite failed in {mode} mode")
        timings[f"{mode}_seconds"] = time.perf_counter() - start
    timings["speedup"] = timings["dense_seconds"] / timings["incremental_seconds"]
    return {"selector": selector, **timings}


def check_gates(scenarios):
    failures = []
    for label, entry in scenarios.items():
        for metric_name, metric in entry.items():
            if metric["speedup"] < 1.0:
                failures.append(
                    f"{label}.{metric_name}: incremental is slower "
                    f"({metric['speedup']:.2f}x)"
                )
        for metric_name in ("population_sparse_patch_ms", "population_sparse_pixel_ms"):
            if (
                label == "single_stage"
                and entry[metric_name]["speedup"] < SINGLE_STAGE_MIN_SPEEDUP
            ):
                failures.append(
                    f"{label}.{metric_name}: {entry[metric_name]['speedup']:.2f}x "
                    f"< required {SINGLE_STAGE_MIN_SPEEDUP}x"
                )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_pr2.json")
    parser.add_argument("--repeats", type=int, default=12)
    parser.add_argument(
        "--suite", choices=["none", "quickstart", "full"], default="none"
    )
    args = parser.parse_args(argv)

    scenarios = run_micro_benchmarks(args.repeats)
    report = {
        "benchmark": "incremental (dirty-region) inference vs PR 1 batched path",
        "image_shape": [BENCH_LENGTH, BENCH_WIDTH, 3],
        "population_size": 16,
        "repeats": args.repeats,
        "single_stage_min_speedup": SINGLE_STAGE_MIN_SPEEDUP,
        "scenarios": scenarios,
    }
    if args.suite != "none":
        report["pytest_benchmarks"] = run_suite(args.suite)

    failures = check_gates(scenarios)
    report["gates_passed"] = not failures
    if failures:
        report["gate_failures"] = failures

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if failures:
        print("\n".join(["GATE FAILURES:"] + failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
