"""A/B benchmark of the bounded-error two-phase search (fast search).

Times the exact incremental evaluation path against the approximate
fidelity presets on the NSGA mutation regime (sparse 3x5 patch masks — the
population shape the search phase actually evaluates), verifies the
two-phase exactness guarantee, quantifies the front-quality cost of the
approximate search phase, writes everything to ``BENCH_pr9.json`` and
**fails** (exit 1) when the gates are not met:

* exact re-score bit parity (hard): every solution of a fast-search attack
  must carry objective values bit-equal to a from-scratch exact evaluation
  of the same mask, on both architectures,
* transformer search-phase speedup: the windowed and turbo fidelities must
  reach >= 2x over the exact incremental path on the sparse-patch regime,
* no-regression: fidelities that cannot profit on an architecture (the
  single-stage detector has no global attention to approximate, so the
  fidelity machinery is pure overhead there) must stay within a bounded
  overhead floor,
* front quality: the exactly-re-scored front found by the approximate
  search (with periodic exact re-anchoring, ``rescore_every``) must
  retain >= 95% of the exact search's hypervolume under a shared
  reference, averaged over seeds, per architecture.

Usage::

    PYTHONPATH=src python benchmarks/bench_fast_search.py \
        [--output BENCH_pr9.json] [--repeats 8]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.conftest import BENCH_LENGTH, BENCH_WIDTH, bench_training_config
from repro.analysis.front_quality import compare_front_quality
from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.objectives import ButterflyObjectives
from repro.core.regions import HalfImageRegion
from repro.data.dataset import generate_dataset
from repro.detectors.zoo import build_detector
from repro.nn.incremental import mask_nonzero_bbox
from repro.nsga.algorithm import NSGAConfig

#: Gate: transformer search-phase speedup of the attention-approximating
#: fidelities on the sparse-patch regime.
TRANSFORMER_MIN_SPEEDUP = 2.0

#: Gate: fidelities that cannot profit must keep their overhead bounded
#: (measured ~0.88-0.90x on the single-stage detector, which has no
#: attention to approximate — the cast/splice machinery is pure cost).
NO_REGRESSION_FLOOR = 0.80

#: Gate: exactly-re-scored fast-search front vs exact-search front
#: (mean over ATTACK_SEEDS).
MIN_HYPERVOLUME_RATIO = 0.95

#: Sparse-patch masks per timed evaluate_population call (the steady-state
#: evaluator batch of a paper-budget generation).
POPULATION = 48

#: Fidelities timed in the search-phase benchmark.
FIDELITIES = ("windowed", "float32", "turbo")

#: Attack budget of the front-quality and bit-parity runs.  The fast
#: searches re-anchor with a periodic exact re-score every third
#: generation — that cadence is what keeps approximate-search drift
#: bounded at this budget (without it the single-seed hypervolume ratio
#: wanders as low as ~0.86).
ATTACK_ITERATIONS = 10
ATTACK_POPULATION = 16
ATTACK_RESCORE_EVERY = 3
ATTACK_SEEDS = (0, 1)


def _time(function, repeats):
    """Best-of-``repeats`` wall time of one call (interference only adds)."""
    function()  # warm-up (allocations, fidelity-state caches)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_image():
    return generate_dataset(
        num_images=1,
        seed=5,
        image_length=BENCH_LENGTH,
        image_width=BENCH_WIDTH,
        half="left",
        num_objects=(2, 3),
    )[0].image


def _patch_population(image_shape, seed=3, patch=(3, 5)):
    """Sparse patch masks — the mutation-window regime of the search phase."""
    rng = np.random.default_rng(seed)
    length, width = image_shape[0], image_shape[1]
    masks = np.zeros((POPULATION,) + image_shape)
    for index in range(POPULATION):
        r = int(rng.integers(0, length - patch[0]))
        c = int(rng.integers(width // 2, width - patch[1]))
        masks[index, r : r + patch[0], c : c + patch[1]] = rng.integers(
            -255, 256, size=patch + (3,)
        )
    return masks


def run_search_phase_benchmarks(image, repeats):
    """Exact vs approximate evaluate_population on both architectures."""
    scenarios = {}
    for architecture in ("yolo", "detr"):
        detector = build_detector(
            architecture, seed=1, training=bench_training_config()
        )
        label = detector.architecture
        objectives = ButterflyObjectives(
            detector=detector, image=image, use_delta_reuse=False
        )
        masks = _patch_population(image.shape)
        bounds = [mask_nonzero_bbox(mask) for mask in masks]

        def evaluate(fidelity):
            objectives.set_fidelity(fidelity)
            try:
                return objectives.evaluate_population(masks, dirty_bounds=bounds)
            finally:
                objectives.set_fidelity(None)

        exact_ms = 1e3 * _time(lambda: evaluate(None), repeats)
        entry = {"population_sparse_ms": {"exact": exact_ms}}
        for fidelity in FIDELITIES:
            entry["population_sparse_ms"][fidelity] = 1e3 * _time(
                lambda fidelity=fidelity: evaluate(fidelity), repeats
            )
        scenarios[label] = entry
    return scenarios


def _attack_config(fast, seed=0):
    return AttackConfig(
        nsga=NSGAConfig(
            num_iterations=ATTACK_ITERATIONS,
            population_size=ATTACK_POPULATION,
            seed=seed,
        ),
        region=HalfImageRegion("right"),
        sparse_init_fraction=1.0,
        fast_search=fast,
        search_fidelity="windowed",
        rescore_every=ATTACK_RESCORE_EVERY if fast else 0,
    )


def _front_matrix(result):
    """Minimised NSGA objective vectors of the rank-1 front."""
    return np.array(
        [
            [solution.intensity, solution.degradation, -solution.distance]
            for solution in result.pareto_front
        ]
    )


def run_attack_comparisons(image):
    """Exact vs fast attacks: bit parity of the re-score, front quality."""
    comparisons = {}
    for architecture in ("yolo", "detr"):
        detector = build_detector(
            architecture, seed=1, training=bench_training_config()
        )
        label = detector.architecture
        reference = ButterflyObjectives(
            detector=detector, image=image, use_activation_cache=False
        )
        mismatches = 0
        per_seed = {}
        for seed in ATTACK_SEEDS:
            exact_result = ButterflyAttack(
                detector, _attack_config(False, seed)
            ).attack(image)
            fast_start = time.perf_counter()
            fast_result = ButterflyAttack(
                detector, _attack_config(True, seed)
            ).attack(image)
            fast_seconds = time.perf_counter() - fast_start

            # Hard gate: every fast-search solution re-scores bit-identically.
            for solution in fast_result.solutions:
                exact = reference(solution.mask.values)
                if (
                    solution.intensity != float(exact[0])
                    or solution.degradation != float(exact[1])
                    or solution.distance != float(-exact[2])
                ):
                    mismatches += 1

            quality = compare_front_quality(
                _front_matrix(fast_result), _front_matrix(exact_result)
            )
            quality["fast_attack_seconds"] = fast_seconds
            per_seed[str(seed)] = quality

        ratios = [entry["hypervolume_ratio"] for entry in per_seed.values()]
        comparisons[label] = {
            "rescore_bit_parity": mismatches == 0,
            "rescore_mismatches": mismatches,
            "rescore_every": ATTACK_RESCORE_EVERY,
            "mean_hypervolume_ratio": float(np.mean(ratios)),
            "front_quality_by_seed": per_seed,
        }
    return comparisons


def check_gates(report):
    failures = []
    for label, entry in report["scenarios"].items():
        metric = entry["population_sparse_ms"]
        for fidelity in FIDELITIES:
            speedup = metric["speedup"][fidelity]
            gated = label == "transformer" and fidelity in ("windowed", "turbo")
            if gated and speedup < TRANSFORMER_MIN_SPEEDUP:
                failures.append(
                    f"{label}.{fidelity}: {speedup:.2f}x < required "
                    f"{TRANSFORMER_MIN_SPEEDUP}x"
                )
            elif not gated and speedup < NO_REGRESSION_FLOOR:
                failures.append(
                    f"{label}.{fidelity}: approximate fidelity regressed "
                    f"({speedup:.2f}x < {NO_REGRESSION_FLOOR}x floor)"
                )
    for label, entry in report["attacks"].items():
        if not entry["rescore_bit_parity"]:
            failures.append(
                f"{label}: {entry['rescore_mismatches']} fast-search solutions "
                "were not bit-identical to exact re-evaluation"
            )
        ratio = entry["mean_hypervolume_ratio"]
        if ratio < MIN_HYPERVOLUME_RATIO:
            failures.append(
                f"{label}: mean hypervolume ratio {ratio:.3f} < required "
                f"{MIN_HYPERVOLUME_RATIO}"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_pr9.json")
    parser.add_argument("--repeats", type=int, default=8)
    args = parser.parse_args(argv)

    image = _bench_image()
    scenarios = run_search_phase_benchmarks(image, args.repeats)
    for entry in scenarios.values():
        metric = entry["population_sparse_ms"]
        metric["speedup"] = {
            fidelity: metric["exact"] / metric[fidelity] for fidelity in FIDELITIES
        }

    report = {
        "benchmark": "two-phase bounded-error search vs exact incremental path",
        "image_shape": [BENCH_LENGTH, BENCH_WIDTH, 3],
        "population_size": POPULATION,
        "repeats": args.repeats,
        "transformer_min_speedup": TRANSFORMER_MIN_SPEEDUP,
        "no_regression_floor": NO_REGRESSION_FLOOR,
        "min_hypervolume_ratio": MIN_HYPERVOLUME_RATIO,
        "scenarios": scenarios,
        "attacks": run_attack_comparisons(image),
    }

    failures = check_gates(report)
    report["gates_passed"] = not failures
    if failures:
        report["gate_failures"] = failures

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if failures:
        print("\n".join(["GATE FAILURES:"] + failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
