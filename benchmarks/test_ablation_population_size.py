"""Ablation — NSGA-II population size (Table II uses 101).

The paper fixes the population at 101 individuals.  This ablation runs the
same attack with a small and a larger population under the same number of
generations and compares the hypervolume of the resulting
(intensity, degradation) fronts, demonstrating how the search budget of
Table II affects front quality.
"""

from benchmarks.conftest import run_once
from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.nsga.algorithm import NSGAConfig
from repro.nsga.front import hypervolume_2d


def _front_hypervolume(result):
    points = result.objectives_array(front_only=True)[:, :2]
    return hypervolume_2d(points, reference=(1.0, 1.0))


def test_ablation_population_size(benchmark, bench_detr, bench_dataset):
    image = bench_dataset[1].image

    def run_both_sizes():
        small = ButterflyAttack(
            bench_detr,
            AttackConfig(
                nsga=NSGAConfig(num_iterations=6, population_size=6, seed=0),
                region=HalfImageRegion("right"),
            ),
        ).attack(image)
        large = ButterflyAttack(
            bench_detr,
            AttackConfig(
                nsga=NSGAConfig(num_iterations=6, population_size=20, seed=0),
                region=HalfImageRegion("right"),
            ),
        ).attack(image)
        return small, large

    small, large = run_once(benchmark, run_both_sizes)

    small_hv = _front_hypervolume(small)
    large_hv = _front_hypervolume(large)
    print("\nPopulation-size ablation (front hypervolume, higher = better front):")
    print(f"  population  6 : {small_hv:.4f}")
    print(f"  population 20 : {large_hv:.4f}")

    # Both runs must produce valid fronts; the larger population evaluates
    # more candidates, so its front hypervolume should not be worse by a
    # large margin (it is usually better).
    assert small.pareto_front and large.pareto_front
    assert large_hv >= small_hv - 0.05
    assert large.num_evaluations > small.num_evaluations
