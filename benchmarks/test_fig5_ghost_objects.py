"""Figure 5 — ghost objects: true negative becomes false positive.

The paper's Figure 5 shows a non-existing person appearing on the left of
the image while only the right half was perturbed.  This benchmark searches
for such a TN→FP transition with the transformer detector and reports where
the ghost appeared.  Ghost creation is the rarest of the five error types,
so the benchmark primarily asserts that the attack degrades the prediction
and reports whether a ghost was found at this reduced budget.
"""

from benchmarks.conftest import BENCH_LENGTH, BENCH_WIDTH, run_once
from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.experiments.figures import figure5_ghost_objects
from repro.nsga.algorithm import NSGAConfig


def test_fig5_ghost_objects(benchmark, bench_detr):
    config = AttackConfig(
        nsga=NSGAConfig(num_iterations=12, population_size=16, seed=2),
        region=HalfImageRegion("right"),
    )
    outcome = run_once(
        benchmark,
        figure5_ghost_objects,
        bench_detr,
        attack_config=config,
        dataset_seed=33,
        image_length=BENCH_LENGTH,
        image_width=BENCH_WIDTH,
        max_attempts=2,
    )

    print("\nFigure 5 (reproduced):")
    print(outcome.summary())

    measurements = outcome.measurements
    # The attack must at least degrade the prediction; when a ghost object
    # is found the benchmark reports it (and whether it appeared on the
    # unperturbed half, as in the paper's example).
    assert measurements["best_degradation"] < 1.0
    assert measurements["ghost_objects"] >= 0.0
    if measurements["ghost_objects"] > 0:
        print(
            "Ghost objects found:",
            int(measurements["ghost_objects"]),
            "of which on the unperturbed half:",
            int(measurements["ghost_on_unperturbed_half"]),
        )
