"""Section I (claim) — noise-augmented training is an insufficient defence.

The paper's introduction argues that the existence of butterfly-effect
perturbations "implies that training by randomly adding noise over the
complete image is insufficient for achieving robustness".  This benchmark
tests that claim directly on the simulated substrate: the transformer
detector's prototype head is retrained on noise-augmented scenes (the
classic robustness recipe) and both the defended and the undefended model
are attacked with the same budget.

Expected shape: the defended detector keeps its clean accuracy but the
attack still finds perturbations that degrade its prediction (obj_degrad
below 1), i.e. the defence does not close the butterfly-effect channel.
"""

from benchmarks.conftest import BENCH_LENGTH, BENCH_WIDTH, bench_training_config, run_once
from repro.analysis.reporting import format_table
from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.defenses.augmentation import NoiseAugmentationConfig, noise_augmented_detector
from repro.defenses.evaluation import evaluate_defense
from repro.detectors.zoo import build_detector
from repro.nsga.algorithm import NSGAConfig


def test_defense_noise_augmentation(benchmark, bench_detr, bench_dataset):
    training = bench_training_config()
    attack_config = AttackConfig(
        nsga=NSGAConfig(num_iterations=8, population_size=12, seed=0),
        region=HalfImageRegion("right"),
    )
    sample = bench_dataset[0]

    def run_defense_evaluation():
        defended = noise_augmented_detector(
            build_detector("detr", seed=1, training=training),
            training=training,
            augmentation=NoiseAugmentationConfig(augmented_copies=2),
        )
        return evaluate_defense(
            undefended=bench_detr,
            defended=defended,
            image=sample.image,
            ground_truth=sample.ground_truth,
            attack_config=attack_config,
        )

    evaluation = run_once(benchmark, run_defense_evaluation)

    print("\nNoise-augmentation defence evaluation (transformer detector):")
    print(format_table(evaluation.summary_rows()))

    # The defence must not destroy clean accuracy entirely (noise-augmented
    # prototypes do cost some recall on this substrate, which the summary
    # table reports honestly)...
    assert evaluation.clean_recall_defended >= 0.4
    # ...and the butterfly attack still degrades the defended detector,
    # which is the paper's insufficiency claim.
    assert evaluation.attack_still_succeeds
