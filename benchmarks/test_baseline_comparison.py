"""Related-work comparison — butterfly attack vs baseline attacks.

The paper positions its multi-objective black-box attack against random
noise testing and single-objective genetic attacks (GenAttack).  This
benchmark runs all of them against the same detector/image under comparable
query budgets and reports the three paper objectives for each, reproducing
the argument of Sections I and II: random full-strength noise is an
inefficient attack, and single-objective attacks ignore perturbation size
and unrelatedness.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.baselines.finite_difference import FiniteDifferenceAttack, FiniteDifferenceConfig
from repro.baselines.genattack import GenAttackBaseline, GenAttackConfig
from repro.baselines.random_noise import RandomNoiseAttack
from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.objectives import ButterflyObjectives
from repro.core.regions import HalfImageRegion
from repro.nsga.algorithm import NSGAConfig


def test_baseline_comparison(benchmark, bench_detr, bench_dataset):
    image = bench_dataset[0].image
    region = HalfImageRegion("right")
    objectives = ButterflyObjectives(detector=bench_detr, image=image)

    def run_all_attacks():
        rows = []

        butterfly = ButterflyAttack(
            bench_detr,
            AttackConfig(
                nsga=NSGAConfig(num_iterations=8, population_size=12, seed=0),
                region=region,
            ),
        ).attack(image)
        best = butterfly.best_by("degradation")
        rows.append(
            {
                "attack": "butterfly (NSGA-II)",
                "obj_degrad": best.degradation,
                "obj_intensity": best.intensity,
                "obj_dist": best.distance,
            }
        )

        genattack = GenAttackBaseline(
            bench_detr,
            GenAttackConfig(population_size=12, num_iterations=8, linf_bound=24.0, seed=0),
            region=region,
        ).attack(image)
        rows.append(
            {
                "attack": "GenAttack-style",
                "obj_degrad": genattack.best_degradation,
                "obj_intensity": objectives.intensity(genattack.best_mask.values),
                "obj_dist": objectives.distance(genattack.best_mask.values),
            }
        )

        finite = FiniteDifferenceAttack(
            bench_detr, FiniteDifferenceConfig(block=16, num_steps=1), region=region
        ).attack(image)
        rows.append(
            {
                "attack": "finite difference",
                "obj_degrad": finite.best_degradation,
                "obj_intensity": objectives.intensity(finite.best_mask.values),
                "obj_dist": objectives.distance(finite.best_mask.values),
            }
        )

        noise = RandomNoiseAttack(bench_detr, region=region, seed=0).evaluate(
            image, sigmas=(32.0, 80.0), trials_per_sigma=3
        )
        for level in noise:
            rows.append(
                {
                    "attack": f"random gaussian sigma={level.sigma:.0f}",
                    "obj_degrad": level.mean_degradation,
                    "obj_intensity": level.mean_intensity / objectives.intensity_scale,
                    "obj_dist": float("nan"),
                }
            )
        return rows

    rows = run_once(benchmark, run_all_attacks)

    print("\nBaseline comparison (right-half perturbations, objects on the left):")
    print(format_table(rows))

    by_name = {row["attack"]: row for row in rows}
    butterfly_row = by_name["butterfly (NSGA-II)"]
    # The butterfly attack degrades the prediction...
    assert butterfly_row["obj_degrad"] < 1.0
    # ...with far less perturbation energy than full-strength random noise.
    strong_noise = by_name["random gaussian sigma=80"]
    assert butterfly_row["obj_intensity"] < strong_noise["obj_intensity"]
    # And it is at least as damaging as the strong random noise baseline.
    assert butterfly_row["obj_degrad"] <= strong_noise["obj_degrad"] + 0.1
