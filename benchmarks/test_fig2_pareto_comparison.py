"""Figure 2 — comparing YOLO and DETR by visualising three objectives.

The paper's Figure 2 plots the Pareto objectives obtained by attacking
seed-varied YOLOv5 and DETR models on KITTI images with right-half-only
perturbations and concludes that "for DETR, with a smaller amount of
perturbation, one can generate larger performance degradation".

This benchmark reruns that protocol at reduced scale (2 models x 1 image per
architecture, reduced NSGA-II budget) and checks the *shape* of the result:
the transformer reaches a lower (stronger) obj_degrad than the single-stage
detector, and obj_dist values comparable to the paper's ~0.5 appear on the
front.
"""

from benchmarks.conftest import BENCH_LENGTH, BENCH_WIDTH, bench_training_config, run_once
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_architecture_comparison
from repro.nsga.algorithm import NSGAConfig


def test_fig2_architecture_comparison(benchmark):
    experiment = ExperimentConfig.reduced(
        models_per_architecture=2,
        images_per_model=1,
        ensemble_size=2,
        image_length=BENCH_LENGTH,
        image_width=BENCH_WIDTH,
    )
    nsga = NSGAConfig(num_iterations=8, population_size=14, seed=0)

    comparison = run_once(
        benchmark,
        run_architecture_comparison,
        experiment=experiment,
        nsga=nsga,
        training=bench_training_config(),
        dataset_seed=11,
    )

    print("\nFigure 2 (reproduced, reduced scale) — per-architecture summary:")
    print(comparison.report.to_text())
    summary = comparison.susceptibility_summary()
    single_stage = summary["single_stage"]
    transformer = summary["transformer"]

    # Paper shape: the transformer reaches stronger degradation (lower
    # obj_degrad) than the single-stage detector under the same protocol.
    assert transformer["best_degradation"] < single_stage["best_degradation"] + 1e-9
    # Both architectures produce "unrelated" perturbations on the front
    # (positive obj_dist), as in the paper's Figure 2 scatter.
    assert transformer["mean_distance"] > 0.0
    assert single_stage["mean_distance"] > 0.0
    # The comparison must cover both architectures with the same run count.
    assert len(comparison.results["single_stage"]) == len(
        comparison.results["transformer"]
    )
