"""Sparse-mask population evaluation: incremental vs dense batched path.

The butterfly attack's steady state evaluates populations of *sparse*
masks (small patches and single pixels, the paper's minimal-perturbation
regime) against one clean scene.  These benchmarks time
``ButterflyObjectives.evaluate_population`` through the PR 1 dense batched
path and through the incremental (activation-cached, dirty-region) path,
asserting bit-identical objective matrices while pytest-benchmark records
the timings.  ``python benchmarks/bench_incremental.py`` runs the same
scenarios standalone, writes ``BENCH_pr2.json`` and enforces the speedup
gates in CI.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.objectives import ButterflyObjectives
from repro.nn.incremental import mask_nonzero_bbox


def sparse_patch_population(image_shape, batch_size=16, seed=1):
    """NSGA-offspring-like masks: one small random patch each (plus a zero)."""
    rng = np.random.default_rng(seed)
    masks = np.zeros((batch_size,) + image_shape)
    for index in range(1, batch_size):
        r = int(rng.integers(0, image_shape[0] - 4))
        c = int(rng.integers(0, image_shape[1] - 6))
        masks[index, r : r + 4, c : c + 6] = rng.integers(-255, 256, size=(4, 6, 3))
    return masks


def sparse_pixel_population(image_shape, batch_size=16, seed=2):
    """The minimal-perturbation regime: 1-3 clustered pixels per mask."""
    rng = np.random.default_rng(seed)
    masks = np.zeros((batch_size,) + image_shape)
    for index in range(1, batch_size):
        r = int(rng.integers(1, image_shape[0] - 1))
        c = int(rng.integers(1, image_shape[1] - 1))
        for _ in range(int(rng.integers(1, 4))):
            dr, dc = int(rng.integers(-1, 2)), int(rng.integers(-1, 2))
            masks[index, r + dr, c + dc, rng.integers(0, 3)] = float(
                rng.integers(-255, 256)
            )
    return masks


def _evaluate(evaluator, masks, dirty_bounds):
    return evaluator.evaluate_population(masks, dirty_bounds=dirty_bounds)


@pytest.fixture(params=["yolo", "detr"])
def bench_detector(request, bench_yolo, bench_detr):
    return bench_yolo if request.param == "yolo" else bench_detr


class TestIncrementalPopulation:
    def test_sparse_patch_incremental(self, benchmark, bench_detector, bench_dataset):
        image = bench_dataset[0].image
        masks = sparse_patch_population(image.shape)
        bounds = [mask_nonzero_bbox(mask) for mask in masks]
        dense = ButterflyObjectives(
            detector=bench_detector, image=image, use_activation_cache=False
        )
        incremental = ButterflyObjectives(
            detector=bench_detector, image=image, use_activation_cache=True
        )
        expected = dense.evaluate_population(masks)
        matrix = run_once(benchmark, _evaluate, incremental, masks, bounds)
        assert np.array_equal(matrix, expected)

    def test_sparse_patch_dense_baseline(
        self, benchmark, bench_detector, bench_dataset
    ):
        image = bench_dataset[0].image
        masks = sparse_patch_population(image.shape)
        dense = ButterflyObjectives(
            detector=bench_detector, image=image, use_activation_cache=False
        )
        matrix = run_once(benchmark, _evaluate, dense, masks, None)
        assert matrix.shape == (masks.shape[0], dense.num_objectives)
