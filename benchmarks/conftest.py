"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at a
reduced but structurally identical scale (smaller images, fewer models,
smaller NSGA-II budget).  The detectors and evaluation images are built once
per session; each benchmark then times the part that actually produces the
table/figure data and prints the reproduced rows so the output can be
compared with the paper side by side.

Scale note: the paper's full protocol (Table I x Table II: 50 models,
16 images each, 100 generations x 101 individuals) is available by passing
``ExperimentConfig.paper()`` / ``NSGA_TABLE_II`` to the same functions; the
benchmark defaults keep the whole suite in the minutes range on a laptop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.data.dataset import generate_dataset
from repro.detectors.training import TrainingConfig
from repro.detectors.zoo import build_detector
from repro.nsga.algorithm import NSGAConfig

#: Reduced evaluation resolution (KITTI-like wide aspect ratio).
BENCH_LENGTH = 64
BENCH_WIDTH = 208

#: Reduced NSGA-II budget used by the attack benchmarks.
BENCH_NSGA = NSGAConfig(num_iterations=10, population_size=16, seed=0)


def bench_training_config() -> TrainingConfig:
    return TrainingConfig(
        scenes_per_class=4,
        image_length=BENCH_LENGTH,
        image_width=BENCH_WIDTH,
        background_clusters=32,
    )


@pytest.fixture(scope="session")
def bench_yolo():
    """Single-stage (YOLOv5 stand-in) detector at benchmark resolution."""
    return build_detector("yolo", seed=1, training=bench_training_config())


@pytest.fixture(scope="session")
def bench_detr():
    """Transformer (DETR stand-in) detector at benchmark resolution."""
    return build_detector("detr", seed=1, training=bench_training_config())


@pytest.fixture(scope="session")
def bench_dataset():
    """Evaluation scenes with objects confined to the left half."""
    return generate_dataset(
        num_images=2,
        seed=5,
        image_length=BENCH_LENGTH,
        image_width=BENCH_WIDTH,
        half="left",
        num_objects=(2, 3),
    )


@pytest.fixture(scope="session")
def bench_attack_config() -> AttackConfig:
    """Right-half-only attack with the paper's operators, reduced budget."""
    return AttackConfig(nsga=BENCH_NSGA, region=HalfImageRegion("right"))


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    Attack runs take seconds; repeating them for statistical timing would
    multiply the suite's runtime without adding information, so every
    benchmark uses a single round.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
