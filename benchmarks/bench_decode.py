"""A/B benchmark of the vectorised seed decoding against the per-seed loop.

Decoding cell probabilities into boxes is the largest *shared* cost of the
dense batched (PR 1) and incremental (PR 2) evaluation paths.  This
benchmark times the three decode implementations on real probability grids
produced by both detector architectures at benchmark scale —

* ``decode_cell_probabilities_loop``: the original per-seed Python loop,
* ``decode_cell_probabilities``: the vectorised single-grid decode,
* ``decode_cell_probabilities_batch``: one call per 16-mask population —

verifies all three return bit-identical predictions while timing, records
the resulting incremental-path ratio next to the BENCH_pr2.json numbers
(the decode cost it removes is shared, so the PR 2 speedups shift), writes
everything to ``BENCH_pr3.json`` and **fails** (exit 1) when the gates are
missed:

* per-grid (dense path): the vectorised decode must not be slower than
  the loop on any architecture — the single-image `predict` path pays
  exactly this cost,
* per-population: the batched decode must beat the loop on the 16-mask
  populations of both architectures (the acceptance criterion of PR 3).

Usage::

    PYTHONPATH=src python benchmarks/bench_decode.py \
        [--output BENCH_pr3.json] [--repeats 30] [--skip-incremental]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.bench_incremental import run_micro_benchmarks
from benchmarks.conftest import BENCH_LENGTH, BENCH_WIDTH, bench_training_config
from benchmarks.test_incremental_population import sparse_patch_population
from repro.data.dataset import generate_dataset
from repro.detectors.decode import (
    decode_cell_probabilities,
    decode_cell_probabilities_batch,
    decode_cell_probabilities_loop,
    decode_cell_probabilities_vectorised,
)
from repro.detectors.zoo import build_detector

POPULATION_SIZE = 16

#: Per-decode gate tolerance.  Below SCALAR_FALLBACK_SEEDS the production
#: entry point runs the *same loop body* as the reference (dispatch costs
#: one comparison), so any measured difference there is timer noise; 5%
#: absorbs it without hiding a real regression of the vectorised path.
PER_DECODE_TOLERANCE = 1.05


def _time(function, repeats):
    """Best-of-``repeats`` wall time of one call (see bench_incremental)."""
    function()  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _dense_population(image_shape, batch_size=POPULATION_SIZE, seed=4):
    """Full-plane noise masks: the NSGA-II initial-population regime."""
    rng = np.random.default_rng(seed)
    return rng.integers(-40, 41, size=(batch_size,) + image_shape).astype(float)


def _assert_identical(expected, actual, label):
    if [p.boxes for p in expected] != [p.boxes for p in actual]:
        raise AssertionError(f"{label}: decode implementations diverged")


def run_decode_benchmarks(repeats):
    """Loop vs vectorised vs batched decode on both architectures."""
    image = generate_dataset(
        num_images=1,
        seed=5,
        image_length=BENCH_LENGTH,
        image_width=BENCH_WIDTH,
        half="left",
        num_objects=(2, 3),
    )[0].image
    image_shape = (image.shape[0], image.shape[1])

    scenarios = {}
    for architecture in ("yolo", "detr"):
        detector = build_detector(
            architecture, seed=1, training=bench_training_config()
        )
        config = detector.config
        entry = {"seed_counts": {}}

        populations = {
            "population_dense": _dense_population(image.shape),
            "population_sparse_patch": sparse_patch_population(image.shape),
        }
        for name, masks in populations.items():
            grids = detector.cell_probabilities_batch(
                np.clip(image[None, ...] + masks, 0.0, 255.0)
            )
            loop_out = [
                decode_cell_probabilities_loop(grid, config, image_shape)
                for grid in grids
            ]
            _assert_identical(
                loop_out,
                [decode_cell_probabilities(g, config, image_shape) for g in grids],
                f"{architecture} {name} adaptive",
            )
            _assert_identical(
                loop_out,
                [
                    decode_cell_probabilities_vectorised(g, config, image_shape)
                    for g in grids
                ],
                f"{architecture} {name} vectorised",
            )
            _assert_identical(
                loop_out,
                decode_cell_probabilities_batch(grids, config, image_shape),
                f"{architecture} {name} batched",
            )
            objectness = 1.0 - grids[..., -1]
            entry["seed_counts"][name] = int(
                (objectness > config.objectness_threshold).sum()
            )

            entry[f"{name}_ms"] = {
                "loop": 1e3
                * _time(
                    lambda: [
                        decode_cell_probabilities_loop(g, config, image_shape)
                        for g in grids
                    ],
                    repeats,
                ),
                "vectorised_per_grid": 1e3
                * _time(
                    lambda: [
                        decode_cell_probabilities(g, config, image_shape)
                        for g in grids
                    ],
                    repeats,
                ),
                "batched": 1e3
                * _time(
                    lambda: decode_cell_probabilities_batch(
                        grids, config, image_shape
                    ),
                    repeats,
                ),
            }

            # The dense-path regression gate times one grid on its own: the
            # single-image predict path cannot amortise across a population.
            # ``vectorised`` is the production entry point, which dispatches
            # small seed counts to the loop (SCALAR_FALLBACK_SEEDS);
            # ``vectorised_forced`` shows what the pure vectorised path
            # would cost, making the dispatch win visible in the JSON.
            single = grids[POPULATION_SIZE // 2]
            entry[f"{name.replace('population', 'per_decode')}_ms"] = {
                "loop": 1e3
                * _time(
                    lambda: decode_cell_probabilities_loop(
                        single, config, image_shape
                    ),
                    repeats * 4,
                ),
                "vectorised": 1e3
                * _time(
                    lambda: decode_cell_probabilities(single, config, image_shape),
                    repeats * 4,
                ),
                "vectorised_forced": 1e3
                * _time(
                    lambda: decode_cell_probabilities_vectorised(
                        single, config, image_shape
                    ),
                    repeats * 4,
                ),
            }

        for metric_name, metric in entry.items():
            if metric_name == "seed_counts":
                continue
            baseline = metric["loop"]
            metric["speedup"] = baseline / metric.get(
                "batched", metric.get("vectorised")
            )
        scenarios[detector.architecture] = entry
    return scenarios


def check_gates(scenarios):
    failures = []
    for label, entry in scenarios.items():
        for metric_name, metric in entry.items():
            if metric_name == "seed_counts":
                continue
            if metric_name.startswith("per_decode") and (
                metric["vectorised"] > PER_DECODE_TOLERANCE * metric["loop"]
            ):
                failures.append(
                    f"{label}.{metric_name}: vectorised decode is slower than "
                    f"the loop ({metric['vectorised']:.3f}ms > "
                    f"{metric['loop']:.3f}ms)"
                )
            if metric_name.startswith("population") and metric["speedup"] < 1.0:
                failures.append(
                    f"{label}.{metric_name}: batched decode is slower than the "
                    f"loop ({metric['speedup']:.2f}x)"
                )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_pr3.json")
    parser.add_argument("--repeats", type=int, default=30)
    parser.add_argument(
        "--skip-incremental",
        action="store_true",
        help="skip re-timing the PR 2 incremental-path scenarios",
    )
    args = parser.parse_args(argv)

    scenarios = run_decode_benchmarks(args.repeats)
    report = {
        "benchmark": "vectorised seed decoding vs per-seed loop",
        "image_shape": [BENCH_LENGTH, BENCH_WIDTH, 3],
        "population_size": POPULATION_SIZE,
        "repeats": args.repeats,
        "scenarios": scenarios,
    }
    if not args.skip_incremental:
        # The decode cost removed here is shared by both PR 2 paths, so the
        # incremental ratio shifts; re-time it for comparison with the
        # committed BENCH_pr2.json numbers.
        report["incremental_path_with_vectorised_decode"] = run_micro_benchmarks(
            max(4, args.repeats // 3)
        )

    failures = check_gates(scenarios)
    report["gates_passed"] = not failures
    if failures:
        report["gate_failures"] = failures

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if failures:
        print("\n".join(["GATE FAILURES:"] + failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
