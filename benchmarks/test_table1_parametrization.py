"""Table I — experiment parametrisation.

Regenerates the three rows of Table I (number of models per architecture,
images per model, ensemble size) from the :class:`ExperimentConfig` object
and checks them against the paper's values.
"""

from repro.analysis.reporting import format_table
from repro.experiments.config import ExperimentConfig, experiment_table_rows


def test_table1_parametrization(benchmark):
    rows = benchmark(lambda: experiment_table_rows(ExperimentConfig.paper()))

    print("\nTable I (reproduced):")
    print(format_table(rows))

    values = {row["Configuration"]: row["Value"] for row in rows}
    assert "25" in values["# models generated"]
    assert values["# images tested on each model"] == "16"
    assert values["# models used in ensemble"] == "16"


def test_table1_reduced_protocol_structure(benchmark):
    """The laptop-scale protocol keeps Table I's structure."""
    rows = benchmark(
        lambda: experiment_table_rows(
            ExperimentConfig.reduced(models_per_architecture=2, images_per_model=2)
        )
    )
    assert len(rows) == 3
    assert {row["Configuration"] for row in rows} == {
        "# models generated",
        "# images tested on each model",
        "# models used in ensemble",
    }
