"""Section V-B — the five qualitative error types caused by the attack.

The paper lists five impacts of the butterfly-effect attack: bounding-box
changes, TP→FN, TN→FP, FN→TP and FP→TN.  This benchmark attacks the
transformer detector on the benchmark scenes and classifies every transition
observed on the Pareto fronts, reproducing the taxonomy table.
"""

from benchmarks.conftest import run_once
from repro.analysis.errors import summarize_attack_errors
from repro.analysis.reporting import format_table
from repro.core.attack import ButterflyAttack
from repro.detection.errors import ErrorType


def test_error_taxonomy(benchmark, bench_detr, bench_dataset, bench_attack_config):
    def attack_all_images():
        attack = ButterflyAttack(bench_detr, bench_attack_config)
        return [attack.attack(sample.image) for sample in bench_dataset]

    results = run_once(benchmark, attack_all_images)
    summary = summarize_attack_errors(results)

    print("\nError taxonomy over Pareto-front solutions (Section V-B):")
    print(format_table(summary.as_rows()))

    # The attack produced front solutions and at least one genuine change.
    assert summary.num_solutions > 0
    assert summary.total_changes >= 1
    # Box-level changes (the paper's impact #1) are the most common effect
    # and must be observed; the rarer transitions are reported when found.
    observed = set(summary.observed_types())
    assert observed & {
        ErrorType.BOX_CHANGED,
        ErrorType.TP_TO_FN,
        ErrorType.TN_TO_FP,
        ErrorType.CLASS_CHANGED,
        ErrorType.FN_TO_TP,
        ErrorType.FP_TO_TN,
    }
