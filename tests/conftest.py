"""Shared fixtures: small datasets, fast detectors and reduced attack configs.

Detectors and datasets are session-scoped because building ("training") a
simulated detector renders a couple of dozen scenes; sharing them across
tests keeps the whole suite fast while still exercising the real code path.
Attack-oriented fixtures use a smaller image resolution and a reduced
NSGA-II budget — the search dynamics are identical, only the budget differs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.data.dataset import SyntheticDataset, generate_dataset
from repro.detectors.base import DetectorConfig
from repro.detectors.training import TrainingConfig
from repro.detectors.zoo import build_detector
from repro.nsga.algorithm import NSGAConfig
from repro.nsga.mutation import MutationConfig

#: Reduced image size used by attack-level tests (wide KITTI-like aspect).
SMALL_LENGTH = 64
SMALL_WIDTH = 208


@pytest.fixture(scope="session")
def small_training_config() -> TrainingConfig:
    """Training protocol matched to the reduced image resolution."""
    return TrainingConfig(
        scenes_per_class=4,
        image_length=SMALL_LENGTH,
        image_width=SMALL_WIDTH,
        background_clusters=32,
    )


@pytest.fixture(scope="session")
def small_dataset() -> SyntheticDataset:
    """Two small scenes with objects only in the left half."""
    return generate_dataset(
        num_images=2,
        seed=5,
        image_length=SMALL_LENGTH,
        image_width=SMALL_WIDTH,
        half="left",
        num_objects=(2, 3),
    )


@pytest.fixture(scope="session")
def full_dataset() -> SyntheticDataset:
    """Default-resolution scenes with objects anywhere."""
    return generate_dataset(num_images=3, seed=3)


@pytest.fixture(scope="session")
def yolo_detector(small_training_config):
    """A trained single-stage (YOLO-like) detector at reduced resolution."""
    return build_detector("yolo", seed=1, training=small_training_config)


@pytest.fixture(scope="session")
def detr_detector(small_training_config):
    """A trained transformer (DETR-like) detector at reduced resolution."""
    return build_detector("detr", seed=1, training=small_training_config)


@pytest.fixture(scope="session")
def default_yolo():
    """A trained single-stage detector at the default (96x320) resolution."""
    return build_detector("yolo", seed=1)


@pytest.fixture(scope="session")
def default_detr():
    """A trained transformer detector at the default (96x320) resolution."""
    return build_detector("detr", seed=1)


@pytest.fixture()
def fast_attack_config() -> AttackConfig:
    """A tiny NSGA-II budget with the paper's operators and constraints."""
    return AttackConfig(
        nsga=NSGAConfig(
            num_iterations=4,
            population_size=8,
            crossover_probability=0.5,
            mutation=MutationConfig(probability=0.45, window_fraction=0.01),
            seed=0,
        ),
        region=HalfImageRegion("right"),
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(1234)
