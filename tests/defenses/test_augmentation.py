"""Tests for the noise-augmentation defence."""

import numpy as np
import pytest

from repro.data.dataset import generate_dataset
from repro.defenses.augmentation import NoiseAugmentationConfig, noise_augmented_detector
from repro.detection.metrics import precision_recall
from repro.detectors.zoo import build_detector

from tests.conftest import SMALL_LENGTH, SMALL_WIDTH


class TestNoiseAugmentationConfig:
    def test_defaults_valid(self):
        config = NoiseAugmentationConfig()
        assert config.gaussian_sigma >= 0
        assert config.augmented_copies >= 1

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            NoiseAugmentationConfig(gaussian_sigma=-1.0)
        with pytest.raises(ValueError):
            NoiseAugmentationConfig(salt_and_pepper_amount=1.5)
        with pytest.raises(ValueError):
            NoiseAugmentationConfig(augmented_copies=0)


class TestNoiseAugmentedDetector:
    @pytest.fixture(scope="class")
    def defended(self, request):
        training = request.getfixturevalue("small_training_config")
        detector = build_detector("yolo", seed=4, training=training)
        return noise_augmented_detector(
            detector,
            training=training,
            augmentation=NoiseAugmentationConfig(augmented_copies=1),
        )

    def test_prototypes_replaced(self, defended, small_training_config):
        baseline = build_detector("yolo", seed=4, training=small_training_config)
        assert not np.allclose(
            defended.prototypes.class_prototypes,
            baseline.prototypes.class_prototypes,
        )

    def test_clean_accuracy_preserved(self, defended):
        dataset = generate_dataset(
            num_images=3,
            seed=29,
            image_length=SMALL_LENGTH,
            image_width=SMALL_WIDTH,
            num_objects=(2, 3),
        )
        recalls = []
        for sample in dataset:
            _, recall = precision_recall(
                defended.predict(sample.image), sample.ground_truth, iou_threshold=0.3
            )
            recalls.append(recall)
        assert np.mean(recalls) >= 0.5

    def test_prototype_bank_shape_unchanged(self, defended, small_training_config):
        assert defended.prototypes.num_classes == len(small_training_config.classes)
        assert defended.prototypes.feature_dim == 7
        assert defended.prototypes.temperature > 0
