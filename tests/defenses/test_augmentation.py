"""Tests for the noise-augmentation defence."""

import numpy as np
import pytest

from repro.data.dataset import generate_dataset
from repro.defenses.augmentation import NoiseAugmentationConfig, noise_augmented_detector
from repro.detection.metrics import precision_recall
from repro.detectors.zoo import build_detector

from tests.conftest import SMALL_LENGTH, SMALL_WIDTH


class TestNoiseAugmentationConfig:
    def test_defaults_valid(self):
        config = NoiseAugmentationConfig()
        assert config.gaussian_sigma >= 0
        assert config.augmented_copies >= 1

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            NoiseAugmentationConfig(gaussian_sigma=-1.0)
        with pytest.raises(ValueError):
            NoiseAugmentationConfig(salt_and_pepper_amount=1.5)
        with pytest.raises(ValueError):
            NoiseAugmentationConfig(augmented_copies=0)


class TestNoiseAugmentedDetector:
    @pytest.fixture(scope="class")
    def defended(self, request):
        training = request.getfixturevalue("small_training_config")
        detector = build_detector("yolo", seed=4, training=training)
        return noise_augmented_detector(
            detector,
            training=training,
            augmentation=NoiseAugmentationConfig(augmented_copies=1),
        )

    def test_prototypes_replaced(self, defended, small_training_config):
        baseline = build_detector("yolo", seed=4, training=small_training_config)
        assert not np.allclose(
            defended.prototypes.class_prototypes,
            baseline.prototypes.class_prototypes,
        )

    def test_clean_accuracy_preserved(self, defended):
        dataset = generate_dataset(
            num_images=3,
            seed=29,
            image_length=SMALL_LENGTH,
            image_width=SMALL_WIDTH,
            num_objects=(2, 3),
        )
        recalls = []
        for sample in dataset:
            _, recall = precision_recall(
                defended.predict(sample.image), sample.ground_truth, iou_threshold=0.3
            )
            recalls.append(recall)
        assert np.mean(recalls) >= 0.5

    def test_prototype_bank_shape_unchanged(self, defended, small_training_config):
        assert defended.prototypes.num_classes == len(small_training_config.classes)
        assert defended.prototypes.feature_dim == 7
        assert defended.prototypes.temperature > 0


class TestSeedPlumbing:
    """Spawn-safe defense-retraining entropy (the PR 5 seed plumbing fix)."""

    @pytest.fixture(scope="class")
    def training(self, request):
        return request.getfixturevalue("small_training_config")

    @staticmethod
    def _prototypes(detector):
        bank = detector.prototypes
        return (
            bank.class_prototypes.copy(),
            bank.background_prototypes.copy(),
            bank.temperature,
        )

    def test_seed_sequence_is_deterministic(self, training):
        """Equal SeedSequence children produce bit-identical refits."""
        config = NoiseAugmentationConfig(augmented_copies=1)
        refits = []
        for _ in range(2):
            child = np.random.SeedSequence(2023).spawn(3)[1]
            detector = build_detector("yolo", seed=4, training=training)
            refits.append(
                self._prototypes(
                    noise_augmented_detector(
                        detector, training=training, augmentation=config, seed=child
                    )
                )
            )
        (a_cls, a_bg, a_temp), (b_cls, b_bg, b_temp) = refits
        assert np.array_equal(a_cls, b_cls)
        assert np.array_equal(a_bg, b_bg)
        assert a_temp == b_temp

    def test_seed_sequence_matches_collapsed_integer(self, training):
        """A SeedSequence behaves exactly like its collapsed integer seed —
        the same derivation the engine uses for per-job NSGA seeds."""
        from repro.experiments.jobs import seed_from_sequence

        child = np.random.SeedSequence(11).spawn(2)[0]
        config = NoiseAugmentationConfig(augmented_copies=1)
        from_sequence = noise_augmented_detector(
            build_detector("yolo", seed=4, training=training),
            training=training,
            augmentation=config,
            seed=child,
        )
        from_integer = noise_augmented_detector(
            build_detector("yolo", seed=4, training=training),
            training=training,
            augmentation=config,
            seed=seed_from_sequence(np.random.SeedSequence(11).spawn(2)[0]),
        )
        a, b = self._prototypes(from_sequence), self._prototypes(from_integer)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])
        assert a[2] == b[2]

    def test_distinct_children_differ(self, training):
        """Different spawn children derive different retraining entropy."""
        config = NoiseAugmentationConfig(augmented_copies=1)
        children = np.random.SeedSequence(2023).spawn(2)
        banks = [
            self._prototypes(
                noise_augmented_detector(
                    build_detector("yolo", seed=4, training=training),
                    training=training,
                    augmentation=config,
                    seed=child,
                )
            )
            for child in children
        ]
        assert not np.array_equal(banks[0][0], banks[1][0])

    def test_copy_flag_leaves_original_untouched(self, training):
        """copy=True refits a deep copy; the default mutates in place."""
        detector = build_detector("yolo", seed=4, training=training)
        original_bank = detector.prototypes
        defended = noise_augmented_detector(
            detector,
            training=training,
            augmentation=NoiseAugmentationConfig(augmented_copies=1),
            copy=True,
        )
        assert defended is not detector
        assert detector.prototypes is original_bank
        assert defended.prototypes is not original_bank

        in_place = noise_augmented_detector(
            detector,
            training=training,
            augmentation=NoiseAugmentationConfig(augmented_copies=1),
        )
        assert in_place is detector
        assert detector.prototypes is not original_bank
