"""Tests for defence evaluation against the butterfly attack."""

import numpy as np
import pytest

from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.defenses.augmentation import NoiseAugmentationConfig, noise_augmented_detector
from repro.defenses.evaluation import (
    DefenseEvaluation,
    ensemble_defense_evaluation,
    evaluate_defense,
)
from repro.detectors.ensemble import DetectorEnsemble
from repro.detectors.zoo import build_detector
from repro.nsga.algorithm import NSGAConfig


@pytest.fixture()
def tiny_config():
    return AttackConfig(
        nsga=NSGAConfig(num_iterations=3, population_size=6, seed=0),
        region=HalfImageRegion("right"),
    )


class TestEvaluateDefense:
    def test_noise_augmentation_defense_evaluation(
        self, detr_detector, small_dataset, small_training_config, tiny_config
    ):
        defended = noise_augmented_detector(
            build_detector("detr", seed=1, training=small_training_config),
            training=small_training_config,
            augmentation=NoiseAugmentationConfig(augmented_copies=1),
        )
        sample = small_dataset[0]
        evaluation = evaluate_defense(
            undefended=detr_detector,
            defended=defended,
            image=sample.image,
            ground_truth=sample.ground_truth,
            attack_config=tiny_config,
        )
        assert isinstance(evaluation, DefenseEvaluation)
        assert 0.0 <= evaluation.undefended_best_degradation <= 1.0 + 1e-9
        assert 0.0 <= evaluation.defended_best_degradation <= 1.0 + 1e-9
        assert 0.0 <= evaluation.clean_recall_defended <= 1.0
        rows = evaluation.summary_rows()
        assert {row["detector"] for row in rows} == {"undefended", "defended"}
        # robustness_gain is simply the difference of the two degradations.
        assert evaluation.robustness_gain == pytest.approx(
            evaluation.defended_best_degradation
            - evaluation.undefended_best_degradation
        )


class TestEnsembleDefense:
    def test_ensemble_defense_evaluation(
        self, yolo_detector, detr_detector, small_dataset, tiny_config
    ):
        ensemble = DetectorEnsemble([yolo_detector, detr_detector])
        evaluation = ensemble_defense_evaluation(
            ensemble, small_dataset[0].image, attack_config=tiny_config
        )
        assert len(evaluation.member_degradations) == 2
        assert all(0.0 <= value <= 1.0 + 1e-9 for value in evaluation.member_degradations)
        assert 0.0 <= evaluation.fused_degradation <= 1.0 + 1e-9
        assert isinstance(evaluation.fusion_helps, bool)
        assert evaluation.attack_result.pareto_front
