"""Tests for defence evaluation against the butterfly attack.

``TestDefenseEngineParity`` is the engine-parity suite: the engine-based
evaluations (serial and pooled at n_jobs ∈ {1, 2, 4}, shuffled submission)
must be bit-identical to the preserved pre-engine loops
(`evaluate_defense_reference` / `ensemble_defense_evaluation_reference`)
for both live-detector and model-spec inputs.
"""

import numpy as np
import pytest

from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.defenses.augmentation import NoiseAugmentationConfig, noise_augmented_detector
from repro.defenses.evaluation import (
    DefenseEvaluation,
    EnsembleDefenseEvaluation,
    build_defense_plan,
    ensemble_defense_evaluation,
    ensemble_defense_evaluation_reference,
    evaluate_defense,
    evaluate_defense_reference,
)
from repro.defenses.jobs import DefendedModelSpec, DefenseAttackJob, EnsembleDefenseJob
from repro.detectors.ensemble import DetectorEnsemble
from repro.detectors.training import TrainingConfig
from repro.detectors.zoo import build_detector
from repro.experiments.engine import ProcessPoolBackend
from repro.experiments.jobs import ModelSpec
from repro.nsga.algorithm import NSGAConfig


@pytest.fixture()
def tiny_config():
    return AttackConfig(
        nsga=NSGAConfig(num_iterations=3, population_size=6, seed=0),
        region=HalfImageRegion("right"),
    )


class TestEvaluateDefense:
    def test_noise_augmentation_defense_evaluation(
        self, detr_detector, small_dataset, small_training_config, tiny_config
    ):
        defended = noise_augmented_detector(
            build_detector("detr", seed=1, training=small_training_config),
            training=small_training_config,
            augmentation=NoiseAugmentationConfig(augmented_copies=1),
        )
        sample = small_dataset[0]
        evaluation = evaluate_defense(
            undefended=detr_detector,
            defended=defended,
            image=sample.image,
            ground_truth=sample.ground_truth,
            attack_config=tiny_config,
        )
        assert isinstance(evaluation, DefenseEvaluation)
        assert 0.0 <= evaluation.undefended_best_degradation <= 1.0 + 1e-9
        assert 0.0 <= evaluation.defended_best_degradation <= 1.0 + 1e-9
        assert 0.0 <= evaluation.clean_recall_defended <= 1.0
        rows = evaluation.summary_rows()
        assert {row["detector"] for row in rows} == {"undefended", "defended"}
        # robustness_gain is simply the difference of the two degradations.
        assert evaluation.robustness_gain == pytest.approx(
            evaluation.defended_best_degradation
            - evaluation.undefended_best_degradation
        )


class TestEnsembleDefense:
    def test_ensemble_defense_evaluation(
        self, yolo_detector, detr_detector, small_dataset, tiny_config
    ):
        ensemble = DetectorEnsemble([yolo_detector, detr_detector])
        evaluation = ensemble_defense_evaluation(
            ensemble, small_dataset[0].image, attack_config=tiny_config
        )
        assert len(evaluation.member_degradations) == 2
        assert all(0.0 <= value <= 1.0 + 1e-9 for value in evaluation.member_degradations)
        assert 0.0 <= evaluation.fused_degradation <= 1.0 + 1e-9
        assert isinstance(evaluation.fusion_helps, bool)
        assert evaluation.attack_result.pareto_front


class TestFusionHelps:
    def test_no_members_means_no_help(self):
        evaluation = EnsembleDefenseEvaluation(attack_result=None)
        assert evaluation.member_degradations == []
        assert evaluation.fusion_helps is False

    def test_fusion_above_member_mean_helps(self):
        evaluation = EnsembleDefenseEvaluation(
            attack_result=None,
            member_degradations=[0.2, 0.4],
            fused_degradation=0.5,
        )
        assert evaluation.fusion_helps is True

    def test_fusion_at_or_below_member_mean_does_not_help(self):
        at_mean = EnsembleDefenseEvaluation(
            attack_result=None,
            member_degradations=[0.2, 0.4],
            fused_degradation=0.3,
        )
        below = EnsembleDefenseEvaluation(
            attack_result=None,
            member_degradations=[0.6, 0.8],
            fused_degradation=0.5,
        )
        assert at_mean.fusion_helps is False
        assert below.fusion_helps is False


# Smaller than the fixtures above: the parity suite runs every evaluation
# several ways (reference, serial engine, three pool sizes).
_PARITY_LENGTH, _PARITY_WIDTH = 48, 96


@pytest.fixture(scope="module")
def parity_training():
    return TrainingConfig(
        scenes_per_class=2,
        image_length=_PARITY_LENGTH,
        image_width=_PARITY_WIDTH,
        background_clusters=12,
    )


@pytest.fixture(scope="module")
def parity_sample(parity_training):
    from repro.data.dataset import generate_dataset

    dataset = generate_dataset(
        num_images=1,
        seed=5,
        image_length=_PARITY_LENGTH,
        image_width=_PARITY_WIDTH,
        half="left",
    )
    return dataset[0]


@pytest.fixture(scope="module")
def parity_config():
    return AttackConfig(
        nsga=NSGAConfig(num_iterations=3, population_size=8, seed=0),
        region=HalfImageRegion("right"),
    )


@pytest.fixture(scope="module")
def parity_specs(parity_training):
    undefended = ModelSpec("detr", 1, training=parity_training)
    defended = DefendedModelSpec(
        base=undefended,
        augmentation=NoiseAugmentationConfig(augmented_copies=1),
        training=parity_training,
    )
    return undefended, defended


@pytest.fixture(scope="module")
def serial_defense(parity_specs, parity_sample, parity_config):
    undefended, defended = parity_specs
    return evaluate_defense(
        undefended,
        defended,
        parity_sample.image,
        parity_sample.ground_truth,
        parity_config,
    )


def _assert_defense_identical(left: DefenseEvaluation, right: DefenseEvaluation):
    assert left.undefended_result.fingerprint() == right.undefended_result.fingerprint()
    assert left.defended_result.fingerprint() == right.defended_result.fingerprint()
    assert left.undefended_best_degradation == right.undefended_best_degradation
    assert left.defended_best_degradation == right.defended_best_degradation
    assert left.clean_recall_undefended == right.clean_recall_undefended
    assert left.clean_recall_defended == right.clean_recall_defended


class TestDefenseEngineParity:
    def test_engine_matches_reference_loop(
        self, parity_training, parity_sample, parity_config, serial_defense
    ):
        """The engine evaluation equals the pre-engine loop bit for bit."""
        undefended = build_detector("detr", seed=1, training=parity_training)
        defended = noise_augmented_detector(
            build_detector("detr", seed=1, training=parity_training),
            training=parity_training,
            augmentation=NoiseAugmentationConfig(augmented_copies=1),
        )
        reference = evaluate_defense_reference(
            undefended,
            defended,
            parity_sample.image,
            parity_sample.ground_truth,
            parity_config,
        )
        _assert_defense_identical(reference, serial_defense)
        assert serial_defense.execution["backend"] == "serial"

    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_pooled_matches_serial(
        self, parity_specs, parity_sample, parity_config, serial_defense, n_jobs
    ):
        """Pooled evaluations (shuffled submission) are bit-identical."""
        undefended, defended = parity_specs
        backend = ProcessPoolBackend(n_jobs=n_jobs, submission_seed=60 + n_jobs)
        pooled = evaluate_defense(
            undefended,
            defended,
            parity_sample.image,
            parity_sample.ground_truth,
            parity_config,
            n_jobs=n_jobs,
            backend=backend,
        )
        _assert_defense_identical(serial_defense, pooled)
        assert pooled.execution["backend"] == "process"

    def test_ensemble_engine_matches_reference(
        self, parity_training, parity_sample, parity_config
    ):
        members = [
            build_detector("yolo", seed=1, training=parity_training),
            build_detector("detr", seed=1, training=parity_training),
        ]
        reference = ensemble_defense_evaluation_reference(
            DetectorEnsemble(members), parity_sample.image, parity_config
        )
        specs = [
            ModelSpec("yolo", 1, training=parity_training),
            ModelSpec("detr", 1, training=parity_training),
        ]
        serial = ensemble_defense_evaluation(
            specs, parity_sample.image, parity_config
        )
        pooled = ensemble_defense_evaluation(
            specs,
            parity_sample.image,
            parity_config,
            backend=ProcessPoolBackend(n_jobs=2),
        )
        for engine_result in (serial, pooled):
            assert (
                reference.attack_result.fingerprint()
                == engine_result.attack_result.fingerprint()
            )
            assert reference.member_degradations == engine_result.member_degradations
            assert reference.fused_degradation == engine_result.fused_degradation

    def test_combined_plan_contains_all_variants(
        self, parity_specs, parity_sample, parity_config, parity_training
    ):
        """build_defense_plan compiles undefended/defended/ensemble jobs."""
        undefended, defended = parity_specs
        members = (
            ModelSpec("yolo", 1, training=parity_training),
            ModelSpec("detr", 1, training=parity_training),
        )
        plan = build_defense_plan(
            undefended,
            defended,
            parity_sample.image,
            parity_sample.ground_truth,
            parity_config,
            ensemble_members=members,
            experiment_seed=7,
        )
        assert len(plan.jobs) == 3
        assert isinstance(plan.jobs[0], DefenseAttackJob)
        assert plan.jobs[0].role == "undefended"
        assert plan.jobs[1].role == "defended"
        assert isinstance(plan.jobs[2], EnsembleDefenseJob)
        # Every job received a plan-position-derived seed.
        assert all(job.nsga_seed is not None for job in plan.jobs)
        assert len({job.nsga_seed for job in plan.jobs}) == 3
        # The experiment seed also wires the defended variant's retraining
        # entropy (a derived defense_seed on an otherwise-equal spec).
        wired_defended = plan.jobs[1].model
        assert wired_defended.base == defended.base
        assert wired_defended.defense_seed is not None
        # The ensemble job participates in per-model lifecycle accounting.
        assert set(plan.jobs_per_model()) == {undefended, wired_defended, *members}


class TestDefenseSeedPlumbing:
    """The experiment seed reaches the defended variant's retraining RNG."""

    def test_experiment_seed_derives_defense_seed(
        self, parity_specs, parity_sample, parity_config
    ):
        from repro.defenses.jobs import derive_defense_seed

        undefended, defended = parity_specs
        assert defended.defense_seed is None
        plan = build_defense_plan(
            undefended,
            defended,
            parity_sample.image,
            parity_sample.ground_truth,
            parity_config,
            experiment_seed=7,
        )
        wired = plan.jobs[1].model
        assert isinstance(wired, DefendedModelSpec)
        assert wired.defense_seed == derive_defense_seed(7)
        # Distinct from every plan-position NSGA seed (reserved branch).
        assert wired.defense_seed not in {job.nsga_seed for job in plan.jobs}
        # Different experiment seeds → different refit entropy.
        assert derive_defense_seed(7) != derive_defense_seed(8)
        # Deterministic.
        assert derive_defense_seed(7) == derive_defense_seed(7)
        with pytest.raises(ValueError, match="non-negative"):
            derive_defense_seed(-1)

    def test_pinned_defense_seed_is_preserved(
        self, parity_specs, parity_sample, parity_config
    ):
        undefended, defended = parity_specs
        from dataclasses import replace

        pinned = replace(defended, defense_seed=99)
        plan = build_defense_plan(
            undefended,
            pinned,
            parity_sample.image,
            parity_sample.ground_truth,
            parity_config,
            experiment_seed=7,
        )
        assert plan.jobs[1].model.defense_seed == 99

    def test_no_experiment_seed_keeps_historical_default(
        self, parity_specs, parity_sample, parity_config
    ):
        undefended, defended = parity_specs
        plan = build_defense_plan(
            undefended,
            defended,
            parity_sample.image,
            parity_sample.ground_truth,
            parity_config,
        )
        assert plan.jobs[1].model.defense_seed is None
