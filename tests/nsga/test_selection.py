"""Tests for the Pareto-sorted binary tournament."""

import numpy as np
import pytest

from repro.nsga.individual import Individual
from repro.nsga.selection import binary_tournament, crowded_comparison


def _individual(rank, crowding=0.0):
    individual = Individual(genome=np.zeros(1), objectives=np.array([0.0]))
    individual.rank = rank
    individual.crowding = crowding
    return individual


class TestCrowdedComparison:
    def test_lower_rank_preferred(self):
        assert crowded_comparison(_individual(1), _individual(2)) == -1
        assert crowded_comparison(_individual(3), _individual(2)) == 1

    def test_equal_rank_larger_crowding_preferred(self):
        assert crowded_comparison(_individual(1, 2.0), _individual(1, 1.0)) == -1
        assert crowded_comparison(_individual(1, 0.5), _individual(1, 1.0)) == 1

    def test_tie(self):
        assert crowded_comparison(_individual(1, 1.0), _individual(1, 1.0)) == 0

    def test_unranked_individual_rejected(self):
        with pytest.raises(ValueError):
            crowded_comparison(Individual(genome=np.zeros(1)), _individual(1))

    def test_missing_crowding_treated_as_zero(self):
        a = _individual(1, crowding=None)
        b = _individual(1, 1.0)
        assert crowded_comparison(a, b) == 1


class TestBinaryTournament:
    def test_number_of_selected(self):
        population = [_individual(1), _individual(2), _individual(3)]
        selected = binary_tournament(population, np.random.default_rng(0), 10)
        assert len(selected) == 10

    def test_default_selection_size_is_population_size(self):
        population = [_individual(1), _individual(2)]
        assert len(binary_tournament(population, np.random.default_rng(0))) == 2

    def test_better_ranks_win_more_often(self):
        population = [_individual(1)] + [_individual(5) for _ in range(4)]
        rng = np.random.default_rng(0)
        selected = binary_tournament(population, rng, 400)
        best_count = sum(1 for ind in selected if ind.rank == 1)
        # The rank-1 individual participates in ~2/5 of tournaments and wins
        # all of them, so it should clearly exceed a uniform 1/5 share.
        assert best_count > 0.25 * 400

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            binary_tournament([], np.random.default_rng(0))

    def test_selected_are_population_members(self):
        population = [_individual(1), _individual(2)]
        selected = binary_tournament(population, np.random.default_rng(0), 5)
        assert all(individual in population for individual in selected)
