"""Tests for crowding-distance assignment."""

import numpy as np

from repro.nsga.crowding import crowding_distance
from repro.nsga.individual import Individual


def _population(objective_vectors):
    return [
        Individual(genome=np.zeros(1), objectives=np.asarray(vector, dtype=float))
        for vector in objective_vectors
    ]


class TestCrowdingDistance:
    def test_boundary_points_get_infinite_distance(self):
        population = _population([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        distances = crowding_distance(population, [0, 1, 2, 3])
        assert np.isinf(distances[0])
        assert np.isinf(distances[3])
        assert np.isfinite(distances[1]) and np.isfinite(distances[2])

    def test_fronts_of_size_two_or_less_are_infinite(self):
        population = _population([[1.0, 1.0], [2.0, 0.5]])
        distances = crowding_distance(population, [0, 1])
        assert np.all(np.isinf(distances))
        single = crowding_distance(_population([[1.0, 1.0]]), [0])
        assert np.isinf(single[0])

    def test_empty_front(self):
        assert crowding_distance([], []).size == 0

    def test_isolated_point_has_larger_distance(self):
        # Points evenly spaced except one isolated point in the middle of a
        # large gap; the isolated one must get a larger crowding distance.
        population = _population(
            [[0.0, 10.0], [1.0, 9.0], [2.0, 8.0], [6.0, 4.0], [10.0, 0.0]]
        )
        distances = crowding_distance(population, list(range(5)))
        # Index 3 sits in the big gap between 2 and 4.
        assert distances[3] > distances[1]
        assert distances[3] > distances[2]

    def test_updates_individual_attribute(self):
        population = _population([[0.0, 2.0], [1.0, 1.0], [2.0, 0.0]])
        crowding_distance(population, [0, 1, 2])
        assert all(ind.crowding is not None for ind in population)

    def test_constant_objective_does_not_blow_up(self):
        population = _population([[1.0, 0.0], [1.0, 1.0], [1.0, 2.0], [1.0, 3.0]])
        distances = crowding_distance(population, [0, 1, 2, 3])
        assert np.all(np.isfinite(distances[1:3]))

    def test_subset_front_indices(self):
        population = _population(
            [[0.0, 3.0], [99.0, 99.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]]
        )
        distances = crowding_distance(population, [0, 2, 3, 4])
        assert len(distances) == 4
        assert population[1].crowding is None
