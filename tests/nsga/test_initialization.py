"""Tests for population initialisation."""

import numpy as np
import pytest

from repro.nsga.initialization import InitializationConfig, initialize_population


class TestInitializationConfig:
    def test_defaults_match_paper(self):
        config = InitializationConfig()
        assert config.population_size == 101
        assert config.include_zero_mask is True
        assert config.max_value == 255.0

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            InitializationConfig(population_size=0)
        with pytest.raises(ValueError):
            InitializationConfig(gaussian_sigma=-1.0)
        with pytest.raises(ValueError):
            InitializationConfig(salt_and_pepper_fraction=2.0)


class TestInitializePopulation:
    def test_population_size(self):
        rng = np.random.default_rng(0)
        population = initialize_population((8, 16, 3), rng, InitializationConfig(population_size=11))
        assert len(population) == 11

    def test_zero_mask_included(self):
        rng = np.random.default_rng(0)
        population = initialize_population((8, 16, 3), rng, InitializationConfig(population_size=5))
        zero_masks = [ind for ind in population if np.allclose(ind.genome, 0.0)]
        assert len(zero_masks) >= 1

    def test_zero_mask_excluded_when_disabled(self):
        rng = np.random.default_rng(0)
        config = InitializationConfig(population_size=5, include_zero_mask=False, gaussian_sigma=10.0)
        population = initialize_population((8, 16, 3), rng, config)
        zero_masks = [ind for ind in population if np.allclose(ind.genome, 0.0)]
        assert len(zero_masks) == 0

    def test_genome_shape(self):
        rng = np.random.default_rng(0)
        population = initialize_population((8, 16, 3), rng, InitializationConfig(population_size=3))
        assert all(ind.genome.shape == (8, 16, 3) for ind in population)

    def test_values_within_bounds(self):
        rng = np.random.default_rng(0)
        config = InitializationConfig(population_size=20, gaussian_sigma=500.0)
        population = initialize_population((8, 16, 3), rng, config)
        for individual in population:
            assert np.abs(individual.genome).max() <= 255.0

    def test_individuals_unevaluated(self):
        rng = np.random.default_rng(0)
        population = initialize_population((8, 16, 3), rng, InitializationConfig(population_size=3))
        assert all(not ind.is_evaluated for ind in population)

    def test_random_individuals_are_distinct(self):
        rng = np.random.default_rng(0)
        population = initialize_population((8, 16, 3), rng, InitializationConfig(population_size=6))
        genomes = [ind.genome for ind in population[:-1]]
        for i in range(len(genomes)):
            for j in range(i + 1, len(genomes)):
                assert not np.allclose(genomes[i], genomes[j])

    def test_population_of_one_with_zero_mask(self):
        rng = np.random.default_rng(0)
        population = initialize_population((4, 4, 3), rng, InitializationConfig(population_size=1))
        assert len(population) == 1
        assert np.allclose(population[0].genome, 0.0)


class TestSparseBiasedInitialization:
    """The sparse-biased option (PR 4 satellite; ROADMAP sparsity-adaptive
    regime, first step): part of the initial population confined to small
    random patches so short attacks start inside the incremental path's
    sparse-mask sweet spot.  Default off — and bit-exact off."""

    SHAPE = (16, 32, 3)

    def test_default_path_untouched(self):
        """sparse_fraction=0 consumes the identical RNG sequence: the
        population is draw-for-draw equal to one built by a config that
        never heard of the sparse fields."""
        baseline = initialize_population(
            self.SHAPE, np.random.default_rng(42),
            InitializationConfig(population_size=12),
        )
        explicit = initialize_population(
            self.SHAPE, np.random.default_rng(42),
            InitializationConfig(population_size=12, sparse_fraction=0.0),
        )
        assert len(baseline) == len(explicit)
        for left, right in zip(baseline, explicit):
            assert np.array_equal(left.genome, right.genome)

    def test_dense_prefix_identical_when_sparse_enabled(self):
        """Enabling the sparse tail never changes the dense individuals'
        draws: the first num_dense genomes match the all-dense run."""
        dense_run = initialize_population(
            self.SHAPE, np.random.default_rng(7),
            InitializationConfig(population_size=11),
        )
        mixed_run = initialize_population(
            self.SHAPE, np.random.default_rng(7),
            InitializationConfig(population_size=11, sparse_fraction=0.4),
        )
        num_random = 10  # 11 minus the zero mask
        num_sparse = 4  # round(10 * 0.4)
        for left, right in zip(dense_run[: num_random - num_sparse], mixed_run):
            assert np.array_equal(left.genome, right.genome)

    def test_sparse_individuals_are_patch_confined(self):
        config = InitializationConfig(
            population_size=9, sparse_fraction=1.0, sparse_patch_fraction=0.05
        )
        population = initialize_population(self.SHAPE, np.random.default_rng(3), config)
        total = self.SHAPE[0] * self.SHAPE[1]
        for individual in population[:-1]:  # all random individuals are sparse
            bound = individual.metadata["dirty_bound"]
            r0, r1, c0, c1 = bound
            # the declared dirty bound covers the nonzero support exactly
            nonzero = np.argwhere(np.abs(individual.genome).max(axis=2) > 0)
            assert nonzero.size > 0
            assert nonzero[:, 0].min() >= r0 and nonzero[:, 0].max() < r1
            assert nonzero[:, 1].min() >= c0 and nonzero[:, 1].max() < c1
            # and the patch is actually small
            assert (r1 - r0) * (c1 - c0) <= max(1, int(0.1 * total))

    def test_sparse_count_follows_fraction(self):
        config = InitializationConfig(population_size=21, sparse_fraction=0.5)
        population = initialize_population(self.SHAPE, np.random.default_rng(5), config)
        sparse = [
            ind
            for ind in population
            if ind.metadata.get("dirty_bound") is not None
            and np.abs(ind.genome).max() > 0
        ]
        assert len(sparse) == 10  # round(20 * 0.5)

    def test_sparse_values_respect_bounds(self):
        config = InitializationConfig(
            population_size=8, sparse_fraction=1.0, gaussian_sigma=500.0
        )
        population = initialize_population(self.SHAPE, np.random.default_rng(9), config)
        for individual in population:
            assert np.abs(individual.genome).max() <= 255.0

    def test_invalid_sparse_values_rejected(self):
        with pytest.raises(ValueError):
            InitializationConfig(sparse_fraction=1.5)
        with pytest.raises(ValueError):
            InitializationConfig(sparse_patch_fraction=0.0)
