"""Tests for population initialisation."""

import numpy as np
import pytest

from repro.nsga.initialization import InitializationConfig, initialize_population


class TestInitializationConfig:
    def test_defaults_match_paper(self):
        config = InitializationConfig()
        assert config.population_size == 101
        assert config.include_zero_mask is True
        assert config.max_value == 255.0

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            InitializationConfig(population_size=0)
        with pytest.raises(ValueError):
            InitializationConfig(gaussian_sigma=-1.0)
        with pytest.raises(ValueError):
            InitializationConfig(salt_and_pepper_fraction=2.0)


class TestInitializePopulation:
    def test_population_size(self):
        rng = np.random.default_rng(0)
        population = initialize_population((8, 16, 3), rng, InitializationConfig(population_size=11))
        assert len(population) == 11

    def test_zero_mask_included(self):
        rng = np.random.default_rng(0)
        population = initialize_population((8, 16, 3), rng, InitializationConfig(population_size=5))
        zero_masks = [ind for ind in population if np.allclose(ind.genome, 0.0)]
        assert len(zero_masks) >= 1

    def test_zero_mask_excluded_when_disabled(self):
        rng = np.random.default_rng(0)
        config = InitializationConfig(population_size=5, include_zero_mask=False, gaussian_sigma=10.0)
        population = initialize_population((8, 16, 3), rng, config)
        zero_masks = [ind for ind in population if np.allclose(ind.genome, 0.0)]
        assert len(zero_masks) == 0

    def test_genome_shape(self):
        rng = np.random.default_rng(0)
        population = initialize_population((8, 16, 3), rng, InitializationConfig(population_size=3))
        assert all(ind.genome.shape == (8, 16, 3) for ind in population)

    def test_values_within_bounds(self):
        rng = np.random.default_rng(0)
        config = InitializationConfig(population_size=20, gaussian_sigma=500.0)
        population = initialize_population((8, 16, 3), rng, config)
        for individual in population:
            assert np.abs(individual.genome).max() <= 255.0

    def test_individuals_unevaluated(self):
        rng = np.random.default_rng(0)
        population = initialize_population((8, 16, 3), rng, InitializationConfig(population_size=3))
        assert all(not ind.is_evaluated for ind in population)

    def test_random_individuals_are_distinct(self):
        rng = np.random.default_rng(0)
        population = initialize_population((8, 16, 3), rng, InitializationConfig(population_size=6))
        genomes = [ind.genome for ind in population[:-1]]
        for i in range(len(genomes)):
            for j in range(i + 1, len(genomes)):
                assert not np.allclose(genomes[i], genomes[j])

    def test_population_of_one_with_zero_mask(self):
        rng = np.random.default_rng(0)
        population = initialize_population((4, 4, 3), rng, InitializationConfig(population_size=1))
        assert len(population) == 1
        assert np.allclose(population[0].genome, 0.0)
