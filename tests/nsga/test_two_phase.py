"""Two-phase bounded-error search: driver logic and exactness guarantees.

The contract under test: with ``fast_search`` on, the evolutionary loop may
evaluate at an approximate fidelity, but the returned population always
carries objective vectors produced by the exact evaluation path — bit-equal
to evaluating the same genomes from scratch without fast search.  The
evaluation cache is keyed by ``(fidelity, genome digest)`` so approximate
vectors can never answer exact requests (the stale-fidelity regression that
motivated the key change), and the default configuration stays bit- and
draw-identical to an exact-only run.
"""

import numpy as np
import pytest

from repro.core.objectives import ButterflyObjectives
from repro.nsga.algorithm import NSGAConfig, NSGAII
from repro.nsga.initialization import InitializationConfig
from repro.nsga.mutation import MutationConfig


class FidelityAwareObjective:
    """Toy objective whose approximate values are deliberately wrong.

    Exact fidelity returns the true sphere objectives; any approximate
    fidelity returns values shifted by a large constant.  If approximate
    vectors ever leak into the exact re-score (stale cache, skipped
    re-evaluation), the final objectives are off by the shift and the
    bit-parity assertions fail loudly.
    """

    SHIFT = 1000.0

    def __init__(self):
        self.fidelity = None
        self.calls_by_fidelity = {}

    def set_fidelity(self, value):
        self.fidelity = value

    @property
    def fidelity_tag(self):
        return "exact" if self.fidelity is None else str(self.fidelity)

    def exact(self, genome):
        x = float(genome.mean()) / 50.0
        return np.array([x**2, (x - 2.0) ** 2])

    def __call__(self, genome):
        key = self.fidelity_tag
        self.calls_by_fidelity[key] = self.calls_by_fidelity.get(key, 0) + 1
        values = self.exact(genome)
        if self.fidelity is not None:
            values = values + self.SHIFT
        return values


def _config(**overrides):
    base = dict(
        num_iterations=6,
        population_size=10,
        mutation=MutationConfig(probability=0.45, window_fraction=0.05),
        initialization=InitializationConfig(population_size=10, gaussian_sigma=60.0),
        seed=3,
    )
    base.update(overrides)
    return NSGAConfig(**base)


class TestDriver:
    def test_fast_search_requires_set_fidelity(self):
        def plain(genome):
            return np.array([0.0, 0.0])

        with pytest.raises(ValueError, match="set_fidelity"):
            NSGAII(plain, (4, 4), _config(fast_search=True))

    def test_rescore_every_must_be_non_negative(self):
        with pytest.raises(ValueError, match="rescore_every"):
            _config(rescore_every=-1)

    def test_final_objectives_are_exact(self):
        objective = FidelityAwareObjective()
        result = NSGAII(
            objective,
            (6, 8),
            _config(fast_search=True, search_fidelity="windowed"),
            constraint=np.round,
        ).run()
        for individual in result.population:
            assert np.array_equal(
                individual.objectives, objective.exact(individual.genome)
            )
        assert objective.calls_by_fidelity.get("windowed", 0) > 0
        assert objective.calls_by_fidelity.get("exact", 0) > 0
        # The run must exit at exact fidelity so downstream consumers (the
        # attack's front re-prediction) see the exact configuration.
        assert objective.fidelity is None

    def test_periodic_rescore_final_objectives_still_exact(self):
        objective = FidelityAwareObjective()
        result = NSGAII(
            objective,
            (6, 8),
            _config(fast_search=True, rescore_every=2),
            constraint=np.round,
        ).run()
        for individual in result.population:
            assert np.array_equal(
                individual.objectives, objective.exact(individual.genome)
            )

    def test_history_carries_fidelity_only_when_fast(self):
        objective = FidelityAwareObjective()
        fast = NSGAII(
            objective, (6, 8), _config(fast_search=True), constraint=np.round
        ).run()
        assert all(entry["fidelity"] == "windowed" for entry in fast.history)
        exact_only = NSGAII(
            FidelityAwareObjective(), (6, 8), _config(), constraint=np.round
        ).run()
        assert all("fidelity" not in entry for entry in exact_only.history)

    def test_default_run_never_calls_set_fidelity(self):
        objective = FidelityAwareObjective()
        NSGAII(objective, (6, 8), _config(), constraint=np.round).run()
        assert objective.calls_by_fidelity == {
            "exact": objective.calls_by_fidelity["exact"]
        }


class TestCacheFidelityKeys:
    def test_stale_fidelity_vectors_never_answer_exact_requests(self):
        """Regression: a genome evaluated approximately, then exactly, must
        get two evaluations — the digest alone is not a sufficient key."""
        objective = FidelityAwareObjective()
        algorithm = NSGAII(
            objective, (4, 4), _config(fast_search=True), constraint=np.round
        )
        from repro.nsga.individual import Individual

        genome = np.full((4, 4), 6.0)
        approx_individual = Individual(genome=genome.copy())
        algorithm._enter_fidelity("windowed")
        algorithm._evaluate([approx_individual])
        assert np.array_equal(
            approx_individual.objectives,
            objective.exact(genome) + FidelityAwareObjective.SHIFT,
        )

        exact_individual = Individual(genome=genome.copy())
        algorithm._enter_fidelity(None)
        algorithm._evaluate([exact_individual])
        assert np.array_equal(exact_individual.objectives, objective.exact(genome))

        # And the reverse direction: the exact vector is cached under the
        # exact namespace, approximate requests still see approximate values.
        algorithm._enter_fidelity("windowed")
        second_approx = Individual(genome=genome.copy())
        algorithm._evaluate([second_approx])
        assert np.array_equal(
            second_approx.objectives,
            objective.exact(genome) + FidelityAwareObjective.SHIFT,
        )

    def test_cache_hits_within_one_fidelity_still_work(self):
        objective = FidelityAwareObjective()
        algorithm = NSGAII(
            objective, (4, 4), _config(fast_search=True), constraint=np.round
        )
        from repro.nsga.individual import Individual

        genome = np.full((4, 4), 3.0)
        algorithm._enter_fidelity("windowed")
        algorithm._evaluate([Individual(genome=genome.copy())])
        calls_before = dict(objective.calls_by_fidelity)
        algorithm._evaluate([Individual(genome=genome.copy())])
        assert objective.calls_by_fidelity == calls_before
        assert algorithm.cache_hits == 1


@pytest.mark.parametrize("fidelity", ["windowed", "float32", "turbo", "surrogate"])
def test_end_to_end_front_bit_identical_to_exact_scoring(
    detr_detector, small_dataset, fidelity
):
    """The acceptance property on a real transformer objective: the final
    population's objective vectors equal a from-scratch exact evaluation
    of the same genomes, for every fidelity preset."""
    image = small_dataset[0].image
    objective = ButterflyObjectives(
        detr_detector, image, use_activation_cache=True
    )
    config = NSGAConfig(
        num_iterations=3,
        population_size=8,
        seed=11,
        mutation=MutationConfig(window_fraction=0.002),
        initialization=InitializationConfig(
            sparse_fraction=1.0, sparse_patch_fraction=0.002
        ),
        fast_search=True,
        search_fidelity=fidelity,
    )
    result = NSGAII(objective, image.shape, config, constraint=np.round).run()
    reference = ButterflyObjectives(
        detr_detector, image, use_activation_cache=True
    )
    for individual in result.population:
        assert np.array_equal(
            individual.objectives, reference(individual.genome)
        )
