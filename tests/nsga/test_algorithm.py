"""Tests for the NSGA-II main loop on analytic benchmark problems."""

import numpy as np
import pytest

from repro.nsga.algorithm import NSGAConfig, NSGAII
from repro.nsga.front import pareto_front_objectives
from repro.nsga.initialization import InitializationConfig
from repro.nsga.mutation import MutationConfig


def _schaffer_objectives(genome: np.ndarray) -> np.ndarray:
    """Schaffer's problem N.1 on the genome mean: f1 = x^2, f2 = (x-2)^2.

    The Pareto-optimal set is x in [0, 2].  Genomes are image-like arrays;
    using their mean keeps the genome representation identical to the
    attack's filter masks.
    """
    x = float(genome.mean()) / 50.0
    return np.array([x**2, (x - 2.0) ** 2])


def _small_config(iterations=10, population=12, seed=0):
    return NSGAConfig(
        num_iterations=iterations,
        population_size=population,
        crossover_probability=0.5,
        mutation=MutationConfig(probability=0.9, window_fraction=0.1),
        initialization=InitializationConfig(
            population_size=population, gaussian_sigma=60.0
        ),
        seed=seed,
    )


class TestNSGAConfig:
    def test_paper_defaults_match_table_ii(self):
        config = NSGAConfig.paper_defaults()
        assert config.num_iterations == 100
        assert config.population_size == 101
        assert config.crossover_probability == 0.5
        assert config.mutation.probability == 0.45
        assert config.mutation.window_fraction == 0.01

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            NSGAConfig(num_iterations=-1)
        with pytest.raises(ValueError):
            NSGAConfig(population_size=1)
        with pytest.raises(ValueError):
            NSGAConfig(crossover_probability=1.5)


class TestNSGAIIRun:
    def test_population_size_maintained(self):
        optimizer = NSGAII(_schaffer_objectives, (4, 4, 3), _small_config())
        result = optimizer.run()
        assert len(result.population) == 12
        assert all(ind.is_evaluated for ind in result.population)

    def test_number_of_evaluations_accounted(self):
        config = _small_config(iterations=5, population=10)
        optimizer = NSGAII(_schaffer_objectives, (4, 4, 3), config)
        result = optimizer.run()
        # Initial population + one offspring population per generation.
        assert result.num_evaluations == 10 + 5 * 10

    def test_history_recorded_per_generation(self):
        config = _small_config(iterations=7)
        result = NSGAII(_schaffer_objectives, (4, 4, 3), config).run()
        assert len(result.history) == 7
        assert {"generation", "best_per_objective", "mean_per_objective", "front_size"} <= set(
            result.history[0].keys()
        )

    def test_front_quality_improves_over_random_init(self):
        config = _small_config(iterations=15, population=16)
        result = NSGAII(_schaffer_objectives, (4, 4, 3), config).run()
        front = pareto_front_objectives(result.population)
        # Pareto-optimal solutions of Schaffer N.1 satisfy f1 + f2 <= 4 (with
        # equality exactly on the front); the search should get close.
        assert np.min(front.sum(axis=1)) < 4.5

    def test_best_objective_is_monotone_non_increasing(self):
        config = _small_config(iterations=12)
        result = NSGAII(_schaffer_objectives, (4, 4, 3), config).run()
        best_f1 = [entry["best_per_objective"][0] for entry in result.history]
        # Elitism guarantees the best value never gets worse.
        assert all(b2 <= b1 + 1e-12 for b1, b2 in zip(best_f1, best_f1[1:]))

    def test_deterministic_given_seed(self):
        config = _small_config(seed=3)
        first = NSGAII(_schaffer_objectives, (4, 4, 3), config).run()
        second = NSGAII(_schaffer_objectives, (4, 4, 3), config).run()
        assert np.allclose(first.objectives_matrix(), second.objectives_matrix())

    def test_constraint_applied_to_all_genomes(self):
        def zero_first_row(genome):
            constrained = genome.copy()
            constrained[0] = 0.0
            return constrained

        config = _small_config(iterations=4)
        optimizer = NSGAII(
            _schaffer_objectives, (4, 4, 3), config, constraint=zero_first_row
        )
        result = optimizer.run()
        for individual in result.population:
            assert np.allclose(individual.genome[0], 0.0)

    def test_callback_invoked_every_generation(self):
        calls = []
        config = _small_config(iterations=5)
        NSGAII(
            _schaffer_objectives,
            (4, 4, 3),
            config,
            callback=lambda generation, population: calls.append(generation),
        ).run()
        assert calls == list(range(5))

    def test_zero_iterations_returns_initial_population(self):
        config = _small_config(iterations=0, population=8)
        result = NSGAII(_schaffer_objectives, (4, 4, 3), config).run()
        assert len(result.population) == 8
        assert result.history == []

    def test_pareto_front_property(self):
        config = _small_config(iterations=6)
        result = NSGAII(_schaffer_objectives, (4, 4, 3), config).run()
        front = result.pareto_front
        assert front
        assert all(ind.rank == 1 for ind in front)
