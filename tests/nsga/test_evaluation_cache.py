"""Regression tests for evaluation accounting and determinism.

``NSGAResult.num_evaluations`` keeps the classic NSGA-II meaning (initial
population + one per offspring); the evaluation cache must only change how
many of those reach the objective function (``cache_hits``), never the
count itself nor any result.  The determinism pins make sure the cache (or
a future change to it) cannot silently alter query counts or the seeded
search trajectory.
"""

import hashlib

import numpy as np

from repro.nsga.algorithm import NSGAConfig, NSGAII
from repro.nsga.initialization import InitializationConfig
from repro.nsga.mutation import MutationConfig


def _sphere_objectives(genome):
    x = float(genome.mean()) / 50.0
    return np.array([x**2, (x - 2.0) ** 2])


def _config(seed=0, batch_evaluation=True, evaluation_cache=True):
    return NSGAConfig(
        num_iterations=6,
        population_size=10,
        crossover_probability=0.5,
        mutation=MutationConfig(probability=0.45, window_fraction=0.05),
        initialization=InitializationConfig(population_size=10, gaussian_sigma=60.0),
        seed=seed,
        batch_evaluation=batch_evaluation,
        evaluation_cache=evaluation_cache,
    )


def _run(seed=0, evaluation_cache=True):
    optimizer = NSGAII(
        objective_function=_sphere_objectives,
        genome_shape=(6, 8, 3),
        config=_config(seed=seed, evaluation_cache=evaluation_cache),
        constraint=np.round,
    )
    return optimizer.run()


def _population_digest(result):
    digest = hashlib.sha256()
    for individual in result.population:
        digest.update(np.ascontiguousarray(individual.genome).tobytes())
    return digest.hexdigest()


class TestEvaluationAccounting:
    def test_num_evaluations_is_population_plus_offspring(self):
        result = _run()
        assert result.num_evaluations == 10 + 6 * 10

    def test_cache_cannot_change_num_evaluations(self):
        assert _run(evaluation_cache=True).num_evaluations == (
            _run(evaluation_cache=False).num_evaluations
        )

    def test_num_queries_accounts_for_cache_hits(self):
        result = _run()
        assert result.num_queries == result.num_evaluations - result.cache_hits
        assert _run(evaluation_cache=False).cache_hits == 0

    def test_rounded_genomes_produce_cache_hits(self):
        # Integer-rounded genomes (the attack's mask encoding) duplicate
        # often enough that a seeded run must save at least some queries.
        result = _run()
        assert result.cache_hits > 0


class TestDeterminism:
    def test_same_seed_same_population_hash(self):
        first, second = _run(seed=3), _run(seed=3)
        assert _population_digest(first) == _population_digest(second)
        assert first.num_evaluations == second.num_evaluations
        assert first.cache_hits == second.cache_hits
        assert np.array_equal(first.objectives_matrix(), second.objectives_matrix())

    def test_cache_does_not_change_trajectory(self):
        cached, uncached = _run(seed=5), _run(seed=5, evaluation_cache=False)
        assert _population_digest(cached) == _population_digest(uncached)
        assert np.array_equal(cached.objectives_matrix(), uncached.objectives_matrix())

    def test_different_seeds_diverge(self):
        assert _population_digest(_run(seed=0)) != _population_digest(_run(seed=1))
