"""Tests for Pareto dominance and fast non-dominated sorting."""

import numpy as np
import pytest

from repro.nsga.individual import Individual
from repro.nsga.sorting import dominates, fast_non_dominated_sort, pareto_ranks


def _population(objective_vectors):
    return [
        Individual(genome=np.zeros(1), objectives=np.asarray(vector, dtype=float))
        for vector in objective_vectors
    ]


class TestDominates:
    def test_strict_domination(self):
        assert dominates([1.0, 1.0], [2.0, 2.0])
        assert not dominates([2.0, 2.0], [1.0, 1.0])

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates([1.0, 1.0], [1.0, 1.0])

    def test_partial_improvement_dominates(self):
        assert dominates([1.0, 2.0], [1.0, 3.0])

    def test_tradeoff_is_non_dominated(self):
        assert not dominates([1.0, 3.0], [2.0, 2.0])
        assert not dominates([2.0, 2.0], [1.0, 3.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            dominates([1.0], [1.0, 2.0])


class TestFastNonDominatedSort:
    def test_single_front(self):
        population = _population([[1.0, 3.0], [2.0, 2.0], [3.0, 1.0]])
        fronts = fast_non_dominated_sort(population)
        assert len(fronts) == 1
        assert sorted(fronts[0]) == [0, 1, 2]
        assert all(ind.rank == 1 for ind in population)

    def test_two_fronts(self):
        population = _population([[1.0, 1.0], [2.0, 2.0], [0.5, 3.0]])
        fronts = fast_non_dominated_sort(population)
        assert sorted(fronts[0]) == [0, 2]
        assert fronts[1] == [1]
        assert population[1].rank == 2

    def test_chain_of_dominated_solutions(self):
        population = _population([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0], [4.0, 4.0]])
        fronts = fast_non_dominated_sort(population)
        assert [len(front) for front in fronts] == [1, 1, 1, 1]
        assert [population[front[0]].rank for front in fronts] == [1, 2, 3, 4]

    def test_duplicate_objectives_share_a_front(self):
        population = _population([[1.0, 1.0], [1.0, 1.0]])
        fronts = fast_non_dominated_sort(population)
        assert len(fronts) == 1
        assert len(fronts[0]) == 2

    def test_three_objectives(self):
        population = _population(
            [[1.0, 2.0, 3.0], [3.0, 2.0, 1.0], [2.0, 2.0, 2.0], [3.0, 3.0, 3.0]]
        )
        fronts = fast_non_dominated_sort(population)
        assert sorted(fronts[0]) == [0, 1, 2]
        assert fronts[1] == [3]

    def test_unevaluated_individual_rejected(self):
        population = [Individual(genome=np.zeros(1))]
        with pytest.raises(ValueError):
            fast_non_dominated_sort(population)

    def test_pareto_ranks_helper(self):
        population = _population([[1.0, 1.0], [2.0, 2.0]])
        ranks = pareto_ranks(population)
        assert list(ranks) == [1, 2]

    def test_every_individual_assigned_to_exactly_one_front(self):
        rng = np.random.default_rng(0)
        population = _population(rng.uniform(size=(30, 3)))
        fronts = fast_non_dominated_sort(population)
        flattened = sorted(index for front in fronts for index in front)
        assert flattened == list(range(30))
