"""Tests for GA individuals."""

import numpy as np

from repro.nsga.individual import Individual


class TestIndividual:
    def test_unevaluated_by_default(self):
        individual = Individual(genome=np.zeros((4, 4, 3)))
        assert not individual.is_evaluated
        assert individual.num_objectives == 0
        assert individual.rank is None
        assert individual.crowding is None

    def test_set_objectives(self):
        individual = Individual(genome=np.zeros(3))
        individual.set_objectives([1.0, 2.0, 3.0])
        assert individual.is_evaluated
        assert individual.num_objectives == 3
        assert individual.objectives.dtype == np.float64

    def test_copy_is_deep_for_genome(self):
        individual = Individual(genome=np.zeros(3), objectives=np.array([1.0]))
        individual.rank = 1
        clone = individual.copy()
        clone.genome[0] = 5.0
        assert individual.genome[0] == 0.0
        assert clone.rank == 1
        assert clone.objectives is not individual.objectives

    def test_reset_evaluation(self):
        individual = Individual(genome=np.zeros(3), objectives=np.array([1.0]))
        individual.rank = 2
        individual.crowding = 0.5
        individual.reset_evaluation()
        assert not individual.is_evaluated
        assert individual.rank is None
        assert individual.crowding is None

    def test_metadata_dict(self):
        individual = Individual(genome=np.zeros(3))
        individual.metadata["origin"] = "mutation"
        assert individual.copy().metadata == {"origin": "mutation"}

    def test_objectives_coerced_to_array(self):
        individual = Individual(genome=np.zeros(3), objectives=[1, 2])
        assert isinstance(individual.objectives, np.ndarray)
