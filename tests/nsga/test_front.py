"""Tests for Pareto-front utilities."""

import numpy as np
import pytest

from repro.nsga.front import (
    best_per_objective,
    hypervolume,
    hypervolume_2d,
    nadir_reference,
    pareto_front,
    pareto_front_objectives,
)
from repro.nsga.individual import Individual


def _population(objective_vectors):
    return [
        Individual(genome=np.zeros(1), objectives=np.asarray(v, dtype=float))
        for v in objective_vectors
    ]


class TestParetoFront:
    def test_front_extraction(self):
        population = _population([[1.0, 3.0], [3.0, 1.0], [4.0, 4.0]])
        front = pareto_front(population)
        assert len(front) == 2
        assert population[2] not in front

    def test_empty_population(self):
        assert pareto_front([]) == []
        assert pareto_front_objectives([]).shape == (0, 0)

    def test_front_objectives_matrix(self):
        population = _population([[1.0, 3.0], [3.0, 1.0], [4.0, 4.0]])
        objectives = pareto_front_objectives(population)
        assert objectives.shape == (2, 2)


class TestBestPerObjective:
    def test_champions(self):
        population = _population([[1.0, 9.0, 5.0], [9.0, 1.0, 5.0], [5.0, 5.0, 0.0]])
        champions = best_per_objective(population)
        assert len(champions) == 3
        assert champions[0] is population[0]
        assert champions[1] is population[1]
        assert champions[2] is population[2]

    def test_empty_population(self):
        assert best_per_objective([]) == []

    def test_single_individual_is_champion_of_all(self):
        population = _population([[1.0, 2.0]])
        champions = best_per_objective(population)
        assert champions == [population[0], population[0]]


class TestHypervolume:
    def test_single_point(self):
        assert hypervolume_2d(np.array([[1.0, 1.0]]), (2.0, 2.0)) == pytest.approx(1.0)

    def test_two_non_dominated_points(self):
        points = np.array([[1.0, 2.0], [2.0, 1.0]])
        # Union of [1,3]x[2,3] and [2,3]x[1,3] relative to reference (3,3):
        # 2 + 2 - 1 = 3.
        assert hypervolume_2d(points, (3.0, 3.0)) == pytest.approx(3.0)

    def test_dominated_point_adds_nothing(self):
        base = hypervolume_2d(np.array([[1.0, 1.0]]), (3.0, 3.0))
        with_dominated = hypervolume_2d(np.array([[1.0, 1.0], [2.0, 2.0]]), (3.0, 3.0))
        assert with_dominated == pytest.approx(base)

    def test_points_beyond_reference_ignored(self):
        assert hypervolume_2d(np.array([[5.0, 5.0]]), (3.0, 3.0)) == 0.0

    def test_empty_points(self):
        assert hypervolume_2d(np.zeros((0, 2)), (1.0, 1.0)) == 0.0

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            hypervolume_2d(np.zeros((3, 3)), (1.0, 1.0))

    def test_better_front_has_larger_hypervolume(self):
        weak = np.array([[2.0, 2.0]])
        strong = np.array([[1.0, 1.0]])
        reference = (3.0, 3.0)
        assert hypervolume_2d(strong, reference) > hypervolume_2d(weak, reference)


class TestGeneralHypervolume:
    """The any-dimension hypervolume plus its degenerate-front hardening."""

    def test_empty_front_is_zero(self):
        assert hypervolume(np.zeros((0, 3))) == 0.0

    def test_single_point_against_reference(self):
        assert hypervolume(np.array([[0.0, 0.0, 0.0]]), [1.0, 1.0, 1.0]) == 1.0

    def test_single_point_default_nadir_is_degenerate_zero(self):
        assert hypervolume(np.array([[2.0, 3.0]])) == 0.0

    def test_one_dimension(self):
        assert hypervolume(np.array([[2.0], [5.0]]), [10.0]) == 8.0

    def test_matches_hypervolume_2d(self):
        points = np.array([[0.1, 0.9], [0.5, 0.5], [0.9, 0.1], [0.7, 0.8]])
        assert hypervolume(points, [1.0, 1.0]) == pytest.approx(
            hypervolume_2d(points, (1.0, 1.0))
        )

    def test_dominated_and_duplicate_points_add_nothing(self):
        points = np.array([[0.2, 0.4, 0.3], [0.6, 0.1, 0.5]])
        noisy = np.vstack([points, points[0], [0.9, 0.9, 0.9]])
        reference = [1.0, 1.0, 1.0]
        assert hypervolume(noisy, reference) == pytest.approx(
            hypervolume(points, reference)
        )

    def test_permutation_invariant(self):
        rng = np.random.default_rng(3)
        points = rng.random((7, 3))
        reference = [1.5, 1.5, 1.5]
        base = hypervolume(points, reference)
        for seed in range(3):
            shuffled = points[np.random.default_rng(seed).permutation(7)]
            assert hypervolume(shuffled, reference) == pytest.approx(base)

    def test_adding_a_point_never_decreases_volume(self):
        rng = np.random.default_rng(4)
        points = rng.random((5, 3))
        reference = [1.2, 1.2, 1.2]
        base = hypervolume(points, reference)
        grown = np.vstack([points, [[0.05, 0.05, 0.05]]])
        assert hypervolume(grown, reference) >= base

    def test_points_beyond_reference_ignored(self):
        assert hypervolume(np.array([[2.0, 2.0, 2.0]]), [1.0, 1.0, 1.0]) == 0.0

    def test_collinear_degenerate_front(self):
        # All points share the second coordinate: zero thickness in that
        # dimension under the default nadir reference.
        points = np.array([[0.1, 0.5], [0.4, 0.5], [0.9, 0.5]])
        assert hypervolume(points) == 0.0
        assert hypervolume(points, [1.0, 1.0]) == pytest.approx(0.9 * 0.5)

    def test_non_finite_points_rejected(self):
        with pytest.raises(ValueError):
            hypervolume(np.array([[np.nan, 1.0]]), [2.0, 2.0])
        with pytest.raises(ValueError):
            hypervolume(np.array([[1.0, 1.0]]), [np.inf, 2.0])

    def test_reference_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            hypervolume(np.array([[1.0, 1.0]]), [1.0, 1.0, 1.0])

    def test_nadir_reference_margin(self):
        points = np.array([[1.0, 4.0], [3.0, 2.0]])
        assert np.array_equal(nadir_reference(points), [3.0, 4.0])
        assert np.array_equal(nadir_reference(points, margin=0.5), [3.5, 4.5])
        with pytest.raises(ValueError):
            nadir_reference(np.zeros((0, 2)))
