"""Tests for Pareto-front utilities."""

import numpy as np
import pytest

from repro.nsga.front import (
    best_per_objective,
    hypervolume_2d,
    pareto_front,
    pareto_front_objectives,
)
from repro.nsga.individual import Individual


def _population(objective_vectors):
    return [
        Individual(genome=np.zeros(1), objectives=np.asarray(v, dtype=float))
        for v in objective_vectors
    ]


class TestParetoFront:
    def test_front_extraction(self):
        population = _population([[1.0, 3.0], [3.0, 1.0], [4.0, 4.0]])
        front = pareto_front(population)
        assert len(front) == 2
        assert population[2] not in front

    def test_empty_population(self):
        assert pareto_front([]) == []
        assert pareto_front_objectives([]).shape == (0, 0)

    def test_front_objectives_matrix(self):
        population = _population([[1.0, 3.0], [3.0, 1.0], [4.0, 4.0]])
        objectives = pareto_front_objectives(population)
        assert objectives.shape == (2, 2)


class TestBestPerObjective:
    def test_champions(self):
        population = _population([[1.0, 9.0, 5.0], [9.0, 1.0, 5.0], [5.0, 5.0, 0.0]])
        champions = best_per_objective(population)
        assert len(champions) == 3
        assert champions[0] is population[0]
        assert champions[1] is population[1]
        assert champions[2] is population[2]

    def test_empty_population(self):
        assert best_per_objective([]) == []

    def test_single_individual_is_champion_of_all(self):
        population = _population([[1.0, 2.0]])
        champions = best_per_objective(population)
        assert champions == [population[0], population[0]]


class TestHypervolume:
    def test_single_point(self):
        assert hypervolume_2d(np.array([[1.0, 1.0]]), (2.0, 2.0)) == pytest.approx(1.0)

    def test_two_non_dominated_points(self):
        points = np.array([[1.0, 2.0], [2.0, 1.0]])
        # Union of [1,3]x[2,3] and [2,3]x[1,3] relative to reference (3,3):
        # 2 + 2 - 1 = 3.
        assert hypervolume_2d(points, (3.0, 3.0)) == pytest.approx(3.0)

    def test_dominated_point_adds_nothing(self):
        base = hypervolume_2d(np.array([[1.0, 1.0]]), (3.0, 3.0))
        with_dominated = hypervolume_2d(np.array([[1.0, 1.0], [2.0, 2.0]]), (3.0, 3.0))
        assert with_dominated == pytest.approx(base)

    def test_points_beyond_reference_ignored(self):
        assert hypervolume_2d(np.array([[5.0, 5.0]]), (3.0, 3.0)) == 0.0

    def test_empty_points(self):
        assert hypervolume_2d(np.zeros((0, 2)), (1.0, 1.0)) == 0.0

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            hypervolume_2d(np.zeros((3, 3)), (1.0, 1.0))

    def test_better_front_has_larger_hypervolume(self):
        weak = np.array([[2.0, 2.0]])
        strong = np.array([[1.0, 1.0]])
        reference = (3.0, 3.0)
        assert hypervolume_2d(strong, reference) > hypervolume_2d(weak, reference)
