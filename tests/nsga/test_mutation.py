"""Tests for the paper's four mutation operators."""

import numpy as np
import pytest

from repro.nsga.mutation import (
    MutationConfig,
    complement_mutation,
    inversion_mutation,
    mutate,
    random_value_mutation,
    shuffle_mutation,
)


@pytest.fixture()
def genome(rng):
    return rng.integers(-255, 256, size=(16, 24, 3)).astype(np.float64)


class TestMutationConfig:
    def test_defaults_match_table_ii(self):
        config = MutationConfig()
        assert config.probability == 0.45
        assert config.window_fraction == 0.01
        assert config.max_value == 255.0
        assert len(config.operators) == 4

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            MutationConfig(probability=1.5)
        with pytest.raises(ValueError):
            MutationConfig(window_fraction=0.0)
        with pytest.raises(ValueError):
            MutationConfig(max_value=-1.0)
        with pytest.raises(ValueError):
            MutationConfig(operators=("complement", "teleport"))
        with pytest.raises(ValueError):
            MutationConfig(operators=())


class TestWindowFraction:
    @pytest.mark.parametrize(
        "operator",
        [complement_mutation, shuffle_mutation, random_value_mutation],
    )
    def test_at_most_window_fraction_pixels_change(self, operator, genome, rng):
        mutated = operator(genome, rng, window_fraction=0.01)
        changed_pixels = np.any(mutated != genome, axis=2).sum()
        max_allowed = max(1, int(round(0.01 * genome.shape[0] * genome.shape[1])))
        assert changed_pixels <= max_allowed

    def test_inversion_window_is_bounded(self, genome, rng):
        mutated = inversion_mutation(genome, rng, window_fraction=0.01)
        changed_pixels = np.any(mutated != genome, axis=2).sum()
        # The inversion uses a square window of roughly window_fraction
        # pixels (at least 2x2).
        assert changed_pixels <= 4 * max(4, int(0.01 * genome.shape[0] * genome.shape[1]))


class TestOperators:
    def test_complement_maps_to_signed_complement(self, rng):
        genome = np.full((10, 10, 3), 200.0)
        mutated = complement_mutation(genome, rng, window_fraction=0.05)
        changed = mutated[mutated != genome]
        assert np.allclose(changed, 55.0)

    def test_complement_of_zero_goes_to_max(self, rng):
        genome = np.zeros((10, 10, 3))
        mutated = complement_mutation(genome, rng, window_fraction=0.05, max_value=255.0)
        changed = mutated[mutated != genome]
        assert np.allclose(np.abs(changed), 255.0)

    def test_shuffle_preserves_multiset(self, genome, rng):
        mutated = shuffle_mutation(genome, rng, window_fraction=0.1)
        assert np.allclose(np.sort(mutated.ravel()), np.sort(genome.ravel()))

    def test_random_value_stays_in_range(self, genome, rng):
        mutated = random_value_mutation(genome, rng, window_fraction=0.1, max_value=255.0)
        assert np.abs(mutated).max() <= 255.0

    def test_inversion_preserves_multiset(self, genome, rng):
        mutated = inversion_mutation(genome, rng, window_fraction=0.05)
        assert np.allclose(np.sort(mutated.ravel()), np.sort(genome.ravel()))

    def test_operators_do_not_modify_input(self, genome, rng):
        original = genome.copy()
        complement_mutation(genome, rng)
        shuffle_mutation(genome, rng)
        random_value_mutation(genome, rng)
        inversion_mutation(genome, rng)
        assert np.allclose(genome, original)


class TestMutateDispatch:
    def test_zero_probability_returns_copy(self, genome, rng):
        config = MutationConfig(probability=0.0)
        mutated = mutate(genome, rng, config)
        assert np.allclose(mutated, genome)
        assert mutated is not genome

    def test_probability_one_always_mutates_or_shuffles(self, genome):
        # With probability 1 an operator is always applied; shuffling a
        # window may occasionally leave values identical, so check over
        # several seeds that at least one mutation changed the genome.
        changed = False
        for seed in range(5):
            mutated = mutate(genome, np.random.default_rng(seed), MutationConfig(probability=1.0))
            if not np.allclose(mutated, genome):
                changed = True
                break
        assert changed

    def test_restricted_operator_set(self, genome):
        config = MutationConfig(probability=1.0, operators=("complement",))
        rng = np.random.default_rng(0)
        mutated = mutate(genome, rng, config)
        changed_mask = mutated != genome
        values = mutated[changed_mask]
        originals = genome[changed_mask]
        signs = np.where(originals >= 0, 1.0, -1.0)
        assert np.allclose(values, signs * 255.0 - originals)

    def test_default_config_used_when_none(self, genome, rng):
        mutated = mutate(genome, rng, None)
        assert mutated.shape == genome.shape
