"""Dirty-region bound propagation through the genetic operators.

The tracked crossover/mutation variants return an O(1) bounding box that
must (a) cover every nonzero pixel of the produced child — the incremental
inference path relies on the bound being a superset — and (b) consume
exactly the same random draws as the untracked forms, so seeded runs are
unchanged.
"""

import numpy as np
import pytest

from repro.nn.incremental import bbox_is_empty, mask_nonzero_bbox
from repro.nsga.algorithm import NSGAII, NSGAConfig
from repro.nsga.crossover import one_point_crossover, one_point_crossover_tracked
from repro.nsga.mutation import MutationConfig, mutate, mutate_tracked

SHAPE = (12, 20, 3)


def _sparse_genome(rng, shape=SHAPE):
    genome = np.zeros(shape)
    r = int(rng.integers(0, shape[0] - 2))
    c = int(rng.integers(0, shape[1] - 3))
    genome[r : r + 2, c : c + 3] = rng.integers(-255, 256, size=(2, 3, 3))
    return genome


def _bound_covers(bound, genome) -> bool:
    """True when the bound is a superset of the genome's nonzero support."""
    if bound is None:
        return True
    actual = mask_nonzero_bbox(genome)
    if bbox_is_empty(actual):
        return True
    return (
        bound[0] <= actual[0]
        and bound[1] >= actual[1]
        and bound[2] <= actual[2]
        and bound[3] >= actual[3]
    )


class TestCrossoverBounds:
    def test_same_draws_as_untracked(self):
        rng_a, rng_b = np.random.default_rng(0), np.random.default_rng(0)
        parents = np.random.default_rng(1)
        first, second = _sparse_genome(parents), _sparse_genome(parents)
        plain = one_point_crossover(first, second, rng_a, probability=0.7)
        tracked = one_point_crossover_tracked(first, second, rng_b, probability=0.7)
        assert np.array_equal(plain[0], tracked[0])
        assert np.array_equal(plain[1], tracked[1])
        # Generators advanced identically.
        assert rng_a.integers(0, 1 << 30) == rng_b.integers(0, 1 << 30)

    def test_bounds_cover_children(self):
        rng = np.random.default_rng(2)
        for trial in range(50):
            parents = np.random.default_rng(100 + trial)
            first, second = _sparse_genome(parents), _sparse_genome(parents)
            first_bound = mask_nonzero_bbox(first)
            second_bound = mask_nonzero_bbox(second)
            child_a, child_b, bound_a, bound_b = one_point_crossover_tracked(
                first,
                second,
                rng,
                probability=0.8,
                first_bound=first_bound,
                second_bound=second_bound,
            )
            assert _bound_covers(bound_a, child_a)
            assert _bound_covers(bound_b, child_b)

    def test_unknown_parent_bounds_still_produce_row_bands(self):
        rng = np.random.default_rng(3)
        first = np.random.default_rng(4).normal(size=SHAPE)
        second = np.random.default_rng(5).normal(size=SHAPE)
        child_a, child_b, bound_a, bound_b = one_point_crossover_tracked(
            first, second, rng, probability=1.0
        )
        # With unknown parents the bound is the union of the head/tail row
        # bands, i.e. a concrete box that still covers the children.
        assert bound_a is not None and bound_b is not None
        assert _bound_covers(bound_a, child_a)
        assert _bound_covers(bound_b, child_b)

    def test_no_crossover_passes_bounds_through(self):
        rng = np.random.default_rng(6)
        first, second = np.ones(SHAPE), np.ones(SHAPE)
        _, _, bound_a, bound_b = one_point_crossover_tracked(
            first, second, rng, probability=0.0,
            first_bound=(0, 1, 0, 1), second_bound=None,
        )
        assert bound_a == (0, 1, 0, 1)
        assert bound_b is None


class TestMutationBounds:
    @pytest.mark.parametrize(
        "operator", ["complement", "shuffle", "random", "inversion"]
    )
    def test_bounds_cover_children(self, operator):
        config = MutationConfig(probability=1.0, operators=(operator,))
        rng = np.random.default_rng(7)
        for trial in range(30):
            genome = _sparse_genome(np.random.default_rng(200 + trial))
            parent_bound = mask_nonzero_bbox(genome)
            child, bound = mutate_tracked(genome, rng, config, parent_bound)
            assert _bound_covers(bound, child)

    def test_same_draws_as_untracked(self):
        config = MutationConfig(probability=0.6)
        rng_a, rng_b = np.random.default_rng(8), np.random.default_rng(8)
        for trial in range(20):
            genome = _sparse_genome(np.random.default_rng(300 + trial))
            plain = mutate(genome, rng_a, config)
            tracked, _ = mutate_tracked(genome, rng_b, config)
            assert np.array_equal(plain, tracked)
        assert rng_a.integers(0, 1 << 30) == rng_b.integers(0, 1 << 30)

    def test_unknown_parent_bound_stays_unknown(self):
        config = MutationConfig(probability=1.0, operators=("random",))
        child, bound = mutate_tracked(
            np.ones(SHAPE), np.random.default_rng(9), config, parent_bound=None
        )
        assert bound is None

    def test_unmutated_child_keeps_parent_bound(self):
        config = MutationConfig(probability=0.0)
        parent_bound = (1, 3, 2, 5)
        child, bound = mutate_tracked(
            np.ones(SHAPE), np.random.default_rng(10), config, parent_bound
        )
        assert bound == parent_bound


class TestAlgorithmPropagation:
    def _objectives(self, genome):
        return np.asarray(
            [float(np.abs(genome).sum()), float((genome**2).sum())]
        )

    def test_offspring_carry_covering_bounds(self):
        optimizer = NSGAII(
            objective_function=self._objectives,
            genome_shape=SHAPE,
            config=NSGAConfig(num_iterations=0, population_size=8, seed=11),
        )
        population = optimizer._initial_population()
        optimizer._evaluate(population)
        optimizer._rank_population(population)
        offspring = optimizer._make_offspring(population)
        assert len(offspring) == 8
        for child in offspring:
            assert "dirty_bound" in child.metadata
            assert _bound_covers(child.metadata["dirty_bound"], child.genome)

    def test_zero_mask_elite_has_empty_bound(self):
        optimizer = NSGAII(
            objective_function=self._objectives,
            genome_shape=SHAPE,
            config=NSGAConfig(num_iterations=0, population_size=4, seed=12),
        )
        population = optimizer._initial_population()
        zero_members = [
            ind for ind in population if not np.any(ind.genome)
        ]
        assert zero_members
        assert zero_members[0].metadata["dirty_bound"] == (0, 0, 0, 0)

    def test_bounds_reach_batch_evaluator(self):
        captured = {}

        class Evaluator:
            def __call__(self, genome):
                return np.asarray([float(np.abs(genome).sum())])

            def evaluate_population(self, genomes, dirty_bounds=None):
                captured["bounds"] = dirty_bounds
                return np.abs(genomes).sum(axis=(1, 2, 3))[:, None]

        optimizer = NSGAII(
            objective_function=Evaluator(),
            genome_shape=SHAPE,
            config=NSGAConfig(num_iterations=1, population_size=6, seed=13),
        )
        optimizer.run()
        assert "bounds" in captured
        assert captured["bounds"] is not None
        assert len(captured["bounds"]) > 0

    def test_evaluator_without_bounds_parameter_still_works(self):
        class LegacyEvaluator:
            def __call__(self, genome):
                return np.asarray([float(np.abs(genome).sum())])

            def evaluate_population(self, genomes):
                return np.abs(genomes).sum(axis=(1, 2, 3))[:, None]

        optimizer = NSGAII(
            objective_function=LegacyEvaluator(),
            genome_shape=SHAPE,
            config=NSGAConfig(num_iterations=1, population_size=6, seed=14),
        )
        result = optimizer.run()
        assert len(result.population) == 6
