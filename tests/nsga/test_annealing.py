"""Intensity-annealed mutation schedule: shape, endpoints and draw parity.

Annealing changes the *number* of pixels the mutation operators sample and
therefore the RNG draw stream, so it is strictly opt-in: the default
(``annealing=None``) must leave seeded runs bit-identical, and a constant
schedule (``final == base``) must be draw-for-draw identical to no
annealing — both pinned here alongside the schedule arithmetic.
"""

import numpy as np
import pytest

from repro.nsga.algorithm import NSGAConfig, NSGAII
from repro.nsga.initialization import InitializationConfig
from repro.nsga.mutation import IntensityAnnealing, MutationConfig


def _objective(genome):
    x = float(genome.mean()) / 50.0
    return np.array([x**2, (x - 2.0) ** 2])


def _config(annealing=None, window_fraction=0.05, iterations=6):
    return NSGAConfig(
        num_iterations=iterations,
        population_size=10,
        mutation=MutationConfig(probability=0.45, window_fraction=window_fraction),
        initialization=InitializationConfig(population_size=10, gaussian_sigma=60.0),
        seed=5,
        annealing=annealing,
    )


def _run(config):
    return NSGAII(_objective, (6, 8), config, constraint=np.round).run()


def _genomes(result):
    return np.stack([individual.genome for individual in result.population])


class TestSchedule:
    def test_endpoints_are_exact(self):
        schedule = IntensityAnnealing(final_window_fraction=0.001)
        assert schedule.window_fraction(0.05, 0, 10) == 0.05
        assert schedule.window_fraction(0.05, 9, 10) == 0.001

    def test_single_generation_returns_base(self):
        schedule = IntensityAnnealing(final_window_fraction=0.001)
        assert schedule.window_fraction(0.05, 0, 1) == 0.05
        assert schedule.window_fraction(0.05, 0, 0) == 0.05

    def test_log_shape_is_geometric(self):
        schedule = IntensityAnnealing(final_window_fraction=0.01, shape="log")
        mid = schedule.window_fraction(0.04, 1, 3)
        assert mid == pytest.approx(np.sqrt(0.04 * 0.01))

    def test_linear_shape_is_arithmetic(self):
        schedule = IntensityAnnealing(final_window_fraction=0.01, shape="linear")
        mid = schedule.window_fraction(0.04, 1, 3)
        assert mid == pytest.approx(0.025)

    def test_monotone_decreasing_when_final_below_base(self):
        for shape in ("log", "linear"):
            schedule = IntensityAnnealing(final_window_fraction=0.001, shape=shape)
            values = [schedule.window_fraction(0.05, g, 20) for g in range(20)]
            assert all(a >= b for a, b in zip(values, values[1:]))

    def test_generation_is_clamped_to_range(self):
        schedule = IntensityAnnealing(final_window_fraction=0.001)
        assert schedule.window_fraction(0.05, -3, 10) == 0.05
        assert schedule.window_fraction(0.05, 99, 10) == 0.001

    def test_constant_schedule_returns_base_exactly(self):
        schedule = IntensityAnnealing(final_window_fraction=0.05, shape="log")
        for generation in range(10):
            assert schedule.window_fraction(0.05, generation, 10) == 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            IntensityAnnealing(final_window_fraction=0.0)
        with pytest.raises(ValueError):
            IntensityAnnealing(final_window_fraction=1.5)
        with pytest.raises(ValueError, match="shape"):
            IntensityAnnealing(final_window_fraction=0.1, shape="cosine")


class TestDrawParity:
    def test_default_none_is_bit_identical(self):
        baseline = _run(_config())
        again = _run(_config(annealing=None))
        assert np.array_equal(_genomes(baseline), _genomes(again))

    def test_constant_schedule_is_draw_identical_to_none(self):
        baseline = _run(_config())
        constant = _run(
            _config(annealing=IntensityAnnealing(final_window_fraction=0.05))
        )
        assert np.array_equal(_genomes(baseline), _genomes(constant))
        assert np.array_equal(
            baseline.objectives_matrix(), constant.objectives_matrix()
        )

    def test_annealed_run_changes_trajectory_but_stays_seeded(self):
        annealed = _config(
            annealing=IntensityAnnealing(final_window_fraction=0.002)
        )
        first = _run(annealed)
        second = _run(annealed)
        assert np.array_equal(_genomes(first), _genomes(second))
        baseline = _run(_config())
        assert not np.array_equal(_genomes(first), _genomes(baseline))
