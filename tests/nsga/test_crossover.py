"""Tests for crossover operators."""

import numpy as np
import pytest

from repro.nsga.crossover import one_point_crossover, uniform_crossover


class TestOnePointCrossover:
    def test_children_have_parent_shapes(self):
        rng = np.random.default_rng(0)
        a = np.zeros((4, 5, 3))
        b = np.ones((4, 5, 3))
        child_a, child_b = one_point_crossover(a, b, rng)
        assert child_a.shape == a.shape
        assert child_b.shape == b.shape

    def test_gene_conservation(self):
        # At every position, the multiset of values across the two children
        # equals the multiset across the two parents.
        rng = np.random.default_rng(1)
        a = np.zeros(20)
        b = np.ones(20)
        child_a, child_b = one_point_crossover(a, b, rng, probability=1.0)
        assert np.allclose(child_a + child_b, 1.0)

    def test_single_crossover_point(self):
        rng = np.random.default_rng(2)
        a = np.zeros(50)
        b = np.ones(50)
        child_a, _ = one_point_crossover(a, b, rng, probability=1.0)
        # The child must be a prefix of zeros followed by a suffix of ones.
        transitions = np.count_nonzero(np.diff(child_a))
        assert transitions == 1

    def test_zero_probability_returns_copies(self):
        rng = np.random.default_rng(3)
        a = np.zeros(10)
        b = np.ones(10)
        child_a, child_b = one_point_crossover(a, b, rng, probability=0.0)
        assert np.allclose(child_a, a)
        assert np.allclose(child_b, b)
        child_a[0] = 99.0
        assert a[0] == 0.0  # copies, not views

    def test_parents_unchanged(self):
        rng = np.random.default_rng(4)
        a = np.zeros(30)
        b = np.ones(30)
        one_point_crossover(a, b, rng, probability=1.0)
        assert np.allclose(a, 0.0) and np.allclose(b, 1.0)

    def test_shape_mismatch_rejected(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            one_point_crossover(np.zeros(3), np.zeros(4), rng)

    def test_invalid_probability_rejected(self):
        rng = np.random.default_rng(6)
        with pytest.raises(ValueError):
            one_point_crossover(np.zeros(3), np.zeros(3), rng, probability=2.0)

    def test_multidimensional_genomes_swap_pixels(self):
        rng = np.random.default_rng(7)
        a = np.zeros((8, 8, 3))
        b = np.ones((8, 8, 3))
        child_a, child_b = one_point_crossover(a, b, rng, probability=1.0)
        assert 0.0 < child_a.mean() < 1.0
        assert np.allclose(child_a + child_b, 1.0)


class TestUniformCrossover:
    def test_gene_conservation(self):
        rng = np.random.default_rng(0)
        a = np.zeros(100)
        b = np.ones(100)
        child_a, child_b = uniform_crossover(a, b, rng, probability=1.0)
        assert np.allclose(child_a + child_b, 1.0)

    def test_swap_rate_extremes(self):
        rng = np.random.default_rng(1)
        a = np.zeros(50)
        b = np.ones(50)
        child_a, _ = uniform_crossover(a, b, rng, probability=1.0, swap_rate=0.0)
        assert np.allclose(child_a, a)

    def test_invalid_swap_rate_rejected(self):
        with pytest.raises(ValueError):
            uniform_crossover(np.zeros(3), np.zeros(3), np.random.default_rng(0), swap_rate=1.5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            uniform_crossover(np.zeros(3), np.zeros(4), np.random.default_rng(0))
