"""Persistent-runtime parity, lifecycle, failure-recovery and shm tests.

The persistent backend's contract has three layers, each enforced here:

1. **Parity** — bit-identical results to ``SerialBackend`` for any worker
   count, submission order and seed derivation mode (the engine contract).
2. **Lifecycle** — the per-model invalidation the serial backend applies is
   broadcast to workers (the PR 6 bugfix), deferred for pinned models so
   multi-stage sweeps keep their bundles warm between stages.
3. **Failure** — a raising job surfaces a :class:`JobExecutionError` and
   broadcasts an abort-epoch so queued stale jobs are skipped, a killed
   worker is reaped and replaced without corrupting shared memory (the
   slot always holds a live replacement, even on the poison path), idle
   liveness is policed through heartbeats, and no segment survives
   ``close()``.
"""

import os
import time

import numpy as np
import pytest

from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.data.dataset import generate_dataset
from repro.detectors.training import TrainingConfig
from repro.experiments.engine import (
    BACKEND_NAMES,
    JobExecutionError,
    SerialBackend,
    execute_plan,
    resolve_backend,
)
from repro.experiments.jobs import (
    ExperimentPlan,
    JobOutcome,
    ModelSpec,
    build_attack_plan,
)
from repro.experiments.persistent import (
    PersistentPoolBackend,
    PersistentWorkerRuntime,
    WorkerCrashError,
)
from repro.experiments.shm import (
    SHARE_MIN_BYTES,
    SharedArrayAttachments,
    SharedScenePool,
    extract_shared_arrays,
    list_segments,
    restore_shared_arrays,
)
from repro.nsga.algorithm import NSGAConfig

LENGTH, WIDTH = 48, 96
SEEDS = (1,)
ARCHITECTURES = ("yolo", "detr")


@pytest.fixture(scope="module")
def training():
    return TrainingConfig(
        scenes_per_class=2,
        image_length=LENGTH,
        image_width=WIDTH,
        background_clusters=12,
    )


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(
        num_images=2, seed=5, image_length=LENGTH, image_width=WIDTH, half="left"
    )


@pytest.fixture(scope="module")
def attack_config():
    return AttackConfig(
        nsga=NSGAConfig(num_iterations=3, population_size=8, seed=0),
        region=HalfImageRegion("right"),
    )


@pytest.fixture(scope="module")
def plan(dataset, attack_config, training):
    return build_attack_plan(
        architectures=ARCHITECTURES,
        seeds=SEEDS,
        dataset=dataset,
        attack_config=attack_config,
        training=training,
    )


@pytest.fixture(scope="module")
def seeded_plan(dataset, attack_config, training):
    return build_attack_plan(
        architectures=ARCHITECTURES,
        seeds=SEEDS,
        dataset=dataset,
        attack_config=attack_config,
        training=training,
        experiment_seed=2023,
    )


@pytest.fixture(scope="module")
def serial_report(plan):
    return execute_plan(plan, SerialBackend())


@pytest.fixture(scope="module")
def seeded_serial_report(seeded_plan):
    return execute_plan(seeded_plan, SerialBackend())


def _result_fingerprint(result) -> tuple:
    solutions = tuple(
        (s.mask.values.tobytes(), s.intensity, s.degradation, s.distance, s.rank)
        for s in result.solutions
    )
    return (
        result.detector_name,
        result.num_evaluations,
        result.cache_hits,
        solutions,
    )


def _report_fingerprints(report) -> list:
    return [_result_fingerprint(outcome.result) for outcome in report.outcomes]


def _toy_config() -> AttackConfig:
    return AttackConfig(
        nsga=NSGAConfig(num_iterations=2, population_size=4, seed=7),
        region=HalfImageRegion("right"),
    )


# --- toy jobs (module level: they cross the process boundary) ---------------


class _CountingJob:
    def __init__(self, job_id: int, value: int):
        self.job_id = job_id
        self.value = value

    def execute(self, context):
        return JobOutcome(job_id=self.job_id, result=self.value * self.value)


class _FailingJob:
    def __init__(self, job_id: int):
        self.job_id = job_id

    def execute(self, context):
        raise ValueError("deliberate job failure")


class _KillOnceJob:
    """Kills its worker on first dispatch, completes on the retry."""

    def __init__(self, job_id: int, sentinel: str):
        self.job_id = job_id
        self.sentinel = sentinel

    def execute(self, context):
        if not os.path.exists(self.sentinel):
            with open(self.sentinel, "w"):
                pass
            os._exit(13)
        return JobOutcome(job_id=self.job_id, result="survived")


class _AlwaysKillJob:
    """Poison job: kills every worker it is dispatched to."""

    def __init__(self, job_id: int):
        self.job_id = job_id

    def execute(self, context):
        os._exit(13)


class _SleepJob:
    """Burns wall-clock so an abort broadcast can land while it is queued."""

    def __init__(self, job_id: int, seconds: float = 0.3):
        self.job_id = job_id
        self.seconds = seconds

    def execute(self, context):
        time.sleep(self.seconds)
        return JobOutcome(job_id=self.job_id, result="slept")


class _ArrayCarrier:
    def __init__(self, job_id: int, image):
        self.job_id = job_id
        self.image = image


# --- parity ------------------------------------------------------------------


class TestPersistentParity:
    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_matches_serial_bit_exactly(self, plan, serial_report, n_jobs):
        """Persistent sweeps are bit-identical to serial at any worker count,
        with shuffled submission covering out-of-order dispatch."""
        backend = PersistentPoolBackend(n_jobs=n_jobs, submission_seed=100 + n_jobs)
        try:
            report = execute_plan(plan, backend)
        finally:
            backend.close()
        assert _report_fingerprints(report) == _report_fingerprints(serial_report)
        assert report.backend == "persistent"
        assert set(report.per_worker) <= {f"worker-{i}" for i in range(n_jobs)}

    @pytest.mark.parametrize("n_jobs", [2])
    def test_matches_serial_with_derived_seeds(
        self, seeded_plan, seeded_serial_report, n_jobs
    ):
        backend = PersistentPoolBackend(n_jobs=n_jobs, submission_seed=7 * n_jobs)
        try:
            report = execute_plan(seeded_plan, backend)
        finally:
            backend.close()
        assert _report_fingerprints(report) == _report_fingerprints(
            seeded_serial_report
        )

    def test_runtime_reuse_across_plans_stays_bit_identical(
        self, plan, serial_report
    ):
        """The whole point of persistence: a second plan on warm workers
        (resident detectors, cached bundles) must change nothing."""
        backend = PersistentPoolBackend(n_jobs=2, submission_seed=1)
        try:
            cold = execute_plan(plan, backend)
            runtime = backend.runtime
            warm = execute_plan(plan, backend)
            assert backend.runtime is runtime  # same workers, not a restart
        finally:
            backend.close()
        assert _report_fingerprints(cold) == _report_fingerprints(serial_report)
        assert _report_fingerprints(warm) == _report_fingerprints(serial_report)

    def test_resolve_backend_knows_persistent(self):
        assert "persistent" in BACKEND_NAMES
        backend = resolve_backend("persistent", n_jobs=3)
        assert isinstance(backend, PersistentPoolBackend)
        assert backend.n_jobs == 3
        backend.close()  # never started: close is a safe no-op


# --- multi-stage sweeps ------------------------------------------------------


class TestMultiStageSweepParity:
    """Transfer and defense sweeps on a persistent backend vs serial."""

    def test_transfer_matrix_matches_serial_and_reuses_bundles(
        self, training, dataset
    ):
        from repro.experiments.transfer import run_transferability_experiment

        specs = [
            ModelSpec("yolo", 1, training=training),
            ModelSpec("detr", 1, training=training),
        ]
        image = dataset[0].image
        config = _toy_config()
        serial = run_transferability_experiment(
            specs, image, config, backend=SerialBackend()
        )
        backend = PersistentPoolBackend(n_jobs=2, submission_seed=9)
        try:
            persistent = run_transferability_experiment(
                specs, image, config, backend=backend
            )
        finally:
            backend.close()
        assert persistent.matrix.tobytes() == serial.matrix.tobytes()
        assert persistent.masks_intensity == serial.masks_intensity
        for left, right in zip(persistent.best_masks, serial.best_masks):
            assert np.array_equal(left, right)
        assert persistent.execution["backend"] == "persistent"
        # The warm-bundle guarantee: stage 2 (the matrix evaluation) lands
        # on workers still holding stage 1's pinned activation bundles, so
        # it hits instead of rebuilding — serial rebuilds its store between
        # stages and must re-miss.
        eval_stats = persistent.execution["stages"][1]["cache_stats"]
        assert eval_stats["hits"] > 0
        assert eval_stats["misses"] == 0
        serial_eval_stats = serial.execution["stages"][1]["cache_stats"]
        assert serial_eval_stats["misses"] > 0

    def test_defense_evaluation_matches_serial(self, training, dataset):
        from repro.defenses.augmentation import NoiseAugmentationConfig
        from repro.defenses.evaluation import evaluate_defense
        from repro.defenses.jobs import DefendedModelSpec

        undefended = ModelSpec("detr", 1, training=training)
        defended = DefendedModelSpec(
            base=undefended,
            augmentation=NoiseAugmentationConfig(augmented_copies=1),
            training=training,
        )
        sample = dataset[0]
        config = _toy_config()
        serial = evaluate_defense(
            undefended, defended, sample.image, sample.ground_truth, config
        )
        backend = PersistentPoolBackend(n_jobs=2, submission_seed=61)
        try:
            persistent = evaluate_defense(
                undefended,
                defended,
                sample.image,
                sample.ground_truth,
                config,
                backend=backend,
            )
        finally:
            backend.close()
        assert (
            persistent.undefended_result.fingerprint()
            == serial.undefended_result.fingerprint()
        )
        assert (
            persistent.defended_result.fingerprint()
            == serial.defended_result.fingerprint()
        )
        assert (
            persistent.undefended_best_degradation
            == serial.undefended_best_degradation
        )
        assert persistent.defended_best_degradation == serial.defended_best_degradation
        assert persistent.clean_recall_undefended == serial.clean_recall_undefended
        assert persistent.clean_recall_defended == serial.clean_recall_defended
        assert persistent.execution["backend"] == "persistent"


# --- lifecycle ---------------------------------------------------------------


class TestModelLifecycle:
    def _tiny_plan(self, training, scenes, architectures=("yolo",)):
        return build_attack_plan(
            architectures=architectures,
            seeds=SEEDS,
            dataset=scenes,
            attack_config=_toy_config(),
            training=training,
        )

    def test_finished_models_are_invalidated_on_workers(self, training, dataset):
        """The pooled cache-lifecycle bugfix: when a model's last job
        completes anywhere in the runtime, every worker drops its entries
        (the one-shot pool let dead models thrash worker LRUs forever)."""
        plan = self._tiny_plan(training, list(dataset), ARCHITECTURES)
        backend = PersistentPoolBackend(n_jobs=2, submission_seed=5)
        try:
            execute_plan(plan, backend)
            stats = backend.runtime.worker_cache_stats()
            assert set(stats) == {"worker-0", "worker-1"}
            assert all(payload is not None for payload in stats.values())
            # Every worker that built bundles also dropped them.
            assert all(payload["entries"] == 0 for payload in stats.values())
            total_invalidations = sum(p["invalidations"] for p in stats.values())
            total_misses = sum(p["misses"] for p in stats.values())
            assert total_misses > 0
            assert total_invalidations == total_misses  # each build later dropped
        finally:
            backend.close()

    def test_pinned_models_keep_entries_until_unpinned(self, training, dataset):
        plan = self._tiny_plan(training, [dataset[0]])
        specs = plan.model_specs()
        backend = PersistentPoolBackend(n_jobs=1)
        try:
            backend.pin_models(specs)
            execute_plan(plan, backend)
            pinned_stats = backend.runtime.worker_cache_stats()
            assert sum(p["entries"] for p in pinned_stats.values()) > 0
            backend.unpin_models(specs)
            unpinned_stats = backend.runtime.worker_cache_stats()
            assert sum(p["entries"] for p in unpinned_stats.values()) == 0
        finally:
            backend.close()


# --- failure handling --------------------------------------------------------


class TestFailureHandling:
    def test_raising_job_surfaces_job_execution_error(self):
        plan = ExperimentPlan(
            jobs=[_CountingJob(0, 2), _FailingJob(1), _CountingJob(2, 3)],
            attack_config=_toy_config(),
            name="failing",
        )
        backend = PersistentPoolBackend(n_jobs=2)
        try:
            with pytest.raises(JobExecutionError) as err:
                execute_plan(plan, backend)
            assert err.value.job_id == 1
            assert "ValueError" in str(err.value)
            assert "deliberate job failure" in err.value.worker_traceback
            # The runtime survives an aborted plan: stale results from the
            # failed epoch are dropped and the next plan runs clean.
            healthy = ExperimentPlan(
                jobs=[_CountingJob(i, i + 1) for i in range(4)],
                attack_config=_toy_config(),
                name="recovery",
            )
            report = execute_plan(healthy, backend)
            assert [o.result for o in report.outcomes] == [1, 4, 9, 16]
        finally:
            backend.close()

    def test_killed_worker_is_reaped_and_replaced(self, tmp_path):
        sentinel = str(tmp_path / "killed-once")
        plan = ExperimentPlan(
            jobs=[
                _CountingJob(0, 1),
                _KillOnceJob(1, sentinel),
                _CountingJob(2, 2),
                _CountingJob(3, 3),
            ],
            attack_config=_toy_config(),
            name="kill-once",
        )
        backend = PersistentPoolBackend(n_jobs=1)
        try:
            report = execute_plan(plan, backend)
            assert [o.job_id for o in report.outcomes] == [0, 1, 2, 3]
            assert report.outcomes[1].result == "survived"
            runtime = backend.runtime
            assert runtime.workers_respawned >= 1
            prefix = runtime.segment_prefix
        finally:
            backend.close()
        assert list_segments(prefix) == []  # reaped worker leaked nothing

    def test_poison_job_raises_worker_crash_error(self):
        plan = ExperimentPlan(
            jobs=[_AlwaysKillJob(0)],
            attack_config=_toy_config(),
            name="poison",
        )
        backend = PersistentPoolBackend(n_jobs=1, max_crashes_per_job=2)
        try:
            with pytest.raises(WorkerCrashError) as err:
                execute_plan(plan, backend)
            assert err.value.job_id == 0
            assert err.value.crashes == 2
        finally:
            backend.close()

    def test_backend_survives_poison_job_and_runs_next_plan(self):
        """Regression: the crash-budget raise used to leave the dead
        worker's corpse in its slot (closed task queue and all), so the
        *next* plan on the same backend crashed trying to fill it.  The
        slot must hold a live replacement before WorkerCrashError surfaces."""
        poison = ExperimentPlan(
            jobs=[_AlwaysKillJob(0)],
            attack_config=_toy_config(),
            name="poison",
        )
        backend = PersistentPoolBackend(n_jobs=1, max_crashes_per_job=2)
        try:
            with pytest.raises(WorkerCrashError):
                execute_plan(poison, backend)
            runtime = backend.runtime
            assert all(w.process.is_alive() for w in runtime._workers)
            healthy = ExperimentPlan(
                jobs=[_CountingJob(i, i + 1) for i in range(4)],
                attack_config=_toy_config(),
                name="after-poison",
            )
            report = execute_plan(healthy, backend)
            assert [o.result for o in report.outcomes] == [1, 4, 9, 16]
            prefix = runtime.segment_prefix
        finally:
            backend.close()
        assert list_segments(prefix) == []

    def test_abort_epoch_skips_stale_queued_jobs(self):
        """After a JobExecutionError aborts a plan, jobs of that plan still
        queued on workers must be *skipped*, not executed into the void."""
        plan = ExperimentPlan(
            jobs=[_FailingJob(0), _SleepJob(1), _SleepJob(2), _SleepJob(3)],
            attack_config=_toy_config(),
            name="stale-backlog",
        )
        backend = PersistentPoolBackend(n_jobs=1, prefetch=4)
        try:
            with pytest.raises(JobExecutionError):
                execute_plan(plan, backend)
            runtime = backend.runtime
            # A healthy plan on the same runtime still runs to completion
            # (its epoch is above the abort mark)...
            healthy = ExperimentPlan(
                jobs=[_CountingJob(i, i) for i in range(3)],
                attack_config=_toy_config(),
                name="after-abort",
            )
            report = execute_plan(healthy, backend)
            assert [o.result for o in report.outcomes] == [0, 1, 4]
            # ...and the worker's own counters prove the aborted plan's
            # backlog was dropped without execution: of the three sleep
            # jobs queued behind the failing one, at most one (already
            # dequeued when the abort landed) may have run.
            job_stats = runtime.worker_job_stats()
            skipped = sum(p["skipped_stale"] for p in job_stats.values())
            executed = sum(p["executed"] for p in job_stats.values())
            assert skipped >= 2
            assert executed <= 2 + len(healthy.jobs)
        finally:
            backend.close()

    def test_worker_cache_stats_survives_dead_idle_worker(self):
        """The stats wait polices liveness: a worker killed while idle is
        respawned and the request re-sent, instead of the old behaviour of
        hanging until the full timeout and raising TimeoutError."""
        plan = ExperimentPlan(
            jobs=[_CountingJob(i, i) for i in range(4)],
            attack_config=_toy_config(),
            name="stats-liveness",
        )
        backend = PersistentPoolBackend(n_jobs=2)
        try:
            execute_plan(plan, backend)
            runtime = backend.runtime
            runtime._workers[0].process.kill()
            runtime._workers[0].process.join(timeout=5.0)
            stats = runtime.worker_cache_stats(timeout=15.0)
            assert set(stats) == {"worker-0", "worker-1"}
            assert runtime.workers_respawned >= 1
        finally:
            backend.close()

    def test_close_leaves_no_shared_memory(self, training, dataset):
        plan = build_attack_plan(
            architectures=("yolo",),
            seeds=SEEDS,
            dataset=[dataset[0]],
            attack_config=_toy_config(),
            training=training,
        )
        backend = PersistentPoolBackend(n_jobs=2)
        report = execute_plan(plan, backend)
        assert len(report.outcomes) == 1
        prefix = backend.runtime.segment_prefix
        backend.close()
        assert list_segments(prefix) == []


# --- runtime bookkeeping -----------------------------------------------------


class TestRuntimeBookkeeping:
    def test_close_unregisters_the_atexit_hook(self, monkeypatch):
        """Every runtime registers close() as an atexit safety net; closing
        must unregister it, or cycled runtimes pin their resources (and an
        unbounded list of callbacks) until interpreter exit."""
        registered = []
        unregistered = []

        class _FakeAtexit:
            @staticmethod
            def register(func):
                registered.append(func)
                return func

            @staticmethod
            def unregister(func):
                unregistered.append(func)

        monkeypatch.setattr("repro.experiments.persistent.atexit", _FakeAtexit)
        runtime = PersistentWorkerRuntime(n_jobs=1)
        assert registered == [runtime.close]
        runtime.close()
        assert unregistered == [runtime.close]
        runtime.close()  # idempotent: no second unregister
        assert unregistered == [runtime.close]

    def test_finish_models_rejects_uncounted_spec(self):
        """Regression: an uncounted spec used to get a count invented for it
        (``remaining.get(spec, 1) - 1`` == 0), silently triggering a bogus
        invalidation broadcast.  Bookkeeping desync is now a hard error."""
        runtime = PersistentWorkerRuntime(n_jobs=1)
        try:
            remaining = {"counted": 2}
            runtime._finish_models(["counted"], remaining)
            assert remaining == {"counted": 1}
            with pytest.raises(RuntimeError, match="never counted"):
                runtime._finish_models(["phantom"], remaining)
        finally:
            runtime.close()


# --- shared-memory plumbing --------------------------------------------------


class TestSharedMemoryPlumbing:
    def test_scene_pool_interns_by_content(self):
        pool = SharedScenePool(prefix="tpool1")
        try:
            image = np.arange(SHARE_MIN_BYTES, dtype=np.float64)
            first = pool.share(image)
            second = pool.share(image.copy())
            assert first == second
            assert len(pool) == 1
            assert pool.share(image + 1.0) != first
            assert len(pool) == 2
            assert len(list_segments("tpool1")) == 2
        finally:
            pool.close()
        assert list_segments("tpool1") == []

    def test_extract_restore_roundtrip(self):
        pool = SharedScenePool(prefix="tpool2")
        attachments = SharedArrayAttachments()
        try:
            image = np.random.default_rng(0).uniform(
                0, 255, size=(LENGTH, WIDTH, 3)
            )
            job = _ArrayCarrier(0, image)
            slim, refs = extract_shared_arrays(job, pool)
            assert slim is not job and job.image is image  # original untouched
            assert slim.image is None and set(refs) == {"image"}
            restore_shared_arrays(slim, refs, attachments)
            assert np.array_equal(slim.image, image)
            assert not slim.image.flags.writeable
            # Second restore of the same segment reuses the attachment.
            assert restore_shared_arrays(
                _ArrayCarrier(1, None), refs, attachments
            ).image is slim.image
            assert len(attachments) == 1
        finally:
            attachments.close_all()
            pool.close()

    def test_small_arrays_stay_in_the_job(self):
        pool = SharedScenePool(prefix="tpool3")
        try:
            job = _ArrayCarrier(0, np.zeros(4))
            slim, refs = extract_shared_arrays(job, pool)
            assert slim is job and refs == {}
            assert len(pool) == 0
        finally:
            pool.close()
