"""Execution-engine parity: serial and pooled sweeps are bit-identical.

The engine's contract is that the work plan fully determines the sweep's
results: every backend (in-process serial, shuffled serial, process pools
of any worker count, any submission order) must produce bit-identical
``AttackResult``s for the same plan.  These tests enforce that contract at
``n_jobs ∈ {1, 2, 4}`` and against a hand-rolled copy of the historical
nested models × images loop.
"""

import numpy as np
import pytest

from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.data.dataset import generate_dataset
from repro.detectors.activation_cache import ActivationCacheStore, CacheStats
from repro.detectors.training import TrainingConfig
from repro.detectors.zoo import build_model_zoo
from repro.experiments.engine import (
    JobExecutionError,
    ProcessPoolBackend,
    SerialBackend,
    execute_plan,
    merge_execution_summaries,
    resolve_backend,
)
from repro.experiments.jobs import ExperimentPlan, build_attack_plan
from repro.experiments.runner import run_architecture_comparison
from repro.nsga.algorithm import NSGAConfig

LENGTH, WIDTH = 48, 96
SEEDS = (1,)
ARCHITECTURES = ("yolo", "detr")


@pytest.fixture(scope="module")
def training():
    return TrainingConfig(
        scenes_per_class=2,
        image_length=LENGTH,
        image_width=WIDTH,
        background_clusters=12,
    )


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(
        num_images=2, seed=5, image_length=LENGTH, image_width=WIDTH, half="left"
    )


@pytest.fixture(scope="module")
def attack_config():
    return AttackConfig(
        nsga=NSGAConfig(num_iterations=3, population_size=8, seed=0),
        region=HalfImageRegion("right"),
    )


@pytest.fixture(scope="module")
def plan(dataset, attack_config, training):
    return build_attack_plan(
        architectures=ARCHITECTURES,
        seeds=SEEDS,
        dataset=dataset,
        attack_config=attack_config,
        training=training,
    )


@pytest.fixture(scope="module")
def seeded_plan(dataset, attack_config, training):
    return build_attack_plan(
        architectures=ARCHITECTURES,
        seeds=SEEDS,
        dataset=dataset,
        attack_config=attack_config,
        training=training,
        experiment_seed=2023,
    )


@pytest.fixture(scope="module")
def serial_report(plan):
    return execute_plan(plan, SerialBackend())


@pytest.fixture(scope="module")
def seeded_serial_report(seeded_plan):
    return execute_plan(seeded_plan, SerialBackend())


def _result_fingerprint(result) -> tuple:
    """Everything an attack result asserts about the attack, exactly."""
    solutions = tuple(
        (
            s.mask.values.tobytes(),
            s.intensity,
            s.degradation,
            s.distance,
            s.rank,
        )
        for s in result.solutions
    )
    return (
        result.detector_name,
        result.num_evaluations,
        result.cache_hits,
        solutions,
    )


def _report_fingerprints(report) -> list:
    return [_result_fingerprint(outcome.result) for outcome in report.outcomes]


class TestSerialBackend:
    def test_reproduces_historical_nested_loop(
        self, plan, serial_report, dataset, attack_config, training
    ):
        """The engine's serial path equals the pre-engine runner bit for bit."""
        store = ActivationCacheStore(max_entries=attack_config.activation_cache_size)
        reference = []
        for architecture in ARCHITECTURES:
            for model in build_model_zoo(architecture, seeds=SEEDS, training=training):
                attack = ButterflyAttack(
                    model, attack_config, activation_store=store
                )
                for sample in dataset:
                    reference.append(attack.attack(sample.image))
                store.invalidate(model)

        assert len(reference) == len(serial_report.outcomes)
        for expected, outcome in zip(reference, serial_report.outcomes):
            assert _result_fingerprint(expected) == _result_fingerprint(outcome.result)

    def test_shuffled_execution_order_is_bit_identical(self, plan, serial_report):
        order = list(np.random.default_rng(17).permutation(len(plan.jobs)))
        shuffled = execute_plan(plan, SerialBackend(order=order))
        assert _report_fingerprints(shuffled) == _report_fingerprints(serial_report)

    def test_outcomes_reassembled_in_plan_order(self, plan):
        reversed_report = execute_plan(
            plan, SerialBackend(order=list(reversed(range(len(plan.jobs)))))
        )
        assert [o.job_id for o in reversed_report.outcomes] == [
            job.job_id for job in plan.jobs
        ]

    def test_provenance_attached(self, plan, serial_report):
        for job, outcome in zip(plan.jobs, serial_report.outcomes):
            assert outcome.result.architecture == job.model.label
            assert outcome.result.model_seed == job.model.seed
            assert outcome.result.scene_index == job.scene_index
            assert outcome.result.job_id == job.job_id


class TestProcessPoolParity:
    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_pool_matches_serial_bit_exactly(self, plan, serial_report, n_jobs):
        """Pooled sweeps are bit-identical to serial at any worker count.

        Submission order is shuffled (seeded per worker count) so the test
        also covers out-of-order completion, not just out-of-order results.
        """
        backend = ProcessPoolBackend(n_jobs=n_jobs, submission_seed=100 + n_jobs)
        pooled = execute_plan(plan, backend)
        assert _report_fingerprints(pooled) == _report_fingerprints(serial_report)

    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_pool_matches_serial_with_derived_seeds(
        self, seeded_plan, seeded_serial_report, n_jobs
    ):
        backend = ProcessPoolBackend(n_jobs=n_jobs, submission_seed=7 * n_jobs)
        pooled = execute_plan(seeded_plan, backend)
        assert _report_fingerprints(pooled) == _report_fingerprints(
            seeded_serial_report
        )

    def test_derived_seeds_differentiate_jobs(self, seeded_serial_report):
        # With per-job seeds the two scenes of one model run different
        # searches (different populations), unlike the shared-seed default.
        first, second = seeded_serial_report.outcomes[0], seeded_serial_report.outcomes[1]
        assert _result_fingerprint(first.result) != _result_fingerprint(second.result)


class TestCacheStatsAggregation:
    def test_per_model_stats_are_not_cumulative(self, attack_config, training):
        """Each model's reported stats cover only its own jobs (the bugfix).

        Attacking the same scene twice per model yields exactly one miss and
        one hit *per model*; before the per-model reset, the second model's
        counters would have included the first model's traffic.
        """
        dataset = generate_dataset(
            num_images=1, seed=5, image_length=LENGTH, image_width=WIDTH, half="left"
        )
        doubled = [dataset[0], dataset[0]]
        plan = build_attack_plan(
            architectures=ARCHITECTURES,
            seeds=SEEDS,
            dataset=doubled,
            attack_config=attack_config,
            training=training,
        )
        report = execute_plan(plan, SerialBackend())
        assert set(report.per_model) == {"single_stage-seed1", "transformer-seed1"}
        for stats in report.per_model.values():
            assert stats.misses == 1
            assert stats.hits == 1
            assert stats.hit_rate == 0.5
        total = report.cache_stats
        assert total.hits == 2 and total.misses == 2

    def test_per_worker_stats_merge_to_total(self, plan):
        report = execute_plan(plan, ProcessPoolBackend(n_jobs=2, submission_seed=3))
        merged = CacheStats.merge(list(report.per_worker.values()))
        assert merged == report.cache_stats
        per_job = CacheStats.merge(
            [o.cache_stats for o in report.outcomes if o.cache_stats is not None]
        )
        assert per_job == merged

    def test_workers_reported_even_with_cache_disabled(
        self, dataset, attack_config, training
    ):
        """Worker attribution does not depend on the activation cache."""
        from dataclasses import replace

        plan = build_attack_plan(
            architectures=("yolo",),
            seeds=SEEDS,
            dataset=dataset,
            attack_config=replace(attack_config, use_activation_cache=False),
            training=training,
        )
        report = execute_plan(plan, SerialBackend())
        assert list(report.per_worker) == ["serial"]
        assert report.per_model == {}  # no cache traffic to attribute
        assert report.cache_stats == CacheStats()
        assert report.cache_enabled is False


class _PoolFailingJob:
    """Module level so it pickles into pool workers."""

    def __init__(self, job_id: int):
        self.job_id = job_id

    def execute(self, context):
        raise ValueError("deliberate pool failure")


class TestPoolFailure:
    def test_job_error_surfaces_with_worker_context(self, attack_config):
        """A job raising inside a pool worker reaches the caller as a
        JobExecutionError naming the job and carrying the worker traceback
        (not a bare pickling artefact of the original exception)."""
        plan = ExperimentPlan(
            jobs=[_PoolFailingJob(0)], attack_config=attack_config, name="failing"
        )
        with pytest.raises(JobExecutionError) as err:
            execute_plan(plan, ProcessPoolBackend(n_jobs=2))
        assert err.value.job_id == 0
        assert "ValueError: deliberate pool failure" in str(err.value)
        assert "deliberate pool failure" in err.value.worker_traceback


class TestMergeExecutionSummaries:
    @staticmethod
    def _part(backend, hits=0, invalidations=0):
        return {
            "backend": backend,
            "n_jobs": 2,
            "duration_seconds": 1.5,
            "cache_enabled": True,
            "cache_stats": {
                "hits": hits, "misses": 0, "evictions": 0,
                "invalidations": invalidations,
            },
        }

    def test_single_backend_name_preserved(self):
        merged = merge_execution_summaries(
            [self._part("persistent"), self._part("persistent")]
        )
        assert merged["backend"] == "persistent"

    def test_mixed_stage_backends_reported_as_mixed(self):
        """Regression: the merged record used to stamp the whole run with
        ``parts[0]["backend"]`` even when stages ran on different backends,
        misreporting every later stage's provenance."""
        merged = merge_execution_summaries(
            [self._part("serial"), self._part("persistent")]
        )
        assert merged["backend"] == "mixed"
        # Per-stage truth stays available for anyone who needs it.
        assert [s["backend"] for s in merged["stages"]] == ["serial", "persistent"]

    def test_cache_totals_include_invalidations(self):
        merged = merge_execution_summaries(
            [
                self._part("serial", hits=2, invalidations=1),
                self._part("serial", hits=1, invalidations=3),
            ]
        )
        assert merged["cache_stats"]["hits"] == 3
        assert merged["cache_stats"]["invalidations"] == 4

    def test_empty_parts_default_to_serial(self):
        assert merge_execution_summaries([])["backend"] == "serial"


class TestResolveBackend:
    def test_auto_selection(self):
        assert resolve_backend(None, n_jobs=1).name == "serial"
        auto = resolve_backend(None, n_jobs=3)
        assert auto.name == "process" and auto.n_jobs == 3

    def test_names_and_passthrough(self):
        assert resolve_backend("serial").name == "serial"
        assert resolve_backend("process", n_jobs=2).name == "process"
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("threads")


class TestRunnerIntegration:
    def test_runner_serial_and_pool_comparisons_match(self, training):
        from repro.experiments.config import ExperimentConfig

        experiment = ExperimentConfig.reduced(
            models_per_architecture=1,
            images_per_model=1,
            ensemble_size=1,
            image_length=LENGTH,
            image_width=WIDTH,
        )
        nsga = NSGAConfig(num_iterations=2, population_size=6, seed=0)
        kwargs = dict(
            experiment=experiment, nsga=nsga, training=training, dataset_seed=5
        )
        serial = run_architecture_comparison(**kwargs)
        pooled = run_architecture_comparison(
            **kwargs, n_jobs=2, backend=ProcessPoolBackend(n_jobs=2, submission_seed=1)
        )
        for label in serial.results:
            for left, right in zip(serial.results[label], pooled.results[label]):
                assert _result_fingerprint(left) == _result_fingerprint(right)
        assert serial.execution is not None and serial.execution.backend == "serial"
        assert pooled.execution is not None and pooled.execution.backend == "process"
        assert serial.report.summary_rows() == pooled.report.summary_rows()

    def test_explicit_serial_config_wins_over_n_jobs(self, training):
        """execution_backend='serial' is honoured even with n_jobs > 1."""
        from repro.experiments.config import ExperimentConfig

        experiment = ExperimentConfig.reduced(
            models_per_architecture=1,
            images_per_model=1,
            ensemble_size=1,
            image_length=LENGTH,
            image_width=WIDTH,
            n_jobs=2,
            execution_backend="serial",
        )
        comparison = run_architecture_comparison(
            experiment=experiment,
            nsga=NSGAConfig(num_iterations=1, population_size=4, seed=0),
            architectures=("yolo",),
            training=training,
            dataset_seed=5,
        )
        assert comparison.execution.backend == "serial"

    def test_runner_releases_detector_memo(self, training):
        """A finished sweep leaves no zoo behind in the process-local memo."""
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.jobs import _DETECTOR_MEMO, ModelSpec

        experiment = ExperimentConfig.reduced(
            models_per_architecture=1,
            images_per_model=1,
            ensemble_size=1,
            image_length=LENGTH,
            image_width=WIDTH,
        )
        run_architecture_comparison(
            experiment=experiment,
            nsga=NSGAConfig(num_iterations=1, population_size=4, seed=0),
            architectures=("yolo",),
            training=training,
            dataset_seed=5,
        )
        assert ModelSpec("yolo", 1, training=training) not in _DETECTOR_MEMO
