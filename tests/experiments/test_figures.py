"""Tests for the qualitative figure scenarios."""

import pytest

from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.experiments.figures import (
    figure1_disappearing_objects,
    figure3_figure4_contrast,
    figure5_ghost_objects,
)
from repro.nsga.algorithm import NSGAConfig

from tests.conftest import SMALL_LENGTH, SMALL_WIDTH


@pytest.fixture()
def tiny_attack_config():
    return AttackConfig(
        nsga=NSGAConfig(num_iterations=3, population_size=8, seed=0),
        region=HalfImageRegion("right"),
    )


class TestFigure1:
    def test_outcome_structure(self, detr_detector, tiny_attack_config):
        outcome = figure1_disappearing_objects(
            detr_detector,
            attack_config=tiny_attack_config,
            image_length=SMALL_LENGTH,
            image_width=SMALL_WIDTH,
        )
        assert outcome.name == "figure1_disappearing_objects"
        assert detr_detector.name in outcome.results
        assert {"best_degradation", "clean_objects", "perturbed_objects", "tp_to_fn_on_front"} <= set(
            outcome.measurements
        )
        assert 0.0 <= outcome.measurements["best_degradation"] <= 1.0 + 1e-9
        assert outcome.rendering  # ASCII rendering produced
        assert "|" in outcome.rendering

    def test_summary_text(self, detr_detector, tiny_attack_config):
        outcome = figure1_disappearing_objects(
            detr_detector,
            attack_config=tiny_attack_config,
            image_length=SMALL_LENGTH,
            image_width=SMALL_WIDTH,
        )
        text = outcome.summary()
        assert "figure1" in text
        assert "best_degradation" in text


class TestFigure3And4:
    def test_contrast_measurements(self, yolo_detector, detr_detector, tiny_attack_config):
        outcome = figure3_figure4_contrast(
            yolo_detector,
            detr_detector,
            attack_config=tiny_attack_config,
            image_length=SMALL_LENGTH,
            image_width=SMALL_WIDTH,
        )
        measurements = outcome.measurements
        assert {"single_stage_best_degradation", "transformer_best_degradation", "degradation_gap"} <= set(
            measurements
        )
        assert len(outcome.results) == 2
        assert len(outcome.selected_solutions) == 2
        # The gap is single-stage minus transformer degradation; it can be
        # small at this tiny budget but must be a finite number.
        assert measurements["degradation_gap"] == pytest.approx(
            measurements["single_stage_best_degradation"]
            - measurements["transformer_best_degradation"]
        )


class TestFigure5:
    def test_ghost_object_search(self, detr_detector, tiny_attack_config):
        outcome = figure5_ghost_objects(
            detr_detector,
            attack_config=tiny_attack_config,
            image_length=SMALL_LENGTH,
            image_width=SMALL_WIDTH,
            max_attempts=1,
        )
        assert outcome.name == "figure5_ghost_objects"
        assert "ghost_objects" in outcome.measurements
        assert outcome.measurements["ghost_objects"] >= 0.0
        assert outcome.measurements["attempts"] >= 1.0
