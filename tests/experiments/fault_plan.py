"""Shared fault-injection plan for the resume test-suite and benchmark.

One tiny real attack plan (2 architectures × 1 seed × 2 scenes = 4 NSGA
jobs at 48×96) that both the in-process tests and the killed child
processes build *identically* — same plan fingerprint, same journal — so a
parent killed mid-plan can be resumed from its journal by the test and
compared bit-exactly against an uninterrupted serial run.

Runnable as a script (the child side of the parent-kill tests):

    python fault_plan.py <backend> <n_jobs> <checkpoint_dir>

executes the plan on the named backend, journaling to ``checkpoint_dir``.
The parent polls the journal and SIGKILLs the whole process group once
outcomes start streaming.

Also hosts ``KillOnceAttackJob`` — a real attack job that kills its worker
(``os._exit``) on first dispatch and behaves exactly like a plain
``AttackJob`` once its sentinel file exists, so crash-interrupted and
uninterrupted runs of the same plan produce bit-identical outcomes.
"""

import os
import sys
from dataclasses import dataclass

from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.data.dataset import generate_dataset
from repro.detectors.training import TrainingConfig
from repro.experiments.jobs import AttackJob, build_attack_plan
from repro.nsga.algorithm import NSGAConfig

LENGTH, WIDTH = 48, 96
ARCHITECTURES = ("yolo", "detr")
SEEDS = (1,)
NUM_SCENES = 2
EXPERIMENT_SEED = 2023


@dataclass
class KillOnceAttackJob(AttackJob):
    """A real attack job that kills its worker on first dispatch.

    ``os._exit`` (not an exception) simulates a hard crash — OOM-kill,
    segfault — mid-NSGA.  The sentinel file marks the first dispatch, so
    the re-dispatched (or resumed) job runs the plain attack and returns
    the exact outcome the uninterrupted plan would.
    """

    sentinel: str = ""

    def execute(self, context):
        if self.sentinel and not os.path.exists(self.sentinel):
            with open(self.sentinel, "w"):
                pass
            os._exit(13)
        return super().execute(context)


def attack_config() -> AttackConfig:
    return AttackConfig(
        nsga=NSGAConfig(num_iterations=2, population_size=6, seed=0),
        region=HalfImageRegion("right"),
    )


def training_config() -> TrainingConfig:
    return TrainingConfig(
        scenes_per_class=2,
        image_length=LENGTH,
        image_width=WIDTH,
        background_clusters=12,
    )


def build_plan():
    dataset = generate_dataset(
        num_images=NUM_SCENES,
        seed=5,
        image_length=LENGTH,
        image_width=WIDTH,
        half="left",
    )
    return build_attack_plan(
        architectures=ARCHITECTURES,
        seeds=SEEDS,
        dataset=dataset,
        attack_config=attack_config(),
        training=training_config(),
        experiment_seed=EXPERIMENT_SEED,
    )


def main(argv) -> int:
    backend_name, n_jobs, checkpoint_dir = argv[0], int(argv[1]), argv[2]
    from repro.experiments.checkpoint import PlanCheckpoint
    from repro.experiments.engine import ProcessPoolBackend, execute_plan
    from repro.experiments.persistent import PersistentPoolBackend

    if backend_name == "persistent":
        backend = PersistentPoolBackend(n_jobs=n_jobs)
    else:
        backend = ProcessPoolBackend(n_jobs=n_jobs)
    checkpoint = PlanCheckpoint(checkpoint_dir, resume=True)
    try:
        execute_plan(build_plan(), backend, checkpoint=checkpoint)
    finally:
        checkpoint.close()
        backend.close()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
