"""Tests for the declarative models × images work plan."""

import numpy as np
import pytest

from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.detectors.training import TrainingConfig
from repro.experiments.jobs import (
    AttackJob,
    ModelSpec,
    build_attack_plan,
    build_cached,
    clear_detector_memo,
    derive_job_seeds,
)
from repro.nsga.algorithm import NSGAConfig


def _tiny_dataset(num_images: int = 2, length: int = 24, width: int = 48):
    rng = np.random.default_rng(3)
    return [rng.uniform(0, 255, size=(length, width, 3)) for _ in range(num_images)]


def _tiny_config() -> AttackConfig:
    return AttackConfig(
        nsga=NSGAConfig(num_iterations=2, population_size=4, seed=7),
        region=HalfImageRegion("right"),
    )


class TestModelSpec:
    def test_label_follows_aliases(self):
        assert ModelSpec("yolo", 1).label == "single_stage"
        assert ModelSpec("detr", 1).label == "transformer"
        assert ModelSpec("single_stage", 1).label == "single_stage"

    def test_name_matches_detector_name(self):
        spec = ModelSpec(
            "yolo",
            3,
            training=TrainingConfig(
                scenes_per_class=2, image_length=48, image_width=96,
                background_clusters=8,
            ),
        )
        assert spec.name == "single_stage-seed3"
        assert build_cached(spec).name == spec.name

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError):
            ModelSpec("resnet", 1)

    def test_specs_hash_and_compare_by_value(self):
        training = TrainingConfig(scenes_per_class=2)
        assert ModelSpec("yolo", 1, training=training) == ModelSpec(
            "yolo", 1, training=training
        )
        assert len({ModelSpec("yolo", 1), ModelSpec("yolo", 1)}) == 1

    def test_build_cached_memoises_per_spec(self):
        training = TrainingConfig(
            scenes_per_class=2, image_length=48, image_width=96, background_clusters=8
        )
        spec = ModelSpec("yolo", 2, training=training)
        first = build_cached(spec)
        assert build_cached(ModelSpec("yolo", 2, training=training)) is first
        clear_detector_memo()
        assert build_cached(spec) is not first


class TestDeriveJobSeeds:
    def test_deterministic_in_experiment_seed(self):
        assert derive_job_seeds(123, 8) == derive_job_seeds(123, 8)
        assert derive_job_seeds(123, 8) != derive_job_seeds(124, 8)

    def test_prefix_stable_under_plan_growth(self):
        # Spawned children depend only on their position, so extending the
        # plan never changes the seeds of existing jobs.
        assert derive_job_seeds(5, 4) == derive_job_seeds(5, 9)[:4]

    def test_seeds_are_distinct(self):
        seeds = derive_job_seeds(0, 64)
        assert len(set(seeds)) == 64

    def test_negative_seed_rejected_cleanly(self):
        with pytest.raises(ValueError, match="non-negative"):
            derive_job_seeds(-1, 4)


class TestBuildAttackPlan:
    def test_plan_order_is_nested_loop_order(self):
        plan = build_attack_plan(
            architectures=("yolo", "detr"),
            seeds=(1, 2),
            dataset=_tiny_dataset(2),
            attack_config=_tiny_config(),
        )
        assert len(plan) == 8
        grid = [
            (job.model.label, job.model.seed, job.scene_index) for job in plan.jobs
        ]
        assert grid == [
            ("single_stage", 1, 0), ("single_stage", 1, 1),
            ("single_stage", 2, 0), ("single_stage", 2, 1),
            ("transformer", 1, 0), ("transformer", 1, 1),
            ("transformer", 2, 0), ("transformer", 2, 1),
        ]
        assert [job.job_id for job in plan.jobs] == list(range(8))
        assert plan.labels == ("single_stage", "transformer")

    def test_default_plan_keeps_configured_seed(self):
        plan = build_attack_plan(
            architectures=("yolo",),
            seeds=(1,),
            dataset=_tiny_dataset(2),
            attack_config=_tiny_config(),
        )
        assert all(job.nsga_seed is None for job in plan.jobs)
        assert all(job.resolved_config() is job.config for job in plan.jobs)

    def test_experiment_seed_assigns_per_job_seeds(self):
        plan = build_attack_plan(
            architectures=("yolo",),
            seeds=(1, 2),
            dataset=_tiny_dataset(2),
            attack_config=_tiny_config(),
            experiment_seed=99,
        )
        seeds = [job.nsga_seed for job in plan.jobs]
        assert seeds == derive_job_seeds(99, 4)
        assert len(set(seeds)) == 4
        for job in plan.jobs:
            assert job.resolved_config().nsga.seed == job.nsga_seed

    def test_model_bookkeeping(self):
        plan = build_attack_plan(
            architectures=("yolo", "detr"),
            seeds=(1, 2),
            dataset=_tiny_dataset(3),
            attack_config=_tiny_config(),
        )
        specs = plan.model_specs()
        assert len(specs) == 4
        assert all(count == 3 for count in plan.jobs_per_model().values())

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError):
            build_attack_plan(
                architectures=("vgg",),
                seeds=(1,),
                dataset=_tiny_dataset(1),
                attack_config=_tiny_config(),
            )


class TestAttackJob:
    def test_image_coerced_to_float64(self):
        job = AttackJob(
            job_id=0,
            model=ModelSpec("yolo", 1),
            image=np.zeros((8, 8, 3), dtype=np.uint8),
        )
        assert job.image.dtype == np.float64

    def test_resolved_config_overrides_only_seed(self):
        config = _tiny_config()
        job = AttackJob(
            job_id=0, model=ModelSpec("yolo", 1),
            image=np.zeros((8, 8, 3)), config=config, nsga_seed=12345,
        )
        resolved = job.resolved_config()
        assert resolved.nsga.seed == 12345
        assert resolved.nsga.num_iterations == config.nsga.num_iterations
        assert resolved.region == config.region
        assert config.nsga.seed == 7  # original untouched


class _CountingJob:
    """Minimal generic job: no model, no seed — just deterministic work."""

    def __init__(self, job_id: int, value: int):
        self.job_id = job_id
        self.value = value

    def execute(self, context):
        from repro.experiments.jobs import JobOutcome

        return JobOutcome(job_id=self.job_id, result=self.value * self.value)


class TestGenericJobSubstrate:
    """The engine runs *any* job following the protocol, not just attacks."""

    def test_custom_jobs_execute_on_every_backend(self):
        from repro.experiments.engine import (
            ProcessPoolBackend,
            SerialBackend,
            execute_plan,
        )
        from repro.experiments.jobs import ExperimentPlan

        plan = ExperimentPlan(
            jobs=[_CountingJob(i, i + 1) for i in range(5)],
            attack_config=_tiny_config(),
            name="toy",
        )
        serial = execute_plan(plan, SerialBackend())
        assert [o.result for o in serial.outcomes] == [1, 4, 9, 16, 25]
        pooled = execute_plan(plan, ProcessPoolBackend(n_jobs=2, submission_seed=1))
        assert [o.result for o in pooled.outcomes] == [1, 4, 9, 16, 25]
        # Model-less jobs take no part in per-model accounting.
        assert plan.model_specs() == []
        assert serial.per_model == {}

    def test_apply_experiment_seed_skips_seedless_jobs(self):
        from repro.experiments.jobs import apply_experiment_seed

        attack_jobs = [
            AttackJob(job_id=0, model=ModelSpec("yolo", 1), image=_tiny_dataset(1)[0]),
        ]
        toy = _CountingJob(1, 3)
        apply_experiment_seed([*attack_jobs, toy], 42)
        assert attack_jobs[0].nsga_seed is not None
        assert not hasattr(toy, "nsga_seed")
        # Seeds are positional: the attack job's seed equals position 0 of
        # the derived sequence regardless of what shares the plan.
        assert attack_jobs[0].nsga_seed == derive_job_seeds(42, 2)[0]

    def test_seed_from_sequence_is_derive_job_seeds_derivation(self):
        import numpy as np

        from repro.experiments.jobs import seed_from_sequence

        root = np.random.SeedSequence(123)
        assert [
            seed_from_sequence(child) for child in root.spawn(4)
        ] == derive_job_seeds(123, 4)


class TestModelSpecAdapters:
    def test_as_model_spec_passes_specs_through(self):
        spec = ModelSpec("yolo", 1)
        from repro.experiments.jobs import as_model_spec

        assert as_model_spec(spec) is spec

    def test_as_model_spec_wraps_detectors(self, request):
        from repro.experiments.jobs import (
            DetectorInstanceSpec,
            as_model_spec,
            build_cached,
        )

        detector = request.getfixturevalue("yolo_detector")
        spec = as_model_spec(detector)
        assert isinstance(spec, DetectorInstanceSpec)
        assert spec.name == detector.name
        assert spec.label == detector.architecture
        assert spec.seed == detector.seed
        assert spec.build() is detector
        assert build_cached(spec) is detector
        # Identity semantics: same instance → same spec, equal hash.
        assert as_model_spec(detector) == spec
        assert hash(as_model_spec(detector)) == hash(spec)

    def test_as_model_spec_rejects_junk(self):
        from repro.experiments.jobs import as_model_spec

        with pytest.raises(TypeError):
            as_model_spec(42)

    def test_job_helpers(self):
        from repro.defenses.jobs import EnsembleDefenseJob
        from repro.experiments.jobs import job_model_specs, job_stats_label

        attack = AttackJob(job_id=0, model=ModelSpec("yolo", 1), image=_tiny_dataset(1)[0])
        assert job_model_specs(attack) == (attack.model,)
        assert job_stats_label(attack) == "single_stage-seed1"

        members = (ModelSpec("yolo", 1), ModelSpec("detr", 2))
        ensemble = EnsembleDefenseJob(
            job_id=1, members=members, image=_tiny_dataset(1)[0]
        )
        assert job_model_specs(ensemble) == members
        assert job_stats_label(ensemble).startswith("ensemble[")

        toy = _CountingJob(2, 1)
        assert job_model_specs(toy) == ()
        assert job_stats_label(toy) is None
