"""Delta-reuse parity: reuse-on sweeps are bit-identical to reuse-off.

Cross-generation reuse re-splices offspring against evaluated ancestors'
activation grids, so it must be invisible to every result: a seeded attack
— and a whole experiment plan, on every backend and worker count — must
produce byte-identical solutions with the feature on or off.  The speedup
is asserted by ``benchmarks/bench_delta_reuse.py``; here we pin that it
never changes *what* is computed.
"""

import numpy as np
import pytest

from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.data.dataset import generate_dataset
from repro.detectors.activation_cache import ActivationCacheStore
from repro.detectors.training import TrainingConfig
from repro.experiments.engine import (
    ProcessPoolBackend,
    SerialBackend,
    execute_plan,
)
from repro.experiments.jobs import build_attack_plan
from repro.experiments.persistent import PersistentPoolBackend
from repro.experiments.shm import list_segments
from repro.nsga.algorithm import NSGAConfig
from repro.nsga.mutation import MutationConfig

LENGTH, WIDTH = 48, 96
SEEDS = (1,)
ARCHITECTURES = ("yolo", "detr")


@pytest.fixture(scope="module")
def training():
    return TrainingConfig(
        scenes_per_class=2,
        image_length=LENGTH,
        image_width=WIDTH,
        background_clusters=12,
    )


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(
        num_images=2, seed=5, image_length=LENGTH, image_width=WIDTH, half="left"
    )


def _attack_config(use_delta_reuse: bool) -> AttackConfig:
    return AttackConfig(
        nsga=NSGAConfig(num_iterations=3, population_size=8, seed=0),
        region=HalfImageRegion("right"),
        use_delta_reuse=use_delta_reuse,
    )


@pytest.fixture(scope="module")
def plan_reuse_on(dataset, training):
    return build_attack_plan(
        architectures=ARCHITECTURES,
        seeds=SEEDS,
        dataset=dataset,
        attack_config=_attack_config(True),
        training=training,
    )


@pytest.fixture(scope="module")
def plan_reuse_off(dataset, training):
    return build_attack_plan(
        architectures=ARCHITECTURES,
        seeds=SEEDS,
        dataset=dataset,
        attack_config=_attack_config(False),
        training=training,
    )


@pytest.fixture(scope="module")
def reference_report(plan_reuse_off):
    return execute_plan(plan_reuse_off, SerialBackend())


def _result_fingerprint(result) -> tuple:
    solutions = tuple(
        (s.mask.values.tobytes(), s.intensity, s.degradation, s.distance, s.rank)
        for s in result.solutions
    )
    return (
        result.detector_name,
        result.num_evaluations,
        result.cache_hits,
        solutions,
    )


def _report_fingerprints(report) -> list:
    return [_result_fingerprint(outcome.result) for outcome in report.outcomes]


class TestAttackLevelParity:
    @pytest.mark.parametrize("architecture", ["yolo", "detr"])
    @pytest.mark.parametrize("use_cache", [False, True])
    def test_reuse_on_equals_reuse_off_bit_exactly(
        self, architecture, use_cache, yolo_detector, detr_detector, small_dataset
    ):
        detector = yolo_detector if architecture == "yolo" else detr_detector
        nsga = NSGAConfig(
            num_iterations=3,
            population_size=8,
            crossover_probability=0.5,
            mutation=MutationConfig(probability=0.45, window_fraction=0.01),
            seed=7,
        )
        results = []
        for use_delta_reuse in (False, True):
            config = AttackConfig(
                nsga=nsga,
                region=HalfImageRegion("right"),
                use_activation_cache=use_cache,
                use_delta_reuse=use_delta_reuse,
            )
            results.append(
                ButterflyAttack(detector, config).attack(small_dataset[0].image)
            )
        baseline, reused = results
        assert baseline.num_evaluations == reused.num_evaluations
        assert baseline.cache_hits == reused.cache_hits
        assert len(baseline.solutions) == len(reused.solutions)
        for left, right in zip(baseline.solutions, reused.solutions):
            assert np.array_equal(left.mask.values, right.mask.values)
            assert (left.intensity, left.degradation, left.distance, left.rank) == (
                right.intensity,
                right.degradation,
                right.distance,
                right.rank,
            )

    def test_warm_attack_records_delta_traffic(self, yolo_detector, small_dataset):
        """With reuse on, the shared store's delta counters actually move."""
        store = ActivationCacheStore(max_entries=2, delta_store_size=256)
        config = AttackConfig(
            nsga=NSGAConfig(num_iterations=3, population_size=8, seed=3),
            region=HalfImageRegion("right"),
            use_delta_reuse=True,
        )
        attack = ButterflyAttack(yolo_detector, config, activation_store=store)
        attack.attack(small_dataset[0].image)
        stats = store.stats
        assert stats["delta_hits"] + stats["delta_misses"] > 0

    def test_reuse_off_disables_the_delta_store(self, yolo_detector, small_dataset):
        store = ActivationCacheStore(max_entries=2, delta_store_size=0)
        config = AttackConfig(
            nsga=NSGAConfig(num_iterations=2, population_size=6, seed=3),
            region=HalfImageRegion("right"),
            use_delta_reuse=False,
        )
        attack = ButterflyAttack(yolo_detector, config, activation_store=store)
        attack.attack(small_dataset[0].image)
        assert "delta_hits" not in store.stats


class TestEngineLevelParity:
    def test_serial_reuse_on_matches_reuse_off(
        self, plan_reuse_on, reference_report
    ):
        report = execute_plan(plan_reuse_on, SerialBackend())
        assert _report_fingerprints(report) == _report_fingerprints(reference_report)
        # The delta path actually engaged — parity was not vacuous.
        assert report.cache_stats.delta_requests > 0
        assert reference_report.cache_stats.delta_requests == 0

    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_process_pool_reuse_on_matches_reference(
        self, plan_reuse_on, reference_report, n_jobs
    ):
        backend = ProcessPoolBackend(n_jobs=n_jobs, submission_seed=300 + n_jobs)
        report = execute_plan(plan_reuse_on, backend)
        assert _report_fingerprints(report) == _report_fingerprints(reference_report)

    @pytest.mark.parametrize("n_jobs", [2])
    def test_persistent_reuse_on_matches_reference_and_leaks_nothing(
        self, plan_reuse_on, reference_report, n_jobs
    ):
        backend = PersistentPoolBackend(n_jobs=n_jobs, submission_seed=17)
        try:
            report = execute_plan(plan_reuse_on, backend)
            prefix = backend.runtime.segment_prefix
        finally:
            backend.close()
        assert _report_fingerprints(report) == _report_fingerprints(reference_report)
        assert report.cache_stats.delta_requests > 0
        assert list_segments(prefix) == []  # delta segments died with the pool

    def test_plan_results_identical_under_scene_shuffle(self, plan_reuse_on):
        """Reuse state is per-bundle: job order cannot change any result."""
        forward = execute_plan(plan_reuse_on, SerialBackend())
        order = list(reversed(range(len(plan_reuse_on.jobs))))
        shuffled = execute_plan(plan_reuse_on, SerialBackend(order=order))
        assert _report_fingerprints(forward) == _report_fingerprints(shuffled)


class TestIncrementalReporting:
    def test_result_carries_per_generation_incremental_stats(
        self, yolo_detector, small_dataset
    ):
        config = AttackConfig(
            nsga=NSGAConfig(num_iterations=3, population_size=8, seed=11),
            region=HalfImageRegion("right"),
            use_delta_reuse=True,
        )
        result = ButterflyAttack(yolo_detector, config).attack(
            small_dataset[0].image
        )
        entries = [
            entry["incremental"]
            for entry in result.history
            if entry.get("incremental") is not None
        ]
        assert entries, "generations should report incremental stats"
        for entry in entries:
            assert 0.0 <= entry["dirty_area_ratio"] <= 1.0
            assert entry["masks_evaluated"] >= 0
            assert entry["delta_hits"] >= 0 and entry["delta_misses"] >= 0
        run_level = result.incremental
        assert run_level is not None
        assert run_level["masks_evaluated"] >= sum(
            entry["masks_evaluated"] for entry in entries
        )

    def test_dense_path_reports_no_incremental_stats(
        self, yolo_detector, small_dataset
    ):
        config = AttackConfig(
            nsga=NSGAConfig(num_iterations=2, population_size=6, seed=11),
            region=HalfImageRegion("right"),
            use_activation_cache=False,
        )
        result = ButterflyAttack(yolo_detector, config).attack(
            small_dataset[0].image
        )
        assert result.incremental is None
        assert all(
            entry.get("incremental") is None for entry in result.history
        )
