"""Streaming sequence plans: structure, backend parity, cache provisioning.

The engine contract extends unchanged to the sequence workload: the plan
fully determines the sweep, so serial, process-pool and persistent
backends must produce bit-identical ``AttackResult``s, and the persistent
runtime must leak no shared-memory segments.  On top of that, sequence
jobs must surface their frame-cache counters through the ordinary
execution report so hit rates appear in sweep summaries.
"""

import pickle

import pytest

from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.detectors.training import TrainingConfig
from repro.experiments.engine import (
    ProcessPoolBackend,
    SerialBackend,
    effective_cache_size,
    execute_plan,
)
from repro.experiments.jobs import (
    SequenceAttackJob,
    SequenceSpec,
    build_sequence_plan,
)
from repro.experiments.persistent import PersistentPoolBackend
from repro.experiments.runner import run_sequence_sweep
from repro.experiments.shm import list_segments
from repro.nsga.algorithm import NSGAConfig

LENGTH, WIDTH = 48, 96
ARCHITECTURES = ("yolo", "detr")
SEEDS = (1,)


@pytest.fixture(scope="module")
def training():
    return TrainingConfig(
        scenes_per_class=2,
        image_length=LENGTH,
        image_width=WIDTH,
        background_clusters=12,
    )


@pytest.fixture(scope="module")
def sequences():
    return (
        SequenceSpec(
            num_frames=3,
            seed=5,
            image_length=LENGTH,
            image_width=WIDTH,
            half="left",
        ),
    )


@pytest.fixture(scope="module")
def attack_config():
    return AttackConfig(
        nsga=NSGAConfig(num_iterations=3, population_size=8, seed=0),
        region=HalfImageRegion("right"),
    )


@pytest.fixture(scope="module")
def plan(sequences, attack_config, training):
    return build_sequence_plan(
        architectures=ARCHITECTURES,
        seeds=SEEDS,
        sequences=sequences,
        attack_config=attack_config,
        training=training,
        frame_cache_size=2,
    )


@pytest.fixture(scope="module")
def serial_report(plan):
    return execute_plan(plan, SerialBackend())


def _report_fingerprints(report) -> list:
    return [outcome.result.fingerprint() for outcome in report.outcomes]


class TestPlanStructure:
    def test_nested_order_and_job_fields(self, plan, sequences):
        assert plan.name == "sequence-attack"
        assert len(plan.jobs) == len(ARCHITECTURES) * len(SEEDS) * len(sequences)
        assert [job.job_id for job in plan.jobs] == list(range(len(plan.jobs)))
        for job in plan.jobs:
            assert isinstance(job, SequenceAttackJob)
            assert job.sequence == sequences[job.scene_index]
            assert job.frame_cache_size == 2
            assert job.track_k == 2
        assert [job.model.architecture for job in plan.jobs] == ["yolo", "detr"]

    def test_job_pickle_roundtrip(self, plan):
        job = plan.jobs[0]
        clone = pickle.loads(pickle.dumps(job))
        assert clone == job
        assert clone.sequence.build().scenes == job.sequence.build().scenes

    def test_effective_cache_size_scales_with_frame_window(
        self, sequences, attack_config, training
    ):
        wide = build_sequence_plan(
            architectures=ARCHITECTURES,
            seeds=SEEDS,
            sequences=sequences,
            attack_config=attack_config,
            training=training,
            frame_cache_size=5,
        )
        # Two distinct models, five live frame bundles each; the configured
        # cap is below that floor, so the engine warns while growing it.
        with pytest.warns(RuntimeWarning, match="concurrently live"):
            assert effective_cache_size(wide) == 2 * 5


class TestSerialSequenceSweep:
    def test_results_carry_frame_cache_counters(self, plan, serial_report):
        assert len(serial_report.outcomes) == len(plan.jobs)
        for outcome in serial_report.outcomes:
            frame_stats = outcome.result.incremental["frame_cache"]
            assert frame_stats["frame_hits"] > 0
            assert frame_stats["frame_hit_rate"] > 0.0
            assert outcome.result.detector_name.endswith("@3frames")
        summary = serial_report.summary()
        assert summary["cache_stats"]["frame_hits"] > 0

    def test_track_survival_extras_on_every_solution(self, serial_report):
        for outcome in serial_report.outcomes:
            for solution in outcome.result.pareto_front:
                assert "track_survival" in solution.extras


class TestSequenceBackendParity:
    def test_process_pool_matches_serial(self, plan, serial_report):
        backend = ProcessPoolBackend(n_jobs=2, submission_seed=3)
        report = execute_plan(plan, backend)
        assert _report_fingerprints(report) == _report_fingerprints(serial_report)

    def test_persistent_matches_serial_and_leaks_nothing(self, plan, serial_report):
        backend = PersistentPoolBackend(n_jobs=2, submission_seed=11)
        try:
            report = execute_plan(plan, backend)
            prefix = backend.runtime.segment_prefix
        finally:
            backend.close()
        assert _report_fingerprints(report) == _report_fingerprints(serial_report)
        assert list_segments(prefix) == []
        summary = report.summary()
        assert summary["cache_stats"]["frame_hits"] > 0


class TestRunSequenceSweep:
    def test_sweep_wrapper_round_trip(self, sequences, attack_config, training):
        sweep = run_sequence_sweep(
            architectures=("yolo",),
            seeds=SEEDS,
            sequences=sequences,
            attack_config=attack_config,
            training=training,
        )
        assert len(sweep.results) == 1
        assert 0.0 <= sweep.mean_track_survival() <= 1.0
        provenance = sweep.provenance()
        assert provenance["backend"] == "serial"
        assert provenance["cache_stats"]["frame_hits"] > 0
