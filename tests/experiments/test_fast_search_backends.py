"""Two-phase fast search across execution backends.

The fast-search guarantee — the final population carries *exact* objective
vectors — must hold wherever attacks run: in process, in a process pool,
and in the persistent shared-memory pool (whose workers re-wrap clean
activations from shared memory, dropping any architecture-private
``fidelity_state``; the approximate path must rebuild it transparently).
A fast-search plan must also produce byte-identical results on every
backend and worker count, like every other plan.
"""

import numpy as np
import pytest

from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.objectives import ButterflyObjectives
from repro.core.regions import HalfImageRegion
from repro.data.dataset import generate_dataset
from repro.detectors.training import TrainingConfig
from repro.experiments.engine import (
    ProcessPoolBackend,
    SerialBackend,
    execute_plan,
)
from repro.experiments.jobs import build_attack_plan
from repro.experiments.persistent import PersistentPoolBackend
from repro.experiments.shm import list_segments
from repro.nsga.algorithm import NSGAConfig
from repro.nsga.mutation import MutationConfig

LENGTH, WIDTH = 48, 96


@pytest.fixture(scope="module")
def training():
    return TrainingConfig(
        scenes_per_class=2,
        image_length=LENGTH,
        image_width=WIDTH,
        background_clusters=12,
    )


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(
        num_images=1, seed=5, image_length=LENGTH, image_width=WIDTH, half="left"
    )


def _fast_config(fidelity="windowed"):
    return AttackConfig(
        nsga=NSGAConfig(
            num_iterations=3,
            population_size=8,
            mutation=MutationConfig(probability=0.45, window_fraction=0.01),
            seed=0,
        ),
        region=HalfImageRegion("right"),
        fast_search=True,
        search_fidelity=fidelity,
    )


@pytest.fixture(scope="module")
def fast_plan(dataset, training):
    return build_attack_plan(
        architectures=("detr",),
        seeds=(1,),
        dataset=dataset,
        attack_config=_fast_config(),
        training=training,
    )


@pytest.fixture(scope="module")
def serial_report(fast_plan):
    return execute_plan(fast_plan, SerialBackend())


def _result_fingerprint(result) -> tuple:
    solutions = tuple(
        (s.mask.values.tobytes(), s.intensity, s.degradation, s.distance, s.rank)
        for s in result.solutions
    )
    return (result.detector_name, result.num_evaluations, solutions)


def _report_fingerprints(report) -> list:
    return [_result_fingerprint(outcome.result) for outcome in report.outcomes]


def _assert_solutions_exactly_scored(result, detector, image):
    """Every reported solution's objectives equal a fresh exact evaluation."""
    reference = ButterflyObjectives(detector, image, use_activation_cache=False)
    for solution in result.solutions:
        exact = reference(solution.mask.values)
        assert solution.intensity == float(exact[0])
        assert solution.degradation == float(exact[1])
        assert solution.distance == float(-exact[2])


class TestAttackLevel:
    @pytest.mark.parametrize("fidelity", ["windowed", "turbo", "surrogate"])
    def test_fast_attack_front_is_exactly_scored(
        self, detr_detector, small_dataset, fidelity
    ):
        image = small_dataset[0].image
        result = ButterflyAttack(detr_detector, _fast_config(fidelity)).attack(image)
        _assert_solutions_exactly_scored(result, detr_detector, image)
        assert all("fidelity" in entry for entry in result.history)

    def test_fast_attack_is_deterministic(self, detr_detector, small_dataset):
        image = small_dataset[0].image
        first = ButterflyAttack(detr_detector, _fast_config()).attack(image)
        second = ButterflyAttack(detr_detector, _fast_config()).attack(image)
        assert _result_fingerprint(first) == _result_fingerprint(second)


class TestBackends:
    def test_serial_front_is_exactly_scored(
        self, fast_plan, serial_report, dataset, detr_small_48x96
    ):
        for outcome in serial_report.outcomes:
            _assert_solutions_exactly_scored(
                outcome.result, detr_small_48x96, dataset[0].image
            )

    @pytest.mark.parametrize("n_jobs", [2])
    def test_process_pool_matches_serial(self, fast_plan, serial_report, n_jobs):
        backend = ProcessPoolBackend(n_jobs=n_jobs, submission_seed=11)
        report = execute_plan(fast_plan, backend)
        assert _report_fingerprints(report) == _report_fingerprints(serial_report)

    def test_persistent_pool_matches_serial_and_leaks_nothing(
        self, fast_plan, serial_report
    ):
        backend = PersistentPoolBackend(n_jobs=2, submission_seed=13)
        try:
            report = execute_plan(fast_plan, backend)
            prefix = backend.runtime.segment_prefix
        finally:
            backend.close()
        assert _report_fingerprints(report) == _report_fingerprints(serial_report)
        assert list_segments(prefix) == []


@pytest.fixture(scope="module")
def detr_small_48x96(training):
    from repro.detectors.zoo import build_detector

    return build_detector("detr", seed=1, training=training)
