"""Tests for the transferability experiment.

``TestTransferEngineParity`` is the engine-parity suite: the engine-based
experiment (serial and pooled at n_jobs ∈ {1, 2, 4}, shuffled submission)
must be bit-identical to the preserved pre-engine reference loop
(`run_transferability_reference`) — same matrix, same best masks, same
intensities — for both live-detector and model-spec inputs.
"""

import numpy as np
import pytest

from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.data.dataset import generate_dataset
from repro.detectors.training import TrainingConfig
from repro.detectors.zoo import build_model_zoo
from repro.experiments.engine import ProcessPoolBackend
from repro.experiments.jobs import ModelSpec
from repro.experiments.transfer import (
    TransferabilityResult,
    run_transferability_experiment,
    run_transferability_reference,
)
from repro.nsga.algorithm import NSGAConfig


@pytest.fixture(scope="module")
def transfer_result(request):
    training = request.getfixturevalue("small_training_config")
    dataset = request.getfixturevalue("small_dataset")
    models = build_model_zoo("detr", seeds=(1, 2), training=training)
    config = AttackConfig(
        nsga=NSGAConfig(num_iterations=4, population_size=8, seed=0),
        region=HalfImageRegion("right"),
    )
    return run_transferability_experiment(models, dataset[0].image, config)


class TestTransferability:
    def test_matrix_shape(self, transfer_result):
        assert transfer_result.matrix.shape == (2, 2)
        assert transfer_result.num_models == 2
        assert len(transfer_result.masks_intensity) == 2

    def test_degradations_bounded(self, transfer_result):
        assert np.all(transfer_result.matrix >= 0.0)
        assert np.all(transfer_result.matrix <= 1.0 + 1e-9)

    def test_self_vs_transfer_statistics(self, transfer_result):
        self_deg = transfer_result.self_degradation()
        transfer_deg = transfer_result.transfer_degradation()
        assert 0.0 <= self_deg <= 1.0 + 1e-9
        assert 0.0 <= transfer_deg <= 1.0 + 1e-9
        assert transfer_result.transfer_gap() == pytest.approx(transfer_deg - self_deg)

    def test_rows_cover_all_pairs(self, transfer_result):
        rows = transfer_result.as_rows()
        assert len(rows) == 4
        assert sum(1 for row in rows if row["is_transfer"]) == 2

    def test_empty_model_list_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            run_transferability_experiment([], small_dataset[0].image)

    def test_single_model_transfer_degradation_is_one(self):
        result = TransferabilityResult(
            model_names=["only"], matrix=np.array([[0.4]])
        )
        assert result.transfer_degradation() == 1.0


class TestTransferabilityResultEdgeCases:
    def test_single_model_gap_is_nan_free(self):
        result = TransferabilityResult(model_names=["only"], matrix=np.array([[0.4]]))
        assert result.self_degradation() == pytest.approx(0.4)
        assert not np.isnan(result.transfer_gap())
        assert result.transfer_gap() == pytest.approx(1.0 - 0.4)
        assert len(result.as_rows()) == 1

    def test_empty_masks_intensity_defaults(self):
        result = TransferabilityResult(
            model_names=["a", "b"], matrix=np.full((2, 2), 0.5)
        )
        assert result.masks_intensity == []
        assert result.best_masks == []
        assert result.execution is None
        assert not np.isnan(result.transfer_gap())
        assert result.transfer_gap() == pytest.approx(0.0)

    def test_empty_matrix_statistics_are_nan_free(self):
        result = TransferabilityResult(
            model_names=[], matrix=np.zeros((0, 0))
        )
        assert result.self_degradation() == 1.0
        assert result.transfer_degradation() == 1.0
        assert not np.isnan(result.transfer_gap())


# Deliberately smaller than the module fixture: the parity suite runs the
# sweep six ways (reference, two serial variants, three pool sizes).
_PARITY_LENGTH, _PARITY_WIDTH = 48, 96


@pytest.fixture(scope="module")
def parity_training():
    return TrainingConfig(
        scenes_per_class=2,
        image_length=_PARITY_LENGTH,
        image_width=_PARITY_WIDTH,
        background_clusters=12,
    )


@pytest.fixture(scope="module")
def parity_image(parity_training):
    dataset = generate_dataset(
        num_images=1,
        seed=5,
        image_length=_PARITY_LENGTH,
        image_width=_PARITY_WIDTH,
        half="left",
    )
    return dataset[0].image


@pytest.fixture(scope="module")
def parity_config():
    return AttackConfig(
        nsga=NSGAConfig(num_iterations=3, population_size=8, seed=0),
        region=HalfImageRegion("right"),
    )


@pytest.fixture(scope="module")
def parity_specs(parity_training):
    return [ModelSpec("detr", seed, training=parity_training) for seed in (1, 2)]


@pytest.fixture(scope="module")
def reference_transfer(parity_training, parity_image, parity_config):
    models = build_model_zoo("detr", seeds=(1, 2), training=parity_training)
    return run_transferability_reference(models, parity_image, parity_config)


@pytest.fixture(scope="module")
def serial_transfer(parity_specs, parity_image, parity_config):
    return run_transferability_experiment(parity_specs, parity_image, parity_config)


def _assert_transfer_identical(left, right):
    """Bit-exact equality of everything the transfer report asserts."""
    assert left.model_names == right.model_names
    assert np.array_equal(left.matrix, right.matrix)
    assert left.masks_intensity == right.masks_intensity
    assert len(left.best_masks) == len(right.best_masks)
    for a, b in zip(left.best_masks, right.best_masks):
        assert np.array_equal(a, b)


class TestTransferEngineParity:
    def test_engine_matches_reference_loop(
        self, parity_training, parity_image, parity_config, serial_transfer,
        reference_transfer,
    ):
        """The engine sweep equals the preserved pre-engine loop bit for bit."""
        _assert_transfer_identical(reference_transfer, serial_transfer)

    def test_detector_instances_match_specs(
        self, parity_training, parity_image, parity_config, serial_transfer
    ):
        """Live-detector input rides the engine with identical results."""
        models = build_model_zoo("detr", seeds=(1, 2), training=parity_training)
        from_instances = run_transferability_experiment(
            models, parity_image, parity_config
        )
        _assert_transfer_identical(serial_transfer, from_instances)

    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_pooled_matches_serial(
        self, parity_specs, parity_image, parity_config, serial_transfer, n_jobs
    ):
        """Pooled sweeps (shuffled submission) are bit-identical to serial."""
        backend = ProcessPoolBackend(n_jobs=n_jobs, submission_seed=50 + n_jobs)
        pooled = run_transferability_experiment(
            parity_specs, parity_image, parity_config, n_jobs=n_jobs, backend=backend
        )
        _assert_transfer_identical(serial_transfer, pooled)
        assert pooled.execution["backend"] == "process"

    def test_experiment_seed_is_scheduling_independent(
        self, parity_specs, parity_image, parity_config
    ):
        serial = run_transferability_experiment(
            parity_specs, parity_image, parity_config, experiment_seed=2023
        )
        pooled = run_transferability_experiment(
            parity_specs,
            parity_image,
            parity_config,
            backend=ProcessPoolBackend(n_jobs=2, submission_seed=9),
            experiment_seed=2023,
        )
        _assert_transfer_identical(serial, pooled)
        assert serial.experiment_seed == 2023

    def test_execution_provenance_recorded(self, serial_transfer):
        execution = serial_transfer.execution
        assert execution["backend"] == "serial"
        assert len(execution["stages"]) == 2
        stats = execution["cache_stats"]
        # Two models: at least one activation-cache miss per optimisation
        # job (the cross-evaluation stage adds one more per column only
        # when a best mask is sparse enough for the windowed path).
        assert stats["misses"] >= 2
