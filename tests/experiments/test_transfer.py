"""Tests for the transferability experiment."""

import numpy as np
import pytest

from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.detectors.zoo import build_model_zoo
from repro.experiments.transfer import (
    TransferabilityResult,
    run_transferability_experiment,
)
from repro.nsga.algorithm import NSGAConfig


@pytest.fixture(scope="module")
def transfer_result(request):
    training = request.getfixturevalue("small_training_config")
    dataset = request.getfixturevalue("small_dataset")
    models = build_model_zoo("detr", seeds=(1, 2), training=training)
    config = AttackConfig(
        nsga=NSGAConfig(num_iterations=4, population_size=8, seed=0),
        region=HalfImageRegion("right"),
    )
    return run_transferability_experiment(models, dataset[0].image, config)


class TestTransferability:
    def test_matrix_shape(self, transfer_result):
        assert transfer_result.matrix.shape == (2, 2)
        assert transfer_result.num_models == 2
        assert len(transfer_result.masks_intensity) == 2

    def test_degradations_bounded(self, transfer_result):
        assert np.all(transfer_result.matrix >= 0.0)
        assert np.all(transfer_result.matrix <= 1.0 + 1e-9)

    def test_self_vs_transfer_statistics(self, transfer_result):
        self_deg = transfer_result.self_degradation()
        transfer_deg = transfer_result.transfer_degradation()
        assert 0.0 <= self_deg <= 1.0 + 1e-9
        assert 0.0 <= transfer_deg <= 1.0 + 1e-9
        assert transfer_result.transfer_gap() == pytest.approx(transfer_deg - self_deg)

    def test_rows_cover_all_pairs(self, transfer_result):
        rows = transfer_result.as_rows()
        assert len(rows) == 4
        assert sum(1 for row in rows if row["is_transfer"]) == 2

    def test_empty_model_list_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            run_transferability_experiment([], small_dataset[0].image)

    def test_single_model_transfer_degradation_is_one(self):
        result = TransferabilityResult(
            model_names=["only"], matrix=np.array([[0.4]])
        )
        assert result.transfer_degradation() == 1.0
