"""Crash/kill fault-injection: journaled plans resume bit-identically.

The scenarios the checkpoint layer exists for, run against the real attack
plan in :mod:`fault_plan` (tiny geometry, deterministic outcomes):

* a **worker** hard-killed mid-plan (persistent runtime) — the crash
  budget surfaces ``WorkerCrashError``, the journal holds what finished,
  and a resumed run completes with bit-identical results; with a
  ``RetryPolicy`` the same crash is absorbed inside one ``execute_plan``;
* a **transient job failure** on the one-shot process pool — resume and
  in-run retry both recover;
* the **parent process** SIGKILLed mid-plan (both pooled backends,
  ``n_jobs`` ∈ {2, 4}) — a fresh process resumes from the journal and the
  final report is bit-identical to an uninterrupted serial run;
* every scenario leaves **zero shared-memory segments** behind.
"""

import os
import signal
import subprocess
import sys
import time
from dataclasses import replace as dataclasses_replace
from pathlib import Path

import pytest

# The shared plan module lives beside this file (it doubles as the child
# process' entry point); importlib import-mode does not put test dirs on
# sys.path, so register it explicitly.
_HERE = str(Path(__file__).resolve().parent)
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)

import fault_plan
from fault_plan import KillOnceAttackJob, build_plan
from repro.experiments.checkpoint import PlanCheckpoint
from repro.experiments.engine import (
    JobExecutionError,
    ProcessPoolBackend,
    RetryPolicy,
    SerialBackend,
    WorkerCrashError,
    execute_plan,
)
from repro.experiments.persistent import PersistentPoolBackend
from repro.experiments.shm import list_segments, reap_segments


@pytest.fixture(scope="module")
def plan():
    return build_plan()


@pytest.fixture(scope="module")
def serial_fingerprints(plan):
    report = execute_plan(plan, SerialBackend())
    return [outcome.result.fingerprint() for outcome in report.outcomes]


def _fingerprints(report):
    return [outcome.result.fingerprint() for outcome in report.outcomes]


def _with_kill_once(plan, index: int, sentinel: str):
    """The same plan with job ``index`` swapped for its kill-once twin."""
    jobs = list(plan.jobs)
    original = jobs[index]
    jobs[index] = KillOnceAttackJob(
        job_id=original.job_id,
        model=original.model,
        image=original.image,
        config=original.config,
        scene_index=original.scene_index,
        nsga_seed=original.nsga_seed,
        sentinel=sentinel,
    )
    return dataclasses_replace(plan, jobs=jobs)


class _FailOnceAttackJob(KillOnceAttackJob):
    """Raises (instead of killing the worker) on first dispatch."""

    def execute(self, context):
        if self.sentinel and not os.path.exists(self.sentinel):
            with open(self.sentinel, "w"):
                pass
            raise ValueError("injected transient failure")
        return KillOnceAttackJob.execute(self, context)


class TestWorkerDeathResume:
    def test_worker_kill_interrupts_then_journal_resumes(
        self, plan, serial_fingerprints, tmp_path
    ):
        """Crash-budget abort mid-plan, then resume: bit-identical report.

        The kill job is the *last* job, so its worker completes (and
        journals) at least one sibling job of the same model before dying
        — the resume is guaranteed a journal hit.
        """
        faulty = _with_kill_once(plan, 3, str(tmp_path / "crashed-once"))
        backend = PersistentPoolBackend(n_jobs=2, max_crashes_per_job=1)
        try:
            with pytest.raises(WorkerCrashError):
                execute_plan(
                    faulty, backend, checkpoint=PlanCheckpoint(tmp_path)
                )
            prefix = backend.runtime.segment_prefix
            resumed = execute_plan(
                faulty, backend, checkpoint=PlanCheckpoint(tmp_path)
            )
        finally:
            backend.close()
        assert resumed.journal_hits >= 1
        assert _fingerprints(resumed) == serial_fingerprints
        assert list_segments(prefix) == []

    def test_worker_kill_absorbed_by_retry_policy(
        self, plan, serial_fingerprints, tmp_path
    ):
        """With a RetryPolicy the crash never surfaces: one execute_plan
        call re-dispatches the remainder and completes bit-identically."""
        faulty = _with_kill_once(plan, 1, str(tmp_path / "crashed-once"))
        backend = PersistentPoolBackend(n_jobs=2, max_crashes_per_job=1)
        try:
            report = execute_plan(
                faulty,
                backend,
                checkpoint=PlanCheckpoint(tmp_path),
                retry=RetryPolicy(max_retries=2),
            )
            prefix = backend.runtime.segment_prefix
        finally:
            backend.close()
        assert report.retries >= 1
        assert _fingerprints(report) == serial_fingerprints
        assert list_segments(prefix) == []


class TestTransientFailureResume:
    def test_process_pool_failure_then_journal_resume(
        self, plan, serial_fingerprints, tmp_path
    ):
        # The failing job is last: it is only dispatched after an earlier
        # job completed (and was journaled), so the resume is guaranteed a
        # journal hit.
        jobs = list(plan.jobs)
        jobs[3] = _FailOnceAttackJob(
            job_id=jobs[3].job_id,
            model=jobs[3].model,
            image=jobs[3].image,
            config=jobs[3].config,
            scene_index=jobs[3].scene_index,
            nsga_seed=jobs[3].nsga_seed,
            sentinel=str(tmp_path / "failed-once"),
        )
        faulty = dataclasses_replace(plan, jobs=jobs)
        with pytest.raises(JobExecutionError):
            execute_plan(
                faulty,
                ProcessPoolBackend(n_jobs=2),
                checkpoint=PlanCheckpoint(tmp_path),
            )
        resumed = execute_plan(
            faulty,
            ProcessPoolBackend(n_jobs=2),
            checkpoint=PlanCheckpoint(tmp_path),
        )
        assert resumed.journal_hits >= 1
        assert _fingerprints(resumed) == serial_fingerprints

    def test_process_pool_failure_absorbed_by_retry_policy(
        self, plan, serial_fingerprints, tmp_path
    ):
        jobs = list(plan.jobs)
        jobs[0] = _FailOnceAttackJob(
            job_id=jobs[0].job_id,
            model=jobs[0].model,
            image=jobs[0].image,
            config=jobs[0].config,
            scene_index=jobs[0].scene_index,
            nsga_seed=jobs[0].nsga_seed,
            sentinel=str(tmp_path / "failed-once"),
        )
        faulty = dataclasses_replace(plan, jobs=jobs)
        report = execute_plan(
            faulty,
            ProcessPoolBackend(n_jobs=2),
            retry=RetryPolicy(max_retries=2),
        )
        assert report.retries >= 1
        assert _fingerprints(report) == serial_fingerprints


class TestParentDeathResume:
    """SIGKILL the whole driving process group mid-plan, then resume."""

    def _launch_child(self, backend: str, n_jobs: int, checkpoint_dir: Path):
        here = Path(__file__).resolve().parent
        src = Path(fault_plan.__file__).resolve()  # lives next to this test
        import repro

        repro_src = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(repro_src), str(here)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        return subprocess.Popen(
            [sys.executable, str(src), backend, str(n_jobs), str(checkpoint_dir)],
            env=env,
            start_new_session=True,  # its own process group: killpg reaps workers too
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def _wait_for_journal_outcomes(self, path: Path, minimum: int, child) -> int:
        deadline = time.monotonic() + 300.0
        while time.monotonic() < deadline:
            if child.poll() is not None and not path.exists():
                raise AssertionError("child exited before journaling anything")
            if path.exists():
                lines = path.read_text().count("\n")
                if lines >= 1 + minimum:  # header + outcomes
                    return lines - 1
                if child.poll() is not None:
                    return lines - 1  # child finished the whole plan
            time.sleep(0.05)
        raise AssertionError("journal never accumulated outcomes")

    @pytest.mark.parametrize("backend", ["persistent", "process"])
    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_parent_sigkill_then_resume_matches_serial(
        self, plan, serial_fingerprints, tmp_path, backend, n_jobs
    ):
        journal = tmp_path / f"{plan.name}.journal.jsonl"
        child = self._launch_child(backend, n_jobs, tmp_path)
        try:
            journaled = self._wait_for_journal_outcomes(journal, 1, child)
            if child.poll() is None:
                os.killpg(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup backstop
                os.killpg(child.pid, signal.SIGKILL)
                child.wait(timeout=30)
        # A SIGKILLed parent cannot clean its shared memory; the resuming
        # process reaps the dead runtime's segments by name prefix.
        reap_segments(f"rpr{child.pid}")
        assert list_segments(f"rpr{child.pid}") == []
        assert journaled >= 1

        resumed = execute_plan(
            plan, SerialBackend(), checkpoint=PlanCheckpoint(tmp_path)
        )
        assert resumed.journal_hits >= 1
        assert _fingerprints(resumed) == serial_fingerprints
