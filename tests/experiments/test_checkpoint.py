"""Checkpoint-journal codecs, resume semantics and the engine retry loop.

Three layers:

1. **Codec round-trips** — every outcome payload type the repo's sweeps
   produce (attack results, transfer columns, defense bundles, scalars,
   pickle fallback) survives ``encode_outcome``/``decode_outcome``
   bit-exactly (fingerprints compare mask bytes, not approximations).
2. **Journal robustness** — plan-fingerprint validation, refusal to
   silently reuse an existing journal without ``resume=True``, torn-tail
   truncation after a mid-append kill, corrupt-line rejection.
3. **Engine integration** — ``execute_plan(checkpoint=...)`` skips
   journaled jobs on resume (``journal_hits``), journals stream *before*
   a failure aborts the plan, and ``RetryPolicy`` re-dispatches the
   un-collected remainder after transient worker-side failures.
"""

import json
import os

import numpy as np
import pytest

from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.defenses.jobs import DefenseJobResult, EnsembleDefenseJobResult
from repro.detectors.activation_cache import CacheStats
from repro.experiments.checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointExistsError,
    CheckpointMismatchError,
    PlanCheckpoint,
    decode_outcome,
    decode_result,
    encode_outcome,
    encode_result,
)
from repro.experiments.engine import (
    JobExecutionError,
    ProcessPoolBackend,
    RetryPolicy,
    SerialBackend,
    WorkerCrashError,
    execute_plan,
)
from repro.experiments.jobs import ExperimentPlan, JobOutcome, plan_fingerprint
from repro.experiments.transfer import TransferColumn
from repro.nsga.algorithm import NSGAConfig


def _toy_config() -> AttackConfig:
    return AttackConfig(
        nsga=NSGAConfig(num_iterations=2, population_size=4, seed=7),
        region=HalfImageRegion("right"),
    )


# --- toy jobs (module level: they cross the process boundary) ---------------


class _CountingJob:
    """Returns value² and, when given a trace directory, logs the execution
    so tests can prove a journaled job was *not* re-executed on resume."""

    def __init__(self, job_id: int, value: int, trace_dir: str | None = None):
        self.job_id = job_id
        self.value = value
        self.trace_dir = trace_dir

    def execute(self, context):
        if self.trace_dir is not None:
            with open(
                os.path.join(self.trace_dir, f"ran-{self.job_id}-{os.getpid()}"),
                "w",
            ):
                pass
        return JobOutcome(job_id=self.job_id, result=self.value * self.value)


class _FailOnceJob:
    """Raises on first dispatch (sentinel missing), succeeds afterwards."""

    def __init__(self, job_id: int, sentinel: str):
        self.job_id = job_id
        self.sentinel = sentinel

    def execute(self, context):
        if not os.path.exists(self.sentinel):
            with open(self.sentinel, "w"):
                pass
            raise ValueError("transient failure")
        return JobOutcome(job_id=self.job_id, result="recovered")


class _AlwaysFailJob:
    def __init__(self, job_id: int):
        self.job_id = job_id

    def execute(self, context):
        raise ValueError("permanent failure")


def _counting_plan(n: int = 4, name: str = "counting", trace_dir=None):
    return ExperimentPlan(
        jobs=[_CountingJob(i, i, trace_dir) for i in range(n)],
        attack_config=_toy_config(),
        name=name,
    )


# --- payload codecs ----------------------------------------------------------


class TestOutcomeCodecs:
    @pytest.fixture(scope="class")
    def attack_result(self, request):
        from repro.core.attack import ButterflyAttack

        detector = request.getfixturevalue("yolo_detector")
        dataset = request.getfixturevalue("small_dataset")
        config = AttackConfig(
            nsga=NSGAConfig(num_iterations=2, population_size=5, seed=0),
            region=HalfImageRegion("right"),
        )
        return ButterflyAttack(detector, config).attack(dataset[0].image)

    def _round_trip(self, outcome: JobOutcome) -> JobOutcome:
        encoded = encode_outcome(outcome)
        decoded = decode_outcome(json.loads(json.dumps(encoded)))
        assert decoded.restored is True
        assert decoded.job_id == outcome.job_id
        assert decoded.worker_id == outcome.worker_id
        assert decoded.duration_seconds == outcome.duration_seconds
        return decoded

    def test_attack_result_round_trip_is_bit_exact(self, attack_result):
        outcome = JobOutcome(
            job_id=3,
            result=attack_result,
            cache_stats=CacheStats(hits=2, misses=1, delta_hits=4, delta_bytes=9),
            worker_id="worker-1",
            duration_seconds=1.25,
        )
        decoded = self._round_trip(outcome)
        assert decoded.result.fingerprint() == attack_result.fingerprint()
        assert decoded.result.image.tobytes() == attack_result.image.tobytes()
        assert decoded.cache_stats == outcome.cache_stats

    def test_transfer_column_round_trip_is_bit_exact(self, rng):
        column = TransferColumn(
            target_index=2,
            target_name="detr-seed3",
            degradations=rng.uniform(0, 1, size=7),
        )
        decoded = self._round_trip(JobOutcome(job_id=2, result=column))
        assert decoded.result.target_index == 2
        assert decoded.result.target_name == "detr-seed3"
        assert decoded.result.degradations.tobytes() == column.degradations.tobytes()

    def test_defense_result_round_trip_is_bit_exact(self, attack_result):
        payload = DefenseJobResult(
            role="defended",
            attack_result=attack_result,
            best_degradation=0.375,
            clean_recall=0.875,
        )
        decoded = self._round_trip(JobOutcome(job_id=1, result=payload))
        assert decoded.result.role == "defended"
        assert decoded.result.best_degradation == 0.375
        assert decoded.result.clean_recall == 0.875
        assert decoded.result.attack_result.fingerprint() == attack_result.fingerprint()

    def test_ensemble_result_round_trip_is_bit_exact(self, attack_result):
        payload = EnsembleDefenseJobResult(
            attack_result=attack_result,
            member_degradations=[0.5, 0.25],
            fused_degradation=0.75,
        )
        decoded = self._round_trip(JobOutcome(job_id=0, result=payload))
        assert decoded.result.member_degradations == [0.5, 0.25]
        assert decoded.result.fused_degradation == 0.75
        assert decoded.result.attack_result.fingerprint() == attack_result.fingerprint()

    @pytest.mark.parametrize("payload", [None, True, 42, 2.5, "survived"])
    def test_json_scalars_round_trip(self, payload):
        encoded = encode_result(payload)
        assert encoded["type"] == "json"
        assert decode_result(json.loads(json.dumps(encoded))) == payload

    def test_unregistered_type_rides_pickle_fallback(self):
        payload = {"arbitrary": (1, 2, 3)}
        encoded = encode_result(payload)
        assert encoded["type"] == "pickle"
        assert decode_result(json.loads(json.dumps(encoded))) == payload

    def test_unknown_tag_is_corrupt(self):
        with pytest.raises(CheckpointCorruptError):
            decode_result({"type": "no-such-codec", "payload": {}})

    def test_missing_cache_stats_stay_none(self):
        decoded = decode_outcome(encode_outcome(JobOutcome(job_id=0, result=1)))
        assert decoded.cache_stats is None


# --- journal robustness ------------------------------------------------------


class TestJournalRobustness:
    def test_record_before_load_is_an_error(self, tmp_path):
        checkpoint = PlanCheckpoint(tmp_path)
        with pytest.raises(CheckpointError, match="load"):
            checkpoint.record(JobOutcome(job_id=0, result=1))

    def test_existing_journal_without_resume_is_an_error(self, tmp_path):
        plan = _counting_plan()
        execute_plan(plan, SerialBackend(), checkpoint=PlanCheckpoint(tmp_path))
        with pytest.raises(CheckpointExistsError):
            PlanCheckpoint(tmp_path, resume=False).load(plan)

    def test_journal_of_a_different_plan_is_rejected(self, tmp_path):
        execute_plan(
            _counting_plan(4), SerialBackend(), checkpoint=PlanCheckpoint(tmp_path)
        )
        different = _counting_plan(5)  # same name, different job list
        with pytest.raises(CheckpointMismatchError, match="num_jobs"):
            PlanCheckpoint(tmp_path).load(different)

    def test_headerless_file_is_rejected(self, tmp_path):
        plan = _counting_plan()
        path = PlanCheckpoint(tmp_path).journal_path(plan)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"kind":"outcome"}\n')
        with pytest.raises(CheckpointCorruptError, match="header"):
            PlanCheckpoint(tmp_path).load(plan)

    def test_torn_tail_is_discarded_and_truncated(self, tmp_path):
        plan = _counting_plan()
        checkpoint = PlanCheckpoint(tmp_path)
        execute_plan(plan, SerialBackend(), checkpoint=checkpoint)
        checkpoint.close()
        path = checkpoint.journal_path(plan)
        intact = path.stat().st_size
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind":"outcome","job_id":99,"resu')  # no newline
        with pytest.warns(RuntimeWarning, match="torn record"):
            restored = PlanCheckpoint(tmp_path).load(plan)
        assert sorted(restored) == [0, 1, 2, 3]  # torn record contributed nothing
        assert path.stat().st_size == intact  # file back on a line boundary

    def test_corrupt_middle_line_is_an_error(self, tmp_path):
        plan = _counting_plan()
        checkpoint = PlanCheckpoint(tmp_path)
        execute_plan(plan, SerialBackend(), checkpoint=checkpoint)
        checkpoint.close()
        path = checkpoint.journal_path(plan)
        lines = path.read_text().splitlines()
        lines[2] = lines[2][: len(lines[2]) // 2]  # torn *inner* line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointCorruptError, match="non-final"):
            PlanCheckpoint(tmp_path).load(plan)

    def test_fingerprint_tracks_job_identity(self):
        base = _counting_plan(3)
        assert plan_fingerprint(base) == plan_fingerprint(_counting_plan(3))
        renamed = _counting_plan(3, name="other")
        assert plan_fingerprint(base)["name"] != plan_fingerprint(renamed)["name"]
        retyped = ExperimentPlan(
            jobs=[_CountingJob(0, 0), _CountingJob(1, 1), _AlwaysFailJob(2)],
            attack_config=_toy_config(),
            name="counting",
        )
        assert (
            plan_fingerprint(base)["jobs_digest"]
            != plan_fingerprint(retyped)["jobs_digest"]
        )


# --- engine integration ------------------------------------------------------


class TestResumeSemantics:
    def test_resume_skips_journaled_jobs(self, tmp_path):
        trace = tmp_path / "trace"
        trace.mkdir()
        plan = _counting_plan(trace_dir=str(trace))
        first = execute_plan(
            plan, SerialBackend(), checkpoint=PlanCheckpoint(tmp_path)
        )
        assert first.journal_hits == 0
        assert len(list(trace.iterdir())) == 4
        resumed = execute_plan(
            plan, SerialBackend(), checkpoint=PlanCheckpoint(tmp_path)
        )
        assert resumed.journal_hits == 4
        assert len(list(trace.iterdir())) == 4  # nothing re-executed
        assert [o.result for o in resumed.outcomes] == [0, 1, 4, 9]
        assert all(o.restored for o in resumed.outcomes)

    def test_interrupted_serial_plan_resumes_from_partial_journal(self, tmp_path):
        trace = tmp_path / "trace"
        trace.mkdir()
        sentinel = str(tmp_path / "failed-once")
        plan = ExperimentPlan(
            jobs=[
                _CountingJob(0, 2, str(trace)),
                _CountingJob(1, 3, str(trace)),
                _FailOnceJob(2, sentinel),
                _CountingJob(3, 4, str(trace)),
            ],
            attack_config=_toy_config(),
            name="interrupted",
        )
        checkpoint = PlanCheckpoint(tmp_path)
        # Serial surfaces the raw job exception; jobs 0-1 are already
        # journaled because outcomes stream to the journal as they finish.
        with pytest.raises(ValueError, match="transient failure"):
            execute_plan(plan, SerialBackend(), checkpoint=checkpoint)
        checkpoint.close()
        resumed = execute_plan(
            plan, SerialBackend(), checkpoint=PlanCheckpoint(tmp_path)
        )
        assert resumed.journal_hits == 2
        assert [o.result for o in resumed.outcomes] == [4, 9, "recovered", 16]
        assert [o.restored for o in resumed.outcomes] == [True, True, False, False]
        # Jobs 0-1 ran exactly once across both invocations.
        assert len([p for p in trace.iterdir() if p.name.startswith("ran-0")]) == 1
        assert len([p for p in trace.iterdir() if p.name.startswith("ran-1")]) == 1

    def test_summary_carries_fault_tolerance_counters(self, tmp_path):
        plan = _counting_plan()
        execute_plan(plan, SerialBackend(), checkpoint=PlanCheckpoint(tmp_path))
        resumed = execute_plan(
            plan, SerialBackend(), checkpoint=PlanCheckpoint(tmp_path)
        )
        summary = resumed.summary()
        assert summary["journal_hits"] == 4
        assert summary["retries"] == 0


class TestRetryPolicy:
    def test_should_retry_classification(self):
        policy = RetryPolicy()
        assert policy.should_retry(JobExecutionError(0, "w", "boom"))
        assert policy.should_retry(WorkerCrashError(0, 3))
        assert not policy.should_retry(ValueError("boom"))
        assert not RetryPolicy(retry_errors=False).should_retry(
            JobExecutionError(0, "w", "boom")
        )
        assert not RetryPolicy(retry_crashes=False).should_retry(
            WorkerCrashError(0, 3)
        )

    def test_transient_error_is_retried_on_the_process_pool(self, tmp_path):
        sentinel = str(tmp_path / "failed-once")
        plan = ExperimentPlan(
            jobs=[
                _CountingJob(0, 1),
                _FailOnceJob(1, sentinel),
                _CountingJob(2, 2),
            ],
            attack_config=_toy_config(),
            name="transient",
        )
        report = execute_plan(
            plan,
            ProcessPoolBackend(n_jobs=2),
            checkpoint=PlanCheckpoint(tmp_path),
            retry=RetryPolicy(max_retries=2),
        )
        assert report.retries >= 1
        assert [o.result for o in report.outcomes] == [1, "recovered", 4]

    def test_poison_job_exhausts_the_attempt_budget(self):
        plan = ExperimentPlan(
            jobs=[_CountingJob(0, 1), _AlwaysFailJob(1)],
            attack_config=_toy_config(),
            name="poison-retry",
        )
        with pytest.raises(JobExecutionError) as err:
            execute_plan(
                plan,
                ProcessPoolBackend(n_jobs=2),
                retry=RetryPolicy(max_retries=1),
            )
        assert err.value.job_id == 1

    def test_no_retry_without_a_policy(self, tmp_path):
        sentinel = str(tmp_path / "failed-once")
        plan = ExperimentPlan(
            jobs=[_FailOnceJob(0, sentinel)],
            attack_config=_toy_config(),
            name="fail-fast",
        )
        with pytest.raises(JobExecutionError):
            execute_plan(plan, ProcessPoolBackend(n_jobs=1))
