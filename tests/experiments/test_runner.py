"""Tests for the architecture-comparison runner (Figure 2 protocol)."""

import numpy as np
import pytest

from repro.detectors.training import TrainingConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_architecture_comparison
from repro.nsga.algorithm import NSGAConfig

from tests.conftest import SMALL_LENGTH, SMALL_WIDTH


@pytest.fixture(scope="module")
def comparison():
    """A tiny but complete run of the Figure 2 protocol."""
    experiment = ExperimentConfig.reduced(
        models_per_architecture=1,
        images_per_model=1,
        ensemble_size=1,
        image_length=SMALL_LENGTH,
        image_width=SMALL_WIDTH,
    )
    nsga = NSGAConfig(num_iterations=3, population_size=8, seed=0)
    training = TrainingConfig(
        scenes_per_class=3,
        image_length=SMALL_LENGTH,
        image_width=SMALL_WIDTH,
        background_clusters=24,
    )
    return run_architecture_comparison(
        experiment=experiment, nsga=nsga, training=training, dataset_seed=5
    )


class TestRunArchitectureComparison:
    def test_both_architectures_present(self, comparison):
        assert set(comparison.results) == {"single_stage", "transformer"}

    def test_number_of_runs(self, comparison):
        # 1 model x 1 image per architecture.
        assert len(comparison.results["single_stage"]) == 1
        assert len(comparison.results["transformer"]) == 1

    def test_front_points_shape(self, comparison):
        points = comparison.front_points("transformer")
        assert points.ndim == 2 and points.shape[1] == 3

    def test_front_points_unknown_label_empty(self, comparison):
        assert comparison.front_points("nonexistent").size == 0

    def test_report_summary_contains_both_labels(self, comparison):
        labels = {row["label"] for row in comparison.report.summary_rows()}
        assert labels == {"single_stage", "transformer"}

    def test_susceptibility_summary_keys(self, comparison):
        summary = comparison.susceptibility_summary()
        for label in ("single_stage", "transformer"):
            assert {"best_degradation", "mean_degradation", "mean_intensity", "mean_distance"} <= set(
                summary[label]
            )

    def test_best_degradation_bounded(self, comparison):
        for label in ("single_stage", "transformer"):
            value = comparison.best_degradation(label)
            assert 0.0 <= value <= 1.0 + 1e-9

    def test_masks_respect_right_half_constraint(self, comparison):
        for results in comparison.results.values():
            for result in results:
                middle = result.image.shape[1] // 2
                for solution in result.pareto_front:
                    assert np.allclose(solution.mask.values[:, :middle, :], 0.0)

    def test_experiment_config_recorded(self, comparison):
        assert comparison.experiment is not None
        assert comparison.experiment.models_per_architecture == 1
