"""Tests for the Table I / Table II configuration objects."""

import pytest

from repro.experiments.config import (
    NSGA_TABLE_II,
    ExperimentConfig,
    experiment_table_rows,
    nsga_table_rows,
)


class TestExperimentConfig:
    def test_paper_protocol_matches_table_i(self):
        config = ExperimentConfig.paper()
        assert config.models_per_architecture == 25
        assert config.images_per_model == 16
        assert config.ensemble_size == 16
        assert config.model_seeds == tuple(range(1, 26))

    def test_reduced_protocol_is_consistent(self):
        config = ExperimentConfig.reduced(models_per_architecture=3, images_per_model=2)
        assert config.models_per_architecture == 3
        assert len(config.model_seeds) == 3
        assert config.images_per_model == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(models_per_architecture=0)
        with pytest.raises(ValueError):
            ExperimentConfig(images_per_model=0)
        with pytest.raises(ValueError):
            ExperimentConfig(ensemble_size=0)
        with pytest.raises(ValueError):
            ExperimentConfig(models_per_architecture=30)  # only 25 seeds provided
        with pytest.raises(ValueError):
            ExperimentConfig(ensemble_size=30)

    def test_execution_fields(self):
        config = ExperimentConfig()
        assert config.n_jobs == 1
        assert config.execution_backend == "auto"
        reduced = ExperimentConfig.reduced(n_jobs=4, execution_backend="process")
        assert reduced.n_jobs == 4
        assert reduced.execution_backend == "process"
        with pytest.raises(ValueError):
            ExperimentConfig(n_jobs=0)
        with pytest.raises(ValueError):
            ExperimentConfig(execution_backend="threads")


class TestTableRows:
    def test_table_i_rows(self):
        rows = experiment_table_rows()
        assert len(rows) == 3
        values = {row["Configuration"]: row["Value"] for row in rows}
        assert "25" in values["# models generated"]
        assert values["# images tested on each model"] == "16"
        assert values["# models used in ensemble"] == "16"

    def test_table_ii_rows_match_paper(self):
        rows = nsga_table_rows()
        values = {row["Parameter"]: row["Value"] for row in rows}
        assert values["Number of iterations"] == "100"
        assert values["Population size"] == "101"
        assert values["Crossover probability"] == "pc = 0.5"
        assert values["Mutation probability"] == "pm = 0.45"
        assert values["Mutation window size"] == "w = 1%"

    def test_table_ii_constant_matches_paper(self):
        assert NSGA_TABLE_II.num_iterations == 100
        assert NSGA_TABLE_II.population_size == 101

    def test_rows_for_custom_config(self):
        config = ExperimentConfig.reduced(models_per_architecture=2)
        rows = experiment_table_rows(config)
        assert "2" in rows[0]["Value"]
