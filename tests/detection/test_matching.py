"""Tests for greedy and Hungarian prediction matching."""

import pytest

from repro.detection.boxes import BoundingBox
from repro.detection.matching import greedy_match, hungarian_match, match_predictions
from repro.detection.prediction import Prediction


def _box(cl, x, y, l=10.0, w=10.0, score=1.0):
    return BoundingBox(cl=cl, x=x, y=y, l=l, w=w, score=score)


class TestGreedyMatch:
    def test_perfect_match(self):
        boxes = [_box(0, 10, 10), _box(1, 40, 40)]
        result = greedy_match(Prediction(boxes), Prediction(list(boxes)))
        assert result.num_matched == 2
        assert result.mean_iou == pytest.approx(1.0)
        assert result.unmatched_reference == []
        assert result.unmatched_candidate == []

    def test_class_mismatch_not_matched(self):
        reference = Prediction([_box(0, 10, 10)])
        candidate = Prediction([_box(1, 10, 10)])
        result = greedy_match(reference, candidate, same_class_only=True)
        assert result.num_matched == 0
        assert result.unmatched_reference == [0]
        assert result.unmatched_candidate == [0]

    def test_class_mismatch_matched_when_class_agnostic(self):
        reference = Prediction([_box(0, 10, 10)])
        candidate = Prediction([_box(1, 10, 10)])
        result = greedy_match(reference, candidate, same_class_only=False)
        assert result.num_matched == 1

    def test_candidate_can_be_reused(self):
        # Two reference boxes overlap the same candidate; the greedy matcher
        # (mirroring Algorithm 1's per-box max) may reuse it for both.
        reference = Prediction([_box(0, 10, 10), _box(0, 12, 12)])
        candidate = Prediction([_box(0, 11, 11)])
        result = greedy_match(reference, candidate)
        assert result.num_matched == 2

    def test_min_iou_filters_weak_matches(self):
        reference = Prediction([_box(0, 10, 10)])
        candidate = Prediction([_box(0, 18, 18)])
        weak = greedy_match(reference, candidate, min_iou=0.5)
        assert weak.num_matched == 0
        permissive = greedy_match(reference, candidate, min_iou=0.0)
        assert permissive.num_matched == 1

    def test_empty_inputs(self):
        result = greedy_match(Prediction.empty(), Prediction([_box(0, 1, 1)]))
        assert result.num_matched == 0
        assert result.mean_iou == 0.0
        assert result.unmatched_candidate == [0]


class TestHungarianMatch:
    def test_one_to_one_assignment(self):
        # Greedy would assign both references to the same best candidate;
        # Hungarian must produce a one-to-one assignment.
        reference = Prediction([_box(0, 10, 10), _box(0, 14, 14)])
        candidate = Prediction([_box(0, 11, 11), _box(0, 15, 15)])
        result = hungarian_match(reference, candidate)
        assert result.num_matched == 2
        matched_candidates = {pair[1] for pair in result.pairs}
        assert matched_candidates == {0, 1}

    def test_empty_candidate(self):
        result = hungarian_match(Prediction([_box(0, 1, 1)]), Prediction.empty())
        assert result.num_matched == 0
        assert result.unmatched_reference == [0]

    def test_respects_same_class_only(self):
        reference = Prediction([_box(0, 10, 10)])
        candidate = Prediction([_box(1, 10, 10)])
        assert hungarian_match(reference, candidate).num_matched == 0
        assert (
            hungarian_match(reference, candidate, same_class_only=False).num_matched
            == 1
        )

    def test_prefers_total_iou(self):
        # Candidate 0 overlaps reference 0 strongly and reference 1 weakly;
        # candidate 1 overlaps reference 0 weakly only.  Optimal assignment
        # pairs (0,0); reference 1 should take candidate 1 only if the IoU
        # is positive, otherwise stay unmatched.
        reference = Prediction([_box(0, 10, 10), _box(0, 30, 30)])
        candidate = Prediction([_box(0, 11, 11), _box(0, 16, 16)])
        result = hungarian_match(reference, candidate)
        pairs = dict((r, c) for r, c, _ in result.pairs)
        assert pairs[0] == 0


class TestDispatch:
    def test_match_predictions_greedy(self):
        reference = Prediction([_box(0, 10, 10)])
        candidate = Prediction([_box(0, 10, 10)])
        assert match_predictions(reference, candidate, strategy="greedy").num_matched == 1

    def test_match_predictions_hungarian(self):
        reference = Prediction([_box(0, 10, 10)])
        candidate = Prediction([_box(0, 10, 10)])
        assert (
            match_predictions(reference, candidate, strategy="hungarian").num_matched
            == 1
        )

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            match_predictions(Prediction.empty(), Prediction.empty(), strategy="magic")
