"""Tests for the Prediction container."""

import pytest

from repro.detection.boxes import BACKGROUND_CLASS, BoundingBox
from repro.detection.prediction import Prediction


def _box(cl=0, x=10.0, y=10.0, l=4.0, w=4.0, score=1.0):
    return BoundingBox(cl=cl, x=x, y=y, l=l, w=w, score=score)


class TestPredictionBasics:
    def test_empty_prediction(self):
        prediction = Prediction.empty()
        assert len(prediction) == 0
        assert prediction.num_valid == 0
        assert prediction.valid_boxes == []
        assert prediction.summary() == "Prediction(empty)"

    def test_valid_boxes_filters_background(self):
        prediction = Prediction([_box(cl=0), BoundingBox.background(), _box(cl=2)])
        assert len(prediction) == 3
        assert prediction.num_valid == 2
        assert prediction.classes == [0, 2]

    def test_boxes_of_class(self):
        prediction = Prediction([_box(cl=0), _box(cl=1), _box(cl=0, x=20.0)])
        assert len(prediction.boxes_of_class(0)) == 2
        assert len(prediction.boxes_of_class(1)) == 1
        assert prediction.boxes_of_class(4) == []

    def test_count_of_class_including_background(self):
        prediction = Prediction([_box(cl=0), BoundingBox.background()])
        assert prediction.count_of_class(0) == 1
        assert prediction.count_of_class(BACKGROUND_CLASS) == 1

    def test_iteration_and_indexing(self):
        boxes = [_box(cl=0), _box(cl=1)]
        prediction = Prediction(boxes)
        assert list(prediction) == boxes
        assert prediction[1] is boxes[1]

    def test_add(self):
        prediction = Prediction.empty()
        prediction.add(_box(cl=3))
        assert prediction.num_valid == 1

    def test_from_boxes_generator(self):
        prediction = Prediction.from_boxes(_box(cl=c) for c in range(3))
        assert prediction.num_valid == 3


class TestPredictionTransformations:
    def test_filtered_by_score(self):
        prediction = Prediction([_box(score=0.9), _box(score=0.2), _box(score=0.5)])
        filtered = prediction.filtered_by_score(0.5)
        assert filtered.num_valid == 2
        assert all(b.score >= 0.5 for b in filtered)

    def test_sorted_by_score(self):
        prediction = Prediction([_box(score=0.2), _box(score=0.9), _box(score=0.5)])
        scores = [b.score for b in prediction.sorted_by_score()]
        assert scores == sorted(scores, reverse=True)
        ascending = [b.score for b in prediction.sorted_by_score(descending=False)]
        assert ascending == sorted(scores)

    def test_class_histogram(self):
        prediction = Prediction([_box(cl=0), _box(cl=0), _box(cl=2)])
        assert prediction.class_histogram() == {0: 2, 2: 1}

    def test_without_background(self):
        prediction = Prediction([_box(cl=0), BoundingBox.background()])
        cleaned = prediction.without_background()
        assert len(cleaned) == 1
        assert cleaned.num_valid == 1

    def test_summary_with_class_names(self):
        prediction = Prediction([_box(cl=0, score=0.75)])
        text = prediction.summary(class_names=("Car", "Pedestrian"))
        assert "Car" in text and "0.75" in text

    def test_summary_with_unknown_class_id(self):
        prediction = Prediction([_box(cl=7)])
        assert "class7" in prediction.summary(class_names=("Car",))
