"""Tests for non-maximum suppression."""

import numpy as np
import pytest

from repro.detection.boxes import BoundingBox
from repro.detection.nms import non_max_suppression, non_max_suppression_reference
from repro.detection.prediction import Prediction


def _box(cl, x, y, l=10.0, w=10.0, score=1.0):
    return BoundingBox(cl=cl, x=x, y=y, l=l, w=w, score=score)


def _random_boxes(rng, count, num_classes=3, tie_scores=False):
    """Random overlapping boxes; with ``tie_scores`` half the scores repeat."""
    boxes = []
    for _ in range(count):
        score = float(rng.choice([0.25, 0.5, 0.75])) if tie_scores else float(
            rng.uniform(0.05, 1.0)
        )
        boxes.append(
            BoundingBox(
                cl=int(rng.integers(0, num_classes)),
                x=float(rng.uniform(0.0, 60.0)),
                y=float(rng.uniform(0.0, 60.0)),
                l=float(rng.uniform(1.0, 30.0)),
                w=float(rng.uniform(1.0, 30.0)),
                score=score,
            )
        )
    return boxes


class TestNonMaxSuppression:
    def test_keeps_highest_scoring_of_overlapping_pair(self):
        strong = _box(0, 10, 10, score=0.9)
        weak = _box(0, 11, 11, score=0.5)
        result = non_max_suppression([strong, weak], iou_threshold=0.3)
        assert result.num_valid == 1
        assert result[0].score == 0.9

    def test_keeps_non_overlapping_boxes(self):
        a = _box(0, 10, 10, score=0.9)
        b = _box(0, 50, 50, score=0.8)
        result = non_max_suppression([a, b], iou_threshold=0.3)
        assert result.num_valid == 2

    def test_different_classes_not_suppressed_by_default(self):
        a = _box(0, 10, 10, score=0.9)
        b = _box(1, 10, 10, score=0.8)
        result = non_max_suppression([a, b], iou_threshold=0.3, class_agnostic=False)
        assert result.num_valid == 2

    def test_class_agnostic_suppression(self):
        a = _box(0, 10, 10, score=0.9)
        b = _box(1, 10, 10, score=0.8)
        result = non_max_suppression([a, b], iou_threshold=0.3, class_agnostic=True)
        assert result.num_valid == 1
        assert result[0].cl == 0

    def test_score_threshold_drops_weak_boxes(self):
        a = _box(0, 10, 10, score=0.9)
        b = _box(0, 50, 50, score=0.05)
        result = non_max_suppression([a, b], score_threshold=0.1)
        assert result.num_valid == 1

    def test_background_boxes_ignored(self):
        result = non_max_suppression([BoundingBox.background(), _box(0, 10, 10)])
        assert result.num_valid == 1

    def test_accepts_prediction_input(self):
        prediction = Prediction([_box(0, 10, 10, score=0.9), _box(0, 11, 11, score=0.2)])
        result = non_max_suppression(prediction, iou_threshold=0.3)
        assert result.num_valid == 1

    def test_empty_input(self):
        assert non_max_suppression([]).num_valid == 0

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            non_max_suppression([], iou_threshold=1.5)

    def test_chain_suppression_keeps_best_only(self):
        # Three boxes in a chain; the middle overlaps both ends, ends do not
        # overlap each other above threshold.
        a = _box(0, 10, 10, score=0.9)
        b = _box(0, 10, 14, score=0.8)
        c = _box(0, 10, 24, score=0.7)
        result = non_max_suppression([a, b, c], iou_threshold=0.3)
        kept_scores = sorted(b.score for b in result)
        assert 0.9 in kept_scores
        assert 0.8 not in kept_scores  # suppressed by a
        assert 0.7 in kept_scores  # does not overlap a enough


class TestVectorisedReferenceParity:
    """The matrix-based NMS must match the greedy per-pair loop bit for bit."""

    @pytest.mark.parametrize("class_agnostic", [False, True])
    @pytest.mark.parametrize("seed", range(5))
    def test_random_box_sets(self, seed, class_agnostic):
        rng = np.random.default_rng(seed)
        boxes = _random_boxes(rng, count=int(rng.integers(2, 40)))
        for iou_threshold in (0.0, 0.3, 0.5, 0.9, 1.0):
            assert non_max_suppression(
                boxes, iou_threshold=iou_threshold, class_agnostic=class_agnostic
            ).boxes == non_max_suppression_reference(
                boxes, iou_threshold=iou_threshold, class_agnostic=class_agnostic
            ).boxes

    @pytest.mark.parametrize("class_agnostic", [False, True])
    def test_tied_scores(self, class_agnostic):
        # Equal-score boxes exercise the stable sort: kept boxes must come
        # out in input order, identically in both implementations.
        rng = np.random.default_rng(99)
        boxes = _random_boxes(rng, count=25, tie_scores=True)
        vectorised = non_max_suppression(
            boxes, iou_threshold=0.3, class_agnostic=class_agnostic
        )
        reference = non_max_suppression_reference(
            boxes, iou_threshold=0.3, class_agnostic=class_agnostic
        )
        assert vectorised.boxes == reference.boxes

    def test_identical_boxes_keep_first(self):
        # Fully tied *and* fully overlapping: exactly one box survives and
        # it is the first one fed in (stable ordering).
        first = _box(0, 10, 10, score=0.5)
        second = _box(0, 10, 10, score=0.5)
        result = non_max_suppression([first, second], iou_threshold=0.3)
        assert result.boxes == [first]
        assert result.boxes == non_max_suppression_reference(
            [first, second], iou_threshold=0.3
        ).boxes

    def test_score_threshold_parity(self):
        rng = np.random.default_rng(3)
        boxes = _random_boxes(rng, count=30)
        assert non_max_suppression(
            boxes, score_threshold=0.4
        ).boxes == non_max_suppression_reference(boxes, score_threshold=0.4).boxes

    def test_empty_fast_path(self):
        assert non_max_suppression([]).boxes == []
        assert non_max_suppression_reference([]).boxes == []

    def test_single_box_fast_path(self):
        box = _box(0, 10, 10, score=0.7)
        assert non_max_suppression([box]).boxes == [box]
        assert non_max_suppression_reference([box]).boxes == [box]

    def test_reference_rejects_invalid_threshold(self):
        with pytest.raises(ValueError):
            non_max_suppression_reference([], iou_threshold=-0.1)

    def test_prediction_input_parity(self):
        rng = np.random.default_rng(11)
        prediction = Prediction(_random_boxes(rng, count=12))
        assert non_max_suppression(
            prediction, iou_threshold=0.3
        ).boxes == non_max_suppression_reference(prediction, iou_threshold=0.3).boxes
