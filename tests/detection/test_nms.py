"""Tests for non-maximum suppression."""

import pytest

from repro.detection.boxes import BoundingBox
from repro.detection.nms import non_max_suppression
from repro.detection.prediction import Prediction


def _box(cl, x, y, l=10.0, w=10.0, score=1.0):
    return BoundingBox(cl=cl, x=x, y=y, l=l, w=w, score=score)


class TestNonMaxSuppression:
    def test_keeps_highest_scoring_of_overlapping_pair(self):
        strong = _box(0, 10, 10, score=0.9)
        weak = _box(0, 11, 11, score=0.5)
        result = non_max_suppression([strong, weak], iou_threshold=0.3)
        assert result.num_valid == 1
        assert result[0].score == 0.9

    def test_keeps_non_overlapping_boxes(self):
        a = _box(0, 10, 10, score=0.9)
        b = _box(0, 50, 50, score=0.8)
        result = non_max_suppression([a, b], iou_threshold=0.3)
        assert result.num_valid == 2

    def test_different_classes_not_suppressed_by_default(self):
        a = _box(0, 10, 10, score=0.9)
        b = _box(1, 10, 10, score=0.8)
        result = non_max_suppression([a, b], iou_threshold=0.3, class_agnostic=False)
        assert result.num_valid == 2

    def test_class_agnostic_suppression(self):
        a = _box(0, 10, 10, score=0.9)
        b = _box(1, 10, 10, score=0.8)
        result = non_max_suppression([a, b], iou_threshold=0.3, class_agnostic=True)
        assert result.num_valid == 1
        assert result[0].cl == 0

    def test_score_threshold_drops_weak_boxes(self):
        a = _box(0, 10, 10, score=0.9)
        b = _box(0, 50, 50, score=0.05)
        result = non_max_suppression([a, b], score_threshold=0.1)
        assert result.num_valid == 1

    def test_background_boxes_ignored(self):
        result = non_max_suppression([BoundingBox.background(), _box(0, 10, 10)])
        assert result.num_valid == 1

    def test_accepts_prediction_input(self):
        prediction = Prediction([_box(0, 10, 10, score=0.9), _box(0, 11, 11, score=0.2)])
        result = non_max_suppression(prediction, iou_threshold=0.3)
        assert result.num_valid == 1

    def test_empty_input(self):
        assert non_max_suppression([]).num_valid == 0

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            non_max_suppression([], iou_threshold=1.5)

    def test_chain_suppression_keeps_best_only(self):
        # Three boxes in a chain; the middle overlaps both ends, ends do not
        # overlap each other above threshold.
        a = _box(0, 10, 10, score=0.9)
        b = _box(0, 10, 14, score=0.8)
        c = _box(0, 10, 24, score=0.7)
        result = non_max_suppression([a, b, c], iou_threshold=0.3)
        kept_scores = sorted(b.score for b in result)
        assert 0.9 in kept_scores
        assert 0.8 not in kept_scores  # suppressed by a
        assert 0.7 in kept_scores  # does not overlap a enough
