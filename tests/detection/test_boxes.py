"""Tests for bounding boxes, IoU and geometric helpers."""

import math

import pytest

from repro.detection.boxes import (
    BACKGROUND_CLASS,
    BoundingBox,
    box_area,
    box_intersection_area,
    box_union_area,
    boxes_overlap,
    clip_box_to_image,
    iou,
)


class TestBoundingBoxBasics:
    def test_corner_properties(self):
        box = BoundingBox(cl=0, x=10.0, y=20.0, l=4.0, w=6.0)
        assert box.x_min == 8.0
        assert box.x_max == 12.0
        assert box.y_min == 17.0
        assert box.y_max == 23.0
        assert box.corners == (8.0, 17.0, 12.0, 23.0)

    def test_area(self):
        box = BoundingBox(cl=0, x=0.0, y=0.0, l=3.0, w=5.0)
        assert box.area == 15.0
        assert box_area(box) == 15.0

    def test_negative_extent_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(cl=0, x=0.0, y=0.0, l=-1.0, w=2.0)
        with pytest.raises(ValueError):
            BoundingBox(cl=0, x=0.0, y=0.0, l=1.0, w=-2.0)

    def test_background_box_is_not_valid(self):
        assert not BoundingBox.background().is_valid
        assert BoundingBox(cl=BACKGROUND_CLASS, x=0, y=0, l=1, w=1).is_valid is False
        assert BoundingBox(cl=2, x=0, y=0, l=1, w=1).is_valid

    def test_from_corners_round_trip(self):
        box = BoundingBox.from_corners(1, 2.0, 3.0, 10.0, 9.0, score=0.5)
        assert box.cl == 1
        assert box.x == pytest.approx(6.0)
        assert box.y == pytest.approx(6.0)
        assert box.l == pytest.approx(8.0)
        assert box.w == pytest.approx(6.0)
        assert box.score == 0.5

    def test_from_corners_inverted_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox.from_corners(0, 5.0, 0.0, 1.0, 1.0)

    def test_contains_point_with_buffer(self):
        box = BoundingBox(cl=0, x=10.0, y=10.0, l=4.0, w=4.0)
        assert box.contains_point(10.0, 10.0)
        assert box.contains_point(12.0, 12.0)
        assert not box.contains_point(13.0, 10.0)
        assert box.contains_point(13.0, 10.0, buffer=1.5)

    def test_center_distance(self):
        a = BoundingBox(cl=0, x=0.0, y=0.0, l=1.0, w=1.0)
        b = BoundingBox(cl=0, x=3.0, y=4.0, l=1.0, w=1.0)
        assert a.center_distance(b) == pytest.approx(5.0)

    def test_with_class_and_score(self):
        box = BoundingBox(cl=0, x=1.0, y=2.0, l=3.0, w=4.0, score=0.9)
        assert box.with_class(2).cl == 2
        assert box.with_score(0.1).score == 0.1
        # original unchanged (frozen dataclass)
        assert box.cl == 0 and box.score == 0.9

    def test_scaled_and_translated(self):
        box = BoundingBox(cl=0, x=10.0, y=10.0, l=4.0, w=8.0)
        scaled = box.scaled(0.5)
        assert scaled.l == 2.0 and scaled.w == 4.0
        moved = box.translated(1.0, -2.0)
        assert moved.x == 11.0 and moved.y == 8.0
        with pytest.raises(ValueError):
            box.scaled(-1.0)


class TestIoU:
    def test_identical_boxes(self):
        box = BoundingBox(cl=0, x=10.0, y=10.0, l=6.0, w=6.0)
        assert iou(box, box) == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        a = BoundingBox(cl=0, x=0.0, y=0.0, l=2.0, w=2.0)
        b = BoundingBox(cl=0, x=10.0, y=10.0, l=2.0, w=2.0)
        assert iou(a, b) == 0.0
        assert not boxes_overlap(a, b)

    def test_half_overlap(self):
        a = BoundingBox.from_corners(0, 0.0, 0.0, 2.0, 2.0)
        b = BoundingBox.from_corners(0, 0.0, 1.0, 2.0, 3.0)
        # Intersection area 2, union 6.
        assert iou(a, b) == pytest.approx(2.0 / 6.0)

    def test_contained_box(self):
        outer = BoundingBox.from_corners(0, 0.0, 0.0, 10.0, 10.0)
        inner = BoundingBox.from_corners(0, 2.0, 2.0, 4.0, 4.0)
        assert iou(outer, inner) == pytest.approx(4.0 / 100.0)

    def test_iou_is_symmetric(self):
        a = BoundingBox.from_corners(0, 0.0, 0.0, 5.0, 4.0)
        b = BoundingBox.from_corners(0, 2.0, 1.0, 7.0, 6.0)
        assert iou(a, b) == pytest.approx(iou(b, a))

    def test_zero_area_boxes(self):
        a = BoundingBox(cl=0, x=1.0, y=1.0, l=0.0, w=0.0)
        b = BoundingBox(cl=0, x=1.0, y=1.0, l=0.0, w=0.0)
        assert iou(a, b) == 0.0

    def test_touching_boxes_have_zero_iou(self):
        a = BoundingBox.from_corners(0, 0.0, 0.0, 2.0, 2.0)
        b = BoundingBox.from_corners(0, 0.0, 2.0, 2.0, 4.0)
        assert iou(a, b) == 0.0


class TestAreasAndClipping:
    def test_intersection_and_union_areas(self):
        a = BoundingBox.from_corners(0, 0.0, 0.0, 4.0, 4.0)
        b = BoundingBox.from_corners(0, 2.0, 2.0, 6.0, 6.0)
        assert box_intersection_area(a, b) == pytest.approx(4.0)
        assert box_union_area(a, b) == pytest.approx(16.0 + 16.0 - 4.0)

    def test_clip_inside_image_is_identity(self):
        box = BoundingBox.from_corners(0, 5.0, 5.0, 10.0, 10.0)
        clipped = clip_box_to_image(box, 20, 20)
        assert clipped is not None
        assert clipped.corners == pytest.approx(box.corners)

    def test_clip_partially_outside(self):
        box = BoundingBox.from_corners(0, -5.0, -5.0, 10.0, 10.0)
        clipped = clip_box_to_image(box, 20, 20)
        assert clipped is not None
        assert clipped.x_min == 0.0 and clipped.y_min == 0.0
        assert clipped.x_max == 10.0 and clipped.y_max == 10.0

    def test_clip_fully_outside_returns_none(self):
        box = BoundingBox.from_corners(0, 30.0, 30.0, 40.0, 40.0)
        assert clip_box_to_image(box, 20, 20) is None

    def test_clip_background_box_passthrough(self):
        background = BoundingBox.background()
        assert clip_box_to_image(background, 20, 20) is background
