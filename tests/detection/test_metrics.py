"""Tests for precision/recall, AP/mAP and prediction agreement."""

import pytest

from repro.detection.boxes import BoundingBox
from repro.detection.metrics import (
    average_precision,
    mean_average_precision,
    precision_recall,
    prediction_agreement,
)
from repro.detection.prediction import Prediction


def _box(cl, x, y, l=10.0, w=10.0, score=1.0):
    return BoundingBox(cl=cl, x=x, y=y, l=l, w=w, score=score)


class TestPrecisionRecall:
    def test_perfect_prediction(self):
        ground_truth = Prediction([_box(0, 10, 10), _box(1, 40, 40)])
        precision, recall = precision_recall(ground_truth, ground_truth)
        assert precision == 1.0
        assert recall == 1.0

    def test_missed_object_reduces_recall(self):
        ground_truth = Prediction([_box(0, 10, 10), _box(1, 40, 40)])
        prediction = Prediction([_box(0, 10, 10)])
        precision, recall = precision_recall(prediction, ground_truth)
        assert precision == 1.0
        assert recall == 0.5

    def test_false_positive_reduces_precision(self):
        ground_truth = Prediction([_box(0, 10, 10)])
        prediction = Prediction([_box(0, 10, 10), _box(0, 60, 60)])
        precision, recall = precision_recall(prediction, ground_truth)
        assert precision == 0.5
        assert recall == 1.0

    def test_class_must_match(self):
        ground_truth = Prediction([_box(0, 10, 10)])
        prediction = Prediction([_box(1, 10, 10)])
        precision, recall = precision_recall(prediction, ground_truth)
        assert precision == 0.0
        assert recall == 0.0

    def test_each_ground_truth_matched_once(self):
        ground_truth = Prediction([_box(0, 10, 10)])
        prediction = Prediction([_box(0, 10, 10, score=0.9), _box(0, 11, 11, score=0.8)])
        precision, recall = precision_recall(prediction, ground_truth)
        assert precision == 0.5
        assert recall == 1.0

    def test_empty_prediction_and_ground_truth(self):
        assert precision_recall(Prediction.empty(), Prediction.empty()) == (0.0, 0.0)

    def test_iou_threshold_matters(self):
        ground_truth = Prediction([_box(0, 10, 10)])
        prediction = Prediction([_box(0, 14, 14)])
        _, recall_strict = precision_recall(prediction, ground_truth, iou_threshold=0.5)
        _, recall_loose = precision_recall(prediction, ground_truth, iou_threshold=0.1)
        assert recall_strict == 0.0
        assert recall_loose == 1.0


class TestAveragePrecision:
    def test_perfect_detection_gives_ap_one(self):
        pairs = [
            (Prediction([_box(0, 10, 10, score=0.9)]), Prediction([_box(0, 10, 10)]))
        ]
        assert average_precision(pairs, class_id=0) == pytest.approx(1.0)

    def test_no_detections_gives_zero(self):
        pairs = [(Prediction.empty(), Prediction([_box(0, 10, 10)]))]
        assert average_precision(pairs, class_id=0) == 0.0

    def test_no_ground_truth_gives_zero(self):
        pairs = [(Prediction([_box(0, 10, 10, score=0.9)]), Prediction.empty())]
        assert average_precision(pairs, class_id=0) == 0.0

    def test_false_positives_lower_ap(self):
        perfect = [
            (Prediction([_box(0, 10, 10, score=0.9)]), Prediction([_box(0, 10, 10)]))
        ]
        noisy = [
            (
                Prediction(
                    [_box(0, 10, 10, score=0.5), _box(0, 60, 60, score=0.9)]
                ),
                Prediction([_box(0, 10, 10)]),
            )
        ]
        assert average_precision(noisy, 0) < average_precision(perfect, 0)

    def test_mean_average_precision_averages_classes(self):
        pairs = [
            (
                Prediction([_box(0, 10, 10, score=0.9)]),
                Prediction([_box(0, 10, 10), _box(1, 40, 40)]),
            )
        ]
        map_value = mean_average_precision(pairs, class_ids=[0, 1])
        # class 0 AP = 1, class 1 AP = 0.
        assert map_value == pytest.approx(0.5)

    def test_mean_average_precision_empty_classes(self):
        assert mean_average_precision([], class_ids=[]) == 0.0


class TestPredictionAgreement:
    def test_identical_predictions_agree(self):
        prediction = Prediction([_box(0, 10, 10), _box(1, 40, 40)])
        assert prediction_agreement(prediction, prediction) == 1.0

    def test_empty_vs_empty_agrees(self):
        assert prediction_agreement(Prediction.empty(), Prediction.empty()) == 1.0

    def test_empty_vs_nonempty_disagrees(self):
        assert (
            prediction_agreement(Prediction.empty(), Prediction([_box(0, 1, 1)])) == 0.0
        )

    def test_partial_agreement(self):
        first = Prediction([_box(0, 10, 10), _box(1, 40, 40)])
        second = Prediction([_box(0, 10, 10)])
        assert prediction_agreement(first, second) == 0.5
