"""Tests for the Section V-B error taxonomy."""

import pytest

from repro.detection.boxes import BoundingBox
from repro.detection.errors import (
    ErrorType,
    classify_transitions,
    count_error_types,
)
from repro.detection.prediction import Prediction


def _box(cl, x, y, l=10.0, w=10.0, score=1.0):
    return BoundingBox(cl=cl, x=x, y=y, l=l, w=w, score=score)


class TestClassifyTransitionsWithoutGroundTruth:
    def test_unchanged(self):
        clean = Prediction([_box(0, 10, 10)])
        transitions = classify_transitions(clean, Prediction([_box(0, 10, 10)]))
        assert [t.error_type for t in transitions] == [ErrorType.UNCHANGED]

    def test_box_changed(self):
        clean = Prediction([_box(0, 10, 10, l=10, w=10)])
        perturbed = Prediction([_box(0, 10, 11, l=10, w=8)])
        transitions = classify_transitions(clean, perturbed)
        assert [t.error_type for t in transitions] == [ErrorType.BOX_CHANGED]
        assert 0.0 < transitions[0].iou < 1.0

    def test_class_changed(self):
        clean = Prediction([_box(0, 10, 10)])
        perturbed = Prediction([_box(2, 10, 10)])
        transitions = classify_transitions(clean, perturbed)
        assert [t.error_type for t in transitions] == [ErrorType.CLASS_CHANGED]

    def test_tp_to_fn_when_box_disappears(self):
        clean = Prediction([_box(0, 10, 10)])
        transitions = classify_transitions(clean, Prediction.empty())
        assert [t.error_type for t in transitions] == [ErrorType.TP_TO_FN]
        assert transitions[0].perturbed_box is None

    def test_tn_to_fp_when_ghost_appears(self):
        perturbed = Prediction([_box(1, 40, 40)])
        transitions = classify_transitions(Prediction.empty(), perturbed)
        assert [t.error_type for t in transitions] == [ErrorType.TN_TO_FP]
        assert transitions[0].clean_box is None

    def test_disjoint_boxes_become_disappearance_plus_ghost(self):
        clean = Prediction([_box(0, 10, 10)])
        perturbed = Prediction([_box(0, 50, 50)])
        transitions = classify_transitions(clean, perturbed)
        kinds = sorted(t.error_type.value for t in transitions)
        assert kinds == sorted(
            [ErrorType.TP_TO_FN.value, ErrorType.TN_TO_FP.value]
        )

    def test_describe_contains_classes(self):
        clean = Prediction([_box(0, 10, 10)])
        perturbed = Prediction([_box(2, 10, 10)])
        description = classify_transitions(clean, perturbed)[0].describe()
        assert "cl0" in description and "cl2" in description


class TestClassifyTransitionsWithGroundTruth:
    def test_fn_to_tp_with_ground_truth(self):
        # The clean prediction missed an object; the perturbed prediction
        # finds it -> FN becomes TP.
        ground_truth = Prediction([_box(0, 10, 10), _box(1, 40, 40)])
        clean = Prediction([_box(0, 10, 10)])
        perturbed = Prediction([_box(0, 10, 10), _box(1, 40, 40)])
        transitions = classify_transitions(clean, perturbed, ground_truth)
        kinds = {t.error_type for t in transitions}
        assert ErrorType.FN_TO_TP in kinds
        assert ErrorType.TN_TO_FP not in kinds

    def test_fp_to_tn_with_ground_truth(self):
        # The clean prediction hallucinated a ghost; the perturbed one drops
        # it -> FP becomes TN.
        ground_truth = Prediction([_box(0, 10, 10)])
        clean = Prediction([_box(0, 10, 10), _box(1, 40, 40)])
        perturbed = Prediction([_box(0, 10, 10)])
        transitions = classify_transitions(clean, perturbed, ground_truth)
        kinds = {t.error_type for t in transitions}
        assert ErrorType.FP_TO_TN in kinds
        assert ErrorType.TP_TO_FN not in kinds

    def test_ground_truth_as_box_list(self):
        ground_truth = [_box(0, 10, 10)]
        clean = Prediction([_box(0, 10, 10)])
        perturbed = Prediction.empty()
        transitions = classify_transitions(clean, perturbed, ground_truth)
        assert transitions[0].error_type is ErrorType.TP_TO_FN


class TestCounting:
    def test_count_error_types_covers_all_enum_members(self):
        counts = count_error_types([])
        assert set(counts.keys()) == set(ErrorType)
        assert all(value == 0 for value in counts.values())

    def test_count_error_types(self):
        clean = Prediction([_box(0, 10, 10), _box(1, 40, 40)])
        perturbed = Prediction([_box(0, 10, 10)])
        counts = count_error_types(classify_transitions(clean, perturbed))
        assert counts[ErrorType.UNCHANGED] == 1
        assert counts[ErrorType.TP_TO_FN] == 1

    def test_both_empty_predictions(self):
        assert classify_transitions(Prediction.empty(), Prediction.empty()) == []
