"""Tests for dataset generation."""

import numpy as np
import pytest

from repro.data.dataset import generate_dataset
from repro.data.templates import KittiClass


class TestGenerateDataset:
    def test_number_of_samples(self):
        dataset = generate_dataset(num_images=4, seed=0, image_length=48, image_width=96)
        assert len(dataset) == 4

    def test_sample_contents(self):
        dataset = generate_dataset(num_images=2, seed=1, image_length=48, image_width=96)
        sample = dataset[0]
        assert sample.image.shape == (48, 96, 3)
        assert sample.ground_truth.num_valid == len(sample.scene.objects)
        assert sample.index == 0
        assert dataset[1].index == 1

    def test_reproducibility(self):
        first = generate_dataset(num_images=3, seed=9, image_length=48, image_width=96)
        second = generate_dataset(num_images=3, seed=9, image_length=48, image_width=96)
        for a, b in zip(first, second):
            assert np.allclose(a.image, b.image)

    def test_different_seeds_differ(self):
        first = generate_dataset(num_images=1, seed=1, image_length=48, image_width=96)
        second = generate_dataset(num_images=1, seed=2, image_length=48, image_width=96)
        assert not np.allclose(first[0].image, second[0].image)

    def test_half_restriction_propagates(self):
        dataset = generate_dataset(
            num_images=3, seed=3, image_length=48, image_width=160, half="left"
        )
        for sample in dataset:
            assert all(obj.y < 80 for obj in sample.scene.objects)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            generate_dataset(num_images=-1)

    def test_images_and_ground_truths_accessors(self):
        dataset = generate_dataset(num_images=2, seed=4, image_length=48, image_width=96)
        assert len(dataset.images) == 2
        assert len(dataset.ground_truths) == 2

    def test_subset(self):
        dataset = generate_dataset(num_images=4, seed=5, image_length=48, image_width=96)
        subset = dataset.subset([0, 2])
        assert len(subset) == 2
        assert np.allclose(subset[1].image, dataset[2].image)

    def test_class_restriction(self):
        dataset = generate_dataset(
            num_images=2,
            seed=6,
            image_length=48,
            image_width=96,
            classes=(KittiClass.PEDESTRIAN,),
        )
        for sample in dataset:
            assert all(
                obj.class_id is KittiClass.PEDESTRIAN for obj in sample.scene.objects
            )
