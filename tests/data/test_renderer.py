"""Tests for scene rendering."""

import numpy as np
import pytest

from repro.data.renderer import render_scene
from repro.data.scene import ObjectSpec, SceneSpec, random_scene
from repro.data.templates import KittiClass, default_template


class TestRenderScene:
    def test_shape_and_value_range(self):
        scene = random_scene(5, image_length=64, image_width=160)
        image = render_scene(scene)
        assert image.shape == (64, 160, 3)
        assert image.min() >= 0.0
        assert image.max() <= 255.0

    def test_deterministic_for_same_scene(self):
        scene = random_scene(5)
        assert np.allclose(render_scene(scene), render_scene(scene))

    def test_different_background_seeds_differ(self):
        base = SceneSpec(image_length=48, image_width=96, background_seed=1)
        other = SceneSpec(image_length=48, image_width=96, background_seed=2)
        assert not np.allclose(render_scene(base), render_scene(other))

    def test_object_changes_pixels_at_its_location(self):
        empty = SceneSpec(image_length=96, image_width=320, background_seed=3)
        car = ObjectSpec(KittiClass.CAR, x=70.0, y=100.0, scale=1.5)
        with_car = empty.with_objects([car])
        image_empty = render_scene(empty)
        image_car = render_scene(with_car)
        box = car.to_box()
        region = (
            slice(int(box.x_min), int(box.x_max)),
            slice(int(box.y_min), int(box.y_max)),
        )
        assert np.abs(image_car[region] - image_empty[region]).mean() > 10.0

    def test_object_does_not_change_far_away_pixels(self):
        empty = SceneSpec(image_length=96, image_width=320, background_seed=3)
        car = ObjectSpec(KittiClass.CAR, x=70.0, y=60.0, scale=1.2)
        with_car = empty.with_objects([car])
        image_empty = render_scene(empty)
        image_car = render_scene(with_car)
        # The right-most quarter is far from the car on the left.
        assert np.allclose(image_car[:, 240:], image_empty[:, 240:])

    def test_sky_is_brighter_than_road(self):
        scene = SceneSpec(image_length=96, image_width=320, background_seed=7)
        image = render_scene(scene)
        sky_mean = image[:20].mean()
        road_mean = image[-20:].mean()
        assert sky_mean > road_mean

    def test_object_partially_outside_image_is_clipped(self):
        scene = SceneSpec(
            image_length=96,
            image_width=320,
            objects=[ObjectSpec(KittiClass.TRUCK, x=92.0, y=316.0, scale=2.0)],
        )
        image = render_scene(scene)
        assert image.shape == (96, 320, 3)

    def test_render_accepts_explicit_rng(self):
        scene = random_scene(9)
        image = render_scene(scene, rng=np.random.default_rng(0))
        assert image.shape == scene.shape
