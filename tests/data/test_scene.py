"""Tests for scene specifications and random scene generation."""

import numpy as np
import pytest

from repro.data.scene import ObjectSpec, SceneSpec, random_scene
from repro.data.templates import KittiClass
from repro.detection.boxes import box_intersection_area


class TestObjectSpec:
    def test_box_matches_template_size(self):
        spec = ObjectSpec(class_id=KittiClass.CAR, x=50.0, y=100.0, scale=2.0)
        box = spec.to_box()
        assert box.cl == int(KittiClass.CAR)
        assert box.l == spec.length
        assert box.w == spec.width
        assert box.x == 50.0 and box.y == 100.0

    def test_moved(self):
        spec = ObjectSpec(class_id=KittiClass.CAR, x=50.0, y=100.0)
        moved = spec.moved(5.0, -10.0)
        assert moved.x == 55.0 and moved.y == 90.0
        assert spec.x == 50.0  # original unchanged


class TestSceneSpec:
    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            SceneSpec(image_length=0, image_width=100)
        with pytest.raises(ValueError):
            SceneSpec(image_length=100, image_width=100, road_fraction=1.5)

    def test_ground_truth_has_one_box_per_object(self):
        scene = SceneSpec(
            image_length=96,
            image_width=320,
            objects=[
                ObjectSpec(KittiClass.CAR, 60, 80),
                ObjectSpec(KittiClass.CYCLIST, 70, 200),
            ],
        )
        assert scene.ground_truth().num_valid == 2

    def test_objects_in_half(self):
        scene = SceneSpec(
            image_length=96,
            image_width=320,
            objects=[
                ObjectSpec(KittiClass.CAR, 60, 80),
                ObjectSpec(KittiClass.CYCLIST, 70, 240),
            ],
        )
        assert len(scene.objects_in_half("left")) == 1
        assert len(scene.objects_in_half("right")) == 1
        with pytest.raises(ValueError):
            scene.objects_in_half("top")

    def test_with_objects_preserves_metadata(self):
        scene = SceneSpec(image_length=96, image_width=320, background_seed=42)
        updated = scene.with_objects([ObjectSpec(KittiClass.CAR, 60, 80)])
        assert updated.background_seed == 42
        assert len(updated.objects) == 1
        assert len(scene.objects) == 0


class TestRandomScene:
    def test_reproducible_with_seed(self):
        first = random_scene(7)
        second = random_scene(7)
        assert len(first.objects) == len(second.objects)
        for a, b in zip(first.objects, second.objects):
            assert a.class_id == b.class_id
            assert a.x == pytest.approx(b.x)
            assert a.y == pytest.approx(b.y)

    def test_object_count_within_bounds(self):
        scene = random_scene(3, num_objects=(2, 4))
        assert 2 <= len(scene.objects) <= 4

    def test_objects_inside_image(self):
        scene = random_scene(11, image_length=96, image_width=320)
        for obj in scene.objects:
            box = obj.to_box()
            assert box.x_min >= 0 and box.x_max <= 96
            assert box.y_min >= 0 and box.y_max <= 320

    def test_objects_do_not_overlap(self):
        scene = random_scene(13, num_objects=(3, 4))
        boxes = [obj.to_box() for obj in scene.objects]
        for i in range(len(boxes)):
            for j in range(i + 1, len(boxes)):
                assert box_intersection_area(boxes[i], boxes[j]) == 0.0

    def test_half_restriction(self):
        left_scene = random_scene(17, half="left")
        assert all(obj.y < 320 / 2 for obj in left_scene.objects)
        right_scene = random_scene(17, half="right")
        assert all(obj.y >= 320 / 2 for obj in right_scene.objects)

    def test_invalid_half_rejected(self):
        with pytest.raises(ValueError):
            random_scene(1, half="middle")

    def test_restricted_classes(self):
        scene = random_scene(19, classes=(KittiClass.CAR,), num_objects=(2, 3))
        assert all(obj.class_id is KittiClass.CAR for obj in scene.objects)

    def test_invalid_num_objects_rejected(self):
        with pytest.raises(ValueError):
            random_scene(1, num_objects=(3, 2))

    def test_accepts_generator_instance(self):
        scene = random_scene(np.random.default_rng(23))
        assert isinstance(scene, SceneSpec)
