"""Tests for KITTI label-format I/O."""

import pytest

from repro.data.kitti import (
    KittiLabel,
    boxes_to_kitti_labels,
    parse_kitti_label,
    parse_kitti_line,
    write_kitti_label,
)
from repro.data.templates import KittiClass
from repro.detection.boxes import BoundingBox
from repro.detection.prediction import Prediction

SAMPLE_LINE = (
    "Car 0.00 0 -1.58 587.01 173.33 614.12 200.12 1.65 1.67 3.64 -0.65 1.71 46.70 -1.59"
)


class TestParseLine:
    def test_parse_sample_line(self):
        label = parse_kitti_line(SAMPLE_LINE)
        assert label.object_type == "Car"
        assert label.bbox_left == pytest.approx(587.01)
        assert label.bbox_top == pytest.approx(173.33)
        assert label.rotation_y == pytest.approx(-1.59)

    def test_parse_line_with_score(self):
        label = parse_kitti_line(SAMPLE_LINE + " 0.87")
        assert label.score == pytest.approx(0.87)

    def test_short_line_rejected(self):
        with pytest.raises(ValueError):
            parse_kitti_line("Car 0.0 0 0.0")

    def test_to_box_converts_corner_convention(self):
        label = parse_kitti_line(SAMPLE_LINE)
        box = label.to_box()
        assert box is not None
        assert box.cl == int(KittiClass.CAR)
        # KITTI x = columns (our y), KITTI y = rows (our x).
        assert box.y_min == pytest.approx(587.01)
        assert box.x_min == pytest.approx(173.33)

    def test_dontcare_maps_to_none(self):
        line = SAMPLE_LINE.replace("Car", "DontCare")
        assert parse_kitti_line(line).to_box() is None

    def test_person_sitting_maps_to_pedestrian(self):
        line = SAMPLE_LINE.replace("Car", "Person_sitting")
        box = parse_kitti_line(line).to_box()
        assert box is not None and box.cl == int(KittiClass.PEDESTRIAN)


class TestParseLabelFile:
    def test_parse_multi_line_string(self):
        content = SAMPLE_LINE + "\n" + SAMPLE_LINE.replace("Car", "Cyclist") + "\n\n"
        prediction = parse_kitti_label(content)
        assert prediction.num_valid == 2
        assert sorted(prediction.classes) == [int(KittiClass.CAR), int(KittiClass.CYCLIST)]

    def test_unknown_types_skipped(self):
        content = SAMPLE_LINE.replace("Car", "Tram")
        assert parse_kitti_label(content).num_valid == 0

    def test_round_trip_via_file(self, tmp_path):
        boxes = Prediction(
            [
                BoundingBox(cl=int(KittiClass.CAR), x=60.0, y=100.0, l=24.0, w=40.0),
                BoundingBox(cl=int(KittiClass.PEDESTRIAN), x=55.0, y=220.0, l=30.0, w=12.0),
            ]
        )
        path = tmp_path / "000000.txt"
        write_kitti_label(boxes, path)
        parsed = parse_kitti_label(path)
        assert parsed.num_valid == 2
        for original, recovered in zip(boxes.valid_boxes, parsed.valid_boxes):
            assert recovered.cl == original.cl
            assert recovered.x == pytest.approx(original.x, abs=0.01)
            assert recovered.y == pytest.approx(original.y, abs=0.01)
            assert recovered.l == pytest.approx(original.l, abs=0.01)
            assert recovered.w == pytest.approx(original.w, abs=0.01)


class TestBoxesToLabels:
    def test_background_boxes_skipped(self):
        labels = boxes_to_kitti_labels([BoundingBox.background()])
        assert labels == []

    def test_unknown_class_becomes_dontcare(self):
        labels = boxes_to_kitti_labels(
            [BoundingBox(cl=17, x=10.0, y=10.0, l=5.0, w=5.0)]
        )
        assert labels[0].object_type == "DontCare"

    def test_to_line_has_15_fields(self):
        label = KittiLabel(
            object_type="Car",
            truncation=0.0,
            occlusion=0,
            alpha=0.0,
            bbox_left=1.0,
            bbox_top=2.0,
            bbox_right=3.0,
            bbox_bottom=4.0,
        )
        assert len(label.to_line().split()) == 15
