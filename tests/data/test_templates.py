"""Tests for object templates."""

import numpy as np
import pytest

from repro.data.templates import (
    CLASS_NAMES,
    KittiClass,
    ObjectTemplate,
    default_template,
    template_bank,
)


class TestTemplateBank:
    def test_every_class_has_a_template(self):
        bank = template_bank()
        assert set(bank.keys()) == set(KittiClass)

    def test_class_names_align_with_enum(self):
        assert len(CLASS_NAMES) == len(KittiClass)
        assert CLASS_NAMES[KittiClass.CAR] == "Car"
        assert CLASS_NAMES[KittiClass.PEDESTRIAN] == "Pedestrian"

    def test_default_template_accepts_int(self):
        assert default_template(0).class_id is KittiClass.CAR
        assert default_template(KittiClass.CYCLIST).class_id is KittiClass.CYCLIST

    def test_templates_have_positive_sizes(self):
        for template in template_bank().values():
            assert template.nominal_length > 0
            assert template.nominal_width > 0


class TestRenderPatch:
    @pytest.mark.parametrize("class_id", list(KittiClass))
    def test_patch_shape_and_range(self, class_id):
        template = default_template(class_id)
        patch = template.render_patch(20, 30)
        assert patch.shape == (20, 30, 3)
        assert patch.min() >= 0.0
        assert patch.max() <= 255.0

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            default_template(KittiClass.CAR).render_patch(0, 10)

    def test_rng_jitter_changes_pixels_not_shape(self):
        template = default_template(KittiClass.CAR)
        base = template.render_patch(16, 16)
        jittered = template.render_patch(16, 16, rng=np.random.default_rng(0))
        assert base.shape == jittered.shape
        assert not np.allclose(base, jittered)

    def test_unknown_texture_rejected(self):
        template = ObjectTemplate(
            class_id=KittiClass.CAR,
            base_color=(1, 2, 3),
            accent_color=(4, 5, 6),
            nominal_length=10,
            nominal_width=10,
            texture="sparkles",
        )
        with pytest.raises(ValueError):
            template.render_patch(8, 8)

    def test_distinct_classes_render_distinct_patches(self):
        car = default_template(KittiClass.CAR).render_patch(16, 16)
        pedestrian = default_template(KittiClass.PEDESTRIAN).render_patch(16, 16)
        assert np.abs(car - pedestrian).mean() > 10.0

    def test_textures_cover_all_branches(self):
        textures = {t.texture for t in template_bank().values()}
        assert {"solid", "stripes", "checker", "gradient"} <= textures
