"""Tests for temporal scene sequences."""

import numpy as np
import pytest

from repro.data.sequences import generate_sequence


class TestGenerateSequence:
    def test_number_of_frames(self):
        sequence = generate_sequence(num_frames=4, seed=0, image_length=48, image_width=96)
        assert len(sequence) == 4
        assert len(sequence.scenes) == 4

    def test_invalid_frame_count_rejected(self):
        with pytest.raises(ValueError):
            generate_sequence(num_frames=0)

    def test_frames_have_consistent_shape(self):
        sequence = generate_sequence(num_frames=3, seed=1, image_length=48, image_width=96)
        shapes = {frame.shape for frame in sequence}
        assert shapes == {(48, 96, 3)}

    def test_objects_move_between_frames(self):
        sequence = generate_sequence(
            num_frames=3, seed=2, image_length=64, image_width=160, max_speed=6.0
        )
        first = sequence.scenes[0].objects
        last = sequence.scenes[-1].objects
        assert len(first) == len(last)
        moved = any(
            abs(a.x - b.x) > 1e-6 or abs(a.y - b.y) > 1e-6 for a, b in zip(first, last)
        )
        assert moved

    def test_object_count_constant_across_frames(self):
        sequence = generate_sequence(num_frames=5, seed=3, image_length=48, image_width=96)
        counts = {len(scene.objects) for scene in sequence.scenes}
        assert len(counts) == 1

    def test_objects_stay_inside_image(self):
        sequence = generate_sequence(
            num_frames=6, seed=4, image_length=48, image_width=96, max_speed=20.0
        )
        for scene in sequence.scenes:
            for obj in scene.objects:
                box = obj.to_box()
                assert box.x_min >= -1e-6 and box.x_max <= 48 + 1e-6
                assert box.y_min >= -1e-6 and box.y_max <= 96 + 1e-6

    def test_ground_truth_accessors(self):
        sequence = generate_sequence(num_frames=2, seed=5, image_length=48, image_width=96)
        assert sequence.ground_truth(0).num_valid == len(sequence.scenes[0].objects)
        assert len(sequence.ground_truths) == 2

    def test_frame_accessor_matches_iteration(self):
        sequence = generate_sequence(num_frames=3, seed=6, image_length=48, image_width=96)
        assert np.allclose(sequence.frame(1), list(sequence)[1])

    def test_reproducibility(self):
        a = generate_sequence(num_frames=3, seed=7, image_length=48, image_width=96)
        b = generate_sequence(num_frames=3, seed=7, image_length=48, image_width=96)
        for frame_a, frame_b in zip(a, b):
            assert np.allclose(frame_a, frame_b)
