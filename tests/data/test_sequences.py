"""Tests for temporal scene sequences."""

import numpy as np
import pytest

from repro.data.sequences import (
    SceneSequence,
    generate_sequence,
    moved_objects_bbox,
)
from repro.nn.incremental import EMPTY_BBOX, bbox_is_empty, frames_differ_bbox


class TestGenerateSequence:
    def test_number_of_frames(self):
        sequence = generate_sequence(num_frames=4, seed=0, image_length=48, image_width=96)
        assert len(sequence) == 4
        assert len(sequence.scenes) == 4

    def test_invalid_frame_count_rejected(self):
        with pytest.raises(ValueError):
            generate_sequence(num_frames=0)

    def test_frames_have_consistent_shape(self):
        sequence = generate_sequence(num_frames=3, seed=1, image_length=48, image_width=96)
        shapes = {frame.shape for frame in sequence}
        assert shapes == {(48, 96, 3)}

    def test_objects_move_between_frames(self):
        sequence = generate_sequence(
            num_frames=3, seed=2, image_length=64, image_width=160, max_speed=6.0
        )
        first = sequence.scenes[0].objects
        last = sequence.scenes[-1].objects
        assert len(first) == len(last)
        moved = any(
            abs(a.x - b.x) > 1e-6 or abs(a.y - b.y) > 1e-6 for a, b in zip(first, last)
        )
        assert moved

    def test_object_count_constant_across_frames(self):
        sequence = generate_sequence(num_frames=5, seed=3, image_length=48, image_width=96)
        counts = {len(scene.objects) for scene in sequence.scenes}
        assert len(counts) == 1

    def test_objects_stay_inside_image(self):
        sequence = generate_sequence(
            num_frames=6, seed=4, image_length=48, image_width=96, max_speed=20.0
        )
        for scene in sequence.scenes:
            for obj in scene.objects:
                box = obj.to_box()
                assert box.x_min >= -1e-6 and box.x_max <= 48 + 1e-6
                assert box.y_min >= -1e-6 and box.y_max <= 96 + 1e-6

    def test_ground_truth_accessors(self):
        sequence = generate_sequence(num_frames=2, seed=5, image_length=48, image_width=96)
        assert sequence.ground_truth(0).num_valid == len(sequence.scenes[0].objects)
        assert len(sequence.ground_truths) == 2

    def test_frame_accessor_matches_iteration(self):
        sequence = generate_sequence(num_frames=3, seed=6, image_length=48, image_width=96)
        assert np.allclose(sequence.frame(1), list(sequence)[1])

    def test_reproducibility(self):
        a = generate_sequence(num_frames=3, seed=7, image_length=48, image_width=96)
        b = generate_sequence(num_frames=3, seed=7, image_length=48, image_width=96)
        for frame_a, frame_b in zip(a, b):
            assert np.allclose(frame_a, frame_b)


class TestSceneSequenceAccessors:
    def test_ground_truths_computed_once_and_cached(self):
        sequence = generate_sequence(num_frames=3, seed=5, image_length=48, image_width=96)
        first = sequence.ground_truths
        assert sequence.ground_truths is first  # same list object, no recompute
        assert first[0].num_valid == len(sequence.scenes[0].objects)
        assert sequence.ground_truth(1) is first[1]

    def test_int_indexing_returns_frames(self):
        sequence = generate_sequence(num_frames=3, seed=6, image_length=48, image_width=96)
        assert np.array_equal(sequence[1], sequence.frame(1))
        assert np.array_equal(sequence[-1], sequence.frame(2))

    def test_slicing_returns_subsequence(self):
        sequence = generate_sequence(num_frames=4, seed=6, image_length=48, image_width=96)
        sliced = sequence[1:3]
        assert isinstance(sliced, SceneSequence)
        assert len(sliced) == 2
        assert sliced.seed == sequence.seed
        assert sliced.scenes == sequence.scenes[1:3]
        assert np.array_equal(sliced[0], sequence[1])
        # The slice recomputes its own ground truths for its own frames.
        assert len(sliced.ground_truths) == 2


class TestMovedObjectsBbox:
    def _exact_diff(self, sequence, index):
        return frames_differ_bbox(
            np.asarray(sequence.frame(index - 1), dtype=np.float64),
            np.asarray(sequence.frame(index), dtype=np.float64),
        )

    def test_bound_contains_exact_pixel_diff(self):
        sequence = generate_sequence(
            num_frames=5, seed=11, image_length=64, image_width=160, max_speed=6.0
        )
        bounds = sequence.dirty_bounds()
        assert bounds[0] is None
        for index in range(1, len(sequence)):
            bound = bounds[index]
            diff = self._exact_diff(sequence, index)
            assert bound is not None
            if bbox_is_empty(diff):
                continue
            r0, r1, c0, c1 = diff
            b0, b1, b2, b3 = bound
            assert b0 <= r0 and r1 <= b1 and b2 <= c0 and c1 <= b3

    def test_identical_scenes_give_empty_bound(self):
        sequence = generate_sequence(
            num_frames=2, seed=11, image_length=48, image_width=96, max_speed=0.0
        )
        bound = moved_objects_bbox(sequence.scenes[0], sequence.scenes[1])
        assert bound == EMPTY_BBOX
        assert bbox_is_empty(self._exact_diff(sequence, 1))

    def test_unrelated_scenes_return_none(self):
        a = generate_sequence(num_frames=1, seed=1, image_length=48, image_width=96)
        b = generate_sequence(num_frames=1, seed=2, image_length=48, image_width=96)
        assert moved_objects_bbox(a.scenes[0], b.scenes[0]) is None

    def test_dimension_mismatch_returns_none(self):
        a = generate_sequence(num_frames=1, seed=1, image_length=48, image_width=96)
        b = generate_sequence(num_frames=1, seed=1, image_length=48, image_width=128)
        assert moved_objects_bbox(a.scenes[0], b.scenes[0]) is None
