"""Tests for the classic noise models."""

import numpy as np
import pytest

from repro.data.noise import (
    add_gaussian_noise,
    add_salt_and_pepper_noise,
    gaussian_mask,
    salt_and_pepper_mask,
)


@pytest.fixture()
def image():
    return np.full((20, 30, 3), 128.0)


class TestGaussianNoise:
    def test_changes_pixels(self, image):
        noisy = add_gaussian_noise(image, sigma=10.0, rng=0)
        assert noisy.shape == image.shape
        assert not np.allclose(noisy, image)

    def test_zero_sigma_is_identity(self, image):
        assert np.allclose(add_gaussian_noise(image, sigma=0.0, rng=0), image)

    def test_clipping(self, image):
        noisy = add_gaussian_noise(image, sigma=500.0, rng=0)
        assert noisy.min() >= 0.0 and noisy.max() <= 255.0

    def test_no_clipping_option(self, image):
        noisy = add_gaussian_noise(image, sigma=500.0, rng=0, clip=False)
        assert noisy.min() < 0.0 or noisy.max() > 255.0

    def test_negative_sigma_rejected(self, image):
        with pytest.raises(ValueError):
            add_gaussian_noise(image, sigma=-1.0)

    def test_reproducible(self, image):
        assert np.allclose(
            add_gaussian_noise(image, 5.0, rng=3), add_gaussian_noise(image, 5.0, rng=3)
        )


class TestSaltAndPepperNoise:
    def test_fraction_of_pixels_affected(self, image):
        noisy = add_salt_and_pepper_noise(image, amount=0.1, rng=0)
        changed = np.any(noisy != image, axis=2).sum()
        assert changed == int(round(0.1 * 20 * 30))

    def test_salt_and_pepper_values(self, image):
        noisy = add_salt_and_pepper_noise(image, amount=0.2, rng=0)
        changed_values = noisy[np.any(noisy != image, axis=2)]
        assert set(np.unique(changed_values)) <= {0.0, 255.0}

    def test_zero_amount_is_identity(self, image):
        assert np.allclose(add_salt_and_pepper_noise(image, amount=0.0), image)

    def test_invalid_amount_rejected(self, image):
        with pytest.raises(ValueError):
            add_salt_and_pepper_noise(image, amount=1.5)


class TestMaskGenerators:
    def test_gaussian_mask_range(self):
        rng = np.random.default_rng(0)
        mask = gaussian_mask((10, 10, 3), sigma=1000.0, rng=rng, max_value=255.0)
        assert mask.shape == (10, 10, 3)
        assert np.abs(mask).max() <= 255.0

    def test_salt_and_pepper_mask_sparsity(self):
        rng = np.random.default_rng(0)
        mask = salt_and_pepper_mask((20, 20, 3), amount=0.05, rng=rng)
        affected = np.any(mask != 0, axis=2).sum()
        assert affected == int(round(0.05 * 400))
        assert set(np.unique(np.abs(mask[mask != 0]))) == {255.0}

    def test_salt_and_pepper_mask_zero_amount(self):
        rng = np.random.default_rng(0)
        assert np.count_nonzero(salt_and_pepper_mask((10, 10, 3), 0.0, rng)) == 0

    def test_salt_and_pepper_mask_invalid_amount(self):
        with pytest.raises(ValueError):
            salt_and_pepper_mask((10, 10, 3), 2.0, np.random.default_rng(0))
