"""Tests for the Linear layer."""

import numpy as np
import pytest

from repro.nn.linear import Linear


class TestLinear:
    def test_output_shape(self):
        layer = Linear(7, 16, rng=0)
        x = np.random.default_rng(0).normal(size=(10, 7))
        assert layer(x).shape == (10, 16)

    def test_single_vector_input(self):
        layer = Linear(4, 2, rng=0)
        assert layer(np.zeros(4)).shape == (2,)

    def test_deterministic_given_seed(self):
        a = Linear(5, 5, rng=42)
        b = Linear(5, 5, rng=42)
        assert np.allclose(a.weight, b.weight)

    def test_different_seeds_differ(self):
        a = Linear(5, 5, rng=1)
        b = Linear(5, 5, rng=2)
        assert not np.allclose(a.weight, b.weight)

    def test_zero_input_returns_bias(self):
        layer = Linear(3, 4, rng=0)
        assert np.allclose(layer(np.zeros(3)), layer.bias)

    def test_no_bias_option(self):
        layer = Linear(3, 4, rng=0, bias=False)
        assert layer.bias is None
        assert np.allclose(layer(np.zeros(3)), 0.0)

    def test_linearity(self):
        layer = Linear(6, 3, rng=0, bias=False)
        x = np.random.default_rng(1).normal(size=6)
        y = np.random.default_rng(2).normal(size=6)
        assert np.allclose(layer(x + y), layer(x) + layer(y))
        assert np.allclose(layer(2.5 * x), 2.5 * layer(x))

    def test_wrong_input_dim_rejected(self):
        layer = Linear(3, 4, rng=0)
        with pytest.raises(ValueError):
            layer(np.zeros(5))

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Linear(0, 4)
