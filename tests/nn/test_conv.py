"""Tests for convolution, pooling and gradient filters."""

import numpy as np
import pytest

from repro.nn.conv import (
    avg_pool,
    box_filter,
    conv2d,
    gradient_magnitude,
    sobel_gradients,
    std_pool,
)


class TestConv2d:
    def test_identity_kernel(self):
        image = np.random.default_rng(0).normal(size=(8, 8))
        kernel = np.zeros((3, 3))
        kernel[1, 1] = 1.0
        assert np.allclose(conv2d(image, kernel), image)

    def test_multichannel_sums_channels(self):
        image = np.ones((6, 6, 3))
        kernel = np.zeros((1, 1))
        kernel[0, 0] = 1.0
        result = conv2d(image, kernel)
        assert result.shape == (6, 6)
        assert np.allclose(result, 3.0)

    def test_invalid_dimensionality_rejected(self):
        with pytest.raises(ValueError):
            conv2d(np.ones((2, 2, 3, 4)), np.ones((3, 3)))


class TestBoxFilter:
    def test_constant_image_unchanged(self):
        image = np.full((10, 10), 7.0)
        assert np.allclose(box_filter(image, 3), 7.0)

    def test_smoothing_reduces_variance(self):
        image = np.random.default_rng(1).normal(size=(32, 32))
        smoothed = box_filter(image, 5)
        assert smoothed.var() < image.var()

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            box_filter(np.ones((4, 4)), 0)


class TestSobel:
    def test_constant_image_has_zero_gradient(self):
        image = np.full((10, 10), 3.0)
        assert np.allclose(gradient_magnitude(image), 0.0, atol=1e-9)

    def test_vertical_edge_detected_by_column_gradient(self):
        image = np.zeros((10, 10))
        image[:, 5:] = 10.0
        grad_row, grad_col = sobel_gradients(image)
        assert np.abs(grad_col).max() > np.abs(grad_row).max()

    def test_gradient_magnitude_nonnegative(self):
        image = np.random.default_rng(2).normal(size=(12, 12))
        assert np.all(gradient_magnitude(image) >= 0.0)


class TestPooling:
    def test_avg_pool_shape(self):
        image = np.ones((16, 24, 3))
        pooled = avg_pool(image, 8)
        assert pooled.shape == (2, 3, 3)

    def test_avg_pool_values(self):
        image = np.zeros((4, 4))
        image[:2, :2] = 4.0
        pooled = avg_pool(image, 2)
        assert pooled[0, 0] == 4.0
        assert pooled[1, 1] == 0.0

    def test_avg_pool_drops_partial_cells(self):
        image = np.ones((17, 25))
        pooled = avg_pool(image, 8)
        assert pooled.shape == (2, 3)

    def test_avg_pool_too_small_image_rejected(self):
        with pytest.raises(ValueError):
            avg_pool(np.ones((4, 4)), 8)

    def test_avg_pool_invalid_cell_rejected(self):
        with pytest.raises(ValueError):
            avg_pool(np.ones((8, 8)), 0)

    def test_std_pool_constant_blocks_are_zero(self):
        image = np.ones((8, 8)) * 5.0
        assert np.allclose(std_pool(image, 4), 0.0)

    def test_std_pool_detects_variation(self):
        image = np.zeros((8, 8))
        image[::2, ::2] = 10.0
        assert std_pool(image, 4).min() > 0.0

    def test_std_pool_3d(self):
        image = np.random.default_rng(3).normal(size=(16, 16, 3))
        pooled = std_pool(image, 8)
        assert pooled.shape == (2, 2, 3)
