"""Unit tests for the dirty-region geometry and windowed filter kernels.

The incremental inference path splices windowed recomputations into cached
clean activations, so every windowed kernel must match the corresponding
window of the full-image filter **bit for bit** — asserted here with exact
array equality on random inputs, interior windows and windows touching the
image borders (where the symmetric-reflection halo kicks in).
"""

import numpy as np
import pytest

from repro.nn.conv import avg_pool, box_filter, gradient_magnitude, std_pool
from repro.nn.incremental import (
    EMPTY_BBOX,
    bbox_area,
    bbox_area_fraction,
    bbox_intersection,
    bbox_is_empty,
    bbox_union,
    box_filter_window,
    box_filter_window_channels,
    dilate_bbox,
    gather_window,
    gradient_magnitude_window,
    mask_nonzero_bbox,
    pixel_bbox_to_cell_bbox,
    reflect_indices,
)


class TestBBoxGeometry:
    def test_empty_detection(self):
        assert bbox_is_empty(EMPTY_BBOX)
        assert bbox_is_empty((3, 3, 0, 5))
        assert not bbox_is_empty((0, 1, 0, 1))
        assert not bbox_is_empty(None)  # None means unknown, not empty

    def test_area(self):
        assert bbox_area((2, 5, 1, 4)) == 9
        assert bbox_area(EMPTY_BBOX) == 0
        assert bbox_area(None) == 0

    def test_union(self):
        assert bbox_union((0, 2, 0, 2), (1, 4, 3, 5)) == (0, 4, 0, 5)
        assert bbox_union(EMPTY_BBOX, (1, 2, 1, 2)) == (1, 2, 1, 2)
        assert bbox_union((1, 2, 1, 2), EMPTY_BBOX) == (1, 2, 1, 2)
        assert bbox_union(None, (1, 2, 1, 2)) is None  # unknown is absorbing
        assert bbox_union((1, 2, 1, 2), None) is None

    def test_intersection(self):
        assert bbox_intersection((0, 4, 0, 4), (2, 6, 1, 3)) == (2, 4, 1, 3)
        assert bbox_intersection((0, 2, 0, 2), (3, 5, 3, 5)) == EMPTY_BBOX
        # None (unknown = whole plane) is neutral for intersection.
        assert bbox_intersection(None, (1, 2, 1, 2)) == (1, 2, 1, 2)
        assert bbox_intersection((1, 2, 1, 2), None) == (1, 2, 1, 2)

    def test_dilate_clips_to_shape(self):
        assert dilate_bbox((2, 4, 3, 5), 2, (6, 6)) == (0, 6, 1, 6)
        assert dilate_bbox(EMPTY_BBOX, 3, (6, 6)) == EMPTY_BBOX

    def test_area_fraction(self):
        assert bbox_area_fraction((0, 2, 0, 2), (4, 4)) == pytest.approx(0.25)
        assert bbox_area_fraction(None, (4, 4)) == 1.0

    def test_pixel_to_cell_bbox(self):
        # Pixels 3..9 with cell 4 touch cells 0..2 (half-open 0..3).
        assert pixel_bbox_to_cell_bbox((3, 10, 0, 4), 4, (4, 4)) == (0, 3, 0, 1)
        # A box entirely in the trailing trimmed margin maps to no cell.
        assert pixel_bbox_to_cell_bbox((17, 18, 0, 1), 4, (4, 4)) == EMPTY_BBOX
        assert pixel_bbox_to_cell_bbox(EMPTY_BBOX, 4, (4, 4)) == EMPTY_BBOX


class TestMaskNonzeroBBox:
    def test_zero_mask(self):
        assert mask_nonzero_bbox(np.zeros((5, 7, 3))) == EMPTY_BBOX

    def test_exact_box(self):
        mask = np.zeros((6, 8, 3))
        mask[2, 3, 1] = 1.0
        mask[4, 6, 0] = -2.0
        assert mask_nonzero_bbox(mask) == (2, 5, 3, 7)

    def test_within_bound_matches_full_scan(self, rng):
        for _ in range(20):
            mask = np.zeros((10, 12, 3))
            r = rng.integers(0, 10)
            c = rng.integers(0, 12)
            mask[r, c] = rng.normal(size=3)
            exact = mask_nonzero_bbox(mask)
            loose = (max(0, r - 2), min(10, r + 3), max(0, c - 3), min(12, c + 4))
            assert mask_nonzero_bbox(mask, within=loose) == exact
            assert mask_nonzero_bbox(mask, within=(0, 10, 0, 12)) == exact

    def test_empty_within_short_circuits(self):
        mask = np.zeros((4, 4, 3))
        assert mask_nonzero_bbox(mask, within=EMPTY_BBOX) == EMPTY_BBOX

    def test_2d_mask(self):
        mask = np.zeros((5, 5))
        mask[1, 2] = 3.0
        assert mask_nonzero_bbox(mask) == (1, 2, 2, 3)


class TestGatherWindow:
    def test_reflect_indices_match_numpy_pad(self):
        for size in (1, 2, 3, 7):
            array = np.arange(size, dtype=np.float64)
            for pad in (1, 2, 3, size, 2 * size + 1):
                padded = np.pad(array, pad, mode="symmetric")
                gathered = array[reflect_indices(-pad, size + pad, size)]
                assert np.array_equal(gathered, padded)

    def test_in_bounds_is_plain_slice(self, rng):
        array = rng.normal(size=(6, 7))
        window = gather_window(array, (1, 4), (2, 6))
        assert np.array_equal(window, array[1:4, 2:6])

    def test_out_of_bounds_matches_padded_slice(self, rng):
        array = rng.normal(size=(5, 6, 3))
        pad = 2
        padded = np.pad(array, ((pad, pad), (pad, pad), (0, 0)), mode="symmetric")
        window = gather_window(array, (-2, 3), (4, 8))
        assert np.array_equal(window, padded[0 : pad + 3, 4 + pad : 8 + pad])


def _random_bboxes(shape, rng, count=8):
    """Random half-open boxes inside ``shape``, including border-touching ones."""
    boxes = [(0, shape[0], 0, shape[1]), (0, 2, 0, 2)]
    for _ in range(count):
        r0 = int(rng.integers(0, shape[0]))
        r1 = int(rng.integers(r0 + 1, shape[0] + 1))
        c0 = int(rng.integers(0, shape[1]))
        c1 = int(rng.integers(c0 + 1, shape[1] + 1))
        boxes.append((r0, r1, c0, c1))
    return boxes


class TestWindowedKernels:
    @pytest.mark.parametrize("size", [1, 3, 5])
    def test_box_filter_window_matches_full(self, size, rng):
        array = rng.normal(size=(12, 17))
        full = box_filter(array, size)
        for bbox in _random_bboxes(array.shape, rng):
            r0, r1, c0, c1 = bbox
            assert np.array_equal(
                box_filter_window(array, size, bbox), full[r0:r1, c0:c1]
            )

    def test_box_filter_window_rejects_even_sizes(self, rng):
        with pytest.raises(ValueError):
            box_filter_window(rng.normal(size=(8, 8)), 2, (0, 4, 0, 4))

    @pytest.mark.parametrize("size", [3, 5])
    def test_box_filter_window_channels_matches_full(self, size, rng):
        grid = rng.normal(size=(9, 11, 7))
        full = np.stack(
            [box_filter(grid[:, :, d], size) for d in range(grid.shape[2])], axis=-1
        )
        for bbox in _random_bboxes(grid.shape[:2], rng):
            r0, r1, c0, c1 = bbox
            assert np.array_equal(
                box_filter_window_channels(grid, size, bbox),
                full[r0:r1, c0:c1],
            )

    def test_gradient_magnitude_window_matches_full(self, rng):
        image = rng.uniform(0.0, 1.0, size=(14, 19, 3))
        full = gradient_magnitude(image)
        for bbox in _random_bboxes(image.shape[:2], rng):
            r0, r1, c0, c1 = bbox
            window = gather_window(image, (r0 - 1, r1 + 1), (c0 - 1, c1 + 1))
            assert np.array_equal(
                gradient_magnitude_window(window), full[r0:r1, c0:c1]
            )


class TestPoolingWindowProperty:
    """Pooling a cell-aligned window equals slicing the pooled full image.

    This is the fixed-accumulation-order property the dirty-region splice
    relies on (``_block_sum`` accumulates per block independently of the
    array extent).
    """

    @pytest.mark.parametrize("cell", [2, 4, 8])
    def test_avg_pool_window(self, cell, rng):
        image = rng.uniform(0.0, 255.0, size=(4 * cell, 6 * cell, 3))
        full = avg_pool(image, cell)
        window = image[cell : 3 * cell, 2 * cell : 5 * cell]
        assert np.array_equal(avg_pool(window, cell), full[1:3, 2:5])

    @pytest.mark.parametrize("cell", [2, 4, 8])
    def test_std_pool_window(self, cell, rng):
        image = rng.uniform(0.0, 255.0, size=(4 * cell, 6 * cell, 3))
        full = std_pool(image, cell)
        window = image[cell : 3 * cell, 2 * cell : 5 * cell]
        assert np.array_equal(std_pool(window, cell), full[1:3, 2:5])
