"""Tests for elementwise ops, normalisation and positional encodings."""

import numpy as np
import pytest

from repro.nn.ops import (
    grid_positional_encoding,
    layer_norm,
    log_softmax,
    positional_encoding,
    relu,
    sigmoid,
    softmax,
)


class TestActivations:
    def test_relu(self):
        x = np.array([-2.0, 0.0, 3.0])
        assert np.allclose(relu(x), [0.0, 0.0, 3.0])

    def test_sigmoid_range_and_symmetry(self):
        x = np.linspace(-10, 10, 21)
        y = sigmoid(x)
        assert np.all(y > 0) and np.all(y < 1)
        assert np.allclose(y + sigmoid(-x), 1.0)

    def test_sigmoid_extreme_values_stable(self):
        assert sigmoid(np.array([-1000.0]))[0] == pytest.approx(0.0)
        assert sigmoid(np.array([1000.0]))[0] == pytest.approx(1.0)


class TestSoftmax:
    def test_sums_to_one(self):
        x = np.random.default_rng(0).normal(size=(4, 5))
        probabilities = softmax(x, axis=-1)
        assert np.allclose(probabilities.sum(axis=-1), 1.0)

    def test_shift_invariance(self):
        x = np.array([1.0, 2.0, 3.0])
        assert np.allclose(softmax(x), softmax(x + 100.0))

    def test_large_values_stable(self):
        x = np.array([1000.0, 1000.0])
        assert np.allclose(softmax(x), [0.5, 0.5])

    def test_temperature_sharpens(self):
        x = np.array([1.0, 2.0])
        sharp = softmax(x, temperature=0.1)
        soft = softmax(x, temperature=10.0)
        assert sharp[1] > soft[1]

    def test_invalid_temperature_rejected(self):
        with pytest.raises(ValueError):
            softmax(np.array([1.0]), temperature=0.0)

    def test_log_softmax_consistency(self):
        x = np.random.default_rng(1).normal(size=7)
        assert np.allclose(np.exp(log_softmax(x)), softmax(x))


class TestLayerNorm:
    def test_zero_mean_unit_variance(self):
        x = np.random.default_rng(2).normal(5.0, 3.0, size=(6, 8))
        normalised = layer_norm(x, axis=-1)
        assert np.allclose(normalised.mean(axis=-1), 0.0, atol=1e-8)
        assert np.allclose(normalised.std(axis=-1), 1.0, atol=1e-3)

    def test_constant_input_stays_finite(self):
        x = np.full((4,), 3.0)
        assert np.all(np.isfinite(layer_norm(x)))


class TestPositionalEncoding:
    def test_shape(self):
        encoding = positional_encoding(10, 8)
        assert encoding.shape == (10, 8)

    def test_values_bounded(self):
        encoding = positional_encoding(50, 16)
        assert np.abs(encoding).max() <= 1.0 + 1e-9

    def test_rows_are_distinct(self):
        encoding = positional_encoding(20, 8)
        assert not np.allclose(encoding[0], encoding[1])

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            positional_encoding(0, 8)

    def test_grid_encoding_shape(self):
        encoding = grid_positional_encoding(4, 6, 8)
        assert encoding.shape == (24, 8)

    def test_grid_encoding_requires_even_dim(self):
        with pytest.raises(ValueError):
            grid_positional_encoding(4, 6, 7)

    def test_grid_encoding_distinguishes_rows_and_columns(self):
        encoding = grid_positional_encoding(3, 3, 8).reshape(3, 3, 8)
        # Same row, different column -> only the second half changes.
        assert np.allclose(encoding[0, 0, :4], encoding[0, 1, :4])
        assert not np.allclose(encoding[0, 0, 4:], encoding[0, 1, 4:])
