"""Tests for grid feature extraction."""

import numpy as np
import pytest

from repro.nn.features import CELL_FEATURE_DIM, GridFeatureExtractor, cell_grid_shape


class TestGridShape:
    def test_cell_grid_shape(self):
        assert cell_grid_shape(96, 320, 8) == (12, 40)
        assert cell_grid_shape(100, 321, 8) == (12, 40)

    def test_invalid_cell_rejected(self):
        with pytest.raises(ValueError):
            cell_grid_shape(96, 320, 0)


class TestGridFeatureExtractor:
    def test_output_shape(self):
        extractor = GridFeatureExtractor(cell=8)
        image = np.random.default_rng(0).uniform(0, 255, size=(64, 160, 3))
        features = extractor(image)
        assert features.shape == (8, 20, CELL_FEATURE_DIM)

    def test_flat_output(self):
        extractor = GridFeatureExtractor(cell=8)
        image = np.random.default_rng(0).uniform(0, 255, size=(64, 160, 3))
        assert extractor.flat(image).shape == (160, CELL_FEATURE_DIM)

    def test_mean_rgb_features_of_constant_image(self):
        extractor = GridFeatureExtractor(cell=8)
        image = np.full((32, 32, 3), 255.0)
        features = extractor(image)
        # Normalised mean RGB should be 1, standard deviations and gradient 0.
        assert np.allclose(features[..., :3], 1.0)
        assert np.allclose(features[..., 3:6], 0.0, atol=1e-9)

    def test_normalization_toggle(self):
        image = np.full((16, 16, 3), 255.0)
        normalised = GridFeatureExtractor(cell=8, normalize=True)(image)
        raw = GridFeatureExtractor(cell=8, normalize=False)(image)
        assert np.allclose(normalised[..., :3], 1.0)
        assert np.allclose(raw[..., :3], 255.0)

    def test_rejects_non_rgb_input(self):
        extractor = GridFeatureExtractor(cell=8)
        with pytest.raises(ValueError):
            extractor(np.zeros((32, 32)))

    def test_cell_centers(self):
        extractor = GridFeatureExtractor(cell=8)
        image = np.zeros((16, 24, 3))
        centers = extractor.cell_centers(image)
        assert centers.shape == (6, 2)
        assert np.allclose(centers[0], [4.0, 4.0])
        assert np.allclose(centers[-1], [12.0, 20.0])

    def test_local_change_only_affects_local_cells(self):
        extractor = GridFeatureExtractor(cell=8)
        image = np.full((32, 32, 3), 100.0)
        features_before = extractor(image)
        perturbed = image.copy()
        perturbed[0:8, 0:8] += 50.0
        features_after = extractor(perturbed)
        # The touched cell changes...
        assert not np.allclose(features_before[0, 0], features_after[0, 0])
        # ...while a far-away cell does not (gradients are local too since
        # the perturbation is more than one cell away).
        assert np.allclose(features_before[3, 3], features_after[3, 3])
