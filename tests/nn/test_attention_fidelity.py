"""Row-subset / reduced-precision attention primitives and their bounds.

``MultiHeadSelfAttention.forward_rows`` / ``forward_rows_batch`` are the
fidelity layer's kernels: full-row float64 calls must mirror ``__call__``
(same arithmetic, so bit-identical), row subsets must equal the matching
slice of the full output up to BLAS-blocking round-off, and float32 runs
must stay within single-precision error of the float64 reference.  The
hypothesis suite drives random token sets and row subsets through those
bounds; ``Linear.at`` and the float32-preserving softmax are pinned
alongside since the kernels lean on both.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.linear import Linear
from repro.nn.ops import layer_norm, softmax


def _tokens(seed, count, dim=16, scale=3.0):
    return np.random.default_rng(seed).normal(0.0, scale, size=(count, dim))


@pytest.fixture(scope="module")
def attention():
    return MultiHeadSelfAttention(dim=16, num_heads=2, rng=7)


class TestForwardRowsParity:
    def test_all_rows_float64_bit_identical_to_call(self, attention):
        tokens = _tokens(0, 24)
        assert np.array_equal(attention(tokens), attention.forward_rows(tokens))

    def test_does_not_touch_last_attention(self, attention):
        tokens = _tokens(1, 12)
        attention(tokens)
        recorded = attention.last_attention
        attention.forward_rows(tokens, np.array([0, 3, 5]))
        assert attention.last_attention is recorded

    def test_row_subset_close_to_full_slice(self, attention):
        tokens = _tokens(2, 30)
        full = attention(tokens)
        rows = np.array([1, 4, 17, 29])
        subset = attention.forward_rows(tokens, rows)
        assert np.allclose(subset, full[rows], atol=1e-10)

    def test_float32_close_to_float64(self, attention):
        tokens = _tokens(3, 20)
        exact = attention.forward_rows(tokens)
        approx = attention.forward_rows(tokens, dtype=np.float32)
        assert approx.dtype == np.float32
        assert np.max(np.abs(approx - exact)) < 1e-4

    def test_batch_matches_single_elements(self, attention):
        batch = np.stack([_tokens(s, 18) for s in (4, 5, 6)], axis=0)
        rows = np.array([[0, 2, 9], [1, 3, 17], [5, 6, 7]])
        batched = attention.forward_rows_batch(batch, rows)
        assert batched.shape == (3, 3, 16)
        for index in range(3):
            single = attention.forward_rows(batch[index], rows[index])
            assert np.allclose(batched[index], single, atol=1e-10)


class TestLinearAt:
    def test_float64_delegates_to_call(self):
        linear = Linear(8, 5, np.random.default_rng(0))
        x = _tokens(7, 6, dim=8)
        assert np.array_equal(linear(x), linear.at(x))

    def test_float32_uses_cast_weights(self):
        linear = Linear(8, 5, np.random.default_rng(0))
        x = _tokens(8, 6, dim=8)
        out = linear.at(x, np.float32)
        assert out.dtype == np.float32
        expected = x.astype(np.float32) @ linear.weight.astype(
            np.float32
        ) + linear.bias.astype(np.float32)
        assert np.allclose(out, expected, atol=1e-5)

    def test_cast_cache_is_reused(self):
        linear = Linear(8, 5, np.random.default_rng(0))
        linear.at(_tokens(9, 4, dim=8), np.float32)
        first = linear._param_casts["float32"]
        linear.at(_tokens(10, 4, dim=8), np.float32)
        assert linear._param_casts["float32"] is first

    def test_reassigned_weights_invalidate_cast(self):
        linear = Linear(8, 5, np.random.default_rng(0))
        x = _tokens(11, 4, dim=8)
        linear.at(x, np.float32)
        linear.weight = np.zeros_like(linear.weight)
        out = linear.at(x, np.float32)
        assert np.allclose(out, 0.0)


class TestSoftmaxDtype:
    def test_float32_preserved(self):
        x = np.random.default_rng(1).normal(size=(4, 9)).astype(np.float32)
        out = softmax(x, axis=-1)
        assert out.dtype == np.float32
        assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-6)

    def test_float64_unchanged(self):
        x = np.random.default_rng(2).normal(size=(4, 9))
        out = softmax(x, axis=-1)
        assert out.dtype == np.float64
        reference = np.exp(x - x.max(axis=-1, keepdims=True))
        reference /= reference.sum(axis=-1, keepdims=True)
        assert np.allclose(out, reference, atol=1e-12)

    def test_integer_input_promotes_to_float64(self):
        out = softmax(np.array([[0, 1, 2]]), axis=-1)
        assert out.dtype == np.float64


class TestErrorBoundsProperty:
    """Hypothesis-driven bounds on the approximate attention kernels."""

    @given(
        seed=st.integers(0, 2**16),
        count=st.integers(4, 32),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_row_subset_error_bound(self, attention, seed, count, data):
        tokens = _tokens(seed, count)
        size = data.draw(st.integers(1, count), label="subset size")
        rows = np.asarray(
            data.draw(
                st.lists(
                    st.integers(0, count - 1),
                    min_size=size,
                    max_size=size,
                    unique=True,
                ),
                label="rows",
            )
        )
        full = attention(tokens)
        subset = attention.forward_rows(tokens, rows)
        assert np.max(np.abs(subset - full[rows])) < 1e-9

    @given(seed=st.integers(0, 2**16), count=st.integers(4, 32))
    @settings(max_examples=40, deadline=None)
    def test_float32_error_bound(self, attention, seed, count):
        tokens = _tokens(seed, count)
        exact = attention(tokens)
        approx = attention.forward_rows(tokens, dtype=np.float32)
        # layer_norm outputs are O(1), so single-precision round-off through
        # two matmuls and a softmax stays well under 1e-3.
        assert np.max(np.abs(approx - exact)) < 1e-3

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_rows_output_is_normalized(self, attention, seed):
        tokens = _tokens(seed, 16)
        rows = np.array([0, 5, 11])
        out = attention.forward_rows(tokens, rows, dtype=np.float32)
        reference = layer_norm(out.astype(np.float64), axis=-1)
        assert np.allclose(out, reference, atol=1e-4)
