"""Tests for scaled dot-product and multi-head self-attention."""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadSelfAttention, scaled_dot_product_attention


class TestScaledDotProductAttention:
    def test_weights_are_a_distribution(self):
        rng = np.random.default_rng(0)
        q = rng.normal(size=(5, 8))
        k = rng.normal(size=(7, 8))
        v = rng.normal(size=(7, 8))
        attended, weights = scaled_dot_product_attention(q, k, v)
        assert attended.shape == (5, 8)
        assert weights.shape == (5, 7)
        assert np.allclose(weights.sum(axis=-1), 1.0)
        assert np.all(weights >= 0)

    def test_identical_keys_give_uniform_weights(self):
        q = np.ones((2, 4))
        k = np.ones((3, 4))
        v = np.arange(12, dtype=float).reshape(3, 4)
        _, weights = scaled_dot_product_attention(q, k, v)
        assert np.allclose(weights, 1.0 / 3.0)

    def test_dominant_key_attracts_attention(self):
        q = np.array([[1.0, 0.0]])
        k = np.array([[10.0, 0.0], [-10.0, 0.0]])
        v = np.array([[1.0, 0.0], [0.0, 1.0]])
        attended, weights = scaled_dot_product_attention(q, k, v)
        assert weights[0, 0] > 0.99
        assert attended[0, 0] > 0.99

    def test_temperature_controls_sharpness(self):
        q = np.array([[1.0, 0.0]])
        k = np.array([[1.0, 0.0], [0.5, 0.0]])
        v = np.eye(2)
        _, sharp = scaled_dot_product_attention(q, k, v, temperature=0.05)
        _, soft = scaled_dot_product_attention(q, k, v, temperature=50.0)
        assert sharp[0, 0] > soft[0, 0]

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            scaled_dot_product_attention(np.ones((2, 3)), np.ones((2, 4)), np.ones((2, 4)))
        with pytest.raises(ValueError):
            scaled_dot_product_attention(np.ones((2, 3)), np.ones((2, 3)), np.ones((5, 3)))


class TestMultiHeadSelfAttention:
    def test_output_shape_preserved(self):
        attention = MultiHeadSelfAttention(dim=16, num_heads=2, rng=0)
        tokens = np.random.default_rng(0).normal(size=(10, 16))
        assert attention(tokens).shape == (10, 16)

    def test_last_attention_recorded(self):
        attention = MultiHeadSelfAttention(dim=8, num_heads=2, rng=0)
        tokens = np.random.default_rng(1).normal(size=(6, 8))
        assert attention.last_attention is None
        attention(tokens)
        assert attention.last_attention is not None
        assert attention.last_attention.shape == (2, 6, 6)
        assert np.allclose(attention.last_attention.sum(axis=-1), 1.0)

    def test_deterministic_given_seed(self):
        tokens = np.random.default_rng(2).normal(size=(5, 8))
        a = MultiHeadSelfAttention(dim=8, num_heads=2, rng=7)(tokens)
        b = MultiHeadSelfAttention(dim=8, num_heads=2, rng=7)(tokens)
        assert np.allclose(a, b)

    def test_global_connectivity(self):
        # Changing a single token changes the output of *other* tokens —
        # the defining property of self-attention exploited by the paper.
        attention = MultiHeadSelfAttention(dim=8, num_heads=2, rng=0)
        tokens = np.random.default_rng(3).normal(size=(6, 8))
        baseline = attention(tokens)
        modified_tokens = tokens.copy()
        modified_tokens[5] += 5.0
        modified = attention(modified_tokens)
        assert not np.allclose(baseline[0], modified[0])

    def test_dim_must_be_divisible_by_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(dim=10, num_heads=3)

    def test_wrong_token_dim_rejected(self):
        attention = MultiHeadSelfAttention(dim=8, num_heads=2, rng=0)
        with pytest.raises(ValueError):
            attention(np.zeros((4, 9)))
