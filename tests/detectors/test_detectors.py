"""Tests for the simulated single-stage and transformer detectors.

These tests exercise the two properties the whole reproduction rests on:

1. both detectors predict the synthetic scenes correctly on clean images
   (the paper's starting assumption), and
2. their *connectivity* differs: the single-stage detector's cells respond
   only to local evidence (plus a weak global term), while the transformer
   mixes features globally through attention.
"""

import numpy as np
import pytest

from repro.data.dataset import generate_dataset
from repro.detection.metrics import precision_recall, prediction_agreement
from repro.detectors.single_stage import SingleStageDetector
from repro.detectors.transformer import TransformerDetector

from tests.conftest import SMALL_LENGTH, SMALL_WIDTH


@pytest.fixture(scope="module")
def evaluation_dataset():
    return generate_dataset(
        num_images=3,
        seed=17,
        image_length=SMALL_LENGTH,
        image_width=SMALL_WIDTH,
        num_objects=(2, 3),
    )


class TestCleanDetectionQuality:
    def test_single_stage_detects_objects(self, yolo_detector, evaluation_dataset):
        recalls = []
        for sample in evaluation_dataset:
            _, recall = precision_recall(
                yolo_detector.predict(sample.image), sample.ground_truth, iou_threshold=0.3
            )
            recalls.append(recall)
        assert np.mean(recalls) >= 0.6

    def test_transformer_detects_objects(self, detr_detector, evaluation_dataset):
        recalls = []
        for sample in evaluation_dataset:
            _, recall = precision_recall(
                detr_detector.predict(sample.image), sample.ground_truth, iou_threshold=0.3
            )
            recalls.append(recall)
        assert np.mean(recalls) >= 0.6

    def test_predictions_are_deterministic(self, yolo_detector, evaluation_dataset):
        image = evaluation_dataset[0].image
        first = yolo_detector.predict(image)
        second = yolo_detector.predict(image)
        assert prediction_agreement(first, second) == 1.0
        assert first.num_valid == second.num_valid

    def test_empty_scene_produces_few_boxes(self, yolo_detector, detr_detector):
        from repro.data.renderer import render_scene
        from repro.data.scene import SceneSpec

        empty = render_scene(
            SceneSpec(image_length=SMALL_LENGTH, image_width=SMALL_WIDTH, background_seed=3)
        )
        assert yolo_detector.predict(empty).num_valid <= 1
        assert detr_detector.predict(empty).num_valid <= 1


class TestDetectorInterface:
    def test_name_contains_architecture_and_seed(self, yolo_detector, detr_detector):
        assert yolo_detector.name == "single_stage-seed1"
        assert detr_detector.name == "transformer-seed1"

    def test_call_is_predict(self, yolo_detector, evaluation_dataset):
        image = evaluation_dataset[0].image
        assert yolo_detector(image).num_valid == yolo_detector.predict(image).num_valid

    def test_rejects_non_rgb_image(self, yolo_detector):
        with pytest.raises(ValueError):
            yolo_detector.predict(np.zeros((32, 32)))

    def test_backbone_feature_shape(self, yolo_detector, detr_detector, evaluation_dataset):
        image = evaluation_dataset[0].image
        rows, cols = SMALL_LENGTH // 8, SMALL_WIDTH // 8
        assert yolo_detector.backbone_features(image).shape == (rows, cols, 7)
        assert detr_detector.backbone_features(image).shape == (rows, cols, 7)

    def test_cell_probabilities_are_distributions(self, detr_detector, evaluation_dataset):
        probabilities = detr_detector.cell_probabilities(evaluation_dataset[0].image)
        assert np.allclose(probabilities.sum(axis=-1), 1.0)
        assert probabilities.min() >= 0.0

    def test_constructor_validation(self, yolo_detector, detr_detector):
        with pytest.raises(ValueError):
            SingleStageDetector(yolo_detector.prototypes, local_smoothing=0)
        with pytest.raises(ValueError):
            SingleStageDetector(yolo_detector.prototypes, global_context_weight=-1.0)
        with pytest.raises(ValueError):
            TransformerDetector(detr_detector.prototypes, attention_mix=1.5)
        with pytest.raises(ValueError):
            TransformerDetector(detr_detector.prototypes, attention_sharpness=0.0)


class TestConnectivity:
    """The architectural asymmetry the paper studies."""

    def test_single_stage_locality(self, yolo_detector, evaluation_dataset):
        # Perturbing a far-away corner barely changes the features of a cell
        # on the opposite side of the image.
        image = evaluation_dataset[0].image
        perturbed = image.copy()
        perturbed[:, -24:, :] = np.clip(perturbed[:, -24:, :] + 120.0, 0, 255)
        clean_features = yolo_detector.backbone_features(image)
        perturbed_features = yolo_detector.backbone_features(perturbed)
        left_change = np.abs(
            perturbed_features[:, :5, :] - clean_features[:, :5, :]
        ).mean()
        right_change = np.abs(
            perturbed_features[:, -3:, :] - clean_features[:, -3:, :]
        ).mean()
        assert right_change > 10 * max(left_change, 1e-12)

    def test_transformer_global_coupling_exceeds_single_stage(
        self, yolo_detector, detr_detector, evaluation_dataset
    ):
        # The same far-away perturbation changes the transformer's features
        # on the untouched side much more than the single-stage detector's.
        image = evaluation_dataset[0].image
        perturbed = image.copy()
        perturbed[:, -24:, :] = np.clip(perturbed[:, -24:, :] + 120.0, 0, 255)

        def left_feature_change(detector):
            clean = detector.backbone_features(image)
            after = detector.backbone_features(perturbed)
            return np.abs(after[:, :5, :] - clean[:, :5, :]).mean()

        assert left_feature_change(detr_detector) > 3 * left_feature_change(
            yolo_detector
        )

    def test_transformer_attention_matrix_is_stochastic(
        self, detr_detector, evaluation_dataset
    ):
        weights = detr_detector.attention_matrix(evaluation_dataset[0].image)
        assert weights.shape[0] == weights.shape[1]
        assert np.allclose(weights.sum(axis=-1), 1.0)
        assert weights.min() >= 0.0

    def test_transformer_records_mixing_attention(
        self, detr_detector, evaluation_dataset
    ):
        detr_detector.backbone_features(evaluation_dataset[0].image)
        assert detr_detector.last_mixing_attention is not None
