"""Tests for prototype fitting (detector training)."""

import numpy as np
import pytest

from repro.data.scene import ObjectSpec, SceneSpec
from repro.data.templates import KittiClass
from repro.detectors.training import (
    TrainingConfig,
    _cell_coverage,
    kmeans,
    label_cells,
)


class TestCellCoverage:
    def test_fully_covered_cell(self):
        box = ObjectSpec(KittiClass.CAR, x=12.0, y=12.0, scale=2.0).to_box()
        assert _cell_coverage(box, 1, 1, 8) == pytest.approx(1.0)

    def test_uncovered_cell(self):
        box = ObjectSpec(KittiClass.CAR, x=12.0, y=12.0, scale=1.0).to_box()
        assert _cell_coverage(box, 10, 10, 8) == 0.0

    def test_partial_coverage(self):
        from repro.detection.boxes import BoundingBox

        box = BoundingBox.from_corners(0, 0.0, 0.0, 4.0, 8.0)
        assert _cell_coverage(box, 0, 0, 8) == pytest.approx(0.5)


class TestLabelCells:
    def test_labels_match_object_location(self):
        scene = SceneSpec(
            image_length=64,
            image_width=160,
            objects=[ObjectSpec(KittiClass.CAR, x=40.0, y=80.0, scale=1.5)],
        )
        labels = label_cells(scene, (8, 20), cell=8, coverage_threshold=0.5)
        assert labels.shape == (8, 20)
        # The cell containing the object centre must carry the class label.
        assert labels[40 // 8, 80 // 8] == int(KittiClass.CAR)
        # A far-away cell stays background.
        assert labels[0, 0] == -1

    def test_empty_scene_is_all_background(self):
        scene = SceneSpec(image_length=64, image_width=160)
        labels = label_cells(scene, (8, 20), cell=8, coverage_threshold=0.5)
        assert np.all(labels == -1)

    def test_high_threshold_reduces_labelled_cells(self):
        scene = SceneSpec(
            image_length=64,
            image_width=160,
            objects=[ObjectSpec(KittiClass.TRUCK, x=40.0, y=80.0, scale=1.2)],
        )
        loose = label_cells(scene, (8, 20), 8, coverage_threshold=0.1)
        strict = label_cells(scene, (8, 20), 8, coverage_threshold=0.95)
        assert (strict >= 0).sum() <= (loose >= 0).sum()


class TestKMeans:
    def test_recovers_well_separated_clusters(self):
        rng = np.random.default_rng(0)
        cluster_a = rng.normal(0.0, 0.05, size=(50, 2))
        cluster_b = rng.normal(5.0, 0.05, size=(50, 2))
        centroids = kmeans(np.vstack([cluster_a, cluster_b]), 2, rng)
        centers = sorted(centroids[:, 0])
        assert centers[0] == pytest.approx(0.0, abs=0.2)
        assert centers[1] == pytest.approx(5.0, abs=0.2)

    def test_more_clusters_than_points(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(3, 4))
        centroids = kmeans(points, 10, rng)
        assert centroids.shape[0] == 3

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((0, 3)), 2, np.random.default_rng(0))

    def test_non_2d_input_rejected(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros(5), 2, np.random.default_rng(0))


class TestFittedPrototypes:
    def test_prototype_bank_dimensions(self, yolo_detector, small_training_config):
        bank = yolo_detector.prototypes
        assert bank.num_classes == len(small_training_config.classes)
        assert bank.feature_dim == 7
        assert bank.background_prototypes.shape[0] <= small_training_config.background_clusters
        assert bank.temperature > 0

    def test_same_seed_gives_same_prototypes(self, small_training_config):
        from repro.detectors.zoo import build_detector

        first = build_detector("yolo", seed=3, training=small_training_config)
        second = build_detector("yolo", seed=3, training=small_training_config)
        assert np.allclose(
            first.prototypes.class_prototypes, second.prototypes.class_prototypes
        )

    def test_different_seeds_give_different_prototypes(
        self, yolo_detector, small_training_config
    ):
        from repro.detectors.zoo import build_detector

        other = build_detector("yolo", seed=2, training=small_training_config)
        assert not np.allclose(
            yolo_detector.prototypes.class_prototypes,
            other.prototypes.class_prototypes,
        )

    def test_training_config_validation(self):
        config = TrainingConfig()
        assert config.scenes_per_class > 0
        assert 0 < config.coverage_threshold <= 1
