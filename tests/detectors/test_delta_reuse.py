"""Cross-generation delta-reuse: store lifecycle and splice parity.

The delta store memoizes spliced activation grids of evaluated masks; a
descendant re-splices only its relative dirty window against an ancestor's
grids.  Every route must stay bit-identical to the full forward pass — the
store is a pure speed layer, so these tests pin exact equality alongside
the LRU/counter/lifecycle mechanics the engine depends on.
"""

import numpy as np
import pytest

from repro.detectors.activation_cache import (
    ActivationCacheStore,
    CacheStats,
    DeltaActivations,
    DeltaActivationStore,
    SharedMemoryActivationStore,
)
from repro.experiments.shm import list_segments
from repro.nn.incremental import (
    EMPTY_BBOX,
    bbox_is_empty,
    bbox_union,
    mask_nonzero_bbox,
    masks_differ_bbox,
)


def _scene(seed, shape=(64, 208, 3)):
    return np.random.default_rng(seed).uniform(0, 255, size=shape).round()


def _patch_mask(shape, window, seed):
    mask = np.zeros(shape, dtype=np.float64)
    r0, r1, c0, c1 = window
    mask[r0:r1, c0:c1] = np.random.default_rng(seed).integers(
        -255, 256, size=(r1 - r0, c1 - c0, shape[2])
    )
    return mask


def _entry(mask, prediction="prediction"):
    bbox = mask_nonzero_bbox(mask)
    r0, r1, c0, c1 = bbox
    return DeltaActivations(
        mask_window=mask[r0:r1, c0:c1].copy(),
        pixel_bbox=bbox,
        prediction=prediction,
    )


def _assert_same_prediction(expected, actual):
    assert len(expected) == len(actual)
    for left, right in zip(expected, actual):
        assert (left.cl, left.x, left.y, left.l, left.w, left.score) == (
            right.cl,
            right.x,
            right.y,
            right.l,
            right.w,
            right.score,
        )


class TestDeltaActivationStore:
    def test_rejects_zero_cap(self):
        with pytest.raises(ValueError):
            DeltaActivationStore(max_entries=0)

    def test_unkeyed_masks_bypass_the_store(self):
        store = DeltaActivationStore(max_entries=2)
        store.put(None, _entry(_patch_mask((8, 8, 3), (1, 3, 1, 3), 0)))
        assert len(store) == 0
        assert store.get(None) is None
        # Provenance-free traffic is invisible: no counters move.
        assert store.counters() == CacheStats()

    def test_put_get_roundtrip_and_counters(self):
        store = DeltaActivationStore(max_entries=2)
        entry = _entry(_patch_mask((8, 8, 3), (1, 3, 1, 3), 1))
        assert store.get(b"a") is None
        store.put(b"a", entry)
        assert store.get(b"a") is entry
        counters = store.counters()
        assert counters.delta_hits == 1
        assert counters.delta_misses == 1
        assert counters.delta_bytes == entry.nbytes

    def test_lru_eviction_and_mru_refresh(self):
        store = DeltaActivationStore(max_entries=2)
        entries = {
            key: _entry(_patch_mask((8, 8, 3), (1, 3, 1, 3), seed))
            for seed, key in enumerate((b"a", b"b", b"c"))
        }
        store.put(b"a", entries[b"a"])
        store.put(b"b", entries[b"b"])
        store.get(b"a")  # refresh: b becomes the LRU entry
        store.put(b"c", entries[b"c"])
        assert store.get(b"a") is entries[b"a"]
        assert store.get(b"c") is entries[b"c"]
        assert store.get(b"b") is None

    def test_reput_refreshes_without_readmitting(self):
        store = DeltaActivationStore(max_entries=2)
        first = _entry(_patch_mask((8, 8, 3), (1, 3, 1, 3), 2))
        store.put(b"a", first)
        store.put(b"b", _entry(_patch_mask((8, 8, 3), (1, 3, 1, 3), 4)))
        admitted = store.bytes_admitted
        # The fingerprint is a content digest, so a re-put of the same key
        # must keep the original entry and only refresh its LRU position.
        store.put(b"a", _entry(_patch_mask((8, 8, 3), (1, 3, 1, 3), 3)))
        store.put(b"c", _entry(_patch_mask((8, 8, 3), (1, 3, 1, 3), 5)))
        assert store.get(b"a") is first  # refreshed: b was the evictee
        assert store.get(b"b") is None
        assert store.bytes_admitted > admitted  # only c added bytes

    def test_clear_and_reset_counters(self):
        store = DeltaActivationStore(max_entries=4)
        store.put(b"a", _entry(_patch_mask((8, 8, 3), (1, 3, 1, 3), 6)))
        store.get(b"a")
        store.get(b"missing")
        assert store.clear() == 1
        assert len(store) == 0
        assert store.counters().delta_requests == 2  # clear keeps counters
        store.reset_counters()
        assert store.counters() == CacheStats()


class TestDeltaActivationsDiffBBox:
    def test_matches_full_mask_reference(self):
        shape = (16, 24, 3)
        ancestor = _patch_mask(shape, (2, 9, 3, 15), 7)
        child = ancestor.copy()
        child[4:6, 5:8] += 1.0
        entry = _entry(ancestor)
        expected = masks_differ_bbox(child, ancestor)
        assert entry.diff_bbox(child, None) == expected
        # A window covering the diff gives the identical exact box.
        loose = bbox_union(expected, (0, 10, 0, 20))
        assert entry.diff_bbox(child, loose) == expected

    def test_identical_descendant_is_empty(self):
        ancestor = _patch_mask((16, 24, 3), (2, 9, 3, 15), 8)
        entry = _entry(ancestor)
        assert bbox_is_empty(entry.diff_bbox(ancestor.copy(), None))
        assert entry.diff_bbox(ancestor, EMPTY_BBOX) == EMPTY_BBOX

    def test_support_outside_window_counts_as_zero(self):
        # A descendant that *dropped* part of the ancestor's support must
        # report the vacated pixels as differing.
        shape = (16, 24, 3)
        ancestor = _patch_mask(shape, (2, 9, 3, 15), 9)
        child = np.zeros(shape)
        entry = _entry(ancestor)
        assert entry.diff_bbox(child, None) == entry.pixel_bbox


class TestCacheStoreDeltaLifecycle:
    def test_delta_store_attached_only_when_configured(self, yolo_detector):
        plain = ActivationCacheStore(max_entries=2)
        assert plain.get(yolo_detector, _scene(10)).delta is None
        assert "delta_hits" not in plain.stats
        wired = ActivationCacheStore(max_entries=2, delta_store_size=8)
        bundle = wired.get(yolo_detector, _scene(10))
        assert isinstance(bundle.delta, DeltaActivationStore)
        assert bundle.delta.max_entries == 8
        assert wired.stats["delta_hits"] == 0

    def test_drop_folds_delta_counters_into_totals(self, yolo_detector):
        store = ActivationCacheStore(max_entries=1, delta_store_size=4)
        bundle = store.get(yolo_detector, _scene(11))
        mask = _patch_mask(bundle.clean_image.shape, (4, 8, 10, 20), 12)
        bundle.delta.put(b"a", _entry(mask))
        bundle.delta.get(b"a")
        bundle.delta.get(b"missing")
        store.invalidate()
        # The bundle (and its delta store) is gone, but the traffic counters
        # survive in the parent totals — snapshots stay monotonic.
        assert len(bundle.delta) == 0
        assert store.stats["delta_hits"] == 1
        assert store.stats["delta_misses"] == 1
        assert store.snapshot().delta_bytes > 0

    def test_reset_stats_zeroes_delta_counters_keeps_entries(self, yolo_detector):
        store = ActivationCacheStore(max_entries=2, delta_store_size=4)
        bundle = store.get(yolo_detector, _scene(13))
        bundle.delta.put(b"a", _entry(_patch_mask(bundle.clean_image.shape, (4, 8, 10, 20), 14)))
        bundle.delta.get(b"a")
        before = store.reset_stats()
        assert before.delta_hits == 1
        assert store.snapshot() == CacheStats()
        assert bundle.delta.get(b"a") is not None  # entries untouched

    def test_resize_grow_and_shrink(self, yolo_detector):
        store = ActivationCacheStore(max_entries=4)
        scenes = [_scene(20 + index) for index in range(3)]
        for scene in scenes:
            store.get(yolo_detector, scene)
        assert store.resize(8) == 8 and len(store) == 3
        # Shrinking evicts from the LRU end (the oldest scene first).
        store.get(yolo_detector, scenes[0])  # refresh scene 0 to MRU
        assert store.resize(2) == 2
        assert len(store) == 2 and store.evictions == 1
        store.get(yolo_detector, scenes[0])
        assert store.hits == 2  # survived the shrink
        store.get(yolo_detector, scenes[1])
        assert store.misses == 4  # scene 1 was the shrink victim
        with pytest.raises(ValueError):
            store.resize(0)


class TestSharedMemoryDeltaStore:
    def test_entries_live_under_owner_prefix(self, yolo_detector):
        store = SharedMemoryActivationStore(max_entries=2, delta_store_size=2)
        try:
            bundle = store.get(yolo_detector, _scene(30))
            baseline = len(list_segments(store.segment_prefix))
            bundle.delta.put(
                b"a", _entry(_patch_mask(bundle.clean_image.shape, (4, 8, 10, 20), 31))
            )
            assert len(list_segments(store.segment_prefix)) > baseline
            fetched = bundle.delta.get(b"a")
            assert not fetched.mask_window.flags.writeable
        finally:
            store.shutdown()
        assert list_segments(store.segment_prefix) == []

    def test_eviction_unlinks_and_release_closes(self, yolo_detector):
        store = SharedMemoryActivationStore(max_entries=2, delta_store_size=1)
        try:
            bundle = store.get(yolo_detector, _scene(32))
            shape = bundle.clean_image.shape
            bundle.delta.put(b"a", _entry(_patch_mask(shape, (4, 8, 10, 20), 33)))
            linked = len(list_segments(store.segment_prefix))
            bundle.delta.put(b"b", _entry(_patch_mask(shape, (4, 8, 10, 20), 34)))
            # Cap 1: admitting b evicted a, whose segment is unlinked now.
            assert len(list_segments(store.segment_prefix)) == linked
            assert bundle.delta.get(b"a") is None
            assert bundle.delta.release_evicted() >= 1
            assert bundle.delta.release_evicted() == 0  # idempotent
        finally:
            store.shutdown()
        assert list_segments(store.segment_prefix) == []

    def test_bundle_drop_retires_delta_segments(self, yolo_detector):
        store = SharedMemoryActivationStore(max_entries=1, delta_store_size=2)
        try:
            bundle = store.get(yolo_detector, _scene(35))
            bundle.delta.put(
                b"a", _entry(_patch_mask(bundle.clean_image.shape, (4, 8, 10, 20), 36))
            )
            store.invalidate()
            # Everything is unlinked immediately; mappings wait on the
            # owner's retired list until the job boundary.
            assert list_segments(store.segment_prefix) == []
            assert store.release_retired() > 0
        finally:
            store.shutdown()
        assert list_segments(store.segment_prefix) == []


@pytest.fixture(params=["yolo", "detr"])
def detector(request, yolo_detector, detr_detector):
    return yolo_detector if request.param == "yolo" else detr_detector


def _lineage(masks, image_shape, seed=40):
    """Chain of masks, each a small perturbation of the previous one."""
    rng = np.random.default_rng(seed)
    chain = [masks]
    for _ in range(3):
        child = chain[-1].copy()
        r = int(rng.integers(0, image_shape[0] - 4))
        c = int(rng.integers(0, image_shape[1] - 4))
        child[r : r + 4, c : c + 4] = rng.integers(-255, 256, size=(4, 4, 3))
        chain.append(child)
    return chain


class TestAncestorSpliceParity:
    def test_descendant_bit_identical_with_delta_hit(self, detector, small_dataset):
        image = small_dataset[0].image
        clean = detector.clean_activations(image)
        clean.delta = DeltaActivationStore(max_entries=8)
        parent = _patch_mask(image.shape, (10, 20, 30, 60), 41)
        child = parent.copy()
        child[12:14, 40:44] += 17.0
        masks = np.stack([parent, child], axis=0)
        expected = detector.predict_batch(np.clip(image[None] + masks, 0.0, 255.0))
        # Generation boundary: the parent is evaluated (and stored) first,
        # then the child arrives with its lineage record.
        first = detector.predict_delta_batch(
            image,
            parent[None],
            clean=clean,
            ancestry=[{"fingerprint": b"parent", "ancestor": None, "diff_bound": None}],
        )[0]
        actual = detector.predict_delta_batch(
            image,
            child[None],
            clean=clean,
            ancestry=[
                {
                    "fingerprint": b"child",
                    "ancestor": b"parent",
                    "diff_bound": masks_differ_bbox(child, parent),
                }
            ],
        )[0]
        for left, right in zip(expected, (first, actual)):
            _assert_same_prediction(left, right)
        assert clean.delta.hits == 1  # the child spliced against the parent

    def test_identical_descendant_answers_from_stored_prediction(
        self, detector, small_dataset
    ):
        image = small_dataset[0].image
        clean = detector.clean_activations(image)
        clean.delta = DeltaActivationStore(max_entries=8)
        mask = _patch_mask(image.shape, (10, 20, 30, 60), 42)
        first = detector.predict_delta_batch(
            image,
            mask[None],
            clean=clean,
            ancestry=[{"fingerprint": b"a", "ancestor": None, "diff_bound": None}],
        )[0]
        again = detector.predict_delta_batch(
            image,
            mask.copy()[None],
            clean=clean,
            ancestry=[
                {"fingerprint": b"b", "ancestor": b"a", "diff_bound": EMPTY_BBOX}
            ],
        )[0]
        assert again is first  # exact-match hit: no recompute at all
        _assert_same_prediction(
            detector.predict(np.clip(image + mask, 0.0, 255.0)), again
        )

    def test_generation_chain_stays_bit_identical(self, detector, small_dataset):
        image = small_dataset[0].image
        clean = detector.clean_activations(image)
        clean.delta = DeltaActivationStore(max_entries=8)
        chain = _lineage(_patch_mask(image.shape, (8, 22, 25, 70), 43), image.shape)
        previous_key = None
        previous_mask = None
        for index, mask in enumerate(chain):
            key = f"gen{index}".encode()
            bound = (
                None
                if previous_mask is None
                else masks_differ_bbox(mask, previous_mask)
            )
            actual = detector.predict_delta_batch(
                image,
                mask[None],
                clean=clean,
                ancestry=[
                    {"fingerprint": key, "ancestor": previous_key, "diff_bound": bound}
                ],
            )[0]
            _assert_same_prediction(
                detector.predict(np.clip(image + mask, 0.0, 255.0)), actual
            )
            previous_key, previous_mask = key, mask
        assert clean.delta.hits == len(chain) - 1

    def test_loose_or_unknown_diff_bound_never_changes_result(
        self, detector, small_dataset
    ):
        image = small_dataset[0].image
        parent = _patch_mask(image.shape, (10, 20, 30, 60), 44)
        child = parent.copy()
        child[11, 35, 0] += 3.0
        exact = masks_differ_bbox(child, parent)
        full = (0, image.shape[0], 0, image.shape[1])
        reference = detector.predict(np.clip(image + child, 0.0, 255.0))
        for bound in (exact, bbox_union(exact, (0, 30, 0, 90)), full, None):
            clean = detector.clean_activations(image)
            clean.delta = DeltaActivationStore(max_entries=8)
            detector.predict_delta_batch(
                image,
                parent[None],
                clean=clean,
                ancestry=[{"fingerprint": b"p", "ancestor": None, "diff_bound": None}],
            )
            actual = detector.predict_delta_batch(
                image,
                child[None],
                clean=clean,
                ancestry=[
                    {"fingerprint": b"c", "ancestor": b"p", "diff_bound": bound}
                ],
            )[0]
            _assert_same_prediction(reference, actual)

    def test_unknown_ancestor_falls_back_bit_identically(
        self, detector, small_dataset
    ):
        image = small_dataset[0].image
        clean = detector.clean_activations(image)
        clean.delta = DeltaActivationStore(max_entries=8)
        mask = _patch_mask(image.shape, (10, 20, 30, 60), 45)
        actual = detector.predict_delta_batch(
            image,
            mask[None],
            clean=clean,
            ancestry=[
                {"fingerprint": b"c", "ancestor": b"never-seen", "diff_bound": None}
            ],
        )[0]
        _assert_same_prediction(
            detector.predict(np.clip(image + mask, 0.0, 255.0)), actual
        )
        assert clean.delta.misses >= 1

    def test_predict_delta_single_path_with_ancestry(self, detector, small_dataset):
        image = small_dataset[0].image
        clean = detector.clean_activations(image)
        clean.delta = DeltaActivationStore(max_entries=8)
        parent = _patch_mask(image.shape, (10, 20, 30, 60), 46)
        child = parent.copy()
        child[15:17, 50:53] -= 9.0
        detector.predict_delta(
            image,
            parent,
            clean=clean,
            ancestry={"fingerprint": b"p", "ancestor": None, "diff_bound": None},
        )
        actual = detector.predict_delta(
            image,
            child,
            clean=clean,
            ancestry={
                "fingerprint": b"c",
                "ancestor": b"p",
                "diff_bound": masks_differ_bbox(child, parent),
            },
        )
        _assert_same_prediction(
            detector.predict(np.clip(image + child, 0.0, 255.0)), actual
        )
        assert clean.delta.hits == 1

    def test_without_ancestry_store_is_untouched(self, detector, small_dataset):
        image = small_dataset[0].image
        clean = detector.clean_activations(image)
        clean.delta = DeltaActivationStore(max_entries=8)
        mask = _patch_mask(image.shape, (10, 20, 30, 60), 47)
        actual = detector.predict_delta_batch(image, mask[None], clean=clean)[0]
        _assert_same_prediction(
            detector.predict(np.clip(image + mask, 0.0, 255.0)), actual
        )
        assert len(clean.delta) == 0
        assert clean.delta.counters() == CacheStats()
