"""Tests for decoding cell probabilities into bounding boxes."""

import numpy as np
import pytest

from repro.detectors.base import DetectorConfig
from repro.detectors.decode import decode_cell_probabilities


def _grid(rows=8, cols=20, num_classes=3):
    """A probability grid that is pure background everywhere."""
    probabilities = np.zeros((rows, cols, num_classes + 1))
    probabilities[..., -1] = 1.0
    return probabilities


def _set_object(probabilities, row, col, class_id, confidence=0.9):
    """Give ``class_id`` probability ``confidence``; the rest is background."""
    probabilities[row, col, :] = 0.0
    probabilities[row, col, class_id] = confidence
    probabilities[row, col, -1] = 1.0 - confidence


class TestDecode:
    def test_pure_background_produces_no_boxes(self):
        config = DetectorConfig(cell=8)
        prediction = decode_cell_probabilities(_grid(), config, (64, 160))
        assert prediction.num_valid == 0

    def test_single_confident_cell_produces_one_box(self):
        config = DetectorConfig(cell=8)
        probabilities = _grid()
        _set_object(probabilities, 4, 10, class_id=1)
        prediction = decode_cell_probabilities(probabilities, config, (64, 160))
        assert prediction.num_valid == 1
        box = prediction[0]
        assert box.cl == 1
        # The box centre should be near the cell centre (row 4, col 10).
        assert abs(box.x - (4 + 0.5) * 8) < 8
        assert abs(box.y - (10 + 0.5) * 8) < 8

    def test_cluster_of_cells_produces_larger_box(self):
        config = DetectorConfig(cell=8)
        single = _grid()
        _set_object(single, 4, 10, class_id=0)
        cluster = _grid()
        for col in (9, 10, 11):
            _set_object(cluster, 4, col, class_id=0)
        single_box = decode_cell_probabilities(single, config, (64, 160))[0]
        cluster_box = decode_cell_probabilities(cluster, config, (64, 160))[0]
        assert cluster_box.w > single_box.w

    def test_two_separate_objects(self):
        config = DetectorConfig(cell=8)
        probabilities = _grid()
        _set_object(probabilities, 2, 3, class_id=0)
        _set_object(probabilities, 6, 15, class_id=2)
        prediction = decode_cell_probabilities(probabilities, config, (64, 160))
        assert prediction.num_valid == 2
        assert sorted(prediction.classes) == [0, 2]

    def test_nms_merges_adjacent_seeds(self):
        config = DetectorConfig(cell=8)
        probabilities = _grid()
        _set_object(probabilities, 4, 10, class_id=0, confidence=0.9)
        _set_object(probabilities, 4, 11, class_id=0, confidence=0.85)
        prediction = decode_cell_probabilities(probabilities, config, (64, 160))
        assert prediction.num_valid == 1

    def test_objectness_threshold_filters_weak_cells(self):
        config = DetectorConfig(cell=8, objectness_threshold=0.95)
        probabilities = _grid()
        _set_object(probabilities, 4, 10, class_id=0, confidence=0.9)
        prediction = decode_cell_probabilities(probabilities, config, (64, 160))
        assert prediction.num_valid == 0

    def test_boxes_clipped_to_image(self):
        config = DetectorConfig(cell=8, decode_window=3)
        probabilities = _grid()
        _set_object(probabilities, 0, 0, class_id=0)
        prediction = decode_cell_probabilities(probabilities, config, (64, 160))
        box = prediction[0]
        assert box.x_min >= 0.0 and box.y_min >= 0.0

    def test_invalid_probability_shape_rejected(self):
        with pytest.raises(ValueError):
            decode_cell_probabilities(np.zeros((4, 5)), DetectorConfig(), (64, 160))

    def test_scores_reflect_class_probability(self):
        config = DetectorConfig(cell=8)
        probabilities = _grid()
        _set_object(probabilities, 4, 10, class_id=0, confidence=0.75)
        prediction = decode_cell_probabilities(probabilities, config, (64, 160))
        assert prediction[0].score == pytest.approx(0.75, abs=0.01)
