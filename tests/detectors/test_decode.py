"""Tests for decoding cell probabilities into bounding boxes."""

import numpy as np
import pytest

from repro.detectors.base import DetectorConfig
from repro.detectors.decode import (
    decode_cell_probabilities,
    decode_cell_probabilities_batch,
    decode_cell_probabilities_loop,
    decode_cell_probabilities_vectorised,
)


def assert_predictions_identical(actual, expected):
    """Bit-exact equality of two predictions (frozen-dataclass field compare)."""
    assert actual.boxes == expected.boxes


def _grid(rows=8, cols=20, num_classes=3):
    """A probability grid that is pure background everywhere."""
    probabilities = np.zeros((rows, cols, num_classes + 1))
    probabilities[..., -1] = 1.0
    return probabilities


def _set_object(probabilities, row, col, class_id, confidence=0.9):
    """Give ``class_id`` probability ``confidence``; the rest is background."""
    probabilities[row, col, :] = 0.0
    probabilities[row, col, class_id] = confidence
    probabilities[row, col, -1] = 1.0 - confidence


class TestDecode:
    def test_pure_background_produces_no_boxes(self):
        config = DetectorConfig(cell=8)
        prediction = decode_cell_probabilities(_grid(), config, (64, 160))
        assert prediction.num_valid == 0

    def test_single_confident_cell_produces_one_box(self):
        config = DetectorConfig(cell=8)
        probabilities = _grid()
        _set_object(probabilities, 4, 10, class_id=1)
        prediction = decode_cell_probabilities(probabilities, config, (64, 160))
        assert prediction.num_valid == 1
        box = prediction[0]
        assert box.cl == 1
        # The box centre should be near the cell centre (row 4, col 10).
        assert abs(box.x - (4 + 0.5) * 8) < 8
        assert abs(box.y - (10 + 0.5) * 8) < 8

    def test_cluster_of_cells_produces_larger_box(self):
        config = DetectorConfig(cell=8)
        single = _grid()
        _set_object(single, 4, 10, class_id=0)
        cluster = _grid()
        for col in (9, 10, 11):
            _set_object(cluster, 4, col, class_id=0)
        single_box = decode_cell_probabilities(single, config, (64, 160))[0]
        cluster_box = decode_cell_probabilities(cluster, config, (64, 160))[0]
        assert cluster_box.w > single_box.w

    def test_two_separate_objects(self):
        config = DetectorConfig(cell=8)
        probabilities = _grid()
        _set_object(probabilities, 2, 3, class_id=0)
        _set_object(probabilities, 6, 15, class_id=2)
        prediction = decode_cell_probabilities(probabilities, config, (64, 160))
        assert prediction.num_valid == 2
        assert sorted(prediction.classes) == [0, 2]

    def test_nms_merges_adjacent_seeds(self):
        config = DetectorConfig(cell=8)
        probabilities = _grid()
        _set_object(probabilities, 4, 10, class_id=0, confidence=0.9)
        _set_object(probabilities, 4, 11, class_id=0, confidence=0.85)
        prediction = decode_cell_probabilities(probabilities, config, (64, 160))
        assert prediction.num_valid == 1

    def test_objectness_threshold_filters_weak_cells(self):
        config = DetectorConfig(cell=8, objectness_threshold=0.95)
        probabilities = _grid()
        _set_object(probabilities, 4, 10, class_id=0, confidence=0.9)
        prediction = decode_cell_probabilities(probabilities, config, (64, 160))
        assert prediction.num_valid == 0

    def test_boxes_clipped_to_image(self):
        config = DetectorConfig(cell=8, decode_window=3)
        probabilities = _grid()
        _set_object(probabilities, 0, 0, class_id=0)
        prediction = decode_cell_probabilities(probabilities, config, (64, 160))
        box = prediction[0]
        assert box.x_min >= 0.0 and box.y_min >= 0.0

    def test_invalid_probability_shape_rejected(self):
        with pytest.raises(ValueError):
            decode_cell_probabilities(np.zeros((4, 5)), DetectorConfig(), (64, 160))

    def test_scores_reflect_class_probability(self):
        config = DetectorConfig(cell=8)
        probabilities = _grid()
        _set_object(probabilities, 4, 10, class_id=0, confidence=0.75)
        prediction = decode_cell_probabilities(probabilities, config, (64, 160))
        assert prediction[0].score == pytest.approx(0.75, abs=0.01)


class TestTiedSeedOrdering:
    """Regression tests for the tied-objectness seed sort.

    The original decode ordered seeds with an *unstable* ``np.argsort`` on
    negated objectness; grids containing exactly tied seeds could decode in
    either order depending on the quicksort's pivots, which made NMS keep
    different boxes between runs.  The stable sort pins tied seeds to their
    row-major grid order.
    """

    @staticmethod
    def _tied_grid():
        """Two well-separated plus two adjacent seeds, all exactly tied."""
        probabilities = _grid(rows=8, cols=20, num_classes=3)
        for row, col in ((2, 3), (2, 4), (6, 15), (5, 9)):
            _set_object(probabilities, row, col, class_id=1, confidence=0.9)
        return probabilities

    def test_tied_seeds_decode_deterministically(self):
        config = DetectorConfig(cell=8)
        first = decode_cell_probabilities(self._tied_grid(), config, (64, 160))
        for _ in range(3):
            again = decode_cell_probabilities(self._tied_grid(), config, (64, 160))
            assert_predictions_identical(again, first)

    def test_tied_seeds_keep_row_major_order(self):
        # With every seed exactly tied, the stable sort must emit boxes in
        # row-major grid order (NMS preserves relative order of kept boxes).
        config = DetectorConfig(cell=8, class_agnostic_nms=False)
        prediction = decode_cell_probabilities(self._tied_grid(), config, (64, 160))
        centers = [(box.x, box.y) for box in prediction]
        assert centers == sorted(centers)

    def test_loop_and_vectorised_agree_on_ties(self):
        config = DetectorConfig(cell=8)
        grid = self._tied_grid()
        reference = decode_cell_probabilities_loop(grid, config, (64, 160))
        assert_predictions_identical(
            decode_cell_probabilities_vectorised(grid, config, (64, 160)), reference
        )
        assert_predictions_identical(
            decode_cell_probabilities(grid, config, (64, 160)), reference
        )


class TestBatchDecode:
    def _population(self, count=5, seed=0):
        """A population of grids with assorted seeded objects."""
        rng = np.random.default_rng(seed)
        grids = []
        for index in range(count):
            grid = _grid(rows=8, cols=20, num_classes=3)
            for _ in range(index):  # grid 0 stays pure background
                _set_object(
                    grid,
                    int(rng.integers(0, 8)),
                    int(rng.integers(0, 20)),
                    class_id=int(rng.integers(0, 3)),
                    confidence=float(rng.uniform(0.75, 0.95)),
                )
            grids.append(grid)
        return np.stack(grids, axis=0)

    def test_batch_matches_per_grid_decode(self):
        config = DetectorConfig(cell=8)
        stack = self._population()
        batched = decode_cell_probabilities_batch(stack, config, (64, 160))
        assert len(batched) == stack.shape[0]
        for grid, prediction in zip(stack, batched):
            assert_predictions_identical(
                prediction, decode_cell_probabilities(grid, config, (64, 160))
            )
            assert_predictions_identical(
                prediction,
                decode_cell_probabilities_vectorised(grid, config, (64, 160)),
            )

    def test_batch_matches_reference_loop(self):
        config = DetectorConfig(cell=8)
        stack = self._population(seed=7)
        batched = decode_cell_probabilities_batch(stack, config, (64, 160))
        for grid, prediction in zip(stack, batched):
            assert_predictions_identical(
                prediction, decode_cell_probabilities_loop(grid, config, (64, 160))
            )

    def test_all_background_population(self):
        config = DetectorConfig(cell=8)
        stack = np.stack([_grid(), _grid()], axis=0)
        batched = decode_cell_probabilities_batch(stack, config, (64, 160))
        assert [p.num_valid for p in batched] == [0, 0]

    def test_empty_population(self):
        config = DetectorConfig(cell=8)
        stack = np.zeros((0, 8, 20, 4))
        assert decode_cell_probabilities_batch(stack, config, (64, 160)) == []

    def test_batch_rejects_single_grid_shape(self):
        with pytest.raises(ValueError):
            decode_cell_probabilities_batch(
                np.zeros((8, 20, 4)), DetectorConfig(), (64, 160)
            )

    def test_single_rejects_batch_shape(self):
        with pytest.raises(ValueError):
            decode_cell_probabilities(
                np.zeros((2, 8, 20, 4)), DetectorConfig(), (64, 160)
            )
        with pytest.raises(ValueError):
            decode_cell_probabilities_vectorised(
                np.zeros((2, 8, 20, 4)), DetectorConfig(), (64, 160)
            )

    def test_background_only_channel_rejected(self):
        with pytest.raises(ValueError):
            decode_cell_probabilities(
                np.ones((8, 20, 1)), DetectorConfig(), (64, 160)
            )
