"""Evaluation-fidelity layer: config semantics, routing and error bounds.

A :class:`~repro.detectors.fidelity.FidelityConfig` is a *permission to
approximate*: exact requests (``None`` or ``EXACT_FIDELITY``) must route
through the literal exact code path bit-identically, approximate requests
must stay within small error bounds of the exact forward, and detectors
without an approximate mode must silently answer exactly.  The bounds
here are tolerances, not bit-equality — BLAS blocking makes row-subset
matmuls legitimately differ in the last ulps from sliced full products.
"""

import numpy as np
import pytest

from repro.detectors import (
    EXACT_FIDELITY,
    FIDELITY_PRESETS,
    FidelityConfig,
    fidelity_names,
    resolve_fidelity,
)


def _assert_same_predictions(expected, actual):
    """Bit-identical box lists across two lists of predictions."""
    assert len(expected) == len(actual)
    for prediction_left, prediction_right in zip(expected, actual):
        assert len(prediction_left) == len(prediction_right)
        for left, right in zip(prediction_left, prediction_right):
            assert (left.cl, left.x, left.y, left.l, left.w, left.score) == (
                right.cl,
                right.x,
                right.y,
                right.l,
                right.w,
                right.score,
            )


def _close_boxes(expected, actual, atol):
    """Same box counts and classes; centre coordinates within a budget."""
    assert len(expected) == len(actual)
    for prediction_left, prediction_right in zip(expected, actual):
        assert len(prediction_left) == len(prediction_right)
        for left, right in zip(prediction_left, prediction_right):
            assert left.cl == right.cl
            assert abs(left.x - right.x) <= atol
            assert abs(left.y - right.y) <= atol


def _patch_masks(image_shape, seed=0, count=6, patch=(3, 5)):
    rng = np.random.default_rng(seed)
    length, width = image_shape[0], image_shape[1]
    masks = np.zeros((count,) + tuple(image_shape), dtype=np.float64)
    for index in range(count):
        r = int(rng.integers(0, length - patch[0]))
        c = int(rng.integers(0, width - patch[1]))
        masks[index, r : r + patch[0], c : c + patch[1]] = rng.integers(
            -255, 256, size=patch + (image_shape[2],)
        )
    return masks


@pytest.fixture(params=["yolo", "detr"])
def detector(request, yolo_detector, detr_detector):
    return yolo_detector if request.param == "yolo" else detr_detector


class TestFidelityConfig:
    def test_exact_tag_and_flags(self):
        assert EXACT_FIDELITY.is_exact
        assert EXACT_FIDELITY.tag == "exact"
        assert EXACT_FIDELITY.numpy_dtype == np.float64

    def test_presets_are_resolvable_by_name(self):
        for name in fidelity_names():
            config = resolve_fidelity(name)
            assert isinstance(config, FidelityConfig)
            assert FIDELITY_PRESETS[name] == config

    def test_resolve_accepts_none_and_instances(self):
        assert resolve_fidelity(None) == EXACT_FIDELITY
        windowed = FIDELITY_PRESETS["windowed"]
        assert resolve_fidelity(windowed) is windowed

    def test_resolve_unknown_name_lists_presets(self):
        with pytest.raises(ValueError, match="exact"):
            resolve_fidelity("warp-speed")

    def test_validation(self):
        with pytest.raises(ValueError):
            FidelityConfig(name="bad", dtype="float16")
        with pytest.raises(ValueError):
            FidelityConfig(name="bad", attention_window=-1)
        with pytest.raises(ValueError):
            FidelityConfig(name="bad", scene_scale=0)

    def test_tags_distinguish_presets(self):
        tags = {FIDELITY_PRESETS[name].tag for name in fidelity_names()}
        assert len(tags) == len(fidelity_names())


class TestExactRouting:
    """Exact fidelity must be a bit-identical alias of the exact path."""

    def test_predict_batch_at_exact_is_bit_identical(self, detector, small_dataset):
        image = small_dataset[0].image
        masks = _patch_masks(image.shape, seed=1)
        perturbed = np.clip(image[None] + masks, 0.0, 255.0)
        for fidelity in (None, EXACT_FIDELITY):
            _assert_same_predictions(
                detector.predict_batch(perturbed),
                detector.predict_batch_at(perturbed, fidelity),
            )

    def test_predict_delta_batch_exact_fidelity_bit_identical(
        self, detector, small_dataset
    ):
        image = small_dataset[0].image
        clean = detector.clean_activations(image)
        masks = _patch_masks(image.shape, seed=2)
        expected = detector.predict_delta_batch(image, masks, clean=clean)
        actual = detector.predict_delta_batch(
            image, masks, clean=clean, fidelity=EXACT_FIDELITY
        )
        _assert_same_predictions(expected, actual)


class TestApproximateBounds:
    """Approximate fidelities stay close to the exact forward."""

    @pytest.mark.parametrize("name", ["windowed", "float32", "turbo"])
    def test_delta_batch_boxes_close_to_exact(self, detector, small_dataset, name):
        image = small_dataset[0].image
        clean = detector.clean_activations(image)
        masks = _patch_masks(image.shape, seed=3, count=8)
        exact = detector.predict_delta_batch(image, masks, clean=clean)
        approx = detector.predict_delta_batch(
            image, masks, clean=clean, fidelity=FIDELITY_PRESETS[name]
        )
        _close_boxes(exact, approx, atol=1.5)

    def test_float32_dense_batch_close_to_exact(self, detector, small_dataset):
        image = small_dataset[0].image
        masks = _patch_masks(image.shape, seed=4, count=4)
        perturbed = np.clip(image[None] + masks, 0.0, 255.0)
        exact = detector.predict_batch(perturbed)
        approx = detector.predict_batch_at(perturbed, FIDELITY_PRESETS["float32"])
        _close_boxes(exact, approx, atol=1.5)

    def test_zero_mask_answers_clean_prediction(self, detector, small_dataset):
        image = small_dataset[0].image
        clean = detector.clean_activations(image)
        masks = np.zeros((2,) + image.shape, dtype=np.float64)
        masks[1] = _patch_masks(image.shape, seed=5, count=1)[0]
        approx = detector.predict_delta_batch(
            image, masks, clean=clean, fidelity=FIDELITY_PRESETS["turbo"]
        )
        assert approx[0] is clean.prediction


class TestTransformerWindowedInternals:
    def test_grouped_batch_matches_per_mask_route(self, detr_detector, small_dataset):
        """One mask per call and the grouped batch agree bit-for-bat.

        Grouping by (dirty, window) shape only batches the linear algebra;
        both routes share the same windowed approximation, so for a batch
        of identically-shaped patches the results must agree to float
        round-off of the batched BLAS calls (here: exact box agreement).
        """
        image = small_dataset[0].image
        clean = detr_detector.clean_activations(image)
        masks = _patch_masks(image.shape, seed=6, count=6)
        fidelity = FIDELITY_PRESETS["windowed"]
        batched = detr_detector.predict_delta_batch(
            image, masks, clean=clean, fidelity=fidelity
        )
        for index in range(masks.shape[0]):
            single = detr_detector.predict_delta_batch(
                image, masks[index : index + 1], clean=clean, fidelity=fidelity
            )
            _close_boxes([batched[index]], single, atol=1e-6)

    def test_fidelity_state_is_cached_per_dtype(self, detr_detector, small_dataset):
        image = small_dataset[0].image
        clean = detr_detector.clean_activations(image)
        masks = _patch_masks(image.shape, seed=7, count=2)
        detr_detector.predict_delta_batch(
            image, masks, clean=clean, fidelity=FIDELITY_PRESETS["windowed"]
        )
        assert "attn:float64" in clean.fidelity_state
        detr_detector.predict_delta_batch(
            image, masks, clean=clean, fidelity=FIDELITY_PRESETS["turbo"]
        )
        assert "attn:float32" in clean.fidelity_state

    def test_windowed_features_close_to_exact_blend(self, detr_detector, small_dataset):
        """The approximate blended feature grid tracks the exact one."""
        image = small_dataset[0].image
        clean = detr_detector.clean_activations(image)
        mask = _patch_masks(image.shape, seed=8, count=1)[0]
        perturbed = np.clip(image + mask, 0.0, 255.0)
        exact_grid = detr_detector.backbone_features(perturbed)
        from repro.nn.incremental import mask_nonzero_bbox

        approx_grid = detr_detector._approx_windowed_grid(
            image,
            mask,
            mask_nonzero_bbox(mask),
            clean,
            FIDELITY_PRESETS["windowed"],
        )
        assert approx_grid is not None
        assert np.max(np.abs(approx_grid - exact_grid)) < 1e-2


class TestDeltaStoreBypass:
    def test_approximate_fidelity_never_touches_delta_store(
        self, detr_detector, small_dataset
    ):
        """Approximate evaluations must not read or write stored exact
        activations — stored predictions are exact-only."""
        from repro.detectors.activation_cache import DeltaActivationStore

        image = small_dataset[0].image
        clean = detr_detector.clean_activations(image)
        clean.delta = DeltaActivationStore(max_entries=8)
        masks = _patch_masks(image.shape, seed=9, count=3)
        ancestry = [
            {"fingerprint": bytes([index]), "ancestor": None, "diff_bound": None}
            for index in range(masks.shape[0])
        ]
        detr_detector.predict_delta_batch(
            image,
            masks,
            clean=clean,
            ancestry=ancestry,
            fidelity=FIDELITY_PRESETS["windowed"],
        )
        assert len(clean.delta) == 0
        assert clean.delta.hits == 0 and clean.delta.misses == 0
