"""Tests for detector ensembles."""

import numpy as np
import pytest

from repro.detectors.ensemble import DetectorEnsemble


@pytest.fixture(scope="module")
def ensemble(request):
    yolo = request.getfixturevalue("yolo_detector")
    detr = request.getfixturevalue("detr_detector")
    return DetectorEnsemble([yolo, detr])


class TestDetectorEnsemble:
    def test_empty_ensemble_rejected(self):
        with pytest.raises(ValueError):
            DetectorEnsemble([])

    def test_len_iteration_indexing(self, ensemble):
        assert len(ensemble) == 2
        assert list(ensemble)[0] is ensemble[0]

    def test_name_mentions_architectures_and_size(self, ensemble):
        assert "single_stage" in ensemble.name
        assert "transformer" in ensemble.name
        assert "x2" in ensemble.name

    def test_predict_all_returns_one_prediction_per_member(
        self, ensemble, small_dataset
    ):
        predictions = ensemble.predict_all(small_dataset[0].image)
        assert len(predictions) == 2

    def test_predict_fused_consensus(self, ensemble, small_dataset):
        image = small_dataset[0].image
        fused = ensemble.predict_fused(image, vote_fraction=1.0)
        loose = ensemble.predict_fused(image, vote_fraction=0.5)
        # Requiring full consensus can only reduce the number of boxes.
        assert fused.num_valid <= loose.num_valid

    def test_predict_fused_invalid_vote_fraction(self, ensemble, small_dataset):
        with pytest.raises(ValueError):
            ensemble.predict_fused(small_dataset[0].image, vote_fraction=0.0)

    def test_from_detectors(self, yolo_detector):
        ensemble = DetectorEnsemble.from_detectors([yolo_detector])
        assert len(ensemble) == 1

    def test_fused_boxes_average_members(self, yolo_detector, small_dataset):
        # An ensemble of two identical detectors must fuse to (almost) the
        # single detector's prediction.
        image = small_dataset[0].image
        single = yolo_detector.predict(image)
        ensemble = DetectorEnsemble([yolo_detector, yolo_detector])
        fused = ensemble.predict_fused(image, vote_fraction=1.0)
        assert fused.num_valid == single.num_valid
