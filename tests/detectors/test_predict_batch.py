"""Parity tests for the vectorised detector batch path.

``predict_batch`` must return predictions bit-identical to calling
``predict`` image by image — the NSGA-II population evaluator switches
freely between the two paths, so *exact* float equality is asserted on
every box attribute, not approximate closeness.
"""

import numpy as np
import pytest

from repro.detectors.base import Detector, validate_image_batch
from repro.detectors.ensemble import DetectorEnsemble
from repro.detectors.single_stage import SingleStageDetector


def _perturbed_batch(image, batch_size, seed=0):
    """A batch of randomly perturbed variants of one scene (first is clean)."""
    rng = np.random.default_rng(seed)
    masks = rng.integers(-60, 61, size=(batch_size,) + image.shape).astype(np.float64)
    masks[0] = 0.0
    return np.clip(image[None, ...] + masks, 0.0, 255.0)


def _assert_predictions_identical(sequential, batched):
    assert len(sequential) == len(batched)
    for left, right in zip(sequential, batched):
        assert len(left) == len(right)
        for box_left, box_right in zip(left, right):
            assert (box_left.cl, box_left.x, box_left.y, box_left.l, box_left.w,
                    box_left.score) == (
                box_right.cl, box_right.x, box_right.y, box_right.l, box_right.w,
                box_right.score,
            )


@pytest.fixture(params=["yolo", "detr"])
def detector(request, yolo_detector, detr_detector):
    return yolo_detector if request.param == "yolo" else detr_detector


class TestPredictBatchParity:
    def test_batch_matches_sequential_predict(self, detector, small_dataset):
        batch = _perturbed_batch(small_dataset[0].image, batch_size=7)
        sequential = [detector.predict(batch[b]) for b in range(batch.shape[0])]
        _assert_predictions_identical(sequential, detector.predict_batch(batch))

    def test_result_independent_of_chunk_size(self, detector, small_dataset):
        batch = _perturbed_batch(small_dataset[0].image, batch_size=5, seed=3)
        original_chunk = detector.batch_chunk
        try:
            references = None
            for chunk in (1, 2, 5):
                detector.batch_chunk = chunk
                predictions = detector.predict_batch(batch)
                if references is None:
                    references = predictions
                else:
                    _assert_predictions_identical(references, predictions)
        finally:
            detector.batch_chunk = original_chunk

    def test_single_image_batch(self, detector, small_dataset):
        image = small_dataset[0].image
        _assert_predictions_identical(
            [detector.predict(image)], detector.predict_batch(image[None, ...])
        )

    def test_batch_cell_probabilities_match(self, detector, small_dataset):
        batch = _perturbed_batch(small_dataset[0].image, batch_size=4, seed=9)
        batched = detector.cell_probabilities_batch(batch)
        for b in range(batch.shape[0]):
            assert np.array_equal(detector.cell_probabilities(batch[b]), batched[b])

    def test_even_local_smoothing_still_batches(self, yolo_detector, small_dataset):
        # Even box-filter sizes use a different 'same'-mode alignment; the
        # batch path must fall back to the per-slice filter, not crash.
        detector = SingleStageDetector(
            yolo_detector.prototypes,
            config=yolo_detector.config,
            seed=yolo_detector.seed,
            local_smoothing=2,
        )
        batch = _perturbed_batch(small_dataset[0].image, batch_size=3, seed=4)
        sequential = [detector.predict(batch[b]) for b in range(batch.shape[0])]
        _assert_predictions_identical(sequential, detector.predict_batch(batch))


class TestGenericFallback:
    def test_base_class_fallback_loops_predict(self, yolo_detector, small_dataset):
        """A third-party detector without an override still gets the batch API."""

        class WrappedDetector(Detector):
            architecture = "wrapped"

            def __init__(self, inner):
                super().__init__(inner.config, inner.seed)
                self.inner = inner
                self.calls = 0

            def predict(self, image):
                self.calls += 1
                return self.inner.predict(image)

            def backbone_features(self, image):
                return self.inner.backbone_features(image)

        wrapped = WrappedDetector(yolo_detector)
        batch = _perturbed_batch(small_dataset[0].image, batch_size=3, seed=5)
        predictions = wrapped.predict_batch(batch)
        assert wrapped.calls == 3
        _assert_predictions_identical(
            [yolo_detector.predict(batch[b]) for b in range(3)], predictions
        )

        # A bare (L, W, 3) image is promoted to a batch of one, matching
        # the vectorised overrides' behaviour.
        single = wrapped.predict_batch(small_dataset[0].image)
        _assert_predictions_identical(
            [yolo_detector.predict(small_dataset[0].image)], single
        )


class TestEnsembleBatch:
    def test_predict_batch_all_matches_predict_all(
        self, yolo_detector, detr_detector, small_dataset
    ):
        ensemble = DetectorEnsemble([yolo_detector, detr_detector])
        batch = _perturbed_batch(small_dataset[0].image, batch_size=4, seed=2)
        batched = ensemble.predict_batch_all(batch)
        assert len(batched) == len(ensemble)
        for member_index in range(len(ensemble)):
            sequential = [
                ensemble[member_index].predict(batch[b]) for b in range(batch.shape[0])
            ]
            _assert_predictions_identical(sequential, batched[member_index])


class TestValidateImageBatch:
    def test_accepts_stack_and_promotes_single_image(self):
        stack = np.zeros((2, 8, 8, 3))
        assert validate_image_batch(stack).shape == (2, 8, 8, 3)
        assert validate_image_batch(np.zeros((8, 8, 3))).shape == (1, 8, 8, 3)

    def test_rejects_wrong_shapes(self):
        with pytest.raises(ValueError):
            validate_image_batch(np.zeros((2, 8, 8, 4)))
        with pytest.raises(ValueError):
            validate_image_batch(np.zeros((8, 8)))
