"""Tests for the streaming-sequence frame cache and the frame counters.

The temporal derivation contract is the load-bearing part: every bundle a
:class:`SequenceActivationCache` hands out — whether derived incrementally
from the previous frame or rebuilt densely — must be bit-identical to an
independent ``detector.clean_activations(frame)`` build, so the streaming
workload only ever changes speed, never results.
"""

import numpy as np
import pytest

from repro.data.sequences import generate_sequence
from repro.detectors.activation_cache import (
    ActivationCacheStore,
    CacheStats,
    CleanActivations,
    SequenceActivationCache,
    SharedMemoryActivationStore,
)
from repro.experiments.shm import list_segments

from tests.conftest import SMALL_LENGTH, SMALL_WIDTH


@pytest.fixture(scope="module")
def sequence():
    return generate_sequence(
        num_frames=4,
        seed=9,
        image_length=SMALL_LENGTH,
        image_width=SMALL_WIDTH,
        half="left",
    )


def _assert_bundle_matches_dense(detector, bundle, frame):
    clean = np.clip(np.asarray(frame, dtype=np.float64) + 0.0, 0.0, 255.0)
    dense = detector.clean_activations(frame)
    assert np.array_equal(bundle.clean_image, clean)
    assert set(bundle.tensors) == set(dense.tensors)
    for name, tensor in dense.tensors.items():
        assert np.array_equal(bundle.tensors[name], tensor)
    expected = detector.predict(frame)
    assert len(bundle.prediction) == len(expected)
    for left, right in zip(expected, bundle.prediction):
        assert (left.cl, left.x, left.y, left.l, left.w, left.score) == (
            right.cl, right.x, right.y, right.l, right.w, right.score,
        )


class TestCacheStatsFrameCounters:
    def test_add_and_sub(self):
        a = CacheStats(frame_hits=3, frame_misses=1)
        b = CacheStats(frame_hits=1, frame_misses=1)
        assert (a + b).frame_hits == 4
        assert (a + b).frame_misses == 2
        assert (a - b).frame_hits == 2
        assert (a - b).frame_requests == 2

    def test_frame_hit_rate(self):
        assert CacheStats().frame_hit_rate == 0.0
        assert CacheStats(frame_hits=3, frame_misses=1).frame_hit_rate == 0.75

    def test_as_dict_emits_frame_keys_only_when_traffic_exists(self):
        # Pre-existing report shapes (single-scene sweeps) must not grow
        # frame keys they never had.
        assert "frame_hits" not in CacheStats(hits=2).as_dict()
        emitted = CacheStats(frame_hits=2, frame_misses=1).as_dict()
        assert emitted["frame_hits"] == 2
        assert emitted["frame_misses"] == 1
        assert emitted["frame_hit_rate"] == pytest.approx(2 / 3)


class TestStorePut:
    def test_put_is_counter_neutral(self, yolo_detector, sequence):
        store = ActivationCacheStore(max_entries=4)
        bundle = yolo_detector.clean_activations(sequence.frame(0))
        admitted = store.put(yolo_detector, sequence.frame(0), bundle)
        assert admitted is not None
        assert store.hits == 0 and store.misses == 0
        assert len(store) == 1
        # A later lookup is answered by the admitted entry.
        assert store.get(yolo_detector, sequence.frame(0)) is admitted
        assert store.hits == 1

    def test_put_existing_key_returns_cached_bundle(self, yolo_detector, sequence):
        store = ActivationCacheStore(max_entries=4)
        frame = sequence.frame(0)
        first = store.put(
            yolo_detector, frame, yolo_detector.clean_activations(frame)
        )
        second = store.put(
            yolo_detector, frame, yolo_detector.clean_activations(frame)
        )
        assert second is first
        assert len(store) == 1

    def test_put_evicts_lru_at_cap(self, yolo_detector, sequence):
        store = ActivationCacheStore(max_entries=2)
        for index in range(3):
            frame = sequence.frame(index)
            store.put(yolo_detector, frame, yolo_detector.clean_activations(frame))
        assert len(store) == 2
        assert store.evictions == 1


class TestSequenceActivationCache:
    def test_warm_chain_is_bit_identical_to_dense(
        self, yolo_detector, detr_detector, sequence
    ):
        bounds = sequence.dirty_bounds()
        for detector in (yolo_detector, detr_detector):
            cache = SequenceActivationCache(detector, max_frames=2)
            for frame, bound in zip(sequence.images, bounds):
                bundle = cache.advance(frame, bound)
                _assert_bundle_matches_dense(detector, bundle, frame)
            stats = cache.snapshot()
            assert stats.frame_misses == 1  # only the first frame is dense
            assert stats.frame_hits == len(sequence) - 1
            assert stats.frame_hit_rate > 0.0

    def test_generic_diff_bound_matches_scene_bound(self, yolo_detector, sequence):
        # Without scene-derived bounds the windowed image diff finds the
        # dirty region itself; the derived bundles are identical.
        scene_cache = SequenceActivationCache(yolo_detector, max_frames=2)
        generic_cache = SequenceActivationCache(yolo_detector, max_frames=2)
        for frame, bound in zip(sequence.images, sequence.dirty_bounds()):
            scened = scene_cache.advance(frame, bound)
            generic = generic_cache.advance(frame, None)
            for name, tensor in scened.tensors.items():
                assert np.array_equal(generic.tensors[name], tensor)
        assert generic_cache.snapshot().frame_hits == len(sequence) - 1

    def test_repeated_frame_is_a_digest_hit(self, yolo_detector, sequence):
        cache = SequenceActivationCache(yolo_detector, max_frames=2)
        first = cache.advance(sequence.frame(0))
        again = cache.advance(sequence.frame(0).copy())
        assert again is first
        assert cache.frame_hits == 1 and cache.frame_misses == 1

    def test_identical_consecutive_frames_share_tensors(self, yolo_detector):
        frames = generate_sequence(
            num_frames=2,
            seed=9,
            image_length=SMALL_LENGTH,
            image_width=SMALL_WIDTH,
            half="left",
            max_speed=0.0,
        )
        cache = SequenceActivationCache(yolo_detector, max_frames=2)
        first = cache.advance(frames.frame(0))
        # Same pixels under a different digest-triggering path would still
        # be a digest hit here; force a derivation with a copy.
        second = cache.advance(frames.frame(1))
        assert second is first or second.tensors is first.tensors

    def test_eviction_keeps_rolling_window(self, yolo_detector, sequence):
        cache = SequenceActivationCache(yolo_detector, max_frames=1)
        for frame in sequence:
            cache.advance(frame)
        assert len(cache) == 1
        assert cache.evictions == len(sequence) - 1
        # The survivor is the latest frame's bundle.
        assert np.array_equal(
            cache.latest.clean_image,
            np.clip(np.asarray(sequence.frame(-1), float) + 0.0, 0.0, 255.0),
        )

    def test_snapshot_folds_evicted_delta_counters(self, yolo_detector, sequence):
        cache = SequenceActivationCache(yolo_detector, max_frames=1)
        bundle = cache.advance(sequence.frame(0))
        from repro.detectors.activation_cache import DeltaActivationStore

        bundle.delta = DeltaActivationStore(max_entries=4)
        bundle.delta.get(b"missing")  # one delta miss
        cache.advance(sequence.frame(1))  # evicts frame 0's bundle
        assert cache.snapshot().delta_misses == 1

    def test_clear(self, yolo_detector, sequence):
        cache = SequenceActivationCache(yolo_detector, max_frames=3)
        for frame in sequence:
            cache.advance(frame)
        assert cache.clear() == min(3, len(sequence))
        assert len(cache) == 0
        assert cache.latest is None

    def test_rejects_zero_window(self, yolo_detector):
        with pytest.raises(ValueError):
            SequenceActivationCache(yolo_detector, max_frames=0)

    def test_non_incremental_detector_returns_none(self, sequence):
        class Opaque:
            supports_incremental = False

            def clean_activations_delta(self, image, previous, dirty_bound=None):
                return None, False

        cache = SequenceActivationCache(Opaque(), max_frames=2)
        assert cache.advance(sequence.frame(0)) is None
        assert cache.frame_misses == 1
        assert len(cache) == 0


class TestStoreBackedSequenceCache:
    def test_bundles_ride_the_store(self, yolo_detector, sequence):
        store = ActivationCacheStore(max_entries=4)
        cache = SequenceActivationCache(yolo_detector, max_frames=2, store=store)
        for frame, bound in zip(sequence.images, sequence.dirty_bounds()):
            bundle = cache.advance(frame, bound)
            _assert_bundle_matches_dense(yolo_detector, bundle, frame)
        # Admissions are not lookups: the store saw no hit/miss traffic.
        assert store.hits == 0 and store.misses == 0
        assert len(store) == 4
        # The cache's own snapshot carries only frame/eviction counters —
        # store-owned delta counters are the store's to report.
        stats = cache.snapshot()
        assert stats.frame_hits == len(sequence) - 1
        assert stats.delta_hits == 0 and stats.delta_misses == 0

    def test_shared_memory_store_roundtrip_and_no_leaks(
        self, yolo_detector, sequence
    ):
        store = SharedMemoryActivationStore(
            max_entries=4, segment_prefix="tseqcache"
        )
        try:
            cache = SequenceActivationCache(
                yolo_detector, max_frames=2, store=store
            )
            for frame, bound in zip(sequence.images, sequence.dirty_bounds()):
                bundle = cache.advance(frame, bound)
                _assert_bundle_matches_dense(yolo_detector, bundle, frame)
            assert store.active_segments > 0
        finally:
            store.shutdown()
        assert list_segments("tseqcache") == []
