"""Tests for the detector model zoo."""

import pytest

from repro.detectors.single_stage import SingleStageDetector
from repro.detectors.transformer import TransformerDetector
from repro.detectors.zoo import ARCHITECTURE_ALIASES, build_detector, build_model_zoo


class TestBuildDetector:
    def test_yolo_aliases(self, small_training_config):
        for alias in ("yolo", "yolov5", "single_stage", "YOLO"):
            detector = build_detector(alias, seed=1, training=small_training_config)
            assert isinstance(detector, SingleStageDetector)

    def test_detr_aliases(self, small_training_config):
        for alias in ("detr", "transformer", "DETR"):
            detector = build_detector(alias, seed=1, training=small_training_config)
            assert isinstance(detector, TransformerDetector)

    def test_unknown_architecture_rejected(self, small_training_config):
        with pytest.raises(ValueError):
            build_detector("faster_rcnn", training=small_training_config)

    def test_detector_kwargs_forwarded(self, small_training_config):
        detector = build_detector(
            "detr", seed=1, training=small_training_config, attention_mix=0.2
        )
        assert detector.attention_mix == 0.2

    def test_seed_recorded(self, small_training_config):
        detector = build_detector("yolo", seed=9, training=small_training_config)
        assert detector.seed == 9
        assert "seed9" in detector.name

    def test_aliases_cover_both_architectures(self):
        assert set(ARCHITECTURE_ALIASES.values()) == {"single_stage", "transformer"}


class TestBuildModelZoo:
    def test_zoo_size_matches_seeds(self, small_training_config):
        zoo = build_model_zoo("yolo", seeds=(1, 2), training=small_training_config)
        assert len(zoo) == 2
        assert [d.seed for d in zoo] == [1, 2]

    def test_zoo_members_are_distinct_models(self, small_training_config):
        import numpy as np

        zoo = build_model_zoo("detr", seeds=(1, 2), training=small_training_config)
        assert not np.allclose(
            zoo[0].prototypes.class_prototypes, zoo[1].prototypes.class_prototypes
        )
