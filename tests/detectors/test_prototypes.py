"""Tests for the prototype classification head."""

import numpy as np
import pytest

from repro.detectors.prototypes import PrototypeBank


def _bank(temperature=0.5, background_bias=0.0):
    class_prototypes = np.array(
        [
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
        ]
    )
    background_prototypes = np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 1.0]])
    return PrototypeBank(
        class_prototypes=class_prototypes,
        background_prototypes=background_prototypes,
        temperature=temperature,
        background_bias=background_bias,
    )


class TestConstruction:
    def test_properties(self):
        bank = _bank()
        assert bank.num_classes == 2
        assert bank.feature_dim == 3

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            PrototypeBank(np.zeros(3), np.zeros((1, 3)))
        with pytest.raises(ValueError):
            PrototypeBank(np.zeros((2, 3)), np.zeros((1, 4)))

    def test_invalid_temperature_rejected(self):
        with pytest.raises(ValueError):
            PrototypeBank(np.zeros((1, 3)), np.zeros((1, 3)), temperature=0.0)


class TestScoring:
    def test_logits_shape(self):
        bank = _bank()
        features = np.zeros((4, 5, 3))
        assert bank.logits(features).shape == (4, 5, 3)
        assert bank.probabilities(features).shape == (4, 5, 3)

    def test_feature_on_prototype_wins(self):
        bank = _bank()
        feature = np.array([1.0, 0.0, 0.0])
        assert bank.classify(feature) == 0
        feature = np.array([0.0, 1.0, 0.0])
        assert bank.classify(feature) == 1

    def test_background_feature_classified_as_background(self):
        bank = _bank()
        assert bank.classify(np.array([0.0, 0.0, 0.0])) == bank.num_classes
        assert bank.classify(np.array([0.0, 0.0, 1.0])) == bank.num_classes

    def test_background_uses_nearest_of_multiple_prototypes(self):
        bank = _bank()
        # Close to the second background prototype, far from the first.
        probabilities = bank.probabilities(np.array([0.0, 0.1, 0.9]))
        assert probabilities[-1] > 0.5

    def test_probabilities_sum_to_one(self):
        bank = _bank()
        features = np.random.default_rng(0).normal(size=(10, 3))
        assert np.allclose(bank.probabilities(features).sum(axis=-1), 1.0)

    def test_temperature_sharpens_distribution(self):
        sharp = _bank(temperature=0.01)
        soft = _bank(temperature=10.0)
        feature = np.array([0.9, 0.1, 0.0])
        assert sharp.probabilities(feature)[0] > soft.probabilities(feature)[0]

    def test_background_bias_shifts_towards_background(self):
        neutral = _bank(background_bias=0.0)
        biased = _bank(background_bias=5.0)
        feature = np.array([0.6, 0.0, 0.0])
        assert (
            biased.probabilities(feature)[-1] > neutral.probabilities(feature)[-1]
        )

    def test_wrong_feature_dim_rejected(self):
        with pytest.raises(ValueError):
            _bank().logits(np.zeros(4))
