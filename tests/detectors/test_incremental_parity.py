"""Property-based parity suite for incremental (dirty-region) inference.

``predict_delta`` / ``predict_delta_batch`` recompute only a mask's dirty
region against cached clean activations, so they must be **bit-identical**
to the full forward pass on the perturbed image — asserted with exact
equality on the decoded boxes and on the intermediate probability grids,
across both detector architectures, odd and even smoothing kernel sizes,
and random sparse masks (single pixels, patches, border-touching patches,
channel-sparse perturbations, dense masks that route through the fallback).
"""

import numpy as np
import pytest

from repro.detectors.base import Detector
from repro.detectors.single_stage import SingleStageDetector
from repro.nn.incremental import EMPTY_BBOX, mask_nonzero_bbox


def _assert_same_prediction(expected, actual):
    assert len(expected) == len(actual)
    for left, right in zip(expected, actual):
        assert (left.cl, left.x, left.y, left.l, left.w, left.score) == (
            right.cl,
            right.x,
            right.y,
            right.l,
            right.w,
            right.score,
        )


def _sparse_masks(image_shape, seed=0):
    """A zoo of sparse masks: pixels, patches, borders, channel-sparse."""
    length, width = image_shape[0], image_shape[1]
    rng = np.random.default_rng(seed)
    masks = []

    single = np.zeros(image_shape)
    single[length // 2, width // 2, 1] = 120.0
    masks.append(single)

    patch = np.zeros(image_shape)
    patch[5:11, 30:41] = rng.integers(-255, 256, size=(6, 11, 3))
    masks.append(patch)

    corner = np.zeros(image_shape)
    corner[0:3, width - 4 : width] = rng.integers(-255, 256, size=(3, 4, 3))
    masks.append(corner)

    bottom_edge = np.zeros(image_shape)
    bottom_edge[length - 2 : length, 0:6] = rng.integers(-255, 256, size=(2, 6, 3))
    masks.append(bottom_edge)

    scattered = np.zeros(image_shape)
    for _ in range(12):
        r, c = rng.integers(0, length), rng.integers(0, width)
        scattered[r, c, rng.integers(0, 3)] = float(rng.integers(-255, 256))
    masks.append(scattered)

    # Values that cancel against clipping (negative on dark pixels).
    clip_heavy = np.zeros(image_shape)
    clip_heavy[8:12, 8:12] = -255.0
    masks.append(clip_heavy)

    return masks


@pytest.fixture(params=["yolo", "detr"])
def detector(request, yolo_detector, detr_detector):
    return yolo_detector if request.param == "yolo" else detr_detector


class TestPredictDeltaParity:
    def test_sparse_masks_bit_identical(self, detector, small_dataset):
        image = small_dataset[0].image
        clean = detector.clean_activations(image)
        for mask in _sparse_masks(image.shape, seed=1):
            expected = detector.predict(np.clip(image + mask, 0.0, 255.0))
            actual = detector.predict_delta(image, mask, clean=clean)
            _assert_same_prediction(expected, actual)

    def test_zero_mask_returns_clean_prediction(self, detector, small_dataset):
        image = small_dataset[0].image
        clean = detector.clean_activations(image)
        actual = detector.predict_delta(image, np.zeros_like(image), clean=clean)
        assert actual is clean.prediction
        _assert_same_prediction(detector.predict(image), actual)

    def test_dense_mask_routes_through_fallback(self, detector, small_dataset):
        image = small_dataset[0].image
        clean = detector.clean_activations(image)
        mask = np.random.default_rng(2).integers(
            -40, 41, size=image.shape
        ).astype(np.float64)
        expected = detector.predict(np.clip(image + mask, 0.0, 255.0))
        _assert_same_prediction(
            expected, detector.predict_delta(image, mask, clean=clean)
        )

    def test_without_clean_activations_full_recompute(self, detector, small_dataset):
        image = small_dataset[0].image
        mask = _sparse_masks(image.shape, seed=3)[1]
        expected = detector.predict(np.clip(image + mask, 0.0, 255.0))
        _assert_same_prediction(expected, detector.predict_delta(image, mask))

    def test_loose_dirty_bound_never_changes_result(self, detector, small_dataset):
        image = small_dataset[0].image
        clean = detector.clean_activations(image)
        mask = _sparse_masks(image.shape, seed=4)[0]
        exact = mask_nonzero_bbox(mask)
        loose = (
            max(0, exact[0] - 7),
            min(image.shape[0], exact[1] + 9),
            max(0, exact[2] - 5),
            min(image.shape[1], exact[3] + 11),
        )
        reference = detector.predict_delta(image, mask, clean=clean)
        for bound in (exact, loose, (0, image.shape[0], 0, image.shape[1]), None):
            _assert_same_prediction(
                reference,
                detector.predict_delta(image, mask, dirty_bound=bound, clean=clean),
            )

    def test_batch_bit_identical_to_predict_batch(self, detector, small_dataset):
        image = small_dataset[0].image
        clean = detector.clean_activations(image)
        masks = np.stack(
            [np.zeros_like(image)] + _sparse_masks(image.shape, seed=5), axis=0
        )
        expected = detector.predict_batch(np.clip(image[None] + masks, 0.0, 255.0))
        actual = detector.predict_delta_batch(image, masks, clean=clean)
        assert len(actual) == masks.shape[0]
        for left, right in zip(expected, actual):
            _assert_same_prediction(left, right)

    def test_batch_mixes_sparse_and_dense_members(self, detector, small_dataset):
        image = small_dataset[0].image
        clean = detector.clean_activations(image)
        rng = np.random.default_rng(6)
        dense = rng.integers(-30, 31, size=image.shape).astype(np.float64)
        sparse = _sparse_masks(image.shape, seed=7)[0]
        masks = np.stack([dense, sparse, np.zeros_like(image)], axis=0)
        expected = detector.predict_batch(np.clip(image[None] + masks, 0.0, 255.0))
        for left, right in zip(
            expected, detector.predict_delta_batch(image, masks, clean=clean)
        ):
            _assert_same_prediction(left, right)

    def test_batch_empty_bound_short_circuits(self, detector, small_dataset):
        image = small_dataset[0].image
        clean = detector.clean_activations(image)
        masks = np.zeros((2,) + image.shape)
        predictions = detector.predict_delta_batch(
            image, masks, dirty_bounds=[EMPTY_BBOX, None], clean=clean
        )
        assert predictions[0] is clean.prediction
        assert predictions[1] is clean.prediction


class TestKernelSizeCoverage:
    """Odd and even smoothing kernels, plus no smoothing at all.

    Even box sizes use scipy's 'same'-mode alignment, which the windowed
    kernels do not reproduce — the delta path must transparently recompute
    that stage whole-grid and stay bit-identical.
    """

    @pytest.mark.parametrize("local_smoothing", [1, 2, 3, 4, 5])
    def test_single_stage_smoothing_sizes(
        self, yolo_detector, small_dataset, local_smoothing
    ):
        detector = SingleStageDetector(
            yolo_detector.prototypes,
            config=yolo_detector.config,
            local_smoothing=local_smoothing,
        )
        image = small_dataset[0].image
        clean = detector.clean_activations(image)
        for mask in _sparse_masks(image.shape, seed=8)[:3]:
            expected = detector.predict(np.clip(image + mask, 0.0, 255.0))
            _assert_same_prediction(
                expected, detector.predict_delta(image, mask, clean=clean)
            )

    def test_probability_grids_bit_identical(self, yolo_detector, small_dataset):
        image = small_dataset[0].image
        clean = yolo_detector.clean_activations(image)
        mask = _sparse_masks(image.shape, seed=9)[1]
        perturbed = np.clip(image + mask, 0.0, 255.0)
        grid = yolo_detector._delta_feature_grid(
            image, mask, mask_nonzero_bbox(mask), clean
        )
        assert np.array_equal(grid, yolo_detector.backbone_features(perturbed))


class TestEnsembleFanOut:
    def test_predict_delta_batch_all(self, yolo_detector, detr_detector, small_dataset):
        from repro.detectors.ensemble import DetectorEnsemble

        ensemble = DetectorEnsemble([yolo_detector, detr_detector])
        image = small_dataset[0].image
        masks = np.stack(_sparse_masks(image.shape, seed=10)[:3], axis=0)
        clean_all = ensemble.clean_activations_all(image)
        assert len(clean_all) == 2 and all(c is not None for c in clean_all)
        expected = ensemble.predict_batch_all(np.clip(image[None] + masks, 0.0, 255.0))
        actual = ensemble.predict_delta_batch_all(image, masks, clean_all=clean_all)
        for member_expected, member_actual in zip(expected, actual):
            for left, right in zip(member_expected, member_actual):
                _assert_same_prediction(left, right)


class TestGenericFallback:
    def test_non_incremental_detector_uses_full_pass(self, small_dataset):
        class LoopDetector(Detector):
            architecture = "loop"

            def __init__(self, inner):
                super().__init__(inner.config, inner.seed)
                self.inner = inner

            def backbone_features(self, image):
                return self.inner.backbone_features(image)

            def predict(self, image):
                return self.inner.predict(image)

        inner_source = small_dataset
        # Build on the session yolo fixture indirectly: a plain Detector
        # subclass without incremental support must fall back cleanly.
        import repro.detectors.zoo as zoo
        from repro.detectors.training import TrainingConfig

        inner = zoo.build_detector(
            "yolo",
            seed=2,
            training=TrainingConfig(
                scenes_per_class=2,
                image_length=inner_source[0].image.shape[0],
                image_width=inner_source[0].image.shape[1],
                background_clusters=16,
            ),
        )
        wrapper = LoopDetector(inner)
        assert wrapper.clean_activations(inner_source[0].image) is None
        image = inner_source[0].image
        mask = _sparse_masks(image.shape, seed=11)[0]
        expected = wrapper.predict(np.clip(image + mask, 0.0, 255.0))
        _assert_same_prediction(expected, wrapper.predict_delta(image, mask))
