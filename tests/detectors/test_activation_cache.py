"""Tests for the clean-scene activation cache store.

The store is content-keyed (detector identity + image digest), so a new
scene can never hit a stale entry — the cache-invalidation guarantee the
experiment runner's per-scene lifecycle relies on.
"""

import numpy as np
import pytest

from repro.detectors.activation_cache import (
    ActivationCacheStore,
    CacheStats,
    CleanActivations,
    SharedMemoryActivationStore,
    image_digest,
)
from repro.experiments.shm import list_segments


def _scene(seed, shape=(64, 208, 3)):
    return np.random.default_rng(seed).uniform(0, 255, size=shape).round()


class TestImageDigest:
    def test_content_keyed(self):
        image = _scene(0)
        assert image_digest(image) == image_digest(image.copy())
        changed = image.copy()
        changed[3, 4, 1] += 1.0
        assert image_digest(image) != image_digest(changed)

    def test_dtype_and_shape_enter_the_key(self):
        image = np.zeros((4, 4, 3))
        assert image_digest(image) != image_digest(image.astype(np.float32))
        assert image_digest(image) != image_digest(np.zeros((4, 12)))


class TestActivationCacheStore:
    def test_miss_then_hit(self, yolo_detector):
        store = ActivationCacheStore(max_entries=2)
        image = _scene(1)
        first = store.get(yolo_detector, image)
        assert isinstance(first, CleanActivations)
        assert store.stats == {
            "hits": 0, "misses": 1, "evictions": 0, "invalidations": 0, "entries": 1,
        }
        second = store.get(yolo_detector, image)
        assert second is first
        assert store.hits == 1

    def test_new_scene_never_hits_stale_entry(self, yolo_detector):
        store = ActivationCacheStore(max_entries=4)
        scene_a, scene_b = _scene(2), _scene(3)
        cached_a = store.get(yolo_detector, scene_a)
        cached_b = store.get(yolo_detector, scene_b)
        assert cached_b is not cached_a
        assert store.misses == 2 and store.hits == 0
        # The cached bundle's clean image and prediction belong to its own
        # scene: predictions answered from it match a fresh forward pass.
        expected = yolo_detector.predict(np.clip(scene_b + 0.0, 0.0, 255.0))
        assert len(cached_b.prediction) == len(expected)
        for left, right in zip(expected, cached_b.prediction):
            assert (left.cl, left.x, left.y, left.l, left.w, left.score) == (
                right.cl, right.x, right.y, right.l, right.w, right.score,
            )
        # A single perturbed pixel produces a different digest => miss.
        perturbed = scene_a.copy()
        perturbed[0, 0, 0] = (perturbed[0, 0, 0] + 1.0) % 255.0
        store.get(yolo_detector, perturbed)
        assert store.misses == 3

    def test_distinct_detectors_do_not_collide(self, yolo_detector, detr_detector):
        store = ActivationCacheStore(max_entries=4)
        image = _scene(4)
        cached_yolo = store.get(yolo_detector, image)
        cached_detr = store.get(detr_detector, image)
        assert cached_yolo is not cached_detr
        assert "raw" in cached_detr.tensors
        assert "features" in cached_yolo.tensors

    def test_lru_eviction_respects_cap(self, yolo_detector):
        store = ActivationCacheStore(max_entries=2)
        scenes = [_scene(seed) for seed in (5, 6, 7)]
        store.get(yolo_detector, scenes[0])
        store.get(yolo_detector, scenes[1])
        store.get(yolo_detector, scenes[0])  # refresh scene 0 => scene 1 is LRU
        store.get(yolo_detector, scenes[2])  # evicts scene 1
        assert store.evictions == 1
        assert len(store) == 2
        store.get(yolo_detector, scenes[0])
        assert store.hits == 2  # scene 0 survived the eviction
        store.get(yolo_detector, scenes[1])
        assert store.misses == 4  # scene 1 was rebuilt

    def test_invalidate(self, yolo_detector, detr_detector):
        store = ActivationCacheStore(max_entries=8)
        image = _scene(8)
        store.get(yolo_detector, image)
        store.get(detr_detector, image)
        assert store.invalidate(yolo_detector) == 1
        assert len(store) == 1
        store.get(yolo_detector, image)
        assert store.misses == 3  # rebuilt after invalidation
        assert store.invalidate() == 2
        assert len(store) == 0

    def test_invalidations_counted_separately_from_evictions(
        self, yolo_detector, detr_detector
    ):
        """Explicit drops increment ``invalidations``, never ``evictions``.

        The regression: ``invalidate`` used to delete entries without
        counting them anywhere, so persisted provenance under-reported
        entry turnover relative to cap-driven evictions.
        """
        store = ActivationCacheStore(max_entries=8)
        image = _scene(8)
        store.get(yolo_detector, image)
        store.get(detr_detector, image)
        assert store.invalidations == 0
        store.invalidate(yolo_detector)
        assert store.invalidations == 1
        store.invalidate()
        assert store.invalidations == 2
        assert store.evictions == 0  # cap never hit: evictions untouched
        assert store.snapshot().invalidations == 2
        assert store.stats["invalidations"] == 2
        previous = store.reset_stats()
        assert previous.invalidations == 2
        assert store.invalidations == 0

    def test_non_incremental_detector_not_cached(self, yolo_detector):
        class Opaque:
            def clean_activations(self, image):
                return None

        store = ActivationCacheStore(max_entries=2)
        assert store.get(Opaque(), _scene(9)) is None
        assert len(store) == 0

    def test_rejects_zero_cap(self):
        with pytest.raises(ValueError):
            ActivationCacheStore(max_entries=0)


class TestCacheStats:
    def test_add_sub_and_merge(self):
        first = CacheStats(hits=2, misses=3, evictions=1)
        second = CacheStats(hits=1, misses=1, evictions=0)
        assert first + second == CacheStats(hits=3, misses=4, evictions=1)
        assert (first + second) - second == first
        assert CacheStats.merge([first, second, CacheStats()]) == first + second
        assert CacheStats.merge([]) == CacheStats()

    def test_rates(self):
        assert CacheStats().hit_rate == 0.0
        assert CacheStats(hits=3, misses=1).hit_rate == 0.75
        assert CacheStats(hits=3, misses=1).requests == 4

    def test_as_dict(self):
        stats = CacheStats(hits=1, misses=3, evictions=2, invalidations=4)
        assert stats.as_dict() == {
            "hits": 1, "misses": 3, "evictions": 2, "invalidations": 4,
            "hit_rate": 0.25,
        }

    def test_invalidations_propagate_through_arithmetic(self):
        first = CacheStats(hits=1, invalidations=2)
        second = CacheStats(misses=1, invalidations=3)
        assert (first + second).invalidations == 5
        assert (first - second).invalidations == -1
        assert CacheStats.merge([first, second]).invalidations == 5


class TestStatsLifecycle:
    def test_snapshot_reflects_counters(self, yolo_detector):
        store = ActivationCacheStore(max_entries=2)
        image = _scene(10)
        store.get(yolo_detector, image)
        store.get(yolo_detector, image)
        assert store.snapshot() == CacheStats(hits=1, misses=1, evictions=0)

    def test_snapshot_deltas_isolate_one_phase(self, yolo_detector):
        store = ActivationCacheStore(max_entries=4)
        store.get(yolo_detector, _scene(11))
        before = store.snapshot()
        image = _scene(12)
        store.get(yolo_detector, image)
        store.get(yolo_detector, image)
        assert store.snapshot() - before == CacheStats(hits=1, misses=1, evictions=0)

    def test_reset_stats_zeroes_counters_but_keeps_entries(self, yolo_detector):
        """Per-model stats reset: hit-rates must not accumulate across models."""
        store = ActivationCacheStore(max_entries=4)
        image = _scene(13)
        store.get(yolo_detector, image)
        store.get(yolo_detector, image)
        previous = store.reset_stats()
        assert previous == CacheStats(hits=1, misses=1, evictions=0)
        assert store.snapshot() == CacheStats()
        assert len(store) == 1  # entries untouched — only counters reset
        store.get(yolo_detector, image)
        assert store.snapshot() == CacheStats(hits=1, misses=0, evictions=0)


class TestSharedMemoryActivationStore:
    """The shm-backed store: same caching semantics, audited segments."""

    def test_bundles_served_from_shared_segments(self, yolo_detector):
        store = SharedMemoryActivationStore(max_entries=2, segment_prefix="tshma")
        try:
            image = _scene(20)
            cached = store.get(yolo_detector, image)
            assert isinstance(cached, CleanActivations)
            # Bundle content matches what a plain store would serve...
            reference = yolo_detector.clean_activations(image)
            assert np.array_equal(cached.clean_image, reference.clean_image)
            for name, tensor in reference.tensors.items():
                assert np.array_equal(cached.tensors[name], tensor)
            # ...but the arrays live in named, auditable segments.
            assert store.active_segments == 1 + len(reference.tensors)
            assert list_segments("tshma") != []
            assert not cached.clean_image.flags.writeable
            assert store.get(yolo_detector, image) is cached
            assert store.hits == 1
        finally:
            store.shutdown()

    def test_drop_unlinks_but_defers_close_until_release(self, yolo_detector):
        """Evicted/invalidated segments unlink at once, unmap at the job
        boundary — a view fetched earlier in the job stays readable."""
        store = SharedMemoryActivationStore(max_entries=1, segment_prefix="tshmb")
        try:
            first = store.get(yolo_detector, _scene(21))
            held = first.clean_image
            store.get(yolo_detector, _scene(22))  # cap=1: evicts the first
            assert store.evictions == 1
            remaining = list_segments("tshmb")
            assert len(remaining) == store.active_segments  # evictee unlinked
            assert float(held.sum()) >= 0.0  # mapping still readable
            released = store.release_retired()
            assert released > 0
            assert store.release_retired() == 0  # idempotent
        finally:
            store.shutdown()

    def test_invalidate_unlinks_segments(self, yolo_detector, detr_detector):
        store = SharedMemoryActivationStore(max_entries=4, segment_prefix="tshmc")
        try:
            image = _scene(23)
            store.get(yolo_detector, image)
            store.get(detr_detector, image)
            before = len(list_segments("tshmc"))
            assert store.invalidate(yolo_detector) == 1
            assert store.invalidations == 1
            after = len(list_segments("tshmc"))
            assert after < before
            assert after == store.active_segments
        finally:
            store.shutdown()

    def test_shutdown_leaves_no_segments(self, yolo_detector):
        store = SharedMemoryActivationStore(max_entries=4, segment_prefix="tshmd")
        store.get(yolo_detector, _scene(24))
        store.get(yolo_detector, _scene(25))
        assert list_segments("tshmd") != []
        store.shutdown()
        assert list_segments("tshmd") == []
        assert store.active_segments == 0
        store.shutdown()  # idempotent
