"""End-to-end integration tests across all modules.

These tests run the full pipeline — data generation, detector training,
NSGA-II attack, analysis and reporting — on tiny budgets and assert the
structural properties that hold regardless of budget.
"""

import numpy as np
import pytest

from repro.analysis.errors import summarize_attack_errors
from repro.analysis.reporting import ComparisonReport, objectives_to_rows
from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.masks import apply_mask
from repro.core.objectives import objective_degradation
from repro.core.regions import HalfImageRegion
from repro.detection.errors import ErrorType
from repro.nsga.algorithm import NSGAConfig


@pytest.fixture(scope="module")
def full_attack(request):
    """A moderately sized attack whose front is expected to contain
    at least one genuinely degrading solution."""
    detector = request.getfixturevalue("detr_detector")
    dataset = request.getfixturevalue("small_dataset")
    config = AttackConfig(
        nsga=NSGAConfig(num_iterations=8, population_size=14, seed=1),
        region=HalfImageRegion("right"),
    )
    image = dataset[0].image
    return ButterflyAttack(detector, config).attack(image), image, detector


class TestFullPipeline:
    def test_attack_finds_degrading_solution(self, full_attack):
        result, _, _ = full_attack
        assert result.best_by("degradation").degradation < 1.0

    def test_reported_objectives_are_consistent_with_recomputation(self, full_attack):
        result, image, detector = full_attack
        clean = detector.predict(image)
        best = result.best_by("degradation")
        recomputed = objective_degradation(
            clean, detector.predict(apply_mask(image, best.mask.values))
        )
        assert recomputed == pytest.approx(best.degradation, abs=1e-9)

    def test_perturbation_confined_to_right_half_but_errors_anywhere(self, full_attack):
        result, image, _ = full_attack
        middle = image.shape[1] // 2
        best = result.best_by("degradation")
        assert np.allclose(best.mask.values[:, :middle, :], 0.0)
        assert best.mask.values[:, middle:, :].any()

    def test_error_summary_aggregates_front(self, full_attack):
        result, _, _ = full_attack
        summary = summarize_attack_errors(result)
        assert summary.num_solutions == len(result.pareto_front)
        assert summary.counts[ErrorType.UNCHANGED] >= 0

    def test_reporting_round_trip(self, full_attack, tmp_path):
        from repro.analysis.reporting import write_csv

        result, _, _ = full_attack
        rows = objectives_to_rows(result, label="transformer")
        path = tmp_path / "front.csv"
        write_csv(rows, path)
        assert path.exists()
        assert len(path.read_text().strip().splitlines()) == len(rows) + 1

    def test_comparison_report_integration(self, full_attack):
        result, _, _ = full_attack
        report = ComparisonReport()
        report.add_result("transformer", result)
        summary = report.summary_rows()
        assert summary[0]["label"] == "transformer"
        assert summary[0]["best_degradation"] <= 1.0


class TestCleanReferenceAssumption:
    def test_zero_mask_never_counts_as_attack(self, yolo_detector, small_dataset):
        """The paper's zero-mask individual must leave the prediction intact."""
        image = small_dataset[0].image
        clean = yolo_detector.predict(image)
        perturbed = yolo_detector.predict(apply_mask(image, np.zeros_like(image)))
        assert objective_degradation(clean, perturbed) == pytest.approx(1.0)

    def test_left_half_untouched_by_right_mask(self, small_dataset):
        image = small_dataset[0].image
        mask = HalfImageRegion("right").project(np.full_like(image, 100.0))
        perturbed = apply_mask(image, mask)
        middle = image.shape[1] // 2
        assert np.allclose(perturbed[:, :middle, :], image[:, :middle, :])
