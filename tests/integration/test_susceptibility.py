"""Integration test of the paper's headline claim.

The paper's central empirical finding is that transformer-based detectors
are more susceptible to butterfly-effect perturbations than single-stage
convolutional detectors.  This test verifies the *mechanism* on the
simulated substrate directly (strong right-half noise changes the
transformer's left-side predictions far more), which is budget-independent,
and verifies that the attack can exploit it.
"""

import numpy as np
import pytest

from repro.core.objectives import objective_degradation
from repro.detection.prediction import Prediction


def _left_half_prediction(prediction: Prediction, width: int) -> Prediction:
    return Prediction([b for b in prediction.valid_boxes if b.y < width / 2])


@pytest.fixture(scope="module")
def noise_trials(request):
    """Apply identical strong right-half noise to both detectors."""
    yolo = request.getfixturevalue("yolo_detector")
    detr = request.getfixturevalue("detr_detector")
    dataset = request.getfixturevalue("small_dataset")
    rng = np.random.default_rng(0)

    degradations = {"single_stage": [], "transformer": []}
    for sample in dataset:
        image = sample.image
        width = image.shape[1]
        noisy = image.copy()
        noise = rng.uniform(-120, 120, size=noisy[:, width // 2 :, :].shape)
        noisy[:, width // 2 :, :] = np.clip(noisy[:, width // 2 :, :] + noise, 0, 255)
        for name, detector in (("single_stage", yolo), ("transformer", detr)):
            clean_left = _left_half_prediction(detector.predict(image), width)
            perturbed = detector.predict(noisy)
            degradations[name].append(objective_degradation(clean_left, perturbed))
    return degradations


class TestSusceptibilityAsymmetry:
    def test_single_stage_left_side_mostly_stable(self, noise_trials):
        assert np.mean(noise_trials["single_stage"]) > 0.7

    def test_transformer_left_side_degrades(self, noise_trials):
        assert np.mean(noise_trials["transformer"]) < np.mean(
            noise_trials["single_stage"]
        )

    def test_gap_is_substantial(self, noise_trials):
        gap = np.mean(noise_trials["single_stage"]) - np.mean(
            noise_trials["transformer"]
        )
        assert gap > 0.1
