"""Tests for perturbation region constraints."""

import numpy as np
import pytest

from repro.core.regions import (
    FullImageRegion,
    HalfImageRegion,
    RectangleRegion,
    region_from_name,
)


class TestFullImageRegion:
    def test_everything_allowed(self):
        region = FullImageRegion()
        assert region.pixel_mask(10, 20).all()
        assert region.allowed_fraction(10, 20) == 1.0

    def test_project_is_identity(self):
        region = FullImageRegion()
        mask = np.random.default_rng(0).normal(size=(6, 8, 3))
        assert np.allclose(region.project(mask), mask)


class TestHalfImageRegion:
    def test_right_half(self):
        region = HalfImageRegion("right")
        pixel_mask = region.pixel_mask(10, 20)
        assert not pixel_mask[:, :10].any()
        assert pixel_mask[:, 10:].all()

    def test_left_half(self):
        region = HalfImageRegion("left")
        pixel_mask = region.pixel_mask(10, 20)
        assert pixel_mask[:, :10].all()
        assert not pixel_mask[:, 10:].any()

    def test_project_zeroes_forbidden_half(self):
        region = HalfImageRegion("right")
        mask = np.ones((10, 20, 3))
        projected = region.project(mask)
        assert np.allclose(projected[:, :10], 0.0)
        assert np.allclose(projected[:, 10:], 1.0)

    def test_allowed_fraction_is_half(self):
        region = HalfImageRegion("right")
        assert region.allowed_fraction(10, 20) == pytest.approx(0.5)

    def test_odd_width_split(self):
        region = HalfImageRegion("right")
        pixel_mask = region.pixel_mask(4, 9)
        assert pixel_mask.sum() == 4 * 5

    def test_invalid_half_rejected(self):
        with pytest.raises(ValueError):
            HalfImageRegion("top")

    def test_project_does_not_modify_input(self):
        region = HalfImageRegion("right")
        mask = np.ones((4, 8, 3))
        region.project(mask)
        assert np.allclose(mask, 1.0)


class TestRectangleRegion:
    def test_pixel_mask(self):
        region = RectangleRegion(2, 3, 5, 7)
        pixel_mask = region.pixel_mask(10, 10)
        assert pixel_mask[2:5, 3:7].all()
        assert pixel_mask.sum() == 3 * 4

    def test_rectangle_clipped_to_image(self):
        region = RectangleRegion(5, 5, 100, 100)
        pixel_mask = region.pixel_mask(10, 10)
        assert pixel_mask[5:, 5:].all()
        assert pixel_mask.sum() == 25

    def test_empty_rectangle_rejected(self):
        with pytest.raises(ValueError):
            RectangleRegion(5, 5, 5, 10)

    def test_rectangle_outside_image_allows_nothing(self):
        region = RectangleRegion(20, 20, 30, 30)
        assert region.pixel_mask(10, 10).sum() == 0


class TestRegionFromName:
    def test_known_names(self):
        assert isinstance(region_from_name("full"), FullImageRegion)
        assert isinstance(region_from_name("right"), HalfImageRegion)
        assert region_from_name("LEFT").half == "left"
        assert region_from_name("right_half").half == "right"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            region_from_name("bottom")
