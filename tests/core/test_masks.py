"""Tests for filter masks."""

import numpy as np
import pytest

from repro.core.masks import MAX_PERTURBATION, FilterMask, apply_mask


class TestApplyMask:
    def test_addition_and_clipping(self):
        image = np.full((4, 4, 3), 250.0)
        mask = np.full((4, 4, 3), 20.0)
        perturbed = apply_mask(image, mask)
        assert np.allclose(perturbed, 255.0)

    def test_negative_perturbation_clipped_at_zero(self):
        image = np.full((4, 4, 3), 5.0)
        mask = np.full((4, 4, 3), -20.0)
        assert np.allclose(apply_mask(image, mask), 0.0)

    def test_zero_mask_is_identity(self):
        image = np.random.default_rng(0).uniform(0, 255, size=(4, 4, 3))
        assert np.allclose(apply_mask(image, np.zeros_like(image)), image)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            apply_mask(np.zeros((4, 4, 3)), np.zeros((4, 5, 3)))

    def test_original_image_unchanged(self):
        image = np.full((4, 4, 3), 100.0)
        apply_mask(image, np.full((4, 4, 3), 10.0))
        assert np.allclose(image, 100.0)


class TestFilterMask:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            FilterMask(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            FilterMask(np.zeros((4, 4, 4)))

    def test_norms(self):
        values = np.zeros((2, 2, 3))
        values[0, 0] = [3.0, -4.0, 0.0]
        mask = FilterMask(values)
        assert mask.l1_norm == pytest.approx(7.0)
        assert mask.l2_norm == pytest.approx(5.0)
        assert mask.linf_norm == pytest.approx(4.0)

    def test_per_pixel_max(self):
        values = np.zeros((2, 2, 3))
        values[0, 0] = [1.0, -5.0, 2.0]
        values[1, 1] = [0.0, 0.0, 3.0]
        mask = FilterMask(values)
        per_pixel = mask.per_pixel_max
        assert per_pixel.shape == (2, 2)
        assert per_pixel[0, 0] == 5.0
        assert per_pixel[1, 1] == 3.0
        assert per_pixel[0, 1] == 0.0

    def test_perturbed_pixel_count_and_is_zero(self):
        mask = FilterMask.zeros((3, 3, 3))
        assert mask.is_zero
        assert mask.perturbed_pixel_count == 0
        values = mask.values.copy()
        values[1, 1, 0] = 1.0
        non_zero = FilterMask(values)
        assert not non_zero.is_zero
        assert non_zero.perturbed_pixel_count == 1

    def test_apply(self):
        image = np.full((2, 2, 3), 100.0)
        mask = FilterMask(np.full((2, 2, 3), 50.0))
        assert np.allclose(mask.apply(image), 150.0)

    def test_clipped(self):
        mask = FilterMask(np.full((2, 2, 3), 400.0))
        assert mask.clipped().values.max() == MAX_PERTURBATION
        assert mask.clipped(10.0).values.max() == 10.0

    def test_rounded(self):
        mask = FilterMask(np.full((2, 2, 3), 1.6))
        assert np.allclose(mask.rounded().values, 2.0)

    def test_random_gaussian_reproducible(self):
        a = FilterMask.random_gaussian((4, 4, 3), sigma=10.0, rng=7)
        b = FilterMask.random_gaussian((4, 4, 3), sigma=10.0, rng=7)
        assert np.allclose(a.values, b.values)
        assert np.abs(a.values).max() <= MAX_PERTURBATION


class TestApplyMaskBuffer:
    def test_out_buffer_matches_allocating_path(self):
        rng = np.random.default_rng(3)
        image = rng.uniform(0, 255, size=(6, 9, 3))
        mask = rng.uniform(-300, 300, size=(6, 9, 3))
        out = np.empty_like(image)
        result = apply_mask(image, mask, out=out)
        assert result is out
        assert np.array_equal(result, apply_mask(image, mask))

    def test_out_buffer_reused_across_masks(self):
        rng = np.random.default_rng(4)
        image = rng.uniform(0, 255, size=(5, 5, 3))
        out = np.empty_like(image)
        for seed in range(3):
            mask = np.random.default_rng(seed).uniform(-40, 40, size=image.shape)
            assert np.array_equal(
                apply_mask(image, mask, out=out), apply_mask(image, mask)
            )

    def test_rejects_wrong_out_buffer(self):
        image = np.zeros((4, 4, 3))
        mask = np.zeros((4, 4, 3))
        with pytest.raises(ValueError):
            apply_mask(image, mask, out=np.empty((4, 5, 3)))
        with pytest.raises(ValueError):
            apply_mask(image, mask, out=np.empty((4, 4, 3), dtype=np.float32))


class TestNonzeroBBox:
    def test_empty_mask(self):
        mask = FilterMask.zeros((6, 8, 3))
        assert mask.nonzero_bbox() == (0, 0, 0, 0)
        assert mask.sparsity == 0.0

    def test_single_pixel(self):
        values = np.zeros((6, 8, 3))
        values[2, 5, 1] = -3.0
        mask = FilterMask(values)
        assert mask.nonzero_bbox() == (2, 3, 5, 6)
        assert mask.sparsity == pytest.approx(1.0 / 48.0)

    def test_full_coverage(self):
        mask = FilterMask(np.full((4, 5, 3), 1.0))
        assert mask.nonzero_bbox() == (0, 4, 0, 5)
        assert mask.sparsity == 1.0

    def test_bbox_is_cached(self):
        values = np.zeros((4, 4, 3))
        values[1, 1, 0] = 1.0
        mask = FilterMask(values)
        assert mask.nonzero_bbox() is mask.nonzero_bbox()

    def test_corner_pixels_span_whole_image(self):
        values = np.zeros((5, 7, 3))
        values[0, 0, 0] = 1.0
        values[4, 6, 2] = 1.0
        assert FilterMask(values).nonzero_bbox() == (0, 5, 0, 7)
