"""Tests for the ButterflyAttack orchestrator (single detector)."""

import numpy as np
import pytest

from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.nsga.algorithm import NSGAConfig


@pytest.fixture(scope="module")
def attack_result(request):
    """One shared (small) attack run against the transformer detector."""
    detector = request.getfixturevalue("detr_detector")
    dataset = request.getfixturevalue("small_dataset")
    config = AttackConfig(
        nsga=NSGAConfig(num_iterations=4, population_size=8, seed=0),
        region=HalfImageRegion("right"),
    )
    attack = ButterflyAttack(detector, config)
    return attack.attack(dataset[0].image), dataset[0].image


class TestButterflyAttack:
    def test_result_population_size(self, attack_result):
        result, _ = attack_result
        assert len(result.solutions) == 8

    def test_front_is_nonempty_and_rank_one(self, attack_result):
        result, _ = attack_result
        assert result.pareto_front
        assert all(solution.rank == 1 for solution in result.pareto_front)

    def test_masks_respect_region_constraint(self, attack_result):
        result, image = attack_result
        middle = image.shape[1] // 2
        for solution in result.solutions:
            assert np.allclose(solution.mask.values[:, :middle, :], 0.0)

    def test_masks_are_integer_valued_and_bounded(self, attack_result):
        result, _ = attack_result
        for solution in result.solutions:
            values = solution.mask.values
            assert np.allclose(values, np.round(values))
            assert np.abs(values).max() <= 255.0

    def test_objectives_within_expected_ranges(self, attack_result):
        result, _ = attack_result
        for solution in result.solutions:
            assert 0.0 <= solution.intensity <= 1.0
            assert 0.0 <= solution.degradation <= 1.0 + 1e-9

    def test_front_solutions_carry_predictions_and_transitions(self, attack_result):
        result, _ = attack_result
        for solution in result.pareto_front:
            assert solution.perturbed_prediction is not None
            assert isinstance(solution.transitions, list)

    def test_clean_prediction_preserved(self, attack_result, detr_detector):
        result, image = attack_result
        assert result.clean_prediction.num_valid == detr_detector.predict(image).num_valid

    def test_detector_name_recorded(self, attack_result):
        result, _ = attack_result
        assert result.detector_name == "transformer-seed1"

    def test_evaluation_count_matches_budget(self, attack_result):
        result, _ = attack_result
        # initial population + iterations * population
        assert result.num_evaluations == 8 + 4 * 8

    def test_zero_mask_survives_in_population(self, attack_result):
        # The all-zero mask is Pareto-optimal (it has the best possible
        # intensity), so elitism must keep a zero-intensity solution around.
        result, _ = attack_result
        assert any(solution.intensity == 0.0 for solution in result.solutions)


class TestAttackReproducibility:
    def test_same_seed_same_front(self, yolo_detector, small_dataset):
        config = AttackConfig(
            nsga=NSGAConfig(num_iterations=2, population_size=6, seed=3),
            region=HalfImageRegion("right"),
        )
        image = small_dataset[1].image
        first = ButterflyAttack(yolo_detector, config).attack(image)
        second = ButterflyAttack(yolo_detector, config).attack(image)
        assert np.allclose(
            first.objectives_array(front_only=False),
            second.objectives_array(front_only=False),
        )

    def test_callback_receives_generations(self, yolo_detector, small_dataset):
        config = AttackConfig(nsga=NSGAConfig(num_iterations=3, population_size=6, seed=0))
        generations = []
        ButterflyAttack(yolo_detector, config).attack(
            small_dataset[0].image, callback=lambda g, pop: generations.append(g)
        )
        assert generations == [0, 1, 2]

    def test_build_objectives_exposed(self, yolo_detector, small_dataset):
        attack = ButterflyAttack(yolo_detector, AttackConfig())
        objectives = attack.build_objectives(small_dataset[0].image)
        assert objectives.clean_prediction is not None


class TestSparseInitializationFlag:
    def test_default_leaves_nsga_config_untouched(self):
        config = AttackConfig(nsga=NSGAConfig(num_iterations=2, population_size=6))
        attack = ButterflyAttack(detector=None, config=config)
        assert attack._nsga_config() is config.nsga

    def test_flag_rewrites_initialization_only(self):
        config = AttackConfig(
            nsga=NSGAConfig(num_iterations=2, population_size=6, seed=5),
            sparse_init_fraction=0.3,
        )
        attack = ButterflyAttack(detector=None, config=config)
        nsga = attack._nsga_config()
        assert nsga.initialization.sparse_fraction == 0.3
        assert nsga.seed == 5
        assert nsga.num_iterations == config.nsga.num_iterations
        assert config.nsga.initialization.sparse_fraction == 0.0  # original frozen

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            AttackConfig(sparse_init_fraction=-0.1)

    def test_sparse_attack_runs_and_respects_region(self, yolo_detector, small_dataset):
        config = AttackConfig(
            nsga=NSGAConfig(num_iterations=2, population_size=6, seed=0),
            region=HalfImageRegion("right"),
            sparse_init_fraction=0.5,
        )
        image = small_dataset[0].image
        result = ButterflyAttack(yolo_detector, config).attack(image)
        assert len(result.solutions) == 6
        middle = image.shape[1] // 2
        for solution in result.solutions:
            assert np.allclose(solution.mask.values[:, :middle, :], 0.0)
