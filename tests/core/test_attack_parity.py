"""End-to-end parity: batched vs sequential attack runs must be identical.

The batched evaluation pipeline (population stacking, vectorised detector
pass, evaluation cache) is a pure fast path: under a fixed seed the final
population, its objective vectors and the Pareto front must match the
sequential per-genome path bit for bit.
"""

import hashlib
from dataclasses import replace

import numpy as np
import pytest

from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.ensemble import EnsembleAttack
from repro.core.regions import HalfImageRegion
from repro.detectors import decode as cell_decode
from repro.nsga.algorithm import NSGAConfig
from repro.nsga.mutation import MutationConfig


def _nsga(batch_evaluation, evaluation_cache, iterations=4, population=8):
    return NSGAConfig(
        num_iterations=iterations,
        population_size=population,
        crossover_probability=0.5,
        mutation=MutationConfig(probability=0.45, window_fraction=0.01),
        seed=0,
        batch_evaluation=batch_evaluation,
        evaluation_cache=evaluation_cache,
    )


def _attack_config(batch_evaluation, evaluation_cache):
    return AttackConfig(
        nsga=_nsga(batch_evaluation, evaluation_cache),
        region=HalfImageRegion("right"),
    )


def _population_digest(result):
    digest = hashlib.sha256()
    for solution in result.solutions:
        digest.update(solution.mask.values.tobytes())
    return digest.hexdigest()


def _assert_results_identical(batched, sequential):
    assert np.array_equal(
        batched.objectives_array(front_only=False),
        sequential.objectives_array(front_only=False),
    )
    assert np.array_equal(
        batched.objectives_array(front_only=True),
        sequential.objectives_array(front_only=True),
    )
    assert [s.rank for s in batched.solutions] == [s.rank for s in sequential.solutions]
    assert _population_digest(batched) == _population_digest(sequential)
    assert batched.num_evaluations == sequential.num_evaluations


class TestButterflyAttackParity:
    @pytest.fixture(params=["yolo", "detr"])
    def detector(self, request, yolo_detector, detr_detector):
        return yolo_detector if request.param == "yolo" else detr_detector

    def test_batched_path_matches_sequential_path(self, detector, small_dataset):
        image = small_dataset[0].image
        batched = ButterflyAttack(detector, _attack_config(True, True)).attack(image)
        sequential = ButterflyAttack(detector, _attack_config(False, False)).attack(
            image
        )
        _assert_results_identical(batched, sequential)
        assert sequential.cache_hits == 0

    def test_cache_alone_does_not_change_results(self, detector, small_dataset):
        image = small_dataset[0].image
        cached = ButterflyAttack(detector, _attack_config(False, True)).attack(image)
        uncached = ButterflyAttack(detector, _attack_config(False, False)).attack(image)
        _assert_results_identical(cached, uncached)


class TestDecodeParity:
    """Whole attacks are bit-identical under the reference decode loop.

    Every decode in the attack stack resolves through the
    :mod:`repro.detectors.decode` module attributes, so monkeypatching the
    two entry points onto :func:`decode_cell_probabilities_loop` reruns the
    complete seeded attack — forward passes, incremental splicing, NSGA-II
    search — with the original per-seed decoder.  The vectorised decode is
    a pure fast path, so the results must match bit for bit, with the
    activation cache on (windowed decodes) and off (dense batched decodes).
    """

    @pytest.fixture(params=["yolo", "detr"])
    def detector(self, request, yolo_detector, detr_detector):
        return yolo_detector if request.param == "yolo" else detr_detector

    @staticmethod
    def _patch_reference_decode(monkeypatch):
        loop = cell_decode.decode_cell_probabilities_loop

        def batch_via_loop(probabilities, config, image_shape):
            probabilities = np.asarray(probabilities, dtype=np.float64)
            if probabilities.ndim != 4:
                raise ValueError(
                    "probabilities must have shape (N, rows, cols, classes + 1)"
                )
            return [loop(grid, config, image_shape) for grid in probabilities]

        monkeypatch.setattr(cell_decode, "decode_cell_probabilities", loop)
        monkeypatch.setattr(
            cell_decode, "decode_cell_probabilities_batch", batch_via_loop
        )

    @pytest.mark.parametrize("use_activation_cache", [False, True])
    def test_attack_identical_under_reference_decode(
        self, detector, small_dataset, monkeypatch, use_activation_cache
    ):
        image = small_dataset[0].image
        config = replace(
            _attack_config(True, True), use_activation_cache=use_activation_cache
        )
        vectorised = ButterflyAttack(detector, config).attack(image)
        with monkeypatch.context() as patcher:
            self._patch_reference_decode(patcher)
            reference = ButterflyAttack(detector, config).attack(image)
        _assert_results_identical(vectorised, reference)


class TestEnsembleAttackParity:
    def test_batched_path_matches_sequential_path(
        self, yolo_detector, detr_detector, small_dataset
    ):
        image = small_dataset[0].image
        detectors = [yolo_detector, detr_detector]
        batched = EnsembleAttack(detectors, _attack_config(True, True)).attack(image)
        sequential = EnsembleAttack(detectors, _attack_config(False, False)).attack(
            image
        )
        _assert_results_identical(batched, sequential)
