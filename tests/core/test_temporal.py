"""Tests for the temporally stable attack."""

import numpy as np
import pytest

from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.core.temporal import TemporalAttack, TemporalObjectives
from repro.data.sequences import generate_sequence
from repro.nsga.algorithm import NSGAConfig

from tests.conftest import SMALL_LENGTH, SMALL_WIDTH


@pytest.fixture(scope="module")
def sequence():
    return generate_sequence(
        num_frames=3,
        seed=9,
        image_length=SMALL_LENGTH,
        image_width=SMALL_WIDTH,
        half="left",
    )


class TestTemporalObjectives:
    def test_one_evaluator_per_frame(self, yolo_detector, sequence):
        objectives = TemporalObjectives(detector=yolo_detector, frames=list(sequence))
        assert objectives.num_frames == 3

    def test_empty_sequence_rejected(self, yolo_detector):
        with pytest.raises(ValueError):
            TemporalObjectives(detector=yolo_detector, frames=[])

    def test_mismatched_frame_shapes_rejected(self, yolo_detector):
        frames = [np.zeros((8, 8, 3)), np.zeros((8, 16, 3))]
        with pytest.raises(ValueError):
            TemporalObjectives(detector=yolo_detector, frames=frames)

    def test_zero_mask_objectives(self, yolo_detector, sequence):
        objectives = TemporalObjectives(detector=yolo_detector, frames=list(sequence))
        vector = objectives(np.zeros(sequence.frame(0).shape))
        assert vector[0] == 0.0
        assert vector[1] == pytest.approx(1.0)

    def test_degradation_averages_frames(self, yolo_detector, sequence, rng):
        objectives = TemporalObjectives(detector=yolo_detector, frames=list(sequence))
        mask = rng.normal(0, 40, size=sequence.frame(0).shape)
        per_frame = [obj.degradation(mask) for obj in objectives.per_frame]
        assert objectives.degradation(mask) == pytest.approx(float(np.mean(per_frame)))

    def test_raw_objectives_keys(self, yolo_detector, sequence):
        objectives = TemporalObjectives(detector=yolo_detector, frames=list(sequence))
        raw = objectives.raw_objectives(np.zeros(sequence.frame(0).shape))
        assert set(raw) == {"intensity", "degradation", "distance"}


class TestTemporalAttack:
    def test_attack_runs_on_sequence(self, detr_detector, sequence):
        config = AttackConfig(
            nsga=NSGAConfig(num_iterations=2, population_size=6, seed=0),
            region=HalfImageRegion("right"),
        )
        result = TemporalAttack(detr_detector, config).attack(sequence)
        assert len(result.solutions) == 6
        assert "frames" in result.detector_name
        middle = SMALL_WIDTH // 2
        for solution in result.solutions:
            assert np.allclose(solution.mask.values[:, :middle, :], 0.0)

    def test_attack_accepts_plain_frame_list(self, yolo_detector, sequence):
        config = AttackConfig(nsga=NSGAConfig(num_iterations=1, population_size=4, seed=0))
        result = TemporalAttack(yolo_detector, config).attack(list(sequence))
        assert len(result.solutions) == 4
