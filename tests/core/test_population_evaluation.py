"""Parity tests for the batched objective evaluation pipeline.

``ButterflyObjectives.evaluate_population`` / ``EnsembleObjectives.
evaluate_population`` stack all masks, run one batched detector pass and
assemble per-mask objective vectors.  Every vector must equal the
sequential ``__call__`` result bit for bit — NSGA-II relies on the two
paths being interchangeable.
"""

import numpy as np
import pytest

from repro.core.ensemble import EnsembleObjectives
from repro.core.masks import apply_mask
from repro.core.objectives import ButterflyObjectives


def _mask_population(image_shape, batch_size, seed=0):
    rng = np.random.default_rng(seed)
    masks = rng.integers(-80, 81, size=(batch_size,) + image_shape).astype(np.float64)
    masks[0] = 0.0  # the all-zero elite of the paper's initial population
    if batch_size > 1:
        masks[-1] = masks[0]  # duplicated genome, exercises degenerate rows
    return masks


class TestButterflyEvaluatePopulation:
    @pytest.fixture(params=["yolo", "detr"])
    def evaluator(self, request, yolo_detector, detr_detector, small_dataset):
        detector = yolo_detector if request.param == "yolo" else detr_detector
        return ButterflyObjectives(detector=detector, image=small_dataset[0].image)

    def test_matches_sequential_calls_exactly(self, evaluator):
        masks = _mask_population(evaluator.image.shape, batch_size=6)
        matrix = evaluator.evaluate_population(masks)
        assert matrix.shape == (6, evaluator.num_objectives)
        for index in range(masks.shape[0]):
            assert np.array_equal(matrix[index], evaluator(masks[index]))

    def test_apply_masks_matches_apply_mask(self, evaluator):
        masks = _mask_population(evaluator.image.shape, batch_size=4, seed=3)
        stacked = evaluator.apply_masks(masks)
        for index in range(masks.shape[0]):
            assert np.array_equal(
                stacked[index], apply_mask(evaluator.image, masks[index])
            )

    def test_rejects_mismatched_shapes(self, evaluator):
        with pytest.raises(ValueError):
            evaluator.apply_masks(np.zeros((2, 4, 4, 3)))

    def test_extra_objectives_included(self, yolo_detector, small_dataset):
        def pixel_budget(image, mask, perturbed):
            return float(np.count_nonzero(mask)) / mask.size

        evaluator = ButterflyObjectives(
            detector=yolo_detector,
            image=small_dataset[0].image,
            extra_objectives=(pixel_budget,),
        )
        masks = _mask_population(evaluator.image.shape, batch_size=3, seed=7)
        matrix = evaluator.evaluate_population(masks)
        assert matrix.shape == (3, 4)
        for index in range(masks.shape[0]):
            assert np.array_equal(matrix[index], evaluator(masks[index]))


class TestEnsembleEvaluatePopulation:
    def test_matches_sequential_calls_exactly(
        self, yolo_detector, detr_detector, small_dataset
    ):
        evaluator = EnsembleObjectives(
            ensemble=[yolo_detector, detr_detector], image=small_dataset[0].image
        )
        masks = _mask_population(evaluator.image.shape, batch_size=5, seed=1)
        matrix = evaluator.evaluate_population(masks)
        assert matrix.shape == (5, 3)
        for index in range(masks.shape[0]):
            assert np.array_equal(matrix[index], evaluator(masks[index]))
