"""Tests for the three butterfly-effect objectives (Algorithms 1 and 2)."""

import numpy as np
import pytest

from repro.core.objectives import (
    ButterflyObjectives,
    distance_weight_matrix,
    objective_degradation,
    objective_distance,
    objective_intensity,
)
from repro.detection.boxes import BoundingBox
from repro.detection.prediction import Prediction


def _box(cl, x, y, l=10.0, w=10.0):
    return BoundingBox(cl=cl, x=x, y=y, l=l, w=w)


class TestObjectiveIntensity:
    def test_zero_mask(self):
        assert objective_intensity(np.zeros((4, 4, 3))) == 0.0

    def test_l2_norm(self):
        mask = np.zeros((2, 2, 3))
        mask[0, 0, 0] = 3.0
        mask[0, 0, 1] = 4.0
        assert objective_intensity(mask) == pytest.approx(5.0)

    def test_monotone_in_magnitude(self):
        small = np.full((4, 4, 3), 1.0)
        large = np.full((4, 4, 3), 2.0)
        assert objective_intensity(large) > objective_intensity(small)


class TestObjectiveDegradation:
    """Algorithm 1, including the three cases discussed in the paper."""

    def test_unchanged_prediction_gives_one(self):
        clean = Prediction([_box(0, 20, 20)])
        assert objective_degradation(clean, Prediction([_box(0, 20, 20)])) == 1.0

    def test_class_change_gives_zero(self):
        clean = Prediction([_box(0, 20, 20)])
        assert objective_degradation(clean, Prediction([_box(1, 20, 20)])) == 0.0

    def test_disappearance_gives_zero(self):
        clean = Prediction([_box(0, 20, 20)])
        assert objective_degradation(clean, Prediction.empty()) == 0.0

    def test_box_shift_gives_intermediate_value(self):
        clean = Prediction([_box(0, 20, 20)])
        shifted = Prediction([_box(0, 23, 20)])
        value = objective_degradation(clean, shifted)
        assert 0.0 < value < 1.0

    def test_multiple_boxes_averaged(self):
        clean = Prediction([_box(0, 20, 20), _box(1, 60, 60)])
        # One box unchanged, one disappeared -> 0.5.
        perturbed = Prediction([_box(0, 20, 20)])
        assert objective_degradation(clean, perturbed) == pytest.approx(0.5)

    def test_best_same_class_box_selected(self):
        clean = Prediction([_box(0, 20, 20)])
        perturbed = Prediction([_box(0, 28, 20), _box(0, 21, 20)])
        value = objective_degradation(clean, perturbed)
        # The better-overlapping box (21,20) defines the objective.
        assert value > 0.5

    def test_empty_clean_prediction_gives_one(self):
        assert objective_degradation(Prediction.empty(), Prediction([_box(0, 1, 1)])) == 1.0

    def test_extra_ghost_boxes_do_not_raise_value_above_one(self):
        clean = Prediction([_box(0, 20, 20)])
        perturbed = Prediction([_box(0, 20, 20), _box(2, 70, 70)])
        assert objective_degradation(clean, perturbed) == 1.0


class TestDistanceWeightMatrix:
    """Algorithm 2, lines 1-16."""

    def test_shape(self):
        matrix = distance_weight_matrix(Prediction([_box(0, 10, 10)]), 32, 64)
        assert matrix.shape == (32, 64)

    def test_no_boxes_gives_diagonal_everywhere(self):
        matrix = distance_weight_matrix(Prediction.empty(), 30, 40)
        assert np.allclose(matrix, 50.0)

    def test_pixels_inside_box_are_negative(self):
        prediction = Prediction([_box(0, 16, 16, l=8, w=8)])
        matrix = distance_weight_matrix(prediction, 32, 32, epsilon=0.0)
        assert matrix[16, 16] < 0.0
        # Far-away pixel keeps its (positive) distance to the box centre.
        assert matrix[0, 31] > 0.0

    def test_epsilon_buffer_extends_negative_zone(self):
        prediction = Prediction([_box(0, 16, 16, l=8, w=8)])
        no_buffer = distance_weight_matrix(prediction, 32, 32, epsilon=0.0)
        buffered = distance_weight_matrix(prediction, 32, 32, epsilon=4.0)
        # A pixel just outside the box is positive without the buffer and
        # negative with it.
        assert no_buffer[16, 22] > 0.0
        assert buffered[16, 22] < 0.0

    def test_distance_increases_away_from_box(self):
        prediction = Prediction([_box(0, 16, 8, l=6, w=6)])
        matrix = distance_weight_matrix(prediction, 32, 64)
        assert matrix[16, 60] > matrix[16, 20] > 0.0

    def test_nearest_box_defines_distance(self):
        prediction = Prediction([_box(0, 10, 10, l=4, w=4), _box(1, 10, 50, l=4, w=4)])
        matrix = distance_weight_matrix(prediction, 20, 60)
        # A pixel near the second box must use the second box's distance.
        assert matrix[10, 45] == pytest.approx(5.0)


class TestObjectiveDistance:
    """Algorithm 2, lines 17-24."""

    def test_zero_mask_returns_zero(self):
        matrix = np.ones((8, 8))
        assert objective_distance(np.zeros((8, 8, 3)), matrix) == 0.0

    def test_single_far_pixel(self):
        matrix = np.full((8, 8), 2.0)
        mask = np.zeros((8, 8, 3))
        mask[0, 0, 1] = 100.0
        # One perturbed pixel: weighted sum = 100 * 2, count = 1.
        assert objective_distance(mask, matrix) == pytest.approx(200.0)

    def test_normalisation_by_perturbed_pixel_count(self):
        matrix = np.full((8, 8), 1.0)
        sparse = np.zeros((8, 8, 3))
        sparse[0, 0, 0] = 100.0
        dense = np.zeros((8, 8, 3))
        dense[:, :, 0] = 100.0
        # Same per-pixel weight: the dense perturbation is not rewarded more.
        assert objective_distance(sparse, matrix) == pytest.approx(
            objective_distance(dense, matrix)
        )

    def test_perturbation_near_object_scores_lower(self):
        prediction = Prediction([_box(0, 16, 16, l=8, w=8)])
        matrix = distance_weight_matrix(prediction, 32, 64)
        near = np.zeros((32, 64, 3))
        near[16, 22, 0] = 50.0
        far = np.zeros((32, 64, 3))
        far[16, 60, 0] = 50.0
        assert objective_distance(far, matrix) > objective_distance(near, matrix)

    def test_perturbation_inside_box_is_negative(self):
        prediction = Prediction([_box(0, 16, 16, l=8, w=8)])
        matrix = distance_weight_matrix(prediction, 32, 32)
        inside = np.zeros((32, 32, 3))
        inside[16, 16, 0] = 50.0
        assert objective_distance(inside, matrix) < 0.0

    def test_channel_maximum_used(self):
        matrix = np.full((4, 4), 1.0)
        mask = np.zeros((4, 4, 3))
        mask[0, 0] = [10.0, -30.0, 20.0]
        assert objective_distance(mask, matrix) == pytest.approx(30.0)


class TestButterflyObjectivesEvaluator:
    @pytest.fixture(scope="class")
    def evaluator(self, request):
        detector = request.getfixturevalue("yolo_detector")
        dataset = request.getfixturevalue("small_dataset")
        return ButterflyObjectives(detector=detector, image=dataset[0].image)

    def test_vector_layout(self, evaluator):
        vector = evaluator(np.zeros(evaluator.image.shape))
        assert vector.shape == (3,)
        assert evaluator.num_objectives == 3

    def test_zero_mask_objectives(self, evaluator):
        vector = evaluator(np.zeros(evaluator.image.shape))
        assert vector[0] == 0.0  # no perturbation
        assert vector[1] == pytest.approx(1.0)  # prediction unchanged
        assert vector[2] == 0.0  # no perturbed pixel -> distance 0

    def test_raw_objectives_orientation(self, evaluator, rng):
        mask = rng.normal(0.0, 8.0, size=evaluator.image.shape)
        raw = evaluator.raw_objectives(mask)
        vector = evaluator(mask)
        assert raw["intensity"] == pytest.approx(vector[0])
        assert raw["degradation"] == pytest.approx(vector[1])
        assert raw["distance"] == pytest.approx(-vector[2])

    def test_intensity_normalised_to_unit_range(self, evaluator):
        worst = np.full(evaluator.image.shape, 255.0)
        assert evaluator.intensity(worst) == pytest.approx(1.0)

    def test_clean_prediction_cached(self, evaluator):
        assert evaluator.clean_prediction.num_valid >= 1
        assert evaluator.weight_matrix.shape == evaluator.image.shape[:2]

    def test_extra_objectives_appended(self, yolo_detector, small_dataset):
        extra = lambda image, mask, prediction: 42.0  # noqa: E731
        evaluator = ButterflyObjectives(
            detector=yolo_detector,
            image=small_dataset[0].image,
            extra_objectives=(extra,),
        )
        vector = evaluator(np.zeros(small_dataset[0].image.shape))
        assert vector.shape == (4,)
        assert vector[3] == 42.0
        assert evaluator.num_objectives == 4

    def test_invalid_image_rejected(self, yolo_detector):
        with pytest.raises(ValueError):
            ButterflyObjectives(detector=yolo_detector, image=np.zeros((10, 10)))
