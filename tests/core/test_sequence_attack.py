"""Tests for the streaming-sequence attack workload.

The central guarantee: the temporal evaluation route — frame bundles
derived frame-to-frame, population predictions through the incremental
path — is bit-identical to evaluating every frame densely from scratch.
The parity tests here enforce it per objective vector on both
architectures; everything else (track scoring, packaging, validation) is
semantics.
"""

import numpy as np
import pytest

from repro.core.config import AttackConfig
from repro.core.temporal import SequenceAttack, SequenceObjectives
from repro.data.sequences import generate_sequence
from repro.detection.boxes import BoundingBox
from repro.detection.prediction import Prediction
from repro.nsga.algorithm import NSGAConfig

from tests.conftest import SMALL_LENGTH, SMALL_WIDTH


@pytest.fixture(scope="module")
def sequence():
    return generate_sequence(
        num_frames=3,
        seed=9,
        image_length=SMALL_LENGTH,
        image_width=SMALL_WIDTH,
        half="left",
    )


def _small_config(iterations=2, population=8):
    return AttackConfig(
        nsga=NSGAConfig(
            num_iterations=iterations, population_size=population, seed=0
        )
    )


def _masks(shape, count, seed=0):
    rng = np.random.default_rng(seed)
    masks = np.round(rng.uniform(-6.0, 6.0, size=(count,) + shape))
    masks[0] = 0.0  # always include the zero mask
    return masks


class TestSequenceObjectivesParity:
    @pytest.mark.parametrize("detector_fixture", ["yolo_detector", "detr_detector"])
    def test_temporal_route_bit_identical_to_dense(
        self, detector_fixture, sequence, request
    ):
        detector = request.getfixturevalue(detector_fixture)
        cached = SequenceObjectives(detector=detector, sequence=sequence)
        dense = SequenceObjectives(
            detector=detector, sequence=sequence, use_activation_cache=False
        )
        masks = _masks(sequence.frame(0).shape, 4)
        assert np.array_equal(
            cached.evaluate_population(masks), dense.evaluate_population(masks)
        )
        stats = cached.frame_cache_snapshot()
        assert stats.frame_hits == len(sequence) - 1
        assert dense.frame_cache_snapshot().frame_requests == 0

    def test_call_matches_batched_path(self, yolo_detector, sequence):
        objectives = SequenceObjectives(detector=yolo_detector, sequence=sequence)
        masks = _masks(sequence.frame(0).shape, 3, seed=1)
        batched = objectives.evaluate_population(masks)
        for index in range(masks.shape[0]):
            assert np.array_equal(objectives(masks[index]), batched[index])

    def test_zero_mask_objectives(self, yolo_detector, sequence):
        objectives = SequenceObjectives(detector=yolo_detector, sequence=sequence)
        vector = objectives(np.zeros(sequence.frame(0).shape))
        assert vector[0] == 0.0
        assert vector[1] == pytest.approx(1.0)  # nothing degraded
        assert vector[3] == 1.0  # every track survives a no-op mask

    def test_raw_objectives_orientation(self, yolo_detector, sequence, rng):
        objectives = SequenceObjectives(detector=yolo_detector, sequence=sequence)
        mask = np.round(rng.uniform(-4, 4, size=sequence.frame(0).shape))
        raw = objectives.raw_objectives(mask)
        vector = objectives(mask)
        assert raw["intensity"] == vector[0]
        assert raw["degradation"] == vector[1]
        assert raw["distance"] == -vector[2]
        assert raw["track_survival"] == vector[3]

    def test_incremental_snapshot_sums_frames(self, yolo_detector, sequence):
        objectives = SequenceObjectives(detector=yolo_detector, sequence=sequence)
        masks = _masks(sequence.frame(0).shape, 2, seed=2)
        objectives.evaluate_population(masks)
        snapshot = objectives.incremental_snapshot()
        assert snapshot is not None
        assert snapshot["masks_evaluated"] == 2 * len(sequence)
        dense = SequenceObjectives(
            detector=yolo_detector, sequence=sequence, use_activation_cache=False
        )
        assert dense.incremental_snapshot() is None


class TestSequenceObjectivesValidation:
    def test_plain_frame_list_rejected(self, yolo_detector, sequence):
        with pytest.raises(TypeError):
            SequenceObjectives(detector=yolo_detector, sequence=list(sequence))

    def test_empty_sequence_rejected(self, yolo_detector):
        from repro.data.sequences import SceneSequence

        with pytest.raises(ValueError):
            SequenceObjectives(detector=yolo_detector, sequence=SceneSequence())

    def test_bad_track_k_rejected(self, yolo_detector, sequence):
        with pytest.raises(ValueError):
            SequenceObjectives(detector=yolo_detector, sequence=sequence, track_k=0)

    def test_bad_frame_cache_size_rejected(self, yolo_detector, sequence):
        with pytest.raises(ValueError):
            SequenceObjectives(
                detector=yolo_detector, sequence=sequence, frame_cache_size=0
            )


class TestTrackSurvival:
    def _objectives(self, yolo_detector, sequence, track_k=2):
        return SequenceObjectives(
            detector=yolo_detector, sequence=sequence, track_k=track_k
        )

    def _detect_all(self, objectives, frame_index):
        """A prediction that redetects every ground-truth box of a frame."""
        return Prediction(
            [
                BoundingBox(cl=box.cl, x=box.x, y=box.y, l=box.l, w=box.w, score=1.0)
                for box in objectives._track_boxes[frame_index]
            ]
        )

    def test_all_frames_detected_means_full_survival(self, yolo_detector, sequence):
        objectives = self._objectives(yolo_detector, sequence)
        predictions = [
            self._detect_all(objectives, index) for index in range(len(sequence))
        ]
        assert objectives.track_survival(predictions) == 1.0

    def test_all_frames_missed_means_zero_survival(self, yolo_detector, sequence):
        objectives = self._objectives(yolo_detector, sequence)
        predictions = [Prediction([]) for _ in range(len(sequence))]
        assert objectives.track_survival(predictions) == 0.0

    def test_run_shorter_than_k_does_not_count(self, yolo_detector, sequence):
        # Miss only the middle frame: longest undetected run is 1 < k=2.
        objectives = self._objectives(yolo_detector, sequence, track_k=2)
        predictions = [
            self._detect_all(objectives, 0),
            Prediction([]),
            self._detect_all(objectives, 2),
        ]
        assert objectives.track_survival(predictions) == 1.0
        # With k=1 the same pattern suppresses every track.
        relaxed = self._objectives(yolo_detector, sequence, track_k=1)
        assert relaxed.track_survival(predictions) == 0.0

    def test_consecutive_misses_suppress(self, yolo_detector, sequence):
        objectives = self._objectives(yolo_detector, sequence, track_k=2)
        predictions = [
            self._detect_all(objectives, 0),
            Prediction([]),
            Prediction([]),
        ]
        assert objectives.track_survival(predictions) == 0.0

    def test_wrong_class_is_a_miss(self, yolo_detector, sequence):
        objectives = self._objectives(yolo_detector, sequence, track_k=1)
        mislabeled = [
            Prediction(
                [
                    BoundingBox(
                        cl=box.cl + 1, x=box.x, y=box.y, l=box.l, w=box.w, score=1.0
                    )
                    for box in objectives._track_boxes[index]
                ]
            )
            for index in range(len(sequence))
        ]
        assert objectives.track_survival(mislabeled) == 0.0

    def test_prediction_count_mismatch_rejected(self, yolo_detector, sequence):
        objectives = self._objectives(yolo_detector, sequence)
        with pytest.raises(ValueError):
            objectives.track_survival([Prediction([])])


class TestSequenceAttack:
    def test_attack_packaging(self, yolo_detector, sequence):
        attack = SequenceAttack(yolo_detector, _small_config(), track_k=2)
        result = attack.attack(sequence)
        assert result.detector_name == f"{yolo_detector.name}@{len(sequence)}frames"
        assert result.num_evaluations > 0
        front = result.pareto_front
        assert front
        for solution in front:
            assert "track_survival" in solution.extras
            assert 0.0 <= solution.extras["track_survival"] <= 1.0
            assert solution.perturbed_prediction is not None
        frame_stats = result.incremental["frame_cache"]
        assert frame_stats["frame_hits"] == len(sequence) - 1
        assert frame_stats["frame_hit_rate"] > 0.0

    def test_attack_deterministic_and_cache_invariant(self, detr_detector, sequence):
        config = _small_config()
        cached = SequenceAttack(detr_detector, config).attack(sequence)
        dense_config = AttackConfig(
            nsga=config.nsga, use_activation_cache=False, use_delta_reuse=False
        )
        dense = SequenceAttack(detr_detector, dense_config).attack(sequence)
        assert cached.fingerprint() == dense.fingerprint()

    def test_fast_search_rejected(self, yolo_detector, sequence):
        config = AttackConfig(
            nsga=NSGAConfig(num_iterations=2, population_size=8, seed=0),
            fast_search=True,
        )
        with pytest.raises(ValueError, match="fast_search"):
            SequenceAttack(yolo_detector, config).attack(sequence)
