"""Tests for attack configuration."""

from repro.core.config import AttackConfig
from repro.core.regions import FullImageRegion, HalfImageRegion


class TestAttackConfig:
    def test_defaults(self):
        config = AttackConfig()
        assert isinstance(config.region, FullImageRegion)
        assert config.epsilon == 2.0
        assert config.round_masks is True

    def test_paper_defaults_match_table_ii(self):
        config = AttackConfig.paper_defaults(region=HalfImageRegion("right"), seed=5)
        assert config.nsga.num_iterations == 100
        assert config.nsga.population_size == 101
        assert config.nsga.crossover_probability == 0.5
        assert config.nsga.mutation.probability == 0.45
        assert config.nsga.mutation.window_fraction == 0.01
        assert config.nsga.seed == 5
        assert isinstance(config.region, HalfImageRegion)

    def test_fast_config_reduces_budget_only(self):
        fast = AttackConfig.fast(num_iterations=5, population_size=10)
        paper = AttackConfig.paper_defaults()
        assert fast.nsga.num_iterations == 5
        assert fast.nsga.population_size == 10
        # The evolutionary operators stay at the paper's values.
        assert fast.nsga.crossover_probability == paper.nsga.crossover_probability
        assert fast.nsga.mutation.probability == paper.nsga.mutation.probability
        assert fast.nsga.mutation.window_fraction == paper.nsga.mutation.window_fraction

    def test_fast_config_accepts_region(self):
        config = AttackConfig.fast(region=HalfImageRegion("left"))
        assert config.region.half == "left"
