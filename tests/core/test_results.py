"""Tests for attack results and Pareto solutions."""

import numpy as np
import pytest

from repro.core.masks import FilterMask
from repro.core.results import AttackResult, ParetoSolution
from repro.detection.boxes import BoundingBox
from repro.detection.prediction import Prediction


def _solution(intensity, degradation, distance, rank=1):
    return ParetoSolution(
        mask=FilterMask.zeros((4, 4, 3)),
        intensity=intensity,
        degradation=degradation,
        distance=distance,
        rank=rank,
    )


def _result(solutions):
    return AttackResult(
        image=np.zeros((4, 4, 3)),
        clean_prediction=Prediction([BoundingBox(cl=0, x=2, y=2, l=2, w=2)]),
        solutions=solutions,
        detector_name="test-detector",
        num_evaluations=10,
    )


class TestParetoSolution:
    def test_objectives_tuple(self):
        solution = _solution(0.1, 0.5, 0.3)
        assert solution.objectives == (0.1, 0.5, 0.3)

    def test_is_successful(self):
        assert _solution(0.1, 0.5, 0.3).is_successful
        assert not _solution(0.0, 1.0, 0.0).is_successful


class TestAttackResult:
    def test_pareto_front_filters_rank(self):
        result = _result([_solution(0.1, 0.5, 0.3, rank=1), _solution(0.2, 0.6, 0.1, rank=2)])
        assert len(result.pareto_front) == 1

    def test_successful_solutions(self):
        result = _result([_solution(0.0, 1.0, 0.0), _solution(0.1, 0.4, 0.2)])
        assert len(result.successful_solutions) == 1

    def test_best_by_each_objective(self):
        solutions = [
            _solution(0.05, 0.9, 0.1),
            _solution(0.5, 0.2, 0.2),
            _solution(0.3, 0.7, 0.9),
        ]
        result = _result(solutions)
        assert result.best_by("intensity") is solutions[0]
        assert result.best_by("degradation") is solutions[1]
        assert result.best_by("distance") is solutions[2]

    def test_best_by_unknown_objective_rejected(self):
        result = _result([_solution(0.1, 0.5, 0.3)])
        with pytest.raises(ValueError):
            result.best_by("speed")

    def test_best_by_on_empty_result_rejected(self):
        with pytest.raises(ValueError):
            _result([]).best_by("intensity")

    def test_objectives_array(self):
        result = _result([_solution(0.1, 0.5, 0.3, rank=1), _solution(0.2, 0.6, 0.1, rank=2)])
        front_only = result.objectives_array(front_only=True)
        everything = result.objectives_array(front_only=False)
        assert front_only.shape == (1, 3)
        assert everything.shape == (2, 3)

    def test_objectives_array_empty(self):
        assert _result([]).objectives_array().shape == (0, 3)

    def test_summary_mentions_detector_and_front(self):
        result = _result([_solution(0.1, 0.5, 0.3)])
        text = result.summary()
        assert "test-detector" in text
        assert "front=1" in text

    def test_summary_empty_front(self):
        assert "empty front" in _result([]).summary()
