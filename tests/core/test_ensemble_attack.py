"""Tests for ensemble objectives (Equations 1-3) and the ensemble attack."""

import numpy as np
import pytest

from repro.core.config import AttackConfig
from repro.core.ensemble import EnsembleAttack, EnsembleObjectives
from repro.core.objectives import ButterflyObjectives
from repro.core.regions import HalfImageRegion
from repro.detectors.ensemble import DetectorEnsemble
from repro.nsga.algorithm import NSGAConfig


@pytest.fixture(scope="module")
def ensemble_objectives(request):
    yolo = request.getfixturevalue("yolo_detector")
    detr = request.getfixturevalue("detr_detector")
    dataset = request.getfixturevalue("small_dataset")
    return (
        EnsembleObjectives(
            ensemble=DetectorEnsemble([yolo, detr]), image=dataset[0].image
        ),
        dataset[0].image,
        (yolo, detr),
    )


class TestEnsembleObjectives:
    def test_one_member_evaluator_per_detector(self, ensemble_objectives):
        objectives, _, _ = ensemble_objectives
        assert objectives.num_members == 2
        assert len(objectives.clean_predictions) == 2

    def test_empty_ensemble_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            EnsembleObjectives(ensemble=[], image=small_dataset[0].image)

    def test_intensity_equals_member_intensity(self, ensemble_objectives, rng):
        objectives, image, _ = ensemble_objectives
        mask = rng.normal(0, 5, size=image.shape)
        assert objectives.intensity(mask) == pytest.approx(
            objectives.members[0].intensity(mask)
        )

    def test_degradation_is_member_average(self, ensemble_objectives, rng, yolo_detector, detr_detector):
        objectives, image, _ = ensemble_objectives
        mask = rng.normal(0, 30, size=image.shape)
        member_values = [
            ButterflyObjectives(detector=d, image=image).degradation(mask)
            for d in (yolo_detector, detr_detector)
        ]
        assert objectives.degradation(mask) == pytest.approx(
            float(np.mean(member_values)), abs=1e-9
        )

    def test_distance_is_member_average(self, ensemble_objectives, rng):
        objectives, image, _ = ensemble_objectives
        mask = rng.normal(0, 5, size=image.shape)
        member_values = [member.distance(mask) for member in objectives.members]
        assert objectives.distance(mask) == pytest.approx(float(np.mean(member_values)))

    def test_zero_mask_vector(self, ensemble_objectives):
        objectives, image, _ = ensemble_objectives
        vector = objectives(np.zeros(image.shape))
        assert vector.shape == (3,)
        assert vector[0] == 0.0
        assert vector[1] == pytest.approx(1.0)

    def test_raw_objectives_keys(self, ensemble_objectives):
        objectives, image, _ = ensemble_objectives
        raw = objectives.raw_objectives(np.zeros(image.shape))
        assert set(raw) == {"intensity", "degradation", "distance"}


class TestEnsembleAttack:
    def test_attack_runs_and_respects_region(self, yolo_detector, detr_detector, small_dataset):
        config = AttackConfig(
            nsga=NSGAConfig(num_iterations=2, population_size=6, seed=0),
            region=HalfImageRegion("right"),
        )
        attack = EnsembleAttack([yolo_detector, detr_detector], config)
        result = attack.attack(small_dataset[0].image)
        assert len(result.solutions) == 6
        assert result.pareto_front
        middle = small_dataset[0].image.shape[1] // 2
        for solution in result.solutions:
            assert np.allclose(solution.mask.values[:, :middle, :], 0.0)
        assert "ensemble" in result.detector_name
