"""Parity suite for the incremental (activation-cached) evaluation path.

``ButterflyObjectives``/``EnsembleObjectives`` with ``use_activation_cache``
route masks through the detectors' dirty-region delta path.  Objective
vectors must equal the dense batched path (PR 1) **bit for bit**, and a
whole seeded attack must produce the identical final population either
way — the incremental path may only change speed.
"""

import numpy as np
import pytest

from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.ensemble import EnsembleObjectives
from repro.core.masks import FilterMask
from repro.core.objectives import ButterflyObjectives
from repro.core.regions import HalfImageRegion
from repro.detectors.activation_cache import ActivationCacheStore
from repro.nsga.algorithm import NSGAConfig
from repro.nsga.mutation import MutationConfig


def _sparse_population(image_shape, batch_size, seed=0):
    """Sparse masks shaped like NSGA-II offspring (patches + pixels)."""
    rng = np.random.default_rng(seed)
    masks = np.zeros((batch_size,) + image_shape)
    for index in range(1, batch_size):
        r = int(rng.integers(0, image_shape[0] - 4))
        c = int(rng.integers(0, image_shape[1] - 6))
        masks[index, r : r + 4, c : c + 6] = rng.integers(-255, 256, size=(4, 6, 3))
    return masks


@pytest.fixture(params=["yolo", "detr"])
def detector(request, yolo_detector, detr_detector):
    return yolo_detector if request.param == "yolo" else detr_detector


class TestIncrementalEvaluationParity:
    def test_population_matches_dense_path_exactly(self, detector, small_dataset):
        image = small_dataset[0].image
        dense = ButterflyObjectives(
            detector=detector, image=image, use_activation_cache=False
        )
        incremental = ButterflyObjectives(
            detector=detector, image=image, use_activation_cache=True
        )
        assert incremental.clean_activations is not None
        masks = _sparse_population(image.shape, batch_size=6, seed=1)
        assert np.array_equal(
            incremental.evaluate_population(masks), dense.evaluate_population(masks)
        )

    def test_sequential_call_matches_dense_path(self, detector, small_dataset):
        image = small_dataset[0].image
        dense = ButterflyObjectives(
            detector=detector, image=image, use_activation_cache=False
        )
        incremental = ButterflyObjectives(
            detector=detector, image=image, use_activation_cache=True
        )
        for mask in _sparse_population(image.shape, batch_size=4, seed=2):
            assert np.array_equal(incremental(mask), dense(mask))

    def test_dirty_bounds_never_change_vectors(self, detector, small_dataset):
        image = small_dataset[0].image
        evaluator = ButterflyObjectives(detector=detector, image=image)
        masks = _sparse_population(image.shape, batch_size=4, seed=3)
        reference = evaluator.evaluate_population(masks)
        loose_bounds = [(0, image.shape[0], 0, image.shape[1])] * masks.shape[0]
        assert np.array_equal(
            evaluator.evaluate_population(masks, dirty_bounds=loose_bounds), reference
        )

    def test_filter_mask_distance_uses_cached_bbox(self, detector, small_dataset):
        image = small_dataset[0].image
        evaluator = ButterflyObjectives(detector=detector, image=image)
        masks = _sparse_population(image.shape, batch_size=3, seed=4)
        for values in masks:
            mask = FilterMask(values)
            assert evaluator.distance(mask) == evaluator.distance(values)

    def test_shared_store_reuses_one_bundle(self, yolo_detector, small_dataset):
        store = ActivationCacheStore(max_entries=2)
        image = small_dataset[0].image
        first = ButterflyObjectives(
            detector=yolo_detector, image=image, activation_store=store
        )
        second = ButterflyObjectives(
            detector=yolo_detector, image=image, activation_store=store
        )
        assert second.clean_activations is first.clean_activations
        assert store.stats["misses"] == 1 and store.stats["hits"] == 1

    def test_scratch_buffer_reuse_keeps_results_identical(
        self, yolo_detector, small_dataset
    ):
        image = small_dataset[0].image
        evaluator = ButterflyObjectives(
            detector=yolo_detector, image=image, use_activation_cache=False
        )
        masks = _sparse_population(image.shape, batch_size=5, seed=5)
        first = evaluator.evaluate_population(masks)
        scratch = evaluator._scratch
        assert scratch is not None and scratch.shape == masks.shape
        second = evaluator.evaluate_population(masks)
        assert evaluator._scratch is scratch  # same buffer, no reallocation
        assert np.array_equal(first, second)


class TestEnsembleIncrementalParity:
    def test_population_matches_dense_path(
        self, yolo_detector, detr_detector, small_dataset
    ):
        image = small_dataset[0].image
        members = [yolo_detector, detr_detector]
        dense = EnsembleObjectives(
            ensemble=members, image=image, use_activation_cache=False
        )
        incremental = EnsembleObjectives(
            ensemble=members, image=image, use_activation_cache=True
        )
        masks = _sparse_population(image.shape, batch_size=4, seed=6)
        assert np.array_equal(
            incremental.evaluate_population(masks), dense.evaluate_population(masks)
        )
        for mask in masks:
            assert np.array_equal(incremental(mask), dense(mask))


class TestAttackLevelParity:
    @pytest.mark.parametrize("architecture", ["yolo", "detr"])
    def test_seeded_attack_identical_with_and_without_cache(
        self, architecture, yolo_detector, detr_detector, small_dataset
    ):
        detector = yolo_detector if architecture == "yolo" else detr_detector
        nsga = NSGAConfig(
            num_iterations=3,
            population_size=8,
            crossover_probability=0.5,
            mutation=MutationConfig(probability=0.45, window_fraction=0.01),
            seed=7,
        )
        results = []
        for use_cache in (False, True):
            config = AttackConfig(
                nsga=nsga,
                region=HalfImageRegion("right"),
                use_activation_cache=use_cache,
            )
            results.append(
                ButterflyAttack(detector, config).attack(small_dataset[0].image)
            )
        dense_result, incremental_result = results
        assert dense_result.num_evaluations == incremental_result.num_evaluations
        assert dense_result.cache_hits == incremental_result.cache_hits
        assert len(dense_result.solutions) == len(incremental_result.solutions)
        for left, right in zip(dense_result.solutions, incremental_result.solutions):
            assert np.array_equal(left.mask.values, right.mask.values)
            assert (left.intensity, left.degradation, left.distance, left.rank) == (
                right.intensity,
                right.degradation,
                right.distance,
                right.rank,
            )
