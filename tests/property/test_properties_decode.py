"""Property-based decode/NMS parity: loop vs vectorised vs batched.

The attack's objective functions consume decoded boxes, so the vectorised
decoder (``decode_cell_probabilities``) and its population form
(``decode_cell_probabilities_batch``) must be **bit-identical** — not just
close — to the per-seed reference loop for the batched fast paths to be
pure speedups.  These suites pin that down on hypothesis-generated
probability grids covering the decoder's edge cases:

* grid shapes down to a single cell, 1-4 foreground classes,
* decode windows 0-3 (window 0 reduces the moments to one cell),
* seeds on grid borders (clipped, non-square moment windows),
* all-background grids (no seeds at all),
* exactly tied objectness values (the stable-sort guarantee),
* weak seeds whose support weights straddle the 0.4-max cutoff.

The NMS stage gets the same treatment on random box sets: the IoU-matrix
implementation must reproduce the greedy per-pair reference exactly,
including tie-broken equal-score boxes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.detection.boxes import BoundingBox
from repro.detection.nms import non_max_suppression, non_max_suppression_reference
from repro.detectors.base import DetectorConfig
from repro.detectors.decode import (
    decode_cell_probabilities,
    decode_cell_probabilities_batch,
    decode_cell_probabilities_loop,
    decode_cell_probabilities_vectorised,
)

IMAGE_SHAPE = (96, 320)


def assert_predictions_identical(actual, expected):
    assert actual.boxes == expected.boxes


# ---------------------------------------------------------------------------
# Grid strategies
# ---------------------------------------------------------------------------


def _normalise(grid):
    """Turn non-negative cell values into per-cell probability simplexes."""
    grid = grid + 1e-6  # keep every cell normalisable
    return grid / grid.sum(axis=-1, keepdims=True)


@st.composite
def probability_grids(draw, rows=None, cols=None, num_classes=None):
    """One (rows, cols, classes + 1) probability grid with seeded edge cases."""
    rows = draw(st.integers(1, 7)) if rows is None else rows
    cols = draw(st.integers(1, 7)) if cols is None else cols
    num_classes = draw(st.integers(1, 4)) if num_classes is None else num_classes
    grid = _normalise(
        draw(
            npst.arrays(
                dtype=np.float64,
                shape=(rows, cols, num_classes + 1),
                elements=st.floats(0.0, 1.0, allow_nan=False),
            )
        )
    )

    flavour = draw(
        st.sampled_from(["random", "background", "border_seed", "tied_seeds"])
    )
    if flavour == "background":
        grid[...] = 0.0
        grid[..., -1] = 1.0
    elif flavour == "border_seed":
        # A strong seed on a drawn border cell: its moment window is
        # clipped, exercising the non-square gather shapes.
        row = draw(st.sampled_from([0, rows - 1]))
        col = draw(st.integers(0, cols - 1))
        class_id = draw(st.integers(0, num_classes - 1))
        grid[row, col, :] = 0.0
        grid[row, col, class_id] = 0.9
        grid[row, col, -1] = 0.1
    elif flavour == "tied_seeds" and rows * cols >= 2:
        # Duplicate one cell's probabilities elsewhere: exactly equal
        # objectness, scores and moments — the stable-sort edge case.
        cells = rows * cols
        source = draw(st.integers(0, cells - 1))
        target = draw(st.integers(0, cells - 1).filter(lambda c: c != source))
        grid[np.unravel_index(target, (rows, cols))] = grid[
            np.unravel_index(source, (rows, cols))
        ]
    return grid


@st.composite
def decode_configs(draw, num_classes=5):
    return DetectorConfig(
        cell=draw(st.sampled_from([4, 8])),
        num_classes=num_classes,
        # Thresholds down to 0.05 let near-background seeds through, whose
        # support weights sit right at the cutoff / total-weight floors.
        objectness_threshold=draw(st.floats(0.05, 0.95, allow_nan=False)),
        nms_iou_threshold=draw(st.sampled_from([0.1, 0.3, 0.5])),
        class_agnostic_nms=draw(st.booleans()),
        decode_window=draw(st.integers(0, 3)),
    )


# ---------------------------------------------------------------------------
# Scalar parity: reference loop vs vectorised single-grid decode
# ---------------------------------------------------------------------------


class TestScalarDecodeParity:
    @given(data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_vectorised_matches_loop(self, data):
        grid = data.draw(probability_grids())
        config = data.draw(decode_configs(num_classes=grid.shape[-1] - 1))
        reference = decode_cell_probabilities_loop(grid, config, IMAGE_SHAPE)
        # The forced-vectorised path (the production entry point would
        # dispatch small grids to the loop) and the dispatcher itself.
        assert_predictions_identical(
            decode_cell_probabilities_vectorised(grid, config, IMAGE_SHAPE),
            reference,
        )
        assert_predictions_identical(
            decode_cell_probabilities(grid, config, IMAGE_SHAPE), reference
        )

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_decode_is_deterministic(self, data):
        grid = data.draw(probability_grids())
        config = data.draw(decode_configs(num_classes=grid.shape[-1] - 1))
        first = decode_cell_probabilities(grid, config, IMAGE_SHAPE)
        assert_predictions_identical(
            decode_cell_probabilities(grid.copy(), config, IMAGE_SHAPE), first
        )

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_single_cell_grids(self, data):
        # Degenerate 1x1 grids: every window is fully clipped.
        grid = data.draw(probability_grids(rows=1, cols=1))
        config = data.draw(decode_configs(num_classes=grid.shape[-1] - 1))
        assert_predictions_identical(
            decode_cell_probabilities_vectorised(grid, config, IMAGE_SHAPE),
            decode_cell_probabilities_loop(grid, config, IMAGE_SHAPE),
        )


# ---------------------------------------------------------------------------
# Batched parity: population decode vs per-grid decode
# ---------------------------------------------------------------------------


class TestBatchedDecodeParity:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_batched_matches_per_grid(self, data):
        rows = data.draw(st.integers(1, 6))
        cols = data.draw(st.integers(1, 6))
        num_classes = data.draw(st.integers(1, 3))
        count = data.draw(st.integers(1, 4))
        stack = np.stack(
            [
                data.draw(
                    probability_grids(rows=rows, cols=cols, num_classes=num_classes)
                )
                for _ in range(count)
            ],
            axis=0,
        )
        config = data.draw(decode_configs(num_classes=num_classes))
        batched = decode_cell_probabilities_batch(stack, config, IMAGE_SHAPE)
        assert len(batched) == count
        for grid, prediction in zip(stack, batched):
            assert_predictions_identical(
                prediction,
                decode_cell_probabilities_vectorised(grid, config, IMAGE_SHAPE),
            )
            assert_predictions_identical(
                prediction, decode_cell_probabilities_loop(grid, config, IMAGE_SHAPE)
            )

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_stacking_order_is_irrelevant(self, data):
        # Decoding a grid alone and in the middle of a population must give
        # the same boxes: no cross-grid leakage through the stacked
        # reductions.
        grid = data.draw(probability_grids())
        config = data.draw(decode_configs(num_classes=grid.shape[-1] - 1))
        alone = decode_cell_probabilities(grid, config, IMAGE_SHAPE)
        background = np.zeros_like(grid)
        background[..., -1] = 1.0
        stack = np.stack([background, grid, grid[::-1, ::-1].copy()], axis=0)
        assert_predictions_identical(
            decode_cell_probabilities_batch(stack, config, IMAGE_SHAPE)[1], alone
        )


# ---------------------------------------------------------------------------
# NMS parity: IoU-matrix implementation vs greedy per-pair reference
# ---------------------------------------------------------------------------

nms_scores = st.sampled_from([0.2, 0.4, 0.4, 0.6, 0.8])  # duplicates force ties


@st.composite
def nms_boxes(draw):
    return BoundingBox(
        cl=draw(st.integers(0, 2)),
        x=draw(st.floats(0.0, 50.0, allow_nan=False)),
        y=draw(st.floats(0.0, 50.0, allow_nan=False)),
        l=draw(st.floats(1.0, 40.0, allow_nan=False)),
        w=draw(st.floats(1.0, 40.0, allow_nan=False)),
        score=draw(st.one_of(nms_scores, st.floats(0.0, 1.0, allow_nan=False))),
    )


class TestNMSParity:
    @given(
        boxes=st.lists(nms_boxes(), min_size=0, max_size=25),
        iou_threshold=st.sampled_from([0.0, 0.2, 0.5, 0.8, 1.0]),
        score_threshold=st.sampled_from([0.0, 0.3]),
        class_agnostic=st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_vectorised_matches_reference(
        self, boxes, iou_threshold, score_threshold, class_agnostic
    ):
        assert non_max_suppression(
            boxes,
            iou_threshold=iou_threshold,
            score_threshold=score_threshold,
            class_agnostic=class_agnostic,
        ).boxes == non_max_suppression_reference(
            boxes,
            iou_threshold=iou_threshold,
            score_threshold=score_threshold,
            class_agnostic=class_agnostic,
        ).boxes
