"""Property-based tests (hypothesis) for the general hypervolume indicator.

The two-phase search benchmark gates on hypervolume ratios, so the
indicator itself must be trustworthy on arbitrary (including degenerate)
fronts.  The properties pinned here are the standard ones: invariance
under point order and under adding dominated points, monotonicity under
adding points, the scaling/translation laws of a Lebesgue measure, and
agreement with an independent Monte-Carlo estimate.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nsga.front import hypervolume


def _points(draw, count, dims):
    values = draw(
        st.lists(
            st.lists(
                st.floats(0.0, 1.0, allow_nan=False, width=32),
                min_size=dims,
                max_size=dims,
            ),
            min_size=count,
            max_size=count,
        )
    )
    return np.asarray(values, dtype=np.float64)


@st.composite
def fronts(draw, max_points=6, dims=3):
    count = draw(st.integers(1, max_points))
    return _points(draw, count, dims)


@given(front=fronts())
@settings(max_examples=60, deadline=None)
def test_permutation_invariance(front):
    reference = np.full(front.shape[1], 1.5)
    base = hypervolume(front, reference)
    shuffled = front[np.random.default_rng(0).permutation(front.shape[0])]
    assert hypervolume(shuffled, reference) == pytest.approx(base)


@given(front=fronts(), data=st.data())
@settings(max_examples=60, deadline=None)
def test_adding_points_is_monotone(front, data):
    reference = np.full(front.shape[1], 1.5)
    base = hypervolume(front, reference)
    extra = np.asarray(
        data.draw(
            st.lists(
                st.floats(0.0, 1.0, allow_nan=False, width=32),
                min_size=front.shape[1],
                max_size=front.shape[1],
            )
        )
    )
    grown = hypervolume(np.vstack([front, extra[None]]), reference)
    assert grown >= base - 1e-12


@given(front=fronts())
@settings(max_examples=60, deadline=None)
def test_dominated_points_add_nothing(front):
    reference = np.full(front.shape[1], 1.5)
    base = hypervolume(front, reference)
    # A point worse than an existing one in every coordinate is dominated.
    dominated = np.clip(front[0] + 0.25, None, 1.4)
    grown = hypervolume(np.vstack([front, dominated[None]]), reference)
    assert grown == pytest.approx(base)


@given(front=fronts(), scale=st.floats(0.1, 3.0, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_scaling_law(front, scale):
    reference = np.full(front.shape[1], 1.5)
    base = hypervolume(front, reference)
    scaled = hypervolume(front * scale, reference * scale)
    assert scaled == pytest.approx(base * scale ** front.shape[1], rel=1e-9)


@given(front=fronts(), shift=st.floats(-2.0, 2.0, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_translation_invariance(front, shift):
    reference = np.full(front.shape[1], 1.5)
    base = hypervolume(front, reference)
    translated = hypervolume(front + shift, reference + shift)
    assert translated == pytest.approx(base, abs=1e-9)


@given(front=fronts(max_points=5, dims=3), seed=st.integers(0, 2**16))
@settings(max_examples=15, deadline=None)
def test_matches_monte_carlo(front, seed):
    reference = np.full(3, 1.5)
    exact = hypervolume(front, reference)
    samples = np.random.default_rng(seed).random((120_000, 3)) * 1.5
    dominated = np.zeros(samples.shape[0], dtype=bool)
    for point in front:
        dominated |= np.all(samples >= point, axis=1)
    estimate = float(dominated.mean()) * 1.5**3
    assert exact == pytest.approx(estimate, abs=0.05)


@given(front=fronts(dims=2))
@settings(max_examples=60, deadline=None)
def test_reference_clipping_never_negative(front):
    # A reference the whole front fails to dominate yields zero, never a
    # negative or NaN volume.
    volume = hypervolume(front, np.full(2, -1.0))
    assert volume == 0.0
