"""Reference parity tests for the vectorised NSGA-II / IoU kernels.

The production implementations of ``fast_non_dominated_sort``,
``crowding_distance``, ``iou_matrix`` and ``objective_degradation`` are
NumPy-vectorised; the original nested-loop versions are preserved here as
``_reference_*`` helpers and the vectorised results are required to match
them **exactly** (not approximately) on randomly generated populations —
the batched evaluation pipeline's bit-for-bit parity guarantee starts at
these kernels.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.core.objectives import objective_degradation
from repro.detection.boxes import BACKGROUND_CLASS, BoundingBox, iou, iou_matrix
from repro.detection.prediction import Prediction
from repro.nsga.crowding import crowding_distance
from repro.nsga.individual import Individual
from repro.nsga.sorting import dominates, domination_matrix, fast_non_dominated_sort


# ---------------------------------------------------------------------------
# Reference implementations (the seed's original nested-loop versions).
# ---------------------------------------------------------------------------


def _reference_fast_non_dominated_sort(population):
    """Deb (2002) non-dominated sorting with explicit pairwise loops."""
    size = len(population)
    objectives = np.stack([ind.objectives for ind in population], axis=0)
    dominated_by = [[] for _ in range(size)]
    domination_count = np.zeros(size, dtype=np.int64)
    for p in range(size):
        for q in range(p + 1, size):
            if dominates(objectives[p], objectives[q]):
                dominated_by[p].append(q)
                domination_count[q] += 1
            elif dominates(objectives[q], objectives[p]):
                dominated_by[q].append(p)
                domination_count[p] += 1
    fronts = []
    current = [p for p in range(size) if domination_count[p] == 0]
    while current:
        fronts.append(current)
        next_front = []
        for p in current:
            for q in dominated_by[p]:
                domination_count[q] -= 1
                if domination_count[q] == 0:
                    next_front.append(q)
        current = next_front
    return fronts


def _reference_crowding_distance(population, front):
    """Crowding distance with the original per-position Python loop."""
    front = list(front)
    size = len(front)
    if size == 0:
        return np.array([])
    distances = np.zeros(size, dtype=np.float64)
    if size <= 2:
        distances[:] = np.inf
        return distances
    objectives = np.stack([population[i].objectives for i in front], axis=0)
    for objective in range(objectives.shape[1]):
        order = np.argsort(objectives[:, objective], kind="stable")
        sorted_values = objectives[order, objective]
        span = sorted_values[-1] - sorted_values[0]
        distances[order[0]] = np.inf
        distances[order[-1]] = np.inf
        if span <= 0:
            continue
        for position in range(1, size - 1):
            gap = sorted_values[position + 1] - sorted_values[position - 1]
            distances[order[position]] += gap / span
    return distances


def _reference_iou_matrix(first, second):
    """Pairwise IoU via the scalar :func:`iou` on every pair."""
    matrix = np.zeros((len(first), len(second)), dtype=np.float64)
    for i, a in enumerate(first):
        for j, b in enumerate(second):
            matrix[i, j] = iou(a, b)
    return matrix


def _reference_objective_degradation(clean_prediction, perturbed_prediction):
    """Algorithm 1 with the original nested box loops."""
    clean_boxes = clean_prediction.valid_boxes
    if not clean_boxes:
        return 1.0
    perturbed_boxes = perturbed_prediction.valid_boxes
    accumulated = 0.0
    for clean_box in clean_boxes:
        best_overlap = 0.0
        for perturbed_box in perturbed_boxes:
            if perturbed_box.cl == clean_box.cl:
                best_overlap = max(best_overlap, iou(clean_box, perturbed_box))
        accumulated += best_overlap
    return accumulated / len(clean_boxes)


# ---------------------------------------------------------------------------
# Generators.
# ---------------------------------------------------------------------------

objective_matrices = npst.arrays(
    dtype=np.float64,
    shape=st.tuples(
        st.integers(min_value=1, max_value=24), st.integers(min_value=2, max_value=4)
    ),
    elements=st.floats(min_value=0.0, max_value=10.0, allow_nan=False, width=16),
)


def _population(matrix):
    return [
        Individual(genome=np.zeros(1), objectives=np.asarray(row, dtype=np.float64))
        for row in matrix
    ]


def _random_boxes(rng, count, num_classes=4, background_fraction=0.2, degenerate=False):
    boxes = []
    for _ in range(count):
        cl = (
            BACKGROUND_CLASS
            if rng.random() < background_fraction
            else int(rng.integers(0, num_classes))
        )
        extent_l = 0.0 if degenerate and rng.random() < 0.3 else float(rng.uniform(1, 30))
        extent_w = 0.0 if degenerate and rng.random() < 0.3 else float(rng.uniform(1, 30))
        boxes.append(
            BoundingBox(
                cl=cl,
                x=float(rng.uniform(0, 64)),
                y=float(rng.uniform(0, 200)),
                l=extent_l,
                w=extent_w,
                score=float(rng.uniform(0, 1)),
            )
        )
    return boxes


class TestSortingParity:
    @given(objective_matrices)
    @settings(max_examples=150, deadline=None)
    def test_fronts_match_reference_exactly(self, matrix):
        population = _population(matrix)
        reference = _reference_fast_non_dominated_sort(_population(matrix))
        fronts = fast_non_dominated_sort(population)
        assert fronts == reference  # same fronts in the same order

    @given(objective_matrices)
    @settings(max_examples=100, deadline=None)
    def test_domination_matrix_matches_pairwise_dominates(self, matrix):
        dominance = domination_matrix(matrix)
        for p in range(matrix.shape[0]):
            for q in range(matrix.shape[0]):
                assert dominance[p, q] == dominates(matrix[p], matrix[q])

    def test_duplicate_heavy_population(self):
        rng = np.random.default_rng(7)
        matrix = rng.integers(0, 3, size=(30, 3)).astype(np.float64)
        population = _population(matrix)
        assert fast_non_dominated_sort(population) == _reference_fast_non_dominated_sort(
            _population(matrix)
        )


class TestCrowdingParity:
    @given(objective_matrices)
    @settings(max_examples=150, deadline=None)
    def test_distances_match_reference_exactly(self, matrix):
        population = _population(matrix)
        front = list(range(len(population)))
        reference = _reference_crowding_distance(population, front)
        distances = crowding_distance(population, front)
        assert np.array_equal(distances, reference)

    def test_subset_front_matches_reference(self):
        rng = np.random.default_rng(3)
        matrix = rng.uniform(0, 5, size=(12, 3))
        population = _population(matrix)
        front = [0, 2, 5, 7, 11]
        reference = _reference_crowding_distance(population, front)
        assert np.array_equal(crowding_distance(population, front), reference)

    def test_constant_objective_matches_reference(self):
        matrix = np.array([[1.0, 0.0], [1.0, 1.0], [1.0, 2.0], [1.0, 3.0]])
        population = _population(matrix)
        front = [0, 1, 2, 3]
        reference = _reference_crowding_distance(population, front)
        assert np.array_equal(crowding_distance(population, front), reference)


class TestIoUParity:
    def test_matrix_matches_scalar_iou_exactly(self):
        rng = np.random.default_rng(11)
        for trial in range(25):
            first = _random_boxes(rng, int(rng.integers(0, 8)), degenerate=True)
            second = _random_boxes(rng, int(rng.integers(0, 8)), degenerate=True)
            assert np.array_equal(
                iou_matrix(first, second), _reference_iou_matrix(first, second)
            )

    def test_empty_inputs(self):
        boxes = _random_boxes(np.random.default_rng(0), 3)
        assert iou_matrix([], boxes).shape == (0, 3)
        assert iou_matrix(boxes, []).shape == (3, 0)
        assert iou_matrix([], []).shape == (0, 0)

    def test_values_stay_in_unit_interval(self):
        rng = np.random.default_rng(5)
        first = _random_boxes(rng, 10, degenerate=True)
        second = _random_boxes(rng, 10, degenerate=True)
        matrix = iou_matrix(first, second)
        assert np.all(matrix >= 0.0) and np.all(matrix <= 1.0)


class TestDegradationParity:
    def test_matches_reference_on_random_predictions(self):
        rng = np.random.default_rng(23)
        for trial in range(40):
            clean = Prediction.from_boxes(_random_boxes(rng, int(rng.integers(0, 6))))
            perturbed = Prediction.from_boxes(
                _random_boxes(rng, int(rng.integers(0, 6)))
            )
            assert objective_degradation(clean, perturbed) == (
                _reference_objective_degradation(clean, perturbed)
            )

    def test_empty_clean_prediction(self):
        perturbed = Prediction.from_boxes(_random_boxes(np.random.default_rng(1), 3))
        assert objective_degradation(Prediction.empty(), perturbed) == 1.0

    def test_empty_perturbed_prediction(self):
        clean = Prediction.from_boxes(
            [BoundingBox(cl=0, x=10, y=10, l=5, w=5, score=0.9)]
        )
        assert objective_degradation(clean, Prediction.empty()) == 0.0
