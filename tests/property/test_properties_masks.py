"""Property-based tests for filter masks and region constraints."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.core.masks import FilterMask, apply_mask
from repro.core.regions import FullImageRegion, HalfImageRegion, RectangleRegion

masks = npst.arrays(
    dtype=np.float64,
    shape=(10, 16, 3),
    elements=st.floats(min_value=-255, max_value=255, allow_nan=False, width=32),
)

images = npst.arrays(
    dtype=np.float64,
    shape=(10, 16, 3),
    elements=st.floats(min_value=0, max_value=255, allow_nan=False, width=32),
)


class TestApplyMaskProperties:
    @given(images, masks)
    @settings(max_examples=100)
    def test_output_stays_in_pixel_range(self, image, mask):
        perturbed = apply_mask(image, mask)
        assert perturbed.min() >= 0.0
        assert perturbed.max() <= 255.0

    @given(images)
    @settings(max_examples=50)
    def test_zero_mask_is_identity(self, image):
        assert np.allclose(apply_mask(image, np.zeros_like(image)), image)

    @given(images, masks)
    @settings(max_examples=100)
    def test_perturbation_bounded_by_mask_magnitude(self, image, mask):
        perturbed = apply_mask(image, mask)
        assert np.all(np.abs(perturbed - image) <= np.abs(mask) + 1e-9)


class TestFilterMaskProperties:
    @given(masks)
    @settings(max_examples=100)
    def test_norm_ordering(self, values):
        mask = FilterMask(values)
        assert mask.linf_norm <= mask.l2_norm + 1e-9
        assert mask.l2_norm <= mask.l1_norm + 1e-9

    @given(masks)
    @settings(max_examples=100)
    def test_perturbed_pixel_count_bounds(self, values):
        mask = FilterMask(values)
        assert 0 <= mask.perturbed_pixel_count <= values.shape[0] * values.shape[1]

    @given(masks)
    @settings(max_examples=50)
    def test_rounded_mask_is_integer_valued(self, values):
        rounded = FilterMask(values).rounded()
        assert np.allclose(rounded.values, np.round(rounded.values))


class TestRegionProperties:
    @given(masks)
    @settings(max_examples=50)
    def test_projection_is_idempotent(self, values):
        for region in (
            FullImageRegion(),
            HalfImageRegion("right"),
            HalfImageRegion("left"),
            RectangleRegion(2, 3, 8, 12),
        ):
            once = region.project(values)
            twice = region.project(once)
            assert np.allclose(once, twice)

    @given(masks)
    @settings(max_examples=50)
    def test_projection_never_increases_magnitude(self, values):
        for region in (HalfImageRegion("right"), RectangleRegion(0, 0, 5, 5)):
            projected = region.project(values)
            assert np.all(np.abs(projected) <= np.abs(values) + 1e-12)

    @given(masks)
    @settings(max_examples=50)
    def test_left_and_right_halves_partition_the_mask(self, values):
        left = HalfImageRegion("left").project(values)
        right = HalfImageRegion("right").project(values)
        assert np.allclose(left + right, values)
