"""Property-based tests for the inter-frame dirty-bound contract.

The streaming temporal path splices only the region ``moved_objects_bbox``
reports between consecutive frames, so the bound must contain every pixel
that actually changed — for any seed, motion speed, object count or frame
geometry.  A violated bound would splice stale activations into frame t's
"clean" bundle and silently corrupt every attack evaluation downstream,
so these are the load-bearing properties of the sequence workload.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.sequences import (
    _object_footprint,
    generate_sequence,
    moved_objects_bbox,
)
from repro.detectors.activation_cache import SequenceActivationCache
from repro.nn.incremental import (
    EMPTY_BBOX,
    bbox_is_empty,
    frames_differ_bbox,
)

LENGTH, WIDTH = 32, 64

sequence_params = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 10_000),
        "num_frames": st.integers(2, 4),
        "max_speed": st.floats(0.0, 8.0, allow_nan=False),
        "num_objects": st.sampled_from([(1, 2), (2, 3), (3, 4)]),
    }
)


def _generate(params):
    return generate_sequence(
        image_length=LENGTH, image_width=WIDTH, **params
    )


def _contains(outer, inner) -> bool:
    """True when half-open box ``outer`` covers ``inner`` (empty always)."""
    if bbox_is_empty(inner):
        return True
    if bbox_is_empty(outer):
        return False
    r0, r1, c0, c1 = inner
    b0, b1, b2, b3 = outer
    return b0 <= r0 and r1 <= b1 and b2 <= c0 and c1 <= b3


class TestMovedObjectsBound:
    @given(sequence_params)
    @settings(max_examples=150, deadline=None)
    def test_bound_contains_exact_pixel_diff(self, params):
        """The scene-derived bound covers every pixel that really changed."""
        sequence = _generate(params)
        bounds = sequence.dirty_bounds()
        assert bounds[0] is None
        for index in range(1, len(sequence)):
            bound = bounds[index]
            assert bound is not None  # consecutive frames are always related
            diff = frames_differ_bbox(
                np.asarray(sequence.frame(index - 1), dtype=np.float64),
                np.asarray(sequence.frame(index), dtype=np.float64),
            )
            assert _contains(bound, diff)

    @given(sequence_params)
    @settings(max_examples=100, deadline=None)
    def test_bound_contains_every_moved_footprint(self, params):
        """Each moved object's old AND new clipped rects sit inside the bound."""
        sequence = _generate(params)
        for index in range(1, len(sequence)):
            prev, curr = sequence.scenes[index - 1], sequence.scenes[index]
            bound = moved_objects_bbox(prev, curr)
            for old, new in zip(prev.objects, curr.objects):
                old_place, old_rect = _object_footprint(old, LENGTH, WIDTH)
                new_place, new_rect = _object_footprint(new, LENGTH, WIDTH)
                if old_place == new_place:
                    continue  # not a move: contributes no dirty pixels
                assert _contains(bound, old_rect)
                assert _contains(bound, new_rect)

    @given(st.integers(0, 10_000), st.integers(2, 4))
    @settings(max_examples=100, deadline=None)
    def test_static_sequence_has_empty_bound_and_empty_diff(self, seed, frames):
        sequence = generate_sequence(
            num_frames=frames,
            seed=seed,
            image_length=LENGTH,
            image_width=WIDTH,
            max_speed=0.0,
        )
        for index in range(1, len(sequence)):
            bound = moved_objects_bbox(
                sequence.scenes[index - 1], sequence.scenes[index]
            )
            assert bound == EMPTY_BBOX
            assert bbox_is_empty(
                frames_differ_bbox(
                    np.asarray(sequence.frame(index - 1), dtype=np.float64),
                    np.asarray(sequence.frame(index), dtype=np.float64),
                )
            )


class TestEmptyDiffCacheIdentity:
    @given(st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_identical_frames_return_the_cached_bundle(self, yolo_detector, seed):
        """An empty inter-frame diff must hand back the previous bundle —
        same tensors, same prediction — never rebuild."""
        sequence = generate_sequence(
            num_frames=2,
            seed=seed,
            image_length=64,
            image_width=208,
            half="left",
            max_speed=0.0,
        )
        cache = SequenceActivationCache(yolo_detector, max_frames=2)
        first = cache.advance(sequence.frame(0), None)
        second = cache.advance(sequence.frame(1), sequence.dirty_bounds()[1])
        assert second is first or second.tensors is first.tensors
        assert second.prediction is first.prediction
        assert cache.frame_misses == 1
