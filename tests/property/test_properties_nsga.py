"""Property-based tests for the NSGA-II building blocks."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.nsga.crowding import crowding_distance
from repro.nsga.crossover import one_point_crossover
from repro.nsga.individual import Individual
from repro.nsga.mutation import (
    MutationConfig,
    complement_mutation,
    mutate,
    random_value_mutation,
    shuffle_mutation,
)
from repro.nsga.sorting import dominates, fast_non_dominated_sort

objective_vectors = npst.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=2, max_value=4).map(lambda n: (n,)),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False, width=32),
)

genomes = npst.arrays(
    dtype=np.float64,
    shape=(8, 10, 3),
    elements=st.floats(min_value=-255, max_value=255, allow_nan=False, width=32),
)

populations = st.lists(
    npst.arrays(
        dtype=np.float64,
        shape=(3,),
        elements=st.floats(min_value=0, max_value=10, allow_nan=False, width=32),
    ),
    min_size=1,
    max_size=15,
)


class TestDominanceProperties:
    @given(objective_vectors)
    @settings(max_examples=100)
    def test_irreflexive(self, vector):
        assert not dominates(vector, vector)

    @given(populations)
    @settings(max_examples=50)
    def test_antisymmetric(self, vectors):
        for a in vectors:
            for b in vectors:
                assert not (dominates(a, b) and dominates(b, a))

    @given(populations)
    @settings(max_examples=50)
    def test_first_front_is_mutually_non_dominated(self, vectors):
        population = [Individual(genome=np.zeros(1), objectives=v) for v in vectors]
        fronts = fast_non_dominated_sort(population)
        first = fronts[0]
        for i in first:
            for j in first:
                assert not dominates(population[i].objectives, population[j].objectives)

    @given(populations)
    @settings(max_examples=50)
    def test_fronts_partition_population(self, vectors):
        population = [Individual(genome=np.zeros(1), objectives=v) for v in vectors]
        fronts = fast_non_dominated_sort(population)
        indices = sorted(i for front in fronts for i in front)
        assert indices == list(range(len(population)))

    @given(populations)
    @settings(max_examples=50)
    def test_later_fronts_are_dominated_by_earlier_ones(self, vectors):
        population = [Individual(genome=np.zeros(1), objectives=v) for v in vectors]
        fronts = fast_non_dominated_sort(population)
        for front_index in range(1, len(fronts)):
            for member in fronts[front_index]:
                dominated = any(
                    dominates(population[i].objectives, population[member].objectives)
                    for i in fronts[front_index - 1]
                )
                assert dominated


class TestCrowdingProperties:
    @given(populations)
    @settings(max_examples=50)
    def test_distances_non_negative(self, vectors):
        population = [Individual(genome=np.zeros(1), objectives=v) for v in vectors]
        fast_non_dominated_sort(population)
        distances = crowding_distance(population, list(range(len(population))))
        assert np.all(distances >= 0.0)


class TestOperatorProperties:
    @given(genomes, genomes, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50)
    def test_crossover_preserves_values_positionwise(self, a, b, seed):
        rng = np.random.default_rng(seed)
        child_a, child_b = one_point_crossover(a, b, rng, probability=1.0)
        flat = (
            np.isclose(child_a.reshape(-1), a.reshape(-1))
            & np.isclose(child_b.reshape(-1), b.reshape(-1))
        ) | (
            np.isclose(child_a.reshape(-1), b.reshape(-1))
            & np.isclose(child_b.reshape(-1), a.reshape(-1))
        )
        assert flat.all()

    @given(genomes, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50)
    def test_mutations_stay_in_range(self, genome, seed):
        rng = np.random.default_rng(seed)
        for operator in (complement_mutation, shuffle_mutation, random_value_mutation):
            mutated = operator(genome, rng, window_fraction=0.05, max_value=255.0)
            assert np.abs(mutated).max() <= 255.0 + 1e-9

    @given(genomes, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50)
    def test_mutate_returns_new_array_of_same_shape(self, genome, seed):
        rng = np.random.default_rng(seed)
        mutated = mutate(genome, rng, MutationConfig(probability=1.0))
        assert mutated.shape == genome.shape
        assert mutated is not genome
