"""Property-based tests for the attack objectives (Algorithms 1 and 2)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.core.objectives import (
    distance_weight_matrix,
    objective_degradation,
    objective_distance,
    objective_intensity,
)
from repro.detection.boxes import BoundingBox
from repro.detection.prediction import Prediction

small_masks = npst.arrays(
    dtype=np.float64,
    shape=(12, 20, 3),
    elements=st.floats(min_value=-255.0, max_value=255.0, allow_nan=False, width=32),
)


@st.composite
def predictions(draw, max_boxes=4, image_length=12, image_width=20):
    count = draw(st.integers(min_value=0, max_value=max_boxes))
    boxes = []
    for _ in range(count):
        boxes.append(
            BoundingBox(
                cl=draw(st.integers(min_value=0, max_value=2)),
                x=draw(st.floats(min_value=0, max_value=image_length, allow_nan=False)),
                y=draw(st.floats(min_value=0, max_value=image_width, allow_nan=False)),
                l=draw(st.floats(min_value=1, max_value=image_length, allow_nan=False)),
                w=draw(st.floats(min_value=1, max_value=image_width, allow_nan=False)),
            )
        )
    return Prediction(boxes)


class TestIntensityProperties:
    @given(small_masks)
    @settings(max_examples=50)
    def test_non_negative(self, mask):
        assert objective_intensity(mask) >= 0.0

    @given(small_masks, st.floats(min_value=0.0, max_value=3.0, allow_nan=False))
    @settings(max_examples=50)
    def test_absolute_homogeneity(self, mask, factor):
        scaled = objective_intensity(factor * mask)
        assert abs(scaled - factor * objective_intensity(mask)) < 1e-6 * (1 + scaled)

    @given(small_masks, small_masks)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b):
        assert objective_intensity(a + b) <= (
            objective_intensity(a) + objective_intensity(b) + 1e-9
        )


class TestDegradationProperties:
    @given(predictions(), predictions())
    @settings(max_examples=100)
    def test_bounded_between_zero_and_one(self, clean, perturbed):
        value = objective_degradation(clean, perturbed)
        assert 0.0 <= value <= 1.0 + 1e-9

    @given(predictions())
    @settings(max_examples=100)
    def test_identical_predictions_give_one(self, clean):
        assert objective_degradation(clean, clean) >= 1.0 - 1e-9

    @given(predictions())
    @settings(max_examples=100)
    def test_empty_perturbed_prediction_gives_zero_when_objects_exist(self, clean):
        value = objective_degradation(clean, Prediction.empty())
        if clean.num_valid:
            assert value == 0.0
        else:
            assert value == 1.0


class TestDistanceProperties:
    @given(predictions())
    @settings(max_examples=50)
    def test_weight_matrix_shape_and_finiteness(self, prediction):
        matrix = distance_weight_matrix(prediction, 12, 20)
        assert matrix.shape == (12, 20)
        assert np.all(np.isfinite(matrix))

    @given(small_masks, predictions())
    @settings(max_examples=50)
    def test_distance_zero_iff_zero_mask(self, mask, prediction):
        matrix = distance_weight_matrix(prediction, 12, 20)
        if not np.any(np.abs(mask) > 0):
            assert objective_distance(mask, matrix) == 0.0

    @given(small_masks, st.floats(min_value=1.0, max_value=4.0, allow_nan=False))
    @settings(max_examples=50)
    def test_distance_scales_with_magnitude_on_positive_matrix(self, mask, factor):
        # On an all-positive weight matrix (no objects), amplifying the mask
        # cannot decrease the objective: the weighted sum scales linearly
        # while the perturbed-pixel count can only stay equal or grow.
        matrix = distance_weight_matrix(Prediction.empty(), 12, 20)
        base = objective_distance(mask, matrix)
        amplified = objective_distance(factor * mask, matrix)
        assert amplified >= base - 1e-9

    @given(predictions())
    @settings(max_examples=50)
    def test_uniform_mask_distance_is_average_weight(self, prediction):
        matrix = distance_weight_matrix(prediction, 12, 20)
        uniform = np.full((12, 20, 3), 1.0)
        expected = matrix.sum() / (12 * 20)
        assert abs(objective_distance(uniform, matrix) - expected) < 1e-9
