"""Property-based tests for the dirty-region bbox algebra.

The cross-generation delta-reuse path leans entirely on this algebra: a
child mask's diff against its ancestor must always land inside the lineage
bound the genetic operators propagate, and the windowed rescans must equal
the full-frame scans.  A violated bound would silently corrupt spliced
activations, so the containment properties here are load-bearing.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.incremental import (
    EMPTY_BBOX,
    bbox_area,
    bbox_intersection,
    bbox_is_empty,
    bbox_symmetric_difference,
    bbox_union,
    dilate_bbox,
    mask_nonzero_bbox,
    masks_differ_bbox,
)
from repro.nsga.crossover import one_point_crossover_lineage
from repro.nsga.mutation import MutationConfig, mutate_tracked_lineage

FRAME = (12, 16)


@st.composite
def bboxes(draw, allow_empty=True):
    """Half-open boxes inside FRAME (possibly empty when allowed)."""
    if allow_empty:
        r0 = draw(st.integers(0, FRAME[0]))
        r1 = draw(st.integers(0, FRAME[0]))
        c0 = draw(st.integers(0, FRAME[1]))
        c1 = draw(st.integers(0, FRAME[1]))
        return (r0, r1, c0, c1)
    r0 = draw(st.integers(0, FRAME[0] - 1))
    r1 = draw(st.integers(r0 + 1, FRAME[0]))
    c0 = draw(st.integers(0, FRAME[1] - 1))
    c1 = draw(st.integers(c0 + 1, FRAME[1]))
    return (r0, r1, c0, c1)


def rasterize(bbox):
    """Boolean FRAME plane covered by a box (all-False for empty/None-free)."""
    plane = np.zeros(FRAME, dtype=bool)
    if bbox is None:
        return np.ones(FRAME, dtype=bool)
    if not bbox_is_empty(bbox):
        r0, r1, c0, c1 = bbox
        plane[max(0, r0) : r1, max(0, c0) : c1] = True
    return plane


class TestSymmetricDifference:
    @given(bboxes(), bboxes())
    @settings(max_examples=200)
    def test_superset_of_rasterized_xor(self, first, second):
        """The result covers every pixel belonging to exactly one box."""
        result = bbox_symmetric_difference(first, second)
        xor = rasterize(first) ^ rasterize(second)
        assert np.all(~xor | rasterize(result))

    @given(bboxes(), bboxes())
    @settings(max_examples=100)
    def test_commutative(self, first, second):
        forward = bbox_symmetric_difference(first, second)
        backward = bbox_symmetric_difference(second, first)
        assert rasterize(forward).tobytes() == rasterize(backward).tobytes()

    @given(bboxes())
    @settings(max_examples=50)
    def test_self_difference_is_empty(self, box):
        assert bbox_is_empty(bbox_symmetric_difference(box, box))

    @given(bboxes())
    @settings(max_examples=50)
    def test_empty_is_neutral(self, box):
        result = bbox_symmetric_difference(EMPTY_BBOX, box)
        assert rasterize(result).tobytes() == rasterize(box).tobytes()

    @given(bboxes())
    @settings(max_examples=20)
    def test_none_is_absorbing(self, box):
        assert bbox_symmetric_difference(None, box) is None
        assert bbox_symmetric_difference(box, None) is None

    @given(bboxes(), bboxes())
    @settings(max_examples=100)
    def test_bounded_by_union(self, first, second):
        """The fallback never exceeds the union hull."""
        result = bbox_symmetric_difference(first, second)
        hull = bbox_union(first, second)
        assert np.all(~rasterize(result) | rasterize(hull))


class TestUnionIntersectionRoundTrips:
    @given(bboxes(allow_empty=False), bboxes())
    @settings(max_examples=100)
    def test_intersection_with_union_recovers_operand(self, first, second):
        hull = bbox_union(first, second)
        assert bbox_intersection(hull, first) == first

    @given(bboxes(), bboxes())
    @settings(max_examples=100)
    def test_intersection_rasterizes_exactly(self, first, second):
        """Rectangle intersection is exact (unlike the XOR hull)."""
        result = bbox_intersection(first, second)
        assert np.array_equal(
            rasterize(result), rasterize(first) & rasterize(second)
        )

    @given(bboxes(), bboxes())
    @settings(max_examples=100)
    def test_union_contains_both(self, first, second):
        hull = rasterize(bbox_union(first, second))
        assert np.all(~rasterize(first) | hull)
        assert np.all(~rasterize(second) | hull)

    @given(bboxes(allow_empty=False), st.integers(0, 5))
    @settings(max_examples=100)
    def test_dilation_contains_and_stays_in_frame(self, box, radius):
        grown = dilate_bbox(box, radius, FRAME)
        assert np.all(~rasterize(box) | rasterize(grown))
        r0, r1, c0, c1 = grown
        assert 0 <= r0 <= r1 <= FRAME[0]
        assert 0 <= c0 <= c1 <= FRAME[1]
        # Growth is bounded by the radius on every side.
        assert bbox_area(grown) <= (box[1] - box[0] + 2 * radius) * (
            box[3] - box[2] + 2 * radius
        )

    @given(bboxes(allow_empty=False))
    @settings(max_examples=50)
    def test_zero_dilation_is_identity(self, box):
        assert dilate_bbox(box, 0, FRAME) == box


sparse_masks = st.builds(
    lambda seed, fill: _sparse_mask(seed, fill),
    st.integers(0, 10_000),
    st.floats(0.0, 0.3),
)


def _sparse_mask(seed, fill):
    rng = np.random.default_rng(seed)
    mask = np.zeros(FRAME + (3,), dtype=np.float64)
    select = rng.random(FRAME) < fill
    mask[select] = rng.integers(-255, 256, size=(int(select.sum()), 3))
    return mask


class TestMasksDifferBBox:
    @given(sparse_masks, sparse_masks)
    @settings(max_examples=100)
    def test_matches_reference_scan(self, first, second):
        differ = (first != second).any(axis=2)
        expected = mask_nonzero_bbox(differ.astype(np.float64)[..., None])
        assert masks_differ_bbox(first, second) == expected

    @given(sparse_masks)
    @settings(max_examples=50)
    def test_identical_masks_are_empty(self, mask):
        assert masks_differ_bbox(mask, mask.copy()) == EMPTY_BBOX

    @given(sparse_masks, sparse_masks, bboxes())
    @settings(max_examples=100)
    def test_window_containing_diff_equals_full_scan(self, first, second, box):
        """Any window covering every differing pixel gives the full answer."""
        full = masks_differ_bbox(first, second)
        window = bbox_union(full, box)
        assert masks_differ_bbox(first, second, within=window) == full

    @given(sparse_masks, sparse_masks)
    @settings(max_examples=50)
    def test_full_frame_window_equals_no_window(self, first, second):
        full_frame = (0, FRAME[0], 0, FRAME[1])
        assert masks_differ_bbox(first, second, within=full_frame) == (
            masks_differ_bbox(first, second)
        )

    @given(sparse_masks, sparse_masks)
    @settings(max_examples=50)
    def test_empty_window_is_empty(self, first, second):
        assert masks_differ_bbox(first, second, within=EMPTY_BBOX) == EMPTY_BBOX


class TestLineageContainment:
    """The genetic operators' lineage bounds contain the true child diff.

    This is the delta-reuse correctness contract: the detector rescans the
    exact diff only inside ``diff_bound``, so a child pixel differing from
    its head parent *outside* the bound would be spliced stale.
    """

    @given(st.integers(0, 10_000), st.floats(0.1, 1.0))
    @settings(max_examples=100)
    def test_crossover_diff_inside_lineage_bound(self, seed, probability):
        rng = np.random.default_rng(seed)
        first = _sparse_mask(seed + 1, 0.2)
        second = _sparse_mask(seed + 2, 0.2)
        first_bound = mask_nonzero_bbox(first)
        second_bound = mask_nonzero_bbox(second)
        child_a, child_b, _, _, rel_a, rel_b = one_point_crossover_lineage(
            first,
            second,
            rng,
            probability=probability,
            first_bound=first_bound,
            second_bound=second_bound,
        )
        for child, head, rel in ((child_a, first, rel_a), (child_b, second, rel_b)):
            diff = masks_differ_bbox(child, head)
            assert np.all(~rasterize(diff) | rasterize(rel))

    @given(st.integers(0, 10_000))
    @settings(max_examples=100)
    def test_mutation_diff_inside_touched_bound(self, seed):
        rng = np.random.default_rng(seed)
        genome = _sparse_mask(seed + 3, 0.2)
        child, _, touched = mutate_tracked_lineage(
            genome, rng, MutationConfig(probability=0.7), None
        )
        diff = masks_differ_bbox(child, genome)
        assert np.all(~rasterize(diff) | rasterize(touched))

    @given(st.integers(0, 10_000))
    @settings(max_examples=50)
    def test_unknown_parent_bounds_degrade_to_tail_band(self, seed):
        """None parent bounds still produce a valid (band-shaped) rel bound."""
        rng = np.random.default_rng(seed)
        first = _sparse_mask(seed + 4, 0.5)
        second = _sparse_mask(seed + 5, 0.5)
        child_a, child_b, _, _, rel_a, rel_b = one_point_crossover_lineage(
            first, second, rng, probability=1.0
        )
        for child, head, rel in ((child_a, first, rel_a), (child_b, second, rel_b)):
            diff = masks_differ_bbox(child, head)
            assert np.all(~rasterize(diff) | rasterize(rel))
