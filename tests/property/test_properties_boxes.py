"""Property-based tests (hypothesis) for bounding-box geometry."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.boxes import (
    BoundingBox,
    box_intersection_area,
    box_union_area,
    iou,
)

coordinates = st.floats(min_value=-500.0, max_value=500.0, allow_nan=False)
# Extents start at 1e-3 pixels: sub-resolution boxes only probe floating-
# point cancellation, which the dedicated unit tests cover explicitly.
extents = st.floats(min_value=1e-3, max_value=200.0, allow_nan=False)
classes = st.integers(min_value=0, max_value=4)


@st.composite
def boxes(draw):
    return BoundingBox(
        cl=draw(classes),
        x=draw(coordinates),
        y=draw(coordinates),
        l=draw(extents),
        w=draw(extents),
    )


class TestIoUProperties:
    @given(boxes(), boxes())
    @settings(max_examples=200)
    def test_iou_bounded(self, a, b):
        value = iou(a, b)
        assert 0.0 <= value <= 1.0

    @given(boxes(), boxes())
    @settings(max_examples=200)
    def test_iou_symmetric(self, a, b):
        assert abs(iou(a, b) - iou(b, a)) < 1e-9

    @given(boxes())
    @settings(max_examples=100)
    def test_iou_with_itself_is_one(self, box):
        assert abs(iou(box, box) - 1.0) < 1e-6

    @given(boxes(), boxes())
    @settings(max_examples=200)
    def test_intersection_bounded_by_smaller_area(self, a, b):
        inter = box_intersection_area(a, b)
        assert inter >= 0.0
        assert inter <= min(a.area, b.area) + 1e-9

    @given(boxes(), boxes())
    @settings(max_examples=200)
    def test_union_at_least_larger_area(self, a, b):
        union = box_union_area(a, b)
        assert union >= max(a.area, b.area) - 1e-9
        assert union <= a.area + b.area + 1e-9

    @given(boxes(), st.floats(min_value=0.1, max_value=3.0))
    @settings(max_examples=100)
    def test_iou_invariant_under_translation(self, box, shift):
        other = box.translated(shift, -shift)
        moved_a = box.translated(10.0, 20.0)
        moved_b = other.translated(10.0, 20.0)
        assert abs(iou(box, other) - iou(moved_a, moved_b)) < 1e-9


class TestCornerProperties:
    @given(boxes())
    @settings(max_examples=100)
    def test_corners_ordered(self, box):
        assert box.x_min <= box.x_max
        assert box.y_min <= box.y_max

    @given(boxes())
    @settings(max_examples=100)
    def test_from_corners_round_trip(self, box):
        rebuilt = BoundingBox.from_corners(box.cl, *box.corners)
        assert abs(rebuilt.x - box.x) < 1e-6
        assert abs(rebuilt.y - box.y) < 1e-6
        assert abs(rebuilt.l - box.l) < 1e-6
        assert abs(rebuilt.w - box.w) < 1e-6

    @given(boxes())
    @settings(max_examples=100)
    def test_contains_own_center_when_nonempty(self, box):
        if box.l > 0 and box.w > 0:
            assert box.contains_point(box.x, box.y)
