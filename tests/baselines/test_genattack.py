"""Tests for the GenAttack-style single-objective baseline."""

import numpy as np
import pytest

from repro.baselines.genattack import GenAttackBaseline, GenAttackConfig
from repro.core.regions import HalfImageRegion


class TestGenAttackConfig:
    def test_defaults_valid(self):
        config = GenAttackConfig()
        assert config.population_size >= 2
        assert config.linf_bound > 0

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            GenAttackConfig(population_size=1)
        with pytest.raises(ValueError):
            GenAttackConfig(linf_bound=0.0)
        with pytest.raises(ValueError):
            GenAttackConfig(elite_fraction=0.0)


class TestGenAttackBaseline:
    @pytest.fixture(scope="class")
    def result(self, request):
        detector = request.getfixturevalue("detr_detector")
        dataset = request.getfixturevalue("small_dataset")
        config = GenAttackConfig(
            population_size=6, num_iterations=3, linf_bound=32.0, seed=0
        )
        attack = GenAttackBaseline(detector, config, region=HalfImageRegion("right"))
        return attack.attack(dataset[0].image), dataset[0].image

    def test_mask_respects_linf_bound(self, result):
        attack_result, _ = result
        assert attack_result.best_mask.linf_norm <= 32.0 + 1e-9

    def test_mask_respects_region(self, result):
        attack_result, image = result
        middle = image.shape[1] // 2
        assert np.allclose(attack_result.best_mask.values[:, :middle, :], 0.0)

    def test_degradation_in_valid_range(self, result):
        attack_result, _ = result
        assert 0.0 <= attack_result.best_degradation <= 1.0 + 1e-9

    def test_history_tracks_best_fitness(self, result):
        attack_result, _ = result
        # Initial entry plus one per iteration; elitism keeps it non-increasing.
        assert len(attack_result.history) == 4
        assert all(
            later <= earlier + 1e-9
            for earlier, later in zip(attack_result.history, attack_result.history[1:])
        )

    def test_evaluation_budget(self, result):
        attack_result, _ = result
        assert attack_result.num_evaluations == 6 + 3 * 6

    def test_clean_prediction_available(self, result):
        attack_result, _ = result
        assert attack_result.clean_prediction.num_valid >= 1

    def test_reproducible_given_seed(self, yolo_detector, small_dataset):
        config = GenAttackConfig(population_size=4, num_iterations=2, seed=7)
        image = small_dataset[1].image
        first = GenAttackBaseline(yolo_detector, config).attack(image)
        second = GenAttackBaseline(yolo_detector, config).attack(image)
        assert first.best_degradation == pytest.approx(second.best_degradation)
        assert np.allclose(first.best_mask.values, second.best_mask.values)
