"""Tests for the random-noise baseline."""

import numpy as np
import pytest

from repro.baselines.random_noise import RandomNoiseAttack
from repro.core.regions import HalfImageRegion


class TestRandomNoiseAttack:
    def test_invalid_noise_type_rejected(self, yolo_detector):
        with pytest.raises(ValueError):
            RandomNoiseAttack(yolo_detector, noise_type="speckle")

    def test_invalid_trial_count_rejected(self, yolo_detector, small_dataset):
        attack = RandomNoiseAttack(yolo_detector)
        with pytest.raises(ValueError):
            attack.evaluate(small_dataset[0].image, trials_per_sigma=0)

    def test_one_result_per_sigma(self, yolo_detector, small_dataset):
        attack = RandomNoiseAttack(yolo_detector, seed=0)
        results = attack.evaluate(
            small_dataset[0].image, sigmas=(4.0, 16.0), trials_per_sigma=2
        )
        assert [r.sigma for r in results] == [4.0, 16.0]
        assert all(r.num_trials == 2 for r in results)

    def test_degradation_values_in_range(self, detr_detector, small_dataset):
        attack = RandomNoiseAttack(detr_detector, seed=0)
        results = attack.evaluate(
            small_dataset[0].image, sigmas=(8.0,), trials_per_sigma=2
        )
        for level in results:
            assert 0.0 <= level.min_degradation <= level.mean_degradation <= 1.0 + 1e-9

    def test_intensity_grows_with_sigma(self, yolo_detector, small_dataset):
        attack = RandomNoiseAttack(yolo_detector, seed=0)
        weak, strong = attack.evaluate(
            small_dataset[0].image, sigmas=(4.0, 64.0), trials_per_sigma=2
        )
        assert strong.mean_intensity > weak.mean_intensity

    def test_region_restriction_respected(self, yolo_detector, small_dataset):
        # With a right-half region and a single-stage (local) detector whose
        # objects are all on the left, even strong noise barely degrades.
        attack = RandomNoiseAttack(
            yolo_detector, region=HalfImageRegion("right"), seed=0
        )
        results = attack.evaluate(
            small_dataset[0].image, sigmas=(64.0,), trials_per_sigma=2
        )
        assert results[0].mean_degradation > 0.7

    def test_salt_and_pepper_mode(self, yolo_detector, small_dataset):
        attack = RandomNoiseAttack(yolo_detector, noise_type="salt_and_pepper", seed=0)
        results = attack.evaluate(
            small_dataset[0].image, sigmas=(1.0,), trials_per_sigma=1
        )
        assert len(results) == 1
        assert results[0].mean_intensity > 0.0

    def test_as_row(self, yolo_detector, small_dataset):
        attack = RandomNoiseAttack(yolo_detector, seed=0)
        row = attack.evaluate(
            small_dataset[0].image, sigmas=(8.0,), trials_per_sigma=1
        )[0].as_row()
        assert set(row) == {
            "sigma",
            "mean_degradation",
            "min_degradation",
            "mean_intensity",
            "num_trials",
        }
