"""Tests for the finite-difference baseline."""

import numpy as np
import pytest

from repro.baselines.finite_difference import (
    FiniteDifferenceAttack,
    FiniteDifferenceConfig,
)
from repro.core.regions import HalfImageRegion


class TestFiniteDifferenceConfig:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            FiniteDifferenceConfig(block=0)
        with pytest.raises(ValueError):
            FiniteDifferenceConfig(num_steps=0)


class TestFiniteDifferenceAttack:
    @pytest.fixture(scope="class")
    def result(self, request):
        detector = request.getfixturevalue("detr_detector")
        dataset = request.getfixturevalue("small_dataset")
        config = FiniteDifferenceConfig(block=16, num_steps=1, linf_bound=48.0)
        attack = FiniteDifferenceAttack(
            detector, config, region=HalfImageRegion("right")
        )
        return attack.attack(dataset[0].image), dataset[0].image

    def test_mask_respects_bound_and_region(self, result):
        attack_result, image = result
        assert attack_result.best_mask.linf_norm <= 48.0 + 1e-9
        middle = image.shape[1] // 2
        assert np.allclose(attack_result.best_mask.values[:, :middle, :], 0.0)

    def test_sensitivity_map_shape(self, result):
        attack_result, image = result
        rows, cols = image.shape[0] // 16, image.shape[1] // 16
        assert attack_result.sensitivity_map.shape == (rows, cols)

    def test_degradation_range(self, result):
        attack_result, _ = result
        assert 0.0 <= attack_result.best_degradation <= 1.0 + 1e-9

    def test_evaluations_counted(self, result):
        attack_result, image = result
        # At least one evaluation per probed block plus the base/final passes.
        assert attack_result.num_evaluations > (image.shape[1] // 16)

    def test_full_region_probes_every_block(self, yolo_detector, small_dataset):
        config = FiniteDifferenceConfig(block=32, num_steps=1)
        attack = FiniteDifferenceAttack(yolo_detector, config)
        result = attack.attack(small_dataset[0].image)
        assert result.sensitivity_map is not None
        assert result.best_mask.values.shape == small_dataset[0].image.shape
