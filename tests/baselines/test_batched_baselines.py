"""Parity tests for the baselines' batched detector usage.

Both baselines now query the detector through ``predict_batch``; their
fitness/sensitivity values must equal the original one-query-at-a-time
implementations exactly.
"""

import numpy as np

from repro.baselines.finite_difference import (
    FiniteDifferenceAttack,
    FiniteDifferenceConfig,
)
from repro.baselines.genattack import GenAttackBaseline, GenAttackConfig
from repro.core.masks import apply_mask
from repro.core.objectives import objective_degradation


class TestGenAttackBatchedFitness:
    def test_population_fitness_matches_scalar_fitness(
        self, yolo_detector, small_dataset
    ):
        baseline = GenAttackBaseline(
            yolo_detector, GenAttackConfig(population_size=4, num_iterations=1)
        )
        image = np.asarray(small_dataset[0].image, dtype=np.float64)
        clean = yolo_detector.predict(image)
        rng = np.random.default_rng(0)
        masks = [
            baseline._project(rng.uniform(-16, 16, size=image.shape)) for _ in range(5)
        ]
        batched = baseline._fitness_population(image, clean, masks)
        sequential = [baseline._fitness(image, clean, mask) for mask in masks]
        assert list(batched) == sequential

    def test_attack_still_runs_and_reports_budget(self, yolo_detector, small_dataset):
        config = GenAttackConfig(population_size=4, num_iterations=2, seed=1)
        result = GenAttackBaseline(yolo_detector, config).attack(small_dataset[0].image)
        assert result.num_evaluations == 4 + 2 * 4
        assert len(result.history) == 3


class TestFiniteDifferenceBatchedProbes:
    def test_sensitivity_matches_sequential_probing(self, yolo_detector, small_dataset):
        image = np.asarray(small_dataset[0].image, dtype=np.float64)
        config = FiniteDifferenceConfig(block=32, num_steps=1)
        attack = FiniteDifferenceAttack(yolo_detector, config)
        result = attack.attack(image)

        # Recompute the first step's sensitivities with scalar queries.
        clean = yolo_detector.predict(image)
        base = objective_degradation(clean, yolo_detector.predict(image))
        block = config.block
        for row in range(image.shape[0] // block):
            for col in range(image.shape[1] // block):
                probe = np.zeros_like(image)
                probe[
                    row * block : (row + 1) * block, col * block : (col + 1) * block, :
                ] += config.probe_magnitude
                probed = objective_degradation(
                    clean, yolo_detector.predict(apply_mask(image, probe))
                )
                assert result.sensitivity_map[row, col] == base - probed

    def test_evaluation_count_unchanged_by_batching(self, yolo_detector, small_dataset):
        image = np.asarray(small_dataset[0].image, dtype=np.float64)
        config = FiniteDifferenceConfig(block=32, num_steps=1)
        result = FiniteDifferenceAttack(yolo_detector, config).attack(image)
        blocks = (image.shape[0] // 32) * (image.shape[1] // 32)
        assert result.num_evaluations == 1 + blocks + 1
