"""Pickle round-trips across the multiprocessing boundary.

The process-pool backend ships :class:`AttackJob`s to workers and
:class:`AttackResult`s back, so every field of the job/result object graph
must survive pickling bit-exactly.  These tests cover plain
``pickle.dumps``/``loads`` round-trips plus a real ``multiprocessing``
echo through a worker process.
"""

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.core.config import AttackConfig
from repro.core.masks import FilterMask
from repro.core.regions import HalfImageRegion
from repro.core.results import AttackResult, ParetoSolution
from repro.detection.boxes import BoundingBox
from repro.detection.prediction import Prediction
from repro.experiments.jobs import AttackJob, ModelSpec
from repro.nsga.algorithm import NSGAConfig, NSGAResult
from repro.nsga.individual import Individual


def _roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


def _sample_prediction() -> Prediction:
    return Prediction(
        [
            BoundingBox(cl=0, x=4.0, y=6.0, l=8.0, w=10.0, score=0.9),
            BoundingBox(cl=2, x=1.0, y=2.0, l=3.0, w=4.0, score=0.5),
        ]
    )


def _sample_result() -> AttackResult:
    rng = np.random.default_rng(0)
    image = rng.uniform(0, 255, size=(8, 12, 3))
    mask = FilterMask(rng.normal(0, 5, size=(8, 12, 3)))
    solution = ParetoSolution(
        mask=mask,
        intensity=1.5,
        degradation=0.75,
        distance=2.25,
        rank=1,
        perturbed_prediction=_sample_prediction(),
        extras={"extra_0": 0.5},
    )
    return AttackResult(
        image=image,
        clean_prediction=_sample_prediction(),
        solutions=[solution],
        detector_name="single_stage-seed1",
        num_evaluations=24,
        cache_hits=4,
        history=[{"generation": 0, "best_per_objective": np.array([0.1, 0.2, 0.3])}],
        architecture="single_stage",
        model_seed=1,
        scene_index=3,
        job_id=7,
    )


class TestFilterMaskPickle:
    def test_values_survive_bit_exactly(self):
        mask = FilterMask(np.random.default_rng(1).normal(0, 9, size=(6, 10, 3)))
        clone = _roundtrip(mask)
        assert np.array_equal(clone.values, mask.values)
        assert clone.values.dtype == mask.values.dtype

    def test_cached_bbox_survives(self):
        mask = FilterMask.zeros((6, 10, 3))
        mask.values[2:4, 3:5] = 7.0
        bbox = mask.nonzero_bbox()  # populate the cache before pickling
        clone = _roundtrip(mask)
        assert clone.nonzero_bbox() == bbox
        assert clone.sparsity == mask.sparsity


class TestAttackResultPickle:
    def test_all_fields_survive(self):
        result = _sample_result()
        clone = _roundtrip(result)
        assert np.array_equal(clone.image, result.image)
        assert clone.detector_name == result.detector_name
        assert clone.num_evaluations == result.num_evaluations
        assert clone.cache_hits == result.cache_hits
        assert clone.architecture == result.architecture
        assert clone.model_seed == result.model_seed
        assert clone.scene_index == result.scene_index
        assert clone.job_id == result.job_id
        assert len(clone.solutions) == len(result.solutions)
        for left, right in zip(clone.solutions, result.solutions):
            assert np.array_equal(left.mask.values, right.mask.values)
            assert left.objectives == right.objectives
            assert left.rank == right.rank
            assert left.extras == right.extras
            assert left.perturbed_prediction.boxes == right.perturbed_prediction.boxes
        assert clone.clean_prediction.boxes == result.clean_prediction.boxes
        assert np.array_equal(
            clone.history[0]["best_per_objective"],
            result.history[0]["best_per_objective"],
        )

    def test_derived_properties_intact(self):
        clone = _roundtrip(_sample_result())
        assert clone.num_queries == 20
        assert len(clone.pareto_front) == 1
        assert clone.best_by("degradation").degradation == 0.75


class TestNSGAResultPickle:
    def test_population_and_fronts_survive(self):
        rng = np.random.default_rng(2)
        population = [
            Individual(
                genome=rng.normal(size=(4, 6, 3)),
                objectives=rng.uniform(size=3),
                rank=1,
                crowding=float(i),
                metadata={"dirty_bound": (0, 2, 1, 3)},
            )
            for i in range(3)
        ]
        result = NSGAResult(
            population=population,
            fronts=[[0, 1], [2]],
            history=[{"generation": 0, "front_size": 2}],
            num_evaluations=12,
            cache_hits=3,
        )
        clone = _roundtrip(result)
        assert clone.fronts == result.fronts
        assert clone.num_evaluations == 12 and clone.cache_hits == 3
        assert clone.num_queries == 9
        for left, right in zip(clone.population, result.population):
            assert np.array_equal(left.genome, right.genome)
            assert np.array_equal(left.objectives, right.objectives)
            assert left.rank == right.rank
            assert left.crowding == right.crowding
            assert left.metadata == right.metadata
        assert np.array_equal(
            clone.objectives_matrix(), result.objectives_matrix()
        )


class TestAttackJobPickle:
    def test_all_fields_survive(self):
        config = AttackConfig(
            nsga=NSGAConfig(num_iterations=4, population_size=6, seed=11),
            region=HalfImageRegion("right"),
            sparse_init_fraction=0.25,
        )
        job = AttackJob(
            job_id=5,
            model=ModelSpec("detr", 9),
            image=np.random.default_rng(3).uniform(0, 255, size=(8, 16, 3)),
            config=config,
            scene_index=2,
            nsga_seed=987654321,
        )
        clone = _roundtrip(job)
        assert clone.job_id == 5
        assert clone.model == job.model
        assert np.array_equal(clone.image, job.image)
        assert clone.scene_index == 2
        assert clone.nsga_seed == 987654321
        assert clone.config.nsga == config.nsga
        assert clone.config.region == config.region
        assert clone.config.sparse_init_fraction == 0.25
        assert clone.resolved_config().nsga.seed == 987654321


def _echo(payload_bytes):
    """Worker: unpickle, re-pickle — proves the object graph crosses both ways."""
    return pickle.dumps(pickle.loads(payload_bytes))


class TestMultiprocessingBoundary:
    @pytest.mark.parametrize(
        "factory",
        [
            _sample_result,
            lambda: AttackJob(
                job_id=1,
                model=ModelSpec("yolo", 2),
                image=np.ones((6, 8, 3)),
                config=AttackConfig(
                    nsga=NSGAConfig(num_iterations=2, population_size=4)
                ),
            ),
            lambda: FilterMask(np.full((4, 6, 3), 3.0)),
        ],
        ids=["attack_result", "attack_job", "filter_mask"],
    )
    def test_objects_survive_a_worker_process(self, factory):
        original = factory()
        with multiprocessing.get_context().Pool(1) as pool:
            echoed_bytes = pool.apply(_echo, (pickle.dumps(original),))
        echoed = pickle.loads(echoed_bytes)
        assert type(echoed) is type(original)
        if isinstance(original, FilterMask):
            assert np.array_equal(echoed.values, original.values)
        elif isinstance(original, AttackJob):
            assert np.array_equal(echoed.image, original.image)
            assert echoed.model == original.model
        else:
            assert np.array_equal(echoed.image, original.image)
            assert echoed.job_id == original.job_id
            assert np.array_equal(
                echoed.solutions[0].mask.values, original.solutions[0].mask.values
            )


def _sample_transfer_result():
    from repro.experiments.transfer import TransferabilityResult

    rng = np.random.default_rng(4)
    return TransferabilityResult(
        model_names=["transformer-seed1", "transformer-seed2"],
        matrix=rng.uniform(0, 1, size=(2, 2)),
        masks_intensity=[0.5, 0.75],
        best_masks=[rng.normal(0, 3, size=(6, 8, 3)) for _ in range(2)],
        experiment_seed=2023,
        execution={"backend": "process", "n_jobs": 2},
    )


def _sample_defense_evaluation():
    from repro.defenses.evaluation import DefenseEvaluation

    return DefenseEvaluation(
        undefended_result=_sample_result(),
        defended_result=_sample_result(),
        undefended_best_degradation=0.25,
        defended_best_degradation=0.75,
        clean_recall_undefended=0.9,
        clean_recall_defended=0.8,
        execution={"backend": "serial", "n_jobs": 1},
    )


def _sample_ensemble_defense_evaluation():
    from repro.defenses.evaluation import EnsembleDefenseEvaluation

    return EnsembleDefenseEvaluation(
        attack_result=_sample_result(),
        member_degradations=[0.3, 0.6],
        fused_degradation=0.7,
        execution={"backend": "serial", "n_jobs": 1},
    )


class TestSweepReportPickle:
    """PR 5 report types must cross the multiprocessing boundary bit-exactly."""

    def test_transfer_result_roundtrip(self):
        original = _sample_transfer_result()
        clone = _roundtrip(original)
        assert clone.model_names == original.model_names
        assert np.array_equal(clone.matrix, original.matrix)
        assert clone.masks_intensity == original.masks_intensity
        for left, right in zip(clone.best_masks, original.best_masks):
            assert np.array_equal(left, right)
        assert clone.experiment_seed == 2023
        assert clone.execution == original.execution
        assert clone.transfer_gap() == original.transfer_gap()

    def test_defense_evaluation_roundtrip(self):
        original = _sample_defense_evaluation()
        clone = _roundtrip(original)
        assert clone.undefended_result.fingerprint() == original.undefended_result.fingerprint()
        assert clone.defended_result.fingerprint() == original.defended_result.fingerprint()
        assert clone.robustness_gain == original.robustness_gain
        assert clone.clean_recall_defended == original.clean_recall_defended
        assert clone.execution == original.execution

    def test_ensemble_defense_evaluation_roundtrip(self):
        original = _sample_ensemble_defense_evaluation()
        clone = _roundtrip(original)
        assert clone.attack_result.fingerprint() == original.attack_result.fingerprint()
        assert clone.member_degradations == original.member_degradations
        assert clone.fused_degradation == original.fused_degradation
        assert clone.fusion_helps == original.fusion_helps


def _transfer_eval_job():
    from repro.experiments.transfer import TransferEvalJob

    rng = np.random.default_rng(5)
    return TransferEvalJob(
        job_id=3,
        model=ModelSpec("detr", 2),
        image=rng.uniform(0, 255, size=(6, 8, 3)),
        masks=rng.normal(0, 3, size=(2, 6, 8, 3)),
        dirty_bounds=[(0, 2, 0, 3), (1, 4, 2, 6)],
        config=AttackConfig(nsga=NSGAConfig(num_iterations=2, population_size=4)),
        target_index=1,
    )


def _defense_attack_job():
    from repro.defenses.jobs import DefendedModelSpec, DefenseAttackJob
    from repro.defenses.augmentation import NoiseAugmentationConfig

    return DefenseAttackJob(
        job_id=1,
        model=DefendedModelSpec(
            base=ModelSpec("yolo", 3),
            augmentation=NoiseAugmentationConfig(augmented_copies=1),
            defense_seed=99,
        ),
        image=np.ones((6, 8, 3)),
        ground_truth=_sample_prediction(),
        config=AttackConfig(nsga=NSGAConfig(num_iterations=2, population_size=4)),
        role="defended",
        nsga_seed=123456,
    )


def _ensemble_defense_job():
    from repro.defenses.jobs import EnsembleDefenseJob

    return EnsembleDefenseJob(
        job_id=2,
        members=(ModelSpec("yolo", 1), ModelSpec("detr", 2)),
        image=np.ones((6, 8, 3)),
        config=AttackConfig(nsga=NSGAConfig(num_iterations=2, population_size=4)),
        vote_fraction=0.5,
        nsga_seed=777,
    )


class TestSweepJobMultiprocessingBoundary:
    """PR 5 job types ship to real worker processes and back intact."""

    @pytest.mark.parametrize(
        "factory",
        [
            _transfer_eval_job,
            _defense_attack_job,
            _ensemble_defense_job,
            _sample_transfer_result,
            _sample_defense_evaluation,
            _sample_ensemble_defense_evaluation,
        ],
        ids=[
            "transfer_eval_job",
            "defense_attack_job",
            "ensemble_defense_job",
            "transfer_result",
            "defense_evaluation",
            "ensemble_defense_evaluation",
        ],
    )
    def test_objects_survive_a_worker_process(self, factory):
        original = factory()
        with multiprocessing.get_context().Pool(1) as pool:
            echoed_bytes = pool.apply(_echo, (pickle.dumps(original),))
        echoed = pickle.loads(echoed_bytes)
        assert type(echoed) is type(original)

    def test_transfer_eval_job_fields_survive(self):
        original = _transfer_eval_job()
        clone = _roundtrip(original)
        assert clone.job_id == 3
        assert clone.model == original.model
        assert np.array_equal(clone.masks, original.masks)
        assert clone.dirty_bounds == original.dirty_bounds
        assert clone.target_index == 1

    def test_defense_attack_job_fields_survive(self):
        original = _defense_attack_job()
        clone = _roundtrip(original)
        assert clone.model == original.model
        assert clone.model.defense_seed == 99
        assert clone.role == "defended"
        assert clone.ground_truth.boxes == original.ground_truth.boxes
        assert clone.resolved_config().nsga.seed == 123456

    def test_ensemble_defense_job_fields_survive(self):
        original = _ensemble_defense_job()
        clone = _roundtrip(original)
        assert clone.members == original.members
        assert clone.vote_fraction == 0.5
        assert clone.stats_label == original.stats_label
