"""Tests for the experiment archive."""

import numpy as np
import pytest

from repro.core.masks import FilterMask
from repro.core.results import AttackResult, ParetoSolution
from repro.detection.boxes import BoundingBox
from repro.detection.prediction import Prediction
from repro.io.archive import ExperimentArchive


def _result(detector_name="det", degradation=0.5):
    solution = ParetoSolution(
        mask=FilterMask.zeros((4, 6, 3)),
        intensity=0.1,
        degradation=degradation,
        distance=0.2,
        rank=1,
    )
    return AttackResult(
        image=np.zeros((4, 6, 3)),
        clean_prediction=Prediction([BoundingBox(cl=0, x=2, y=3, l=2, w=2)]),
        solutions=[solution],
        detector_name=detector_name,
    )


class TestExperimentArchive:
    def test_add_and_load(self, tmp_path):
        archive = ExperimentArchive(tmp_path / "archive")
        run_id = archive.add(_result(), label="yolo")
        assert len(archive) == 1
        loaded = archive.load(run_id)
        assert loaded.detector_name == "det"
        assert archive.label_of(run_id) == "yolo"

    def test_run_ids_sorted_and_auto_generated(self, tmp_path):
        archive = ExperimentArchive(tmp_path / "archive")
        first = archive.add(_result(), label="a")
        second = archive.add(_result(), label="b")
        assert archive.run_ids() == sorted([first, second])

    def test_duplicate_run_id_rejected(self, tmp_path):
        archive = ExperimentArchive(tmp_path / "archive")
        archive.add(_result(), label="a", run_id="fixed")
        with pytest.raises(ValueError):
            archive.add(_result(), label="b", run_id="fixed")

    def test_unknown_run_id_rejected(self, tmp_path):
        archive = ExperimentArchive(tmp_path / "archive")
        with pytest.raises(KeyError):
            archive.load("missing")

    def test_iter_results(self, tmp_path):
        archive = ExperimentArchive(tmp_path / "archive")
        archive.add(_result(degradation=0.3), label="yolo")
        archive.add(_result(degradation=0.7), label="detr")
        items = list(archive.iter_results())
        assert len(items) == 2
        labels = {label for _, label, _ in items}
        assert labels == {"yolo", "detr"}

    def test_rebuild_index_csv(self, tmp_path):
        archive = ExperimentArchive(tmp_path / "archive")
        archive.add(_result(degradation=0.3), label="yolo")
        path = archive.rebuild_index()
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("run_id,label")
        assert len(lines) == 2

    def test_archive_persists_across_instances(self, tmp_path):
        first = ExperimentArchive(tmp_path / "archive")
        run_id = first.add(_result(), label="yolo")
        second = ExperimentArchive(tmp_path / "archive")
        assert run_id in second.run_ids()
