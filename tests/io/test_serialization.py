"""Tests for mask/prediction/attack-result serialisation."""

import numpy as np
import pytest

from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.masks import FilterMask
from repro.core.regions import HalfImageRegion
from repro.detection.boxes import BoundingBox
from repro.detection.prediction import Prediction
from repro.io.serialization import (
    load_attack_result,
    load_mask,
    load_prediction,
    prediction_from_dict,
    prediction_to_dict,
    save_attack_result,
    save_mask,
    save_prediction,
)
from repro.nsga.algorithm import NSGAConfig


class TestMaskSerialization:
    def test_round_trip(self, tmp_path, rng):
        mask = FilterMask(rng.integers(-255, 256, size=(8, 12, 3)).astype(float))
        path = save_mask(mask, tmp_path / "mask.npz")
        loaded = load_mask(path)
        assert np.allclose(loaded.values, mask.values)

    def test_suffix_added_when_missing(self, tmp_path):
        path = save_mask(FilterMask.zeros((4, 4, 3)), tmp_path / "mask")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_accepts_plain_array(self, tmp_path):
        values = np.ones((4, 4, 3))
        path = save_mask(values, tmp_path / "array.npz")
        assert np.allclose(load_mask(path).values, values)


class TestPredictionSerialization:
    def test_dict_round_trip(self):
        prediction = Prediction(
            [
                BoundingBox(cl=0, x=10.5, y=20.25, l=5.0, w=7.0, score=0.75),
                BoundingBox(cl=2, x=40.0, y=60.0, l=12.0, w=9.0, score=0.5),
            ]
        )
        rebuilt = prediction_from_dict(prediction_to_dict(prediction))
        assert rebuilt.num_valid == 2
        for original, copy in zip(prediction.valid_boxes, rebuilt.valid_boxes):
            assert copy.cl == original.cl
            assert copy.x == pytest.approx(original.x)
            assert copy.score == pytest.approx(original.score)

    def test_file_round_trip(self, tmp_path):
        prediction = Prediction([BoundingBox(cl=1, x=5.0, y=5.0, l=2.0, w=2.0)])
        path = save_prediction(prediction, tmp_path / "prediction.json")
        assert load_prediction(path).num_valid == 1

    def test_empty_prediction(self, tmp_path):
        path = save_prediction(Prediction.empty(), tmp_path / "empty.json")
        assert load_prediction(path).num_valid == 0


class TestAttackResultSerialization:
    @pytest.fixture(scope="class")
    def attack_result(self, request):
        detector = request.getfixturevalue("yolo_detector")
        dataset = request.getfixturevalue("small_dataset")
        config = AttackConfig(
            nsga=NSGAConfig(num_iterations=2, population_size=5, seed=0),
            region=HalfImageRegion("right"),
        )
        return ButterflyAttack(detector, config).attack(dataset[0].image)

    def test_round_trip_preserves_objectives(self, attack_result, tmp_path):
        directory = save_attack_result(attack_result, tmp_path / "run")
        loaded = load_attack_result(directory)
        assert loaded.detector_name == attack_result.detector_name
        assert loaded.num_evaluations == attack_result.num_evaluations
        assert len(loaded.solutions) == len(attack_result.solutions)
        assert np.allclose(
            loaded.objectives_array(front_only=False),
            attack_result.objectives_array(front_only=False),
        )

    def test_round_trip_preserves_masks_and_image(self, attack_result, tmp_path):
        directory = save_attack_result(attack_result, tmp_path / "run2")
        loaded = load_attack_result(directory)
        assert np.allclose(loaded.image, attack_result.image)
        for original, copy in zip(attack_result.solutions, loaded.solutions):
            assert np.allclose(original.mask.values, copy.mask.values)

    def test_round_trip_preserves_front_predictions(self, attack_result, tmp_path):
        directory = save_attack_result(attack_result, tmp_path / "run3")
        loaded = load_attack_result(directory)
        originals = [s for s in attack_result.solutions if s.perturbed_prediction]
        copies = [s for s in loaded.solutions if s.perturbed_prediction]
        assert len(originals) == len(copies)

    def test_clean_prediction_restored(self, attack_result, tmp_path):
        directory = save_attack_result(attack_result, tmp_path / "run4")
        loaded = load_attack_result(directory)
        assert loaded.clean_prediction.num_valid == attack_result.clean_prediction.num_valid

    def test_round_trip_preserves_provenance_and_cache_hits(
        self, attack_result, tmp_path
    ):
        """Sweep provenance (engine-assigned) survives the disk round-trip."""
        from dataclasses import replace

        tagged = replace(
            attack_result,
            cache_hits=3,
            architecture="single_stage",
            model_seed=1,
            scene_index=4,
            job_id=12,
        )
        directory = save_attack_result(tagged, tmp_path / "run5")
        loaded = load_attack_result(directory)
        assert loaded.cache_hits == 3
        assert loaded.num_queries == tagged.num_evaluations - 3
        assert loaded.architecture == "single_stage"
        assert loaded.model_seed == 1
        assert loaded.scene_index == 4
        assert loaded.job_id == 12

    def test_legacy_directory_without_new_fields_loads(self, attack_result, tmp_path):
        """meta.json written before PR 4 (no provenance keys) still loads."""
        import json

        directory = save_attack_result(attack_result, tmp_path / "run6")
        meta = json.loads((directory / "meta.json").read_text())
        for key in ("cache_hits", "architecture", "model_seed", "scene_index", "job_id"):
            meta.pop(key, None)
        (directory / "meta.json").write_text(json.dumps(meta))
        loaded = load_attack_result(directory)
        assert loaded.cache_hits == 0
        assert loaded.architecture == ""
        assert loaded.model_seed is None and loaded.job_id is None


class TestTransferResultSerialization:
    def test_roundtrip_is_exact(self, tmp_path):
        from repro.experiments.transfer import TransferabilityResult
        from repro.io.serialization import load_transfer_result, save_transfer_result

        rng = np.random.default_rng(7)
        original = TransferabilityResult(
            model_names=["single_stage-seed1", "single_stage-seed2"],
            matrix=rng.uniform(0, 1, size=(2, 2)),
            masks_intensity=[0.25, 0.5],
            best_masks=[rng.normal(0, 4, size=(6, 10, 3)) for _ in range(2)],
            experiment_seed=11,
            execution={
                "backend": "process",
                "n_jobs": 2,
                "duration_seconds": 1.5,
                "cache_enabled": True,
                "cache_stats": {"hits": 3, "misses": 4, "evictions": 0, "hit_rate": 3 / 7},
            },
        )
        path = save_transfer_result(original, tmp_path / "transfer")
        loaded = load_transfer_result(path)
        assert loaded.model_names == original.model_names
        assert np.array_equal(loaded.matrix, original.matrix)
        assert loaded.masks_intensity == original.masks_intensity
        for left, right in zip(loaded.best_masks, original.best_masks):
            assert np.array_equal(left, right)
        assert loaded.experiment_seed == 11
        assert loaded.execution == original.execution
        assert loaded.transfer_gap() == original.transfer_gap()

    def test_minimal_report_roundtrip(self, tmp_path):
        """A report without masks/provenance (e.g. the reference loop) saves."""
        from repro.experiments.transfer import TransferabilityResult
        from repro.io.serialization import load_transfer_result, save_transfer_result

        original = TransferabilityResult(
            model_names=["only"], matrix=np.array([[0.5]])
        )
        loaded = load_transfer_result(
            save_transfer_result(original, tmp_path / "minimal")
        )
        assert loaded.model_names == ["only"]
        assert loaded.best_masks == []
        assert loaded.execution is None
        assert loaded.experiment_seed is None


def _attack_result_for_io(detector_name="detr-seed1"):
    rng = np.random.default_rng(9)
    from repro.core.results import AttackResult, ParetoSolution

    solution = ParetoSolution(
        mask=FilterMask(rng.normal(0, 5, size=(6, 10, 3))),
        intensity=0.5,
        degradation=0.25,
        distance=1.5,
        rank=1,
    )
    return AttackResult(
        image=rng.uniform(0, 255, size=(6, 10, 3)),
        clean_prediction=Prediction(
            [BoundingBox(cl=0, x=2.0, y=3.0, l=4.0, w=5.0, score=0.9)]
        ),
        solutions=[solution],
        detector_name=detector_name,
        num_evaluations=10,
        cache_hits=2,
    )


class TestDefenseEvaluationSerialization:
    def test_roundtrip_is_exact(self, tmp_path):
        from repro.defenses.evaluation import DefenseEvaluation
        from repro.io.serialization import (
            load_defense_evaluation,
            save_defense_evaluation,
        )

        original = DefenseEvaluation(
            undefended_result=_attack_result_for_io("detr-seed1"),
            defended_result=_attack_result_for_io("detr-seed1-noise_defended"),
            undefended_best_degradation=0.25,
            defended_best_degradation=0.75,
            clean_recall_undefended=1.0,
            clean_recall_defended=0.5,
            execution={"backend": "serial", "n_jobs": 1},
        )
        loaded = load_defense_evaluation(
            save_defense_evaluation(original, tmp_path / "defense")
        )
        assert (
            loaded.undefended_result.fingerprint()
            == original.undefended_result.fingerprint()
        )
        assert (
            loaded.defended_result.fingerprint()
            == original.defended_result.fingerprint()
        )
        assert loaded.robustness_gain == original.robustness_gain
        assert loaded.clean_recall_undefended == 1.0
        assert loaded.clean_recall_defended == 0.5
        assert loaded.execution == original.execution
        assert loaded.summary_rows() == original.summary_rows()

    def test_ensemble_roundtrip_is_exact(self, tmp_path):
        from repro.defenses.evaluation import EnsembleDefenseEvaluation
        from repro.io.serialization import (
            load_ensemble_defense_evaluation,
            save_ensemble_defense_evaluation,
        )

        original = EnsembleDefenseEvaluation(
            attack_result=_attack_result_for_io("ensemble"),
            member_degradations=[0.3, 0.9],
            fused_degradation=0.8,
            execution={"backend": "process", "n_jobs": 4},
        )
        loaded = load_ensemble_defense_evaluation(
            save_ensemble_defense_evaluation(original, tmp_path / "ensemble")
        )
        assert (
            loaded.attack_result.fingerprint() == original.attack_result.fingerprint()
        )
        assert loaded.member_degradations == original.member_degradations
        assert loaded.fused_degradation == original.fused_degradation
        assert loaded.fusion_helps == original.fusion_helps
        assert loaded.execution == original.execution
