"""Tests for ASCII rendering and PPM export."""

import numpy as np
import pytest

from repro.analysis.visualization import (
    mask_to_ascii,
    overlay_boxes,
    prediction_to_ascii,
    save_ppm,
    side_by_side,
)
from repro.detection.boxes import BoundingBox
from repro.detection.prediction import Prediction


class TestPredictionToAscii:
    def test_canvas_dimensions(self):
        text = prediction_to_ascii(Prediction.empty(), 96, 320, columns=40, rows=10)
        lines = text.splitlines()
        # 10 canvas rows plus the legend line.
        assert len(lines) == 11
        assert all(len(line) == 40 for line in lines[:10])

    def test_box_glyph_drawn(self):
        prediction = Prediction([BoundingBox(cl=0, x=48, y=80, l=30, w=60)])
        text = prediction_to_ascii(prediction, 96, 320)
        assert "C" in text

    def test_midline_marker_present(self):
        text = prediction_to_ascii(Prediction.empty(), 96, 320, columns=40, rows=10)
        assert "|" in text.splitlines()[0]

    def test_left_object_drawn_left_of_midline(self):
        prediction = Prediction([BoundingBox(cl=1, x=48, y=40, l=20, w=30)])
        text = prediction_to_ascii(prediction, 96, 320, columns=40, rows=10)
        for line in text.splitlines()[:10]:
            if "P" in line:
                assert line.index("P") < 20

    def test_too_small_canvas_rejected(self):
        with pytest.raises(ValueError):
            prediction_to_ascii(Prediction.empty(), 96, 320, columns=2, rows=2)


class TestMaskToAscii:
    def test_zero_mask_renders_blank(self):
        text = mask_to_ascii(np.zeros((32, 64, 3)), columns=20, rows=5)
        assert set(text.replace("\n", "")) == {" "}

    def test_strong_region_renders_dense_glyphs(self):
        mask = np.zeros((32, 64, 3))
        mask[:, 48:, :] = 255.0
        text = mask_to_ascii(mask, columns=20, rows=5)
        assert "@" in text

    def test_accepts_2d_mask(self):
        text = mask_to_ascii(np.ones((16, 16)), columns=8, rows=4)
        assert len(text.splitlines()) == 4


class TestSideBySide:
    def test_blocks_joined_line_by_line(self):
        combined = side_by_side("ab\ncd", "XY\nZW", gap=2)
        lines = combined.splitlines()
        assert lines[0] == "ab  XY"
        assert lines[1] == "cd  ZW"

    def test_uneven_heights(self):
        combined = side_by_side("ab", "XY\nZW")
        assert len(combined.splitlines()) == 2


class TestImageExport:
    def test_save_ppm_writes_header_and_payload(self, tmp_path):
        image = np.zeros((4, 6, 3))
        image[..., 0] = 255.0
        path = save_ppm(image, tmp_path / "out.ppm")
        data = path.read_bytes()
        assert data.startswith(b"P6\n6 4\n255\n")
        assert len(data) == len(b"P6\n6 4\n255\n") + 4 * 6 * 3

    def test_save_ppm_rejects_non_rgb(self, tmp_path):
        with pytest.raises(ValueError):
            save_ppm(np.zeros((4, 6)), tmp_path / "out.ppm")

    def test_overlay_boxes_draws_outline(self):
        image = np.zeros((20, 20, 3))
        prediction = Prediction([BoundingBox(cl=0, x=10, y=10, l=8, w=8)])
        overlaid = overlay_boxes(image, prediction, color=(255, 0, 0))
        assert overlaid[6, 10, 0] == 255.0  # top edge
        assert overlaid[10, 10, 0] == 0.0  # interior untouched
        assert np.allclose(image, 0.0)  # original unchanged
