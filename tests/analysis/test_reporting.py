"""Tests for tabular reporting and the architecture comparison report."""

import numpy as np
import pytest

from repro.analysis.reporting import (
    ComparisonReport,
    format_table,
    objectives_to_rows,
    write_csv,
)
from repro.core.masks import FilterMask
from repro.core.results import AttackResult, ParetoSolution
from repro.detection.boxes import BoundingBox
from repro.detection.prediction import Prediction


def _result(objective_triples, detector_name="det"):
    solutions = [
        ParetoSolution(
            mask=FilterMask.zeros((2, 2, 3)),
            intensity=i,
            degradation=d,
            distance=s,
            rank=1,
        )
        for i, d, s in objective_triples
    ]
    return AttackResult(
        image=np.zeros((2, 2, 3)),
        clean_prediction=Prediction([BoundingBox(cl=0, x=1, y=1, l=1, w=1)]),
        solutions=solutions,
        detector_name=detector_name,
    )


class TestFormatTable:
    def test_empty_rows(self):
        assert format_table([]) == "(empty table)"

    def test_header_and_alignment(self):
        rows = [{"name": "a", "value": 1.0}, {"name": "bb", "value": 2.5}]
        text = format_table(rows)
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert len(lines) == 4
        assert "2.5000" in text

    def test_explicit_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        rows = [{"x": 1, "y": "hello"}, {"x": 2, "y": "world"}]
        path = tmp_path / "table.csv"
        write_csv(rows, path)
        content = path.read_text().strip().splitlines()
        assert content[0] == "x,y"
        assert content[1] == "1,hello"

    def test_empty_rows_create_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_csv([], path)
        assert path.read_text() == ""


class TestObjectivesToRows:
    def test_rows_contain_objectives(self):
        result = _result([(0.1, 0.5, 0.3)])
        rows = objectives_to_rows(result, label="yolo")
        assert rows[0]["label"] == "yolo"
        assert rows[0]["intensity"] == 0.1
        assert rows[0]["degradation"] == 0.5
        assert rows[0]["distance"] == 0.3

    def test_label_defaults_to_detector_name(self):
        rows = objectives_to_rows(_result([(0.1, 0.5, 0.3)], detector_name="abc"))
        assert rows[0]["label"] == "abc"


class TestComparisonReport:
    def test_summary_rows(self):
        report = ComparisonReport()
        report.add_result("yolo", _result([(0.2, 0.9, 0.1), (0.4, 0.8, 0.2)]))
        report.add_result("detr", _result([(0.1, 0.4, 0.3)]))
        summary = {row["label"]: row for row in report.summary_rows()}
        assert summary["yolo"]["solutions"] == 2
        assert summary["yolo"]["best_degradation"] == pytest.approx(0.8)
        assert summary["detr"]["best_degradation"] == pytest.approx(0.4)
        assert "yolo" in report.to_text()

    def test_labels_sorted(self):
        report = ComparisonReport()
        report.add_result("zzz", _result([(0.1, 0.5, 0.1)]))
        report.add_result("aaa", _result([(0.1, 0.5, 0.1)]))
        assert report.labels() == ["aaa", "zzz"]

    def test_dominates_comparison_detects_dominance(self):
        report = ComparisonReport()
        # detr points dominate yolo points in (intensity, degradation).
        report.add_result("yolo", _result([(0.5, 0.9, 0.0), (0.6, 0.8, 0.0)]))
        report.add_result("detr", _result([(0.1, 0.3, 0.0)]))
        outcome = report.dominates_comparison("yolo", "detr")
        assert outcome["first_dominated"] == 1.0
        assert outcome["second_dominated"] == 0.0

    def test_dominates_comparison_empty_label(self):
        report = ComparisonReport()
        report.add_result("yolo", _result([(0.5, 0.9, 0.0)]))
        outcome = report.dominates_comparison("yolo", "missing")
        assert outcome == {"first_dominated": 0.0, "second_dominated": 0.0}
