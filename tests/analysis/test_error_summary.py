"""Tests for aggregating the Section V-B error taxonomy."""

import numpy as np

from repro.analysis.errors import (
    AttackErrorSummary,
    summarize_attack_errors,
    summarize_transitions,
)
from repro.core.masks import FilterMask
from repro.core.results import AttackResult, ParetoSolution
from repro.detection.boxes import BoundingBox
from repro.detection.errors import ErrorType, PredictionTransition
from repro.detection.prediction import Prediction


def _transition(error):
    return PredictionTransition(error, None, None, 0.0)


def _result_with_transitions(transitions):
    solution = ParetoSolution(
        mask=FilterMask.zeros((4, 4, 3)),
        intensity=0.1,
        degradation=0.5,
        distance=0.2,
        rank=1,
        transitions=transitions,
    )
    return AttackResult(
        image=np.zeros((4, 4, 3)),
        clean_prediction=Prediction([BoundingBox(cl=0, x=2, y=2, l=2, w=2)]),
        solutions=[solution],
    )


class TestAttackErrorSummary:
    def test_counts_initialised_for_all_types(self):
        summary = AttackErrorSummary()
        assert set(summary.counts) == set(ErrorType)
        assert summary.total_changes == 0

    def test_total_changes_excludes_unchanged(self):
        summary = summarize_transitions(
            [_transition(ErrorType.UNCHANGED), _transition(ErrorType.TP_TO_FN)]
        )
        assert summary.total_changes == 1
        assert summary.observed_types() == [ErrorType.TP_TO_FN]

    def test_merge(self):
        first = summarize_transitions([_transition(ErrorType.TP_TO_FN)])
        second = summarize_transitions([_transition(ErrorType.TN_TO_FP)])
        merged = first.merge(second)
        assert merged.counts[ErrorType.TP_TO_FN] == 1
        assert merged.counts[ErrorType.TN_TO_FP] == 1
        assert merged.num_solutions == 2

    def test_as_rows(self):
        rows = AttackErrorSummary().as_rows()
        assert len(rows) == len(ErrorType)
        assert {"error_type", "count"} == set(rows[0])


class TestSummarizeAttackErrors:
    def test_single_result(self):
        result = _result_with_transitions(
            [_transition(ErrorType.BOX_CHANGED), _transition(ErrorType.TP_TO_FN)]
        )
        summary = summarize_attack_errors(result)
        assert summary.counts[ErrorType.BOX_CHANGED] == 1
        assert summary.counts[ErrorType.TP_TO_FN] == 1
        assert summary.num_solutions == 1

    def test_multiple_results_accumulate(self):
        results = [
            _result_with_transitions([_transition(ErrorType.TN_TO_FP)]),
            _result_with_transitions([_transition(ErrorType.TN_TO_FP)]),
        ]
        summary = summarize_attack_errors(results)
        assert summary.counts[ErrorType.TN_TO_FP] == 2
        assert summary.num_solutions == 2
