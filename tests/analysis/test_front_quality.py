"""Front-quality metrics used by the fast-search benchmark gates."""

import numpy as np
import pytest

from repro.analysis.front_quality import (
    compare_front_quality,
    damage,
    front_quality,
    front_reference,
)


def _front(rows):
    return np.asarray(rows, dtype=np.float64)


class TestDamage:
    def test_champions(self):
        front = _front([[0.2, 0.9, -0.1], [0.5, 0.4, -0.8], [0.1, 0.7, -0.3]])
        summary = damage(front)
        assert summary["best_degradation"] == 0.4
        assert summary["best_distance"] == 0.8
        assert summary["best_intensity"] == 0.1

    def test_empty_front_is_neutral(self):
        summary = damage(np.zeros((0, 3)))
        assert summary == {
            "best_degradation": 1.0,
            "best_distance": 0.0,
            "best_intensity": 0.0,
        }

    def test_rejects_wrong_shapes(self):
        with pytest.raises(ValueError):
            damage(np.zeros((3, 2)))


class TestFrontReference:
    def test_dominates_all_inputs(self):
        a = _front([[0.1, 0.9, -0.2]])
        b = _front([[0.4, 0.3, -0.6]])
        reference = front_reference(a, b)
        assert np.all(reference >= a) and np.all(reference >= b)

    def test_skips_empty_fronts(self):
        a = _front([[0.1, 0.9, -0.2]])
        reference = front_reference(a, np.zeros((0, 3)))
        assert reference.shape == (3,)
        with pytest.raises(ValueError):
            front_reference(np.zeros((0, 3)))


class TestCompare:
    def test_identical_fronts_ratio_one(self):
        front = _front([[0.1, 0.8, -0.2], [0.3, 0.4, -0.7]])
        report = compare_front_quality(front, front)
        assert report["hypervolume_ratio"] == pytest.approx(1.0)
        assert report["degradation_delta"] == 0.0
        assert report["distance_delta"] == 0.0

    def test_weaker_approx_front_scores_below_one(self):
        exact = _front([[0.1, 0.2, -0.9], [0.2, 0.1, -0.8]])
        approx = _front([[0.3, 0.5, -0.4], [0.5, 0.4, -0.3]])
        report = compare_front_quality(approx, exact)
        assert report["hypervolume_ratio"] < 1.0
        assert report["degradation_delta"] > 0.0

    def test_metrics_share_one_reference(self):
        exact = _front([[0.1, 0.2, -0.9]])
        approx = _front([[0.4, 0.6, -0.1]])
        report = compare_front_quality(approx, exact)
        reference = np.asarray(report["reference"])
        assert np.all(reference >= exact) and np.all(reference >= approx)
        assert report["approx"] == front_quality(approx, reference)
        assert report["exact"] == front_quality(exact, reference)
