"""Tests for the parameter-sweep utilities."""

import pytest

from repro.analysis.sweep import budget_sweep, epsilon_sweep, mutation_window_sweep
from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.nsga.algorithm import NSGAConfig


@pytest.fixture()
def tiny_base_config():
    return AttackConfig(
        nsga=NSGAConfig(num_iterations=2, population_size=5, seed=0),
        region=HalfImageRegion("right"),
    )


EXPECTED_KEYS = {
    "front_size",
    "best_degradation",
    "mean_intensity",
    "best_distance",
    "hypervolume",
}


class TestEpsilonSweep:
    def test_one_row_per_epsilon(self, yolo_detector, small_dataset, tiny_base_config):
        rows = epsilon_sweep(
            yolo_detector, small_dataset[0].image, epsilons=(0.0, 4.0), base_config=tiny_base_config
        )
        assert len(rows) == 2
        assert [row["epsilon"] for row in rows] == [0.0, 4.0]
        assert EXPECTED_KEYS <= set(rows[0])

    def test_statistics_bounded(self, yolo_detector, small_dataset, tiny_base_config):
        rows = epsilon_sweep(
            yolo_detector, small_dataset[0].image, epsilons=(2.0,), base_config=tiny_base_config
        )
        row = rows[0]
        assert 0.0 <= row["best_degradation"] <= 1.0 + 1e-9
        assert row["front_size"] >= 1


class TestMutationWindowSweep:
    def test_rows_and_keys(self, yolo_detector, small_dataset, tiny_base_config):
        rows = mutation_window_sweep(
            yolo_detector,
            small_dataset[0].image,
            window_fractions=(0.005, 0.05),
            base_config=tiny_base_config,
        )
        assert [row["window_fraction"] for row in rows] == [0.005, 0.05]
        assert EXPECTED_KEYS <= set(rows[0])


class TestBudgetSweep:
    def test_evaluation_counts_increase_with_budget(
        self, yolo_detector, small_dataset, tiny_base_config
    ):
        rows = budget_sweep(
            yolo_detector,
            small_dataset[0].image,
            budgets=((1, 4), (2, 6)),
            base_config=tiny_base_config,
        )
        assert len(rows) == 2
        assert rows[1]["evaluations"] > rows[0]["evaluations"]
        assert rows[0]["iterations"] == 1.0 and rows[0]["population"] == 4.0
