"""Tests for feature heatmaps and the grey-box objective."""

import numpy as np
import pytest

from repro.analysis.heatmap import (
    attention_heatmap,
    feature_distance_objective,
    feature_heatmap,
    heatmap_difference,
)
from repro.core.objectives import ButterflyObjectives


class TestFeatureHeatmap:
    def test_shape_and_range(self, yolo_detector, small_dataset):
        heat = feature_heatmap(yolo_detector, small_dataset[0].image)
        rows, cols = yolo_detector.extractor.grid_shape(small_dataset[0].image)
        assert heat.shape == (rows, cols)
        assert heat.min() >= 0.0 and heat.max() <= 1.0

    def test_object_cells_activate(self, yolo_detector, small_dataset):
        sample = small_dataset[0]
        heat = feature_heatmap(yolo_detector, sample.image)
        cell = yolo_detector.config.cell
        object_values = []
        for box in sample.ground_truth.valid_boxes:
            object_values.append(heat[int(box.x // cell), int(box.y // cell)])
        assert max(object_values) > heat.mean()

    def test_heatmap_difference_localised_for_single_stage(
        self, yolo_detector, small_dataset
    ):
        image = small_dataset[0].image
        mask = np.zeros_like(image)
        mask[:, -32:, :] = 80.0
        difference = heatmap_difference(yolo_detector, image, mask)
        cols = difference.shape[1]
        # The perturbed (right) side changes far more than the left side.
        assert difference[:, -4:].mean() > 5 * max(difference[:, : cols // 2].mean(), 1e-9)


class TestAttentionHeatmap:
    def test_shape_and_normalisation(self, detr_detector, small_dataset):
        heat = attention_heatmap(detr_detector, small_dataset[0].image)
        rows, cols = detr_detector.extractor.grid_shape(small_dataset[0].image)
        assert heat.shape == (rows, cols)
        assert heat.min() >= 0.0 and heat.max() <= 1.0

    def test_single_cell_attention_row(self, detr_detector, small_dataset):
        heat = attention_heatmap(detr_detector, small_dataset[0].image, cell_index=0)
        assert heat.shape == detr_detector.extractor.grid_shape(small_dataset[0].image)

    def test_cell_index_out_of_range(self, detr_detector, small_dataset):
        with pytest.raises(IndexError):
            attention_heatmap(detr_detector, small_dataset[0].image, cell_index=10**6)

    def test_requires_transformer(self, yolo_detector, small_dataset):
        with pytest.raises(TypeError):
            attention_heatmap(yolo_detector, small_dataset[0].image)


class TestFeatureDistanceObjective:
    def test_zero_mask_gives_zero(self, yolo_detector, small_dataset):
        objective = feature_distance_objective(yolo_detector)
        image = small_dataset[0].image
        assert objective(image, np.zeros_like(image), None) == pytest.approx(0.0)

    def test_stronger_perturbation_is_more_negative(self, yolo_detector, small_dataset):
        objective = feature_distance_objective(yolo_detector)
        image = small_dataset[0].image
        weak = np.full_like(image, 5.0)
        strong = np.full_like(image, 60.0)
        assert objective(image, strong, None) < objective(image, weak, None)

    def test_integrates_as_extra_objective(self, yolo_detector, small_dataset):
        evaluator = ButterflyObjectives(
            detector=yolo_detector,
            image=small_dataset[0].image,
            extra_objectives=(feature_distance_objective(yolo_detector),),
        )
        vector = evaluator(np.zeros(small_dataset[0].image.shape))
        assert vector.shape == (4,)
