"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_attack_defaults(self):
        args = build_parser().parse_args(["attack"])
        assert args.command == "attack"
        assert args.detector == "detr"
        assert args.region == "right"
        assert args.paper_budget is False

    def test_compare_arguments(self):
        args = build_parser().parse_args(["compare", "--models", "3", "--images", "2"])
        assert args.models == 3
        assert args.images == 2

    def test_compare_execution_arguments(self):
        args = build_parser().parse_args(
            ["compare", "--jobs", "4", "--backend", "process", "--experiment-seed", "7"]
        )
        assert args.jobs == 4
        assert args.backend == "process"
        assert args.experiment_seed == 7

    def test_compare_execution_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.jobs == 1
        assert args.backend is None
        assert args.experiment_seed is None

    def test_compare_rejects_bad_backend_and_jobs(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--backend", "threads"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--jobs", "0"])

    def test_figures_choices(self):
        args = build_parser().parse_args(["figures", "fig1"])
        assert args.name == "fig1"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "fig9"])

    def test_table_choices(self):
        assert build_parser().parse_args(["table", "1"]).name == "1"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "3"])


class TestCommands:
    def test_table_1(self, capsys):
        assert main(["table", "1"]) == 0
        output = capsys.readouterr().out
        assert "# models generated" in output
        assert "16" in output

    def test_table_2(self, capsys):
        assert main(["table", "2"]) == 0
        output = capsys.readouterr().out
        assert "Population size" in output
        assert "101" in output

    def test_attack_command_runs_and_saves(self, capsys, tmp_path):
        exit_code = main(
            [
                "attack",
                "--detector",
                "yolo",
                "--iterations",
                "1",
                "--population",
                "4",
                "--output",
                str(tmp_path / "run"),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "single_stage-seed1" in output
        assert "obj_degrad" in output
        assert (tmp_path / "run" / "meta.json").exists()
        assert (tmp_path / "run" / "arrays.npz").exists()

    def test_compare_command_pooled_smoke(self, capsys):
        """Tiny sweep under --jobs 2: the pooled engine end to end."""
        exit_code = main(
            [
                "compare",
                "--models",
                "1",
                "--images",
                "1",
                "--iterations",
                "1",
                "--population",
                "4",
                "--jobs",
                "2",
                "--backend",
                "process",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "best obj_degrad" in output
        assert "backend=process" in output
        assert "jobs=2" in output
        assert "Activation cache (sweep total)" in output
