"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_attack_defaults(self):
        args = build_parser().parse_args(["attack"])
        assert args.command == "attack"
        assert args.detector == "detr"
        assert args.region == "right"
        assert args.paper_budget is False

    def test_compare_arguments(self):
        args = build_parser().parse_args(["compare", "--models", "3", "--images", "2"])
        assert args.models == 3
        assert args.images == 2

    def test_compare_execution_arguments(self):
        args = build_parser().parse_args(
            ["compare", "--jobs", "4", "--backend", "process", "--experiment-seed", "7"]
        )
        assert args.jobs == 4
        assert args.backend == "process"
        assert args.experiment_seed == 7

    def test_compare_execution_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.jobs == 1
        assert args.backend is None
        assert args.experiment_seed is None

    def test_compare_rejects_bad_backend_and_jobs(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--backend", "threads"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--jobs", "0"])

    def test_figures_choices(self):
        args = build_parser().parse_args(["figures", "fig1"])
        assert args.name == "fig1"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "fig9"])

    def test_table_choices(self):
        assert build_parser().parse_args(["table", "1"]).name == "1"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "3"])


class TestCommands:
    def test_table_1(self, capsys):
        assert main(["table", "1"]) == 0
        output = capsys.readouterr().out
        assert "# models generated" in output
        assert "16" in output

    def test_table_2(self, capsys):
        assert main(["table", "2"]) == 0
        output = capsys.readouterr().out
        assert "Population size" in output
        assert "101" in output

    def test_attack_command_runs_and_saves(self, capsys, tmp_path):
        exit_code = main(
            [
                "attack",
                "--detector",
                "yolo",
                "--iterations",
                "1",
                "--population",
                "4",
                "--output",
                str(tmp_path / "run"),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "single_stage-seed1" in output
        assert "obj_degrad" in output
        assert (tmp_path / "run" / "meta.json").exists()
        assert (tmp_path / "run" / "arrays.npz").exists()

    def test_compare_command_pooled_smoke(self, capsys):
        """Tiny sweep under --jobs 2: the pooled engine end to end."""
        exit_code = main(
            [
                "compare",
                "--models",
                "1",
                "--images",
                "1",
                "--iterations",
                "1",
                "--population",
                "4",
                "--jobs",
                "2",
                "--backend",
                "process",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "best obj_degrad" in output
        assert "backend=process" in output
        assert "jobs=2" in output
        assert "Activation cache (sweep total)" in output

    def test_transfer_command_saves_roundtrippable_report(self, capsys, tmp_path):
        """`repro transfer` persists a report that round-trips through io."""
        exit_code = main(
            [
                "transfer",
                "--models",
                "2",
                "--iterations",
                "1",
                "--population",
                "4",
                "--experiment-seed",
                "3",
                "--output",
                str(tmp_path / "transfer"),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "white-box obj_degrad" in output
        assert "backend=serial" in output

        from repro.io.serialization import load_transfer_result

        report = load_transfer_result(tmp_path / "transfer")
        assert report.matrix.shape == (2, 2)
        assert report.model_names == ["transformer-seed1", "transformer-seed2"]
        assert len(report.best_masks) == 2
        assert report.experiment_seed == 3
        assert report.execution["backend"] == "serial"

    def test_defend_command_saves_roundtrippable_report(self, capsys, tmp_path):
        """`repro defend` persists defense + ensemble reports that round-trip."""
        exit_code = main(
            [
                "defend",
                "--iterations",
                "1",
                "--population",
                "4",
                "--ensemble",
                "2",
                "--output",
                str(tmp_path / "defend"),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "robustness gain" in output
        assert "fusion helps" in output

        from repro.io.serialization import (
            load_defense_evaluation,
            load_ensemble_defense_evaluation,
        )

        evaluation = load_defense_evaluation(tmp_path / "defend")
        assert evaluation.undefended_result.solutions
        assert evaluation.defended_result.solutions
        assert evaluation.execution["backend"] == "serial"
        ensemble = load_ensemble_defense_evaluation(tmp_path / "defend" / "ensemble")
        assert len(ensemble.member_degradations) == 2

    def test_transfer_command_pooled_smoke(self, capsys):
        """Tiny transfer sweep under --jobs 2: both stages on the pool."""
        exit_code = main(
            [
                "transfer",
                "--models",
                "2",
                "--iterations",
                "1",
                "--population",
                "4",
                "--jobs",
                "2",
                "--backend",
                "process",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "backend=process" in output
        assert "jobs=2" in output


class TestSweepParser:
    def test_transfer_defaults_and_engine_options(self):
        args = build_parser().parse_args(["transfer"])
        assert args.architecture == "detr"
        assert args.models == 2
        assert args.jobs == 1 and args.backend is None and args.experiment_seed is None
        args = build_parser().parse_args(
            ["transfer", "--jobs", "4", "--backend", "process", "--experiment-seed", "9"]
        )
        assert (args.jobs, args.backend, args.experiment_seed) == (4, "process", 9)

    def test_defend_defaults_and_engine_options(self):
        args = build_parser().parse_args(["defend"])
        assert args.detector == "detr"
        assert args.ensemble is None
        assert args.jobs == 1
        args = build_parser().parse_args(["defend", "--ensemble", "3", "--jobs", "2"])
        assert args.ensemble == 3 and args.jobs == 2

    def test_sweep_commands_reject_bad_engine_options(self):
        for command in ("transfer", "defend"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--backend", "threads"])
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--jobs", "0"])


class TestEngineOptionValidation:
    def test_negative_experiment_seed_rejected_at_parse_time(self):
        for command in ("compare", "transfer", "defend"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--experiment-seed", "-1"])
