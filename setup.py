"""Setuptools entry point.

A classic ``setup.py`` is kept (alongside ``pyproject.toml``) so that
``pip install -e .`` works in fully offline environments where the isolated
PEP 517 build path cannot download ``wheel``.  All metadata mirrors
``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Butterfly Effect Attack: Tiny and Seemingly "
        "Unrelated Perturbations for Object Detection' (DATE 2023)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={"console_scripts": ["repro-attack=repro.cli:main"]},
)
