"""The Figure 2 sweep: attacking seed-varied models of both architectures.

The paper applies NSGA-II to 25 YOLOv5 and 25 DETR models on 16 KITTI images
each (Table I) with perturbations restricted to the right half, then plots
the resulting Pareto objectives (Figure 2).  :func:`run_architecture_comparison`
reproduces that sweep at a configurable scale and returns the per-run
results plus a :class:`~repro.analysis.reporting.ComparisonReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.analysis.reporting import ComparisonReport
from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.core.results import AttackResult
from repro.data.dataset import SyntheticDataset, generate_dataset
from repro.detectors.activation_cache import ActivationCacheStore
from repro.detectors.training import TrainingConfig
from repro.detectors.zoo import build_model_zoo
from repro.experiments.config import ExperimentConfig
from repro.nsga.algorithm import NSGAConfig


@dataclass
class ArchitectureComparison:
    """Results of the architecture-comparison sweep (Figure 2 data)."""

    report: ComparisonReport
    results: dict[str, list[AttackResult]] = field(default_factory=dict)
    experiment: ExperimentConfig | None = None

    def front_points(self, label: str) -> np.ndarray:
        """All front objective triples of one architecture, shape (n, 3)."""
        points = [
            result.objectives_array(front_only=True)
            for result in self.results.get(label, [])
        ]
        if not points:
            return np.zeros((0, 3))
        return np.concatenate(points, axis=0)

    def best_degradation(self, label: str) -> float:
        """Lowest obj_degrad reached by an architecture (lower = stronger attack)."""
        points = self.front_points(label)
        return float(points[:, 1].min()) if points.size else 1.0

    def mean_intensity_of_successful(self, label: str) -> float:
        """Mean intensity of front solutions that changed the prediction."""
        points = self.front_points(label)
        if points.size == 0:
            return 0.0
        successful = points[points[:, 1] < 1.0 - 1e-9]
        if successful.size == 0:
            return 0.0
        return float(successful[:, 0].mean())

    def susceptibility_summary(self) -> dict[str, dict[str, float]]:
        """Per-architecture summary of the Figure 2 comparison."""
        summary: dict[str, dict[str, float]] = {}
        for label in self.results:
            points = self.front_points(label)
            if points.size == 0:
                summary[label] = {
                    "best_degradation": 1.0,
                    "mean_degradation": 1.0,
                    "mean_intensity": 0.0,
                    "mean_distance": 0.0,
                }
                continue
            summary[label] = {
                "best_degradation": float(points[:, 1].min()),
                "mean_degradation": float(points[:, 1].mean()),
                "mean_intensity": float(points[:, 0].mean()),
                "mean_distance": float(points[:, 2].mean()),
            }
        return summary


def run_architecture_comparison(
    experiment: ExperimentConfig | None = None,
    nsga: NSGAConfig | None = None,
    architectures: Sequence[str] = ("yolo", "detr"),
    dataset: SyntheticDataset | None = None,
    perturbation_half: str = "right",
    object_half: str | None = "left",
    dataset_seed: int = 11,
    training: TrainingConfig | None = None,
) -> ArchitectureComparison:
    """Run the paper's architecture-comparison protocol.

    Parameters
    ----------
    experiment:
        Table I-style protocol; defaults to a reduced laptop-scale variant.
        Pass :meth:`ExperimentConfig.paper` for the full 25x16 sweep.
    nsga:
        NSGA-II configuration; defaults to a reduced budget.  Pass
        :data:`repro.experiments.config.NSGA_TABLE_II` for the paper's.
    architectures:
        Architecture names understood by
        :func:`repro.detectors.zoo.build_model_zoo`.
    dataset:
        Evaluation images; generated from ``dataset_seed`` when omitted.
    perturbation_half / object_half:
        The spatial protocol: perturbations restricted to one half,
        objects placed in the other so that any observed degradation is a
        butterfly effect.
    """
    experiment = experiment if experiment is not None else ExperimentConfig.reduced()
    nsga = nsga if nsga is not None else NSGAConfig(num_iterations=8, population_size=16)
    if training is None:
        training = TrainingConfig(
            image_length=experiment.image_length, image_width=experiment.image_width
        )
    if dataset is None:
        dataset = generate_dataset(
            num_images=experiment.images_per_model,
            seed=dataset_seed,
            image_length=experiment.image_length,
            image_width=experiment.image_width,
            half=object_half,
        )

    attack_config = AttackConfig(
        nsga=nsga, region=HalfImageRegion(perturbation_half)
    )

    report = ComparisonReport()
    all_results: dict[str, list[AttackResult]] = {}
    seeds = experiment.model_seeds[: experiment.models_per_architecture]

    # One clean-scene activation store serves the whole models × images
    # sweep: entries are keyed by (detector identity, image digest), so a
    # new scene can never hit a stale entry, and the size cap (an LRU
    # eviction) bounds the sweep's memory.  Each model's entries are
    # explicitly invalidated once its images are done — the sweep never
    # revisits a finished model, so keeping them would only displace live
    # entries.
    activation_store = (
        ActivationCacheStore(max_entries=attack_config.activation_cache_size)
        if attack_config.use_activation_cache
        else None
    )

    for architecture in architectures:
        models = build_model_zoo(architecture, seeds=seeds, training=training)
        label = models[0].architecture
        results: list[AttackResult] = []
        for model in models:
            attack = ButterflyAttack(
                model, attack_config, activation_store=activation_store
            )
            for sample in dataset:
                result = attack.attack(sample.image)
                results.append(result)
                report.add_result(label, result)
            if activation_store is not None:
                activation_store.invalidate(model)
        all_results[label] = results

    return ArchitectureComparison(
        report=report, results=all_results, experiment=experiment
    )
