"""The Figure 2 sweep: attacking seed-varied models of both architectures.

The paper applies NSGA-II to 25 YOLOv5 and 25 DETR models on 16 KITTI images
each (Table I) with perturbations restricted to the right half, then plots
the resulting Pareto objectives (Figure 2).  :func:`run_architecture_comparison`
reproduces that sweep at a configurable scale and returns the per-run
results plus a :class:`~repro.analysis.reporting.ComparisonReport`.

The sweep is expressed as a declarative models × images work plan
(:mod:`repro.experiments.jobs`) executed by a pluggable backend
(:mod:`repro.experiments.engine`): the serial backend reproduces the
historical nested loop bit-exactly, and the process-pool backend fans the
same jobs out over ``multiprocessing`` workers — bit-identical results,
order-of-magnitude wall-clock on multi-core machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.analysis.reporting import ComparisonReport
from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion
from repro.core.results import AttackResult
from repro.data.dataset import SyntheticDataset, generate_dataset
from repro.detectors.training import TrainingConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import (
    ExecutionBackend,
    ExecutionReport,
    RetryPolicy,
    execute_plan,
    resolve_backend,
)
from repro.experiments.jobs import (
    SequenceSpec,
    build_attack_plan,
    build_sequence_plan,
    release_plan_models,
)
from repro.nsga.algorithm import NSGAConfig


@dataclass
class ArchitectureComparison:
    """Results of the architecture-comparison sweep (Figure 2 data)."""

    report: ComparisonReport
    results: dict[str, list[AttackResult]] = field(default_factory=dict)
    experiment: ExperimentConfig | None = None
    execution: ExecutionReport | None = None

    def provenance(self) -> dict | None:
        """The shared execution-provenance summary (see
        :meth:`~repro.experiments.engine.ExecutionReport.summary`) — the
        same structure the transferability and defense reports persist."""
        return self.execution.summary() if self.execution is not None else None

    def front_points(self, label: str) -> np.ndarray:
        """All front objective triples of one architecture, shape (n, 3)."""
        points = [
            result.objectives_array(front_only=True)
            for result in self.results.get(label, [])
        ]
        if not points:
            return np.zeros((0, 3))
        return np.concatenate(points, axis=0)

    def best_degradation(self, label: str) -> float:
        """Lowest obj_degrad reached by an architecture (lower = stronger attack)."""
        points = self.front_points(label)
        return float(points[:, 1].min()) if points.size else 1.0

    def mean_intensity_of_successful(self, label: str) -> float:
        """Mean intensity of front solutions that changed the prediction."""
        points = self.front_points(label)
        if points.size == 0:
            return 0.0
        successful = points[points[:, 1] < 1.0 - 1e-9]
        if successful.size == 0:
            return 0.0
        return float(successful[:, 0].mean())

    def susceptibility_summary(self) -> dict[str, dict[str, float]]:
        """Per-architecture summary of the Figure 2 comparison."""
        summary: dict[str, dict[str, float]] = {}
        for label in self.results:
            points = self.front_points(label)
            if points.size == 0:
                summary[label] = {
                    "best_degradation": 1.0,
                    "mean_degradation": 1.0,
                    "mean_intensity": 0.0,
                    "mean_distance": 0.0,
                }
                continue
            summary[label] = {
                "best_degradation": float(points[:, 1].min()),
                "mean_degradation": float(points[:, 1].mean()),
                "mean_intensity": float(points[:, 0].mean()),
                "mean_distance": float(points[:, 2].mean()),
            }
        return summary


def run_architecture_comparison(
    experiment: ExperimentConfig | None = None,
    nsga: NSGAConfig | None = None,
    architectures: Sequence[str] = ("yolo", "detr"),
    dataset: SyntheticDataset | None = None,
    perturbation_half: str = "right",
    object_half: str | None = "left",
    dataset_seed: int = 11,
    training: TrainingConfig | None = None,
    n_jobs: int | None = None,
    backend: "str | ExecutionBackend | None" = None,
    experiment_seed: int | None = None,
    checkpoint_dir: "str | None" = None,
    resume: bool = False,
    retry: RetryPolicy | None = None,
) -> ArchitectureComparison:
    """Run the paper's architecture-comparison protocol.

    Parameters
    ----------
    experiment:
        Table I-style protocol; defaults to a reduced laptop-scale variant.
        Pass :meth:`ExperimentConfig.paper` for the full 25x16 sweep.
    nsga:
        NSGA-II configuration; defaults to a reduced budget.  Pass
        :data:`repro.experiments.config.NSGA_TABLE_II` for the paper's.
    architectures:
        Architecture names understood by
        :func:`repro.detectors.zoo.build_model_zoo`.
    dataset:
        Evaluation images; generated from ``dataset_seed`` when omitted.
    perturbation_half / object_half:
        The spatial protocol: perturbations restricted to one half,
        objects placed in the other so that any observed degradation is a
        butterfly effect.
    n_jobs:
        Worker-process count; overrides ``experiment.n_jobs``.  ``1`` runs
        the in-process serial backend.
    backend:
        ``"serial"``, ``"process"``, a ready
        :class:`~repro.experiments.engine.ExecutionBackend` instance, or
        ``None`` to follow ``experiment.execution_backend`` (whose
        ``"auto"`` default picks serial for ``n_jobs == 1`` and the
        process pool otherwise; an explicit ``"serial"`` there is honoured
        even with ``n_jobs > 1``).  All backends are bit-identical; only
        wall-clock changes.
    experiment_seed:
        When set, every job gets its own NSGA-II seed derived via
        ``np.random.SeedSequence(experiment_seed).spawn`` by plan position
        (scheduling-independent); ``None`` keeps the historical behaviour
        where every attack runs ``nsga.seed``.
    checkpoint_dir:
        When set, completed jobs are journaled there as they stream in
        (:class:`~repro.experiments.checkpoint.PlanCheckpoint`).  With
        ``resume=True`` an interrupted sweep picks up from the journal,
        skipping journaled jobs — the final report is bit-identical to an
        uninterrupted run.
    retry:
        :class:`~repro.experiments.engine.RetryPolicy` governing in-run
        requeue of jobs whose worker crashed or raised; ``None`` keeps
        fail-fast.
    """
    experiment = experiment if experiment is not None else ExperimentConfig.reduced()
    nsga = nsga if nsga is not None else NSGAConfig(num_iterations=8, population_size=16)
    if training is None:
        training = TrainingConfig(
            image_length=experiment.image_length, image_width=experiment.image_width
        )
    if dataset is None:
        dataset = generate_dataset(
            num_images=experiment.images_per_model,
            seed=dataset_seed,
            image_length=experiment.image_length,
            image_width=experiment.image_width,
            half=object_half,
        )

    attack_config = AttackConfig(
        nsga=nsga, region=HalfImageRegion(perturbation_half)
    )

    n_jobs = n_jobs if n_jobs is not None else experiment.n_jobs
    if backend is None and experiment.execution_backend != "auto":
        # An explicit config choice is honoured verbatim — in particular
        # execution_backend="serial" pins the in-process executor even
        # with n_jobs > 1 (resolve_backend only auto-selects on None).
        backend = experiment.execution_backend
    owns_backend = not isinstance(backend, ExecutionBackend)
    engine_backend = resolve_backend(backend, n_jobs=n_jobs)

    plan = build_attack_plan(
        architectures=architectures,
        seeds=experiment.model_seeds[: experiment.models_per_architecture],
        dataset=dataset,
        attack_config=attack_config,
        training=training,
        experiment_seed=experiment_seed,
    )
    checkpoint = None
    if checkpoint_dir is not None:
        # Function-level import: this module is re-exported by the package
        # __init__, which runs before repro.experiments.checkpoint (and its
        # payload-codec imports) can finish initialising.
        from repro.experiments.checkpoint import PlanCheckpoint

        checkpoint = PlanCheckpoint(checkpoint_dir, resume=resume)
    try:
        execution = execute_plan(
            plan, engine_backend, checkpoint=checkpoint, retry=retry
        )
    finally:
        if checkpoint is not None:
            checkpoint.close()
        # Keep the process-local detector memo bounded to the live sweep:
        # repeated sweeps in one process would otherwise accumulate every
        # zoo ever trained.
        release_plan_models(plan)
        if owns_backend:
            # Resolved from a name: this sweep owns the backend and its
            # resources (persistent workers, shared memory).  A caller-
            # provided instance stays alive for the caller to reuse.
            engine_backend.close()

    # Plan order is the historical nested-loop order, so assembling the
    # report from plan-ordered outcomes reproduces the original row order
    # regardless of how the backend scheduled the jobs.
    report = ComparisonReport()
    all_results: dict[str, list[AttackResult]] = {
        label: [] for label in plan.labels
    }
    for job, outcome in zip(plan.jobs, execution.outcomes):
        label = job.model.label
        all_results[label].append(outcome.result)
        report.add_result(label, outcome.result)

    return ArchitectureComparison(
        report=report,
        results=all_results,
        experiment=experiment,
        execution=execution,
    )


@dataclass
class SequenceSweep:
    """Results of the streaming-sequence sweep.

    ``results`` holds one :class:`~repro.core.results.AttackResult` per
    plan job (plan order); ``execution`` carries backend provenance and
    the merged cache counters, including the temporal frame-cache traffic
    (``frame_hits``/``frame_misses``) the sequence jobs fold into their
    deltas.
    """

    results: list[AttackResult] = field(default_factory=list)
    execution: ExecutionReport | None = None

    def provenance(self) -> dict | None:
        """The shared execution-provenance summary."""
        return self.execution.summary() if self.execution is not None else None

    def mean_track_survival(self) -> float:
        """Mean best (lowest) front track survival across the sweep's runs."""
        values = []
        for result in self.results:
            front = result.pareto_front
            if front:
                values.append(
                    min(
                        solution.extras.get("track_survival", 1.0)
                        for solution in front
                    )
                )
        return float(np.mean(values)) if values else 1.0


def run_sequence_sweep(
    architectures: Sequence[str] = ("yolo",),
    seeds: Sequence[int] = (1,),
    sequences: Sequence[SequenceSpec] = (SequenceSpec(),),
    attack_config: AttackConfig | None = None,
    training: TrainingConfig | None = None,
    track_k: int = 2,
    iou_threshold: float = 0.5,
    frame_cache_size: int = 2,
    n_jobs: int = 1,
    backend: "str | ExecutionBackend | None" = None,
    experiment_seed: int | None = None,
    checkpoint_dir: "str | None" = None,
    resume: bool = False,
    retry: RetryPolicy | None = None,
) -> SequenceSweep:
    """Run the streaming-video attack workload on the experiment engine.

    The models × sequences grid rides the same backends, checkpointing and
    retry machinery as the single-scene sweeps; sequence frame bundles are
    derived temporally inside each job (see :class:`~repro.core.temporal.
    SequenceObjectives`) and share the worker's activation store.  Results
    are bit-identical across backends and worker counts.
    """
    if attack_config is None:
        attack_config = AttackConfig(
            nsga=NSGAConfig(num_iterations=6, population_size=12),
            region=HalfImageRegion("right"),
        )
    if training is None:
        first = sequences[0]
        training = TrainingConfig(
            image_length=first.image_length, image_width=first.image_width
        )
    owns_backend = not isinstance(backend, ExecutionBackend)
    engine_backend = resolve_backend(backend, n_jobs=n_jobs)
    plan = build_sequence_plan(
        architectures=architectures,
        seeds=seeds,
        sequences=sequences,
        attack_config=attack_config,
        training=training,
        experiment_seed=experiment_seed,
        track_k=track_k,
        iou_threshold=iou_threshold,
        frame_cache_size=frame_cache_size,
    )
    checkpoint = None
    if checkpoint_dir is not None:
        from repro.experiments.checkpoint import PlanCheckpoint

        checkpoint = PlanCheckpoint(checkpoint_dir, resume=resume)
    try:
        execution = execute_plan(
            plan, engine_backend, checkpoint=checkpoint, retry=retry
        )
    finally:
        if checkpoint is not None:
            checkpoint.close()
        release_plan_models(plan)
        if owns_backend:
            engine_backend.close()

    return SequenceSweep(
        results=[outcome.result for outcome in execution.outcomes],
        execution=execution,
    )
