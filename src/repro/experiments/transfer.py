"""Transferability of butterfly masks across seed-varied models.

The related-work section cites transfer-based black-box attacks (reusing a
perturbation found against one model on another).  Since the paper trains 25
seed-varied models per architecture (Table I), the natural follow-up
question is: does a mask optimised against seed ``i`` also degrade seed
``j``?  This module measures exactly that and produces a transfer matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.masks import apply_mask
from repro.core.objectives import objective_degradation
from repro.detectors.base import Detector


@dataclass
class TransferabilityResult:
    """Transfer matrix of attack degradation across models.

    ``matrix[i, j]`` is the obj_degrad that the mask optimised against model
    ``i`` achieves on model ``j`` (diagonal = white-box effectiveness,
    off-diagonal = transfer).  Lower values mean stronger degradation.
    """

    model_names: list[str]
    matrix: np.ndarray
    masks_intensity: list[float] = field(default_factory=list)

    @property
    def num_models(self) -> int:
        return len(self.model_names)

    def self_degradation(self) -> float:
        """Mean obj_degrad of each mask on the model it was optimised for."""
        return float(np.mean(np.diag(self.matrix)))

    def transfer_degradation(self) -> float:
        """Mean obj_degrad of masks on models they were *not* optimised for."""
        if self.num_models < 2:
            return 1.0
        off_diagonal = self.matrix[~np.eye(self.num_models, dtype=bool)]
        return float(np.mean(off_diagonal))

    def transfer_gap(self) -> float:
        """How much effectiveness is lost when transferring (>= 0 usually)."""
        return self.transfer_degradation() - self.self_degradation()

    def as_rows(self) -> list[dict[str, object]]:
        """Rows (source model, target model, degradation) for reporting."""
        rows: list[dict[str, object]] = []
        for i, source in enumerate(self.model_names):
            for j, target in enumerate(self.model_names):
                rows.append(
                    {
                        "source": source,
                        "target": target,
                        "degradation": float(self.matrix[i, j]),
                        "is_transfer": i != j,
                    }
                )
        return rows


def run_transferability_experiment(
    models: Sequence[Detector],
    image: np.ndarray,
    attack_config: AttackConfig | None = None,
) -> TransferabilityResult:
    """Optimise one mask per model and evaluate every mask on every model."""
    if not models:
        raise ValueError("at least one model is required")
    attack_config = attack_config if attack_config is not None else AttackConfig.fast()
    image = np.asarray(image, dtype=np.float64)

    best_masks = []
    intensities = []
    for model in models:
        result = ButterflyAttack(model, attack_config).attack(image)
        best = result.best_by("degradation")
        best_masks.append(best.mask.values)
        intensities.append(best.intensity)

    matrix = np.ones((len(models), len(models)))
    clean_predictions = [model.predict(image) for model in models]
    for i, mask in enumerate(best_masks):
        perturbed_image = apply_mask(image, mask)
        for j, model in enumerate(models):
            matrix[i, j] = objective_degradation(
                clean_predictions[j], model.predict(perturbed_image)
            )

    return TransferabilityResult(
        model_names=[model.name for model in models],
        matrix=matrix,
        masks_intensity=intensities,
    )
