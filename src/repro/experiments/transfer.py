"""Transferability of butterfly masks across seed-varied models.

The related-work section cites transfer-based black-box attacks (reusing a
perturbation found against one model on another).  Since the paper trains 25
seed-varied models per architecture (Table I), the natural follow-up
question is: does a mask optimised against seed ``i`` also degrade seed
``j``?  This module measures exactly that and produces a transfer matrix.

The experiment is expressed as two declarative stages over the generic
plan/engine substrate (:mod:`repro.experiments.jobs` /
:mod:`repro.experiments.engine`):

1. **Mask optimisation** — one :class:`~repro.experiments.jobs.AttackJob`
   per model (the plain models × images job with a single shared scene).
2. **Cross evaluation** — one :class:`TransferEvalJob` per *target* model,
   which computes one column of the N×N matrix: the clean prediction is
   taken once from the cached clean activations (or one ``predict`` call)
   and every best mask is evaluated through
   :meth:`~repro.detectors.base.Detector.predict_delta_batch` with its
   exact dirty bounds — never one dense ``predict`` per matrix cell.

Serial and pooled executions are bit-identical to each other and to
:func:`run_transferability_reference`, the preserved pre-engine loop
(enforced by ``tests/experiments/test_transfer.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
import time
from typing import Sequence

import numpy as np

from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.masks import apply_mask
from repro.core.objectives import objective_degradation
from repro.detectors.base import Detector
from repro.experiments.engine import (
    ExecutionBackend,
    RetryPolicy,
    execute_plan,
    merge_execution_summaries,
    resolve_backend,
)
from repro.experiments.jobs import (
    AttackJob,
    ExperimentPlan,
    JobOutcome,
    WorkerContext,
    apply_experiment_seed,
    as_model_spec,
    build_cached,
    release_plan_models,
)
from repro.nn.incremental import BBox, bbox_area_fraction, bbox_is_empty


@dataclass
class TransferabilityResult:
    """Transfer matrix of attack degradation across models.

    ``matrix[i, j]`` is the obj_degrad that the mask optimised against model
    ``i`` achieves on model ``j`` (diagonal = white-box effectiveness,
    off-diagonal = transfer).  Lower values mean stronger degradation.

    ``best_masks`` (one per source model, when available), the
    ``experiment_seed`` and the ``execution`` provenance summary are
    carried for persistence via
    :func:`repro.io.serialization.save_transfer_result`.
    """

    model_names: list[str]
    matrix: np.ndarray
    masks_intensity: list[float] = field(default_factory=list)
    best_masks: list[np.ndarray] = field(default_factory=list)
    experiment_seed: int | None = None
    execution: dict | None = None

    @property
    def num_models(self) -> int:
        return len(self.model_names)

    def self_degradation(self) -> float:
        """Mean obj_degrad of each mask on the model it was optimised for."""
        if self.matrix.size == 0:
            return 1.0
        return float(np.mean(np.diag(self.matrix)))

    def transfer_degradation(self) -> float:
        """Mean obj_degrad of masks on models they were *not* optimised for."""
        if self.num_models < 2:
            return 1.0
        off_diagonal = self.matrix[~np.eye(self.num_models, dtype=bool)]
        return float(np.mean(off_diagonal))

    def transfer_gap(self) -> float:
        """How much effectiveness is lost when transferring (>= 0 usually)."""
        return self.transfer_degradation() - self.self_degradation()

    def as_rows(self) -> list[dict[str, object]]:
        """Rows (source model, target model, degradation) for reporting."""
        rows: list[dict[str, object]] = []
        for i, source in enumerate(self.model_names):
            for j, target in enumerate(self.model_names):
                rows.append(
                    {
                        "source": source,
                        "target": target,
                        "degradation": float(self.matrix[i, j]),
                        "is_transfer": i != j,
                    }
                )
        return rows


@dataclass
class TransferColumn:
    """One cross-evaluation job's payload: a column of the transfer matrix.

    ``degradations[i]`` is the obj_degrad of source model ``i``'s best mask
    on this job's target model.
    """

    target_index: int
    target_name: str
    degradations: np.ndarray


@dataclass
class TransferEvalJob:
    """Evaluate every optimised mask against one target model.

    One instance of the generic job protocol (see
    :mod:`repro.experiments.jobs`): ``model`` is the *target* spec, and
    ``masks`` stacks the N best masks of the optimisation stage (shipped by
    value, like scenes).  The clean prediction is computed **once** — from
    the cached clean activations when the context has a store, else one
    ``predict`` call — and the masks are evaluated through the batched
    delta path with their exact ``dirty_bounds``, so no matrix cell ever
    pays a dense per-cell ``predict``.  The job runs no NSGA search and
    therefore takes no ``nsga_seed``.
    """

    job_id: int
    model: object
    image: np.ndarray
    masks: np.ndarray
    dirty_bounds: list[BBox] | None = None
    config: AttackConfig = field(default_factory=AttackConfig)
    target_index: int = 0

    def __post_init__(self) -> None:
        self.image = np.asarray(self.image, dtype=np.float64)
        self.masks = np.asarray(self.masks, dtype=np.float64)

    def _any_mask_sparse(self, detector) -> bool:
        """Whether any mask's exact dirty bound can use the windowed path.

        The activation bundle only pays for itself when at least one mask
        routes through the empty/windowed delta path; a column of dense
        masks (dirty region above the detector's dense-fallback fraction)
        goes straight to the batched forward pass, where building and
        splicing clean activations would be pure overhead.  With unknown
        bounds we optimistically build the bundle (the batch call computes
        the exact boxes itself).
        """
        if self.dirty_bounds is None:
            return True
        plane = (self.image.shape[0], self.image.shape[1])
        return any(
            bbox_is_empty(bound)
            or bbox_area_fraction(bound, plane)
            <= detector.incremental_dense_fraction
            for bound in self.dirty_bounds
        )

    def execute(self, context: WorkerContext) -> JobOutcome:
        start = time.perf_counter()
        detector = build_cached(self.model)
        use_store = context.job_store(self.config)
        before = use_store.snapshot() if use_store is not None else None

        clean = (
            use_store.get(detector, self.image)
            if use_store is not None and self._any_mask_sparse(detector)
            else None
        )
        clean_prediction = (
            clean.prediction if clean is not None else detector.predict(self.image)
        )
        bounds = (
            list(self.dirty_bounds) if self.dirty_bounds is not None else None
        )
        perturbed = detector.predict_delta_batch(
            self.image, self.masks, bounds, clean
        )
        degradations = np.array(
            [
                objective_degradation(clean_prediction, prediction)
                for prediction in perturbed
            ],
            dtype=np.float64,
        )

        stats = use_store.snapshot() - before if use_store is not None else None
        return JobOutcome(
            job_id=self.job_id,
            result=TransferColumn(
                target_index=self.target_index,
                target_name=self.model.name,
                degradations=degradations,
            ),
            cache_stats=stats,
            duration_seconds=time.perf_counter() - start,
        )


def build_transfer_attack_plan(
    specs: Sequence,
    image: np.ndarray,
    attack_config: AttackConfig,
    experiment_seed: int | None = None,
) -> ExperimentPlan:
    """Stage 1: one mask-optimisation job per model on the shared scene."""
    jobs = [
        AttackJob(
            job_id=index,
            model=spec,
            image=image,
            config=attack_config,
            scene_index=0,
        )
        for index, spec in enumerate(specs)
    ]
    apply_experiment_seed(jobs, experiment_seed)
    return ExperimentPlan(
        jobs=jobs,
        attack_config=attack_config,
        experiment_seed=experiment_seed,
        name="transfer-optimise",
    )


def build_transfer_eval_plan(
    specs: Sequence,
    image: np.ndarray,
    best_masks: Sequence[np.ndarray],
    dirty_bounds: Sequence[BBox],
    attack_config: AttackConfig,
) -> ExperimentPlan:
    """Stage 2: one cross-evaluation job per target model (a matrix column)."""
    masks = np.stack([np.asarray(mask, dtype=np.float64) for mask in best_masks])
    jobs = [
        TransferEvalJob(
            job_id=index,
            model=spec,
            image=image,
            masks=masks,
            dirty_bounds=list(dirty_bounds),
            config=attack_config,
            target_index=index,
        )
        for index, spec in enumerate(specs)
    ]
    return ExperimentPlan(
        jobs=jobs,
        attack_config=attack_config,
        name="transfer-evaluate",
    )


def run_transferability_experiment(
    models: Sequence,
    image: np.ndarray,
    attack_config: AttackConfig | None = None,
    *,
    n_jobs: int = 1,
    backend: "str | ExecutionBackend | None" = None,
    experiment_seed: int | None = None,
    release_models: bool = True,
    checkpoint_dir: "str | None" = None,
    resume: bool = False,
    retry: RetryPolicy | None = None,
) -> TransferabilityResult:
    """Optimise one mask per model and evaluate every mask on every model.

    ``models`` is a sequence of live detectors (the historical interface)
    or picklable model specs (anything with ``build()``/``name``, e.g.
    :class:`~repro.experiments.jobs.ModelSpec`); both run on the generic
    experiment engine.  ``n_jobs``/``backend`` select the execution backend
    exactly as in :func:`~repro.experiments.runner.run_architecture_comparison`;
    results are bit-identical for every backend and worker count.
    ``experiment_seed`` derives one NSGA-II seed per optimisation job by
    plan position (spawn-safe, scheduling-independent); ``None`` keeps the
    shared configured seed.  ``release_models=False`` keeps the built
    detectors in the process-local memo after the sweep (repeated sweeps
    over the same zoo skip the rebuild; the default bounds memory like the
    architecture-comparison runner).  ``checkpoint_dir`` journals completed
    jobs of *both* stages (one journal per stage name under the directory)
    so an interrupted sweep resumes with ``resume=True``; ``retry`` governs
    in-run requeue of crashed/raising jobs.
    """
    if not len(models):
        raise ValueError("at least one model is required")
    attack_config = attack_config if attack_config is not None else AttackConfig.fast()
    image = np.asarray(image, dtype=np.float64)
    specs = [as_model_spec(model) for model in models]
    owns_backend = not isinstance(backend, ExecutionBackend)
    engine_backend = resolve_backend(backend, n_jobs=n_jobs)
    checkpoint = None
    if checkpoint_dir is not None:
        # Function-level import: repro.experiments.checkpoint imports this
        # module for the TransferColumn codec.
        from repro.experiments.checkpoint import PlanCheckpoint

        checkpoint = PlanCheckpoint(checkpoint_dir, resume=resume)

    optimise_plan = build_transfer_attack_plan(
        specs, image, attack_config, experiment_seed=experiment_seed
    )
    # Every model bridges both stages (its bundle built by the optimise
    # stage is exactly what the eval stage's clean prediction hits), so pin
    # them: a stateful backend defers its end-of-model invalidation until
    # after the matrix stage instead of discarding the state in between.
    engine_backend.pin_models(specs)
    try:
        optimise = execute_plan(
            optimise_plan, engine_backend, checkpoint=checkpoint, retry=retry
        )

        best_masks: list[np.ndarray] = []
        dirty_bounds: list[BBox] = []
        intensities: list[float] = []
        for outcome in optimise.outcomes:
            best = outcome.result.best_by("degradation")
            best_masks.append(best.mask.values)
            dirty_bounds.append(best.mask.nonzero_bbox())
            intensities.append(best.intensity)

        eval_plan = build_transfer_eval_plan(
            specs, image, best_masks, dirty_bounds, attack_config
        )
        # The same checkpoint instance serves stage 2: load() rebinds it to
        # the eval plan's own journal file.
        evaluate = execute_plan(
            eval_plan, engine_backend, checkpoint=checkpoint, retry=retry
        )
    finally:
        if checkpoint is not None:
            checkpoint.close()
        engine_backend.unpin_models(specs)
        if release_models:
            release_plan_models(optimise_plan)
        if owns_backend:
            # Resolved from a name: this sweep owns the backend (and any
            # worker processes / shared memory it spawned).  A caller-
            # provided instance stays alive for the caller to reuse.
            engine_backend.close()

    matrix = np.ones((len(specs), len(specs)))
    for outcome in evaluate.outcomes:
        column = outcome.result
        matrix[:, column.target_index] = column.degradations

    return TransferabilityResult(
        model_names=[spec.name for spec in specs],
        matrix=matrix,
        masks_intensity=intensities,
        best_masks=best_masks,
        experiment_seed=experiment_seed,
        execution=merge_execution_summaries(
            [optimise.summary(), evaluate.summary()]
        ),
    )


def run_transferability_reference(
    models: Sequence[Detector],
    image: np.ndarray,
    attack_config: AttackConfig | None = None,
) -> TransferabilityResult:
    """The preserved pre-engine transferability loop (parity reference).

    Serial, cache-free and O(N²) dense: one ``predict`` per matrix cell
    plus one clean ``predict`` per model.  The engine-based
    :func:`run_transferability_experiment` must stay bit-identical to this
    — the parity suite compares the two directly.
    """
    if not models:
        raise ValueError("at least one model is required")
    attack_config = attack_config if attack_config is not None else AttackConfig.fast()
    image = np.asarray(image, dtype=np.float64)

    best_masks = []
    intensities = []
    for model in models:
        result = ButterflyAttack(model, attack_config).attack(image)
        best = result.best_by("degradation")
        best_masks.append(best.mask.values)
        intensities.append(best.intensity)

    matrix = np.ones((len(models), len(models)))
    clean_predictions = [model.predict(image) for model in models]
    for i, mask in enumerate(best_masks):
        perturbed_image = apply_mask(image, mask)
        for j, model in enumerate(models):
            matrix[i, j] = objective_degradation(
                clean_predictions[j], model.predict(perturbed_image)
            )

    return TransferabilityResult(
        model_names=[model.name for model in models],
        matrix=matrix,
        masks_intensity=intensities,
        best_masks=best_masks,
    )
