"""Declarative work plan for the models × images experiment sweep.

The paper's headline experiment attacks every model of a seed-varied zoo on
every evaluation image — an embarrassingly parallel grid of independent
attacks.  This module turns that grid into data:

* :class:`ModelSpec` — a picklable recipe for one trained detector
  (architecture, seed, detector/training configs).  Workers rebuild the
  model zoo from specs, so no detector object ever crosses a process
  boundary; a per-process memo (:func:`build_cached`) makes the rebuild a
  one-time cost per ``(worker, model)``.
* :class:`AttackJob` — one cell of the grid: a model spec, one scene, the
  attack configuration and an optional pre-derived NSGA-II seed.
* :class:`AttackPlan` — the ordered list of jobs plus sweep metadata.
  Plan order is the canonical result order; execution backends may finish
  jobs in any order and the engine reassembles by ``job_id``.
* :func:`derive_job_seeds` — spawn-safe deterministic per-job seeds:
  ``np.random.SeedSequence(experiment_seed).spawn(n)`` assigns entropy by
  *plan position*, never by worker or completion order, so serial and
  pooled sweeps are bit-identical for a fixed experiment seed.
* :func:`execute_attack_job` — run one job against a (worker-local)
  activation store and package the result with provenance and the job's
  cache-stats delta.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

import numpy as np

from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.results import AttackResult
from repro.detectors.activation_cache import ActivationCacheStore, CacheStats
from repro.detectors.base import Detector, DetectorConfig
from repro.detectors.training import TrainingConfig
from repro.detectors.zoo import ARCHITECTURE_ALIASES, build_detector


@dataclass(frozen=True)
class ModelSpec:
    """Recipe for one trained detector, picklable and hashable.

    Two equal specs build bit-identical detectors (training is fully
    deterministic in the seed), which is what lets process-pool workers
    reconstruct the model zoo locally instead of unpickling live models.
    """

    architecture: str
    seed: int
    detector: DetectorConfig | None = None
    training: TrainingConfig | None = None

    def __post_init__(self) -> None:
        if self.architecture.lower() not in ARCHITECTURE_ALIASES:
            raise ValueError(
                f"unknown architecture {self.architecture!r}; expected one of "
                f"{sorted(ARCHITECTURE_ALIASES)}"
            )

    @property
    def label(self) -> str:
        """Canonical architecture label (``single_stage`` / ``transformer``)."""
        return ARCHITECTURE_ALIASES[self.architecture.lower()]

    @property
    def name(self) -> str:
        """Unique model name, matching ``Detector.name`` (label + seed)."""
        return f"{self.label}-seed{self.seed}"

    def build(self) -> Detector:
        """Build and train the detector this spec describes."""
        return build_detector(
            self.architecture, self.seed, config=self.detector, training=self.training
        )


#: Per-process memo of built detectors.  A pool worker attacks each model on
#: several scenes; memoising the (deterministic) build makes the rebuild a
#: one-time cost per worker.  Never shared across processes — under the
#: ``fork`` start method children inherit a copy-on-write snapshot, under
#: ``spawn`` they start empty; both are correct because builds are
#: deterministic.
_DETECTOR_MEMO: dict[ModelSpec, Detector] = {}


def build_cached(spec: ModelSpec) -> Detector:
    """The process-local detector for ``spec``, built on first use."""
    detector = _DETECTOR_MEMO.get(spec)
    if detector is None:
        detector = spec.build()
        _DETECTOR_MEMO[spec] = detector
    return detector


def clear_detector_memo() -> int:
    """Drop all memoised detectors (tests / memory control); returns count."""
    count = len(_DETECTOR_MEMO)
    _DETECTOR_MEMO.clear()
    return count


def release_plan_models(plan: "AttackPlan") -> int:
    """Drop a finished plan's detectors from the process-local memo.

    The sweep runner calls this when a sweep completes so a long-lived
    process (notebook, service) does not accumulate every zoo it ever
    trained; returns the number of entries released.  Pool workers die
    with their pool, so only the parent needs this.
    """
    released = 0
    for spec in plan.model_specs():
        if _DETECTOR_MEMO.pop(spec, None) is not None:
            released += 1
    return released


@dataclass
class AttackJob:
    """One unit of sweep work: attack one model on one scene.

    Attributes
    ----------
    job_id:
        Position in the plan; the engine reassembles completion-ordered
        outcomes back into plan order by this id.
    model:
        The detector recipe (rebuilt inside workers, memoised per process).
    image:
        The evaluation scene, carried by value (scenes are small; shipping
        pixels avoids any worker-side dataset regeneration coupling).
    config:
        The attack configuration shared by the sweep.
    scene_index:
        Index of the scene within the sweep's dataset (provenance).
    nsga_seed:
        Pre-derived NSGA-II seed for this job, or ``None`` to keep
        ``config.nsga.seed`` untouched (the historical behaviour where
        every job runs the same seed).
    """

    job_id: int
    model: ModelSpec
    image: np.ndarray
    config: AttackConfig = field(default_factory=AttackConfig)
    scene_index: int = 0
    nsga_seed: int | None = None

    def __post_init__(self) -> None:
        self.image = np.asarray(self.image, dtype=np.float64)

    def resolved_config(self) -> AttackConfig:
        """The attack config with this job's derived seed applied (if any)."""
        if self.nsga_seed is None:
            return self.config
        return replace(
            self.config, nsga=replace(self.config.nsga, seed=int(self.nsga_seed))
        )


@dataclass
class JobOutcome:
    """One finished job: the attack result plus execution metadata."""

    job_id: int
    result: AttackResult
    cache_stats: CacheStats | None = None
    worker_id: str = "serial"
    duration_seconds: float = 0.0


@dataclass
class AttackPlan:
    """The full declarative sweep: ordered jobs plus shared metadata."""

    jobs: list[AttackJob]
    labels: tuple[str, ...]
    attack_config: AttackConfig
    experiment_seed: int | None = None

    def __len__(self) -> int:
        return len(self.jobs)

    def model_specs(self) -> list[ModelSpec]:
        """Unique model specs in first-appearance (plan) order."""
        seen: dict[ModelSpec, None] = {}
        for job in self.jobs:
            seen.setdefault(job.model, None)
        return list(seen)

    def jobs_per_model(self) -> dict[ModelSpec, int]:
        """Number of jobs each model appears in (for lifecycle accounting)."""
        counts: dict[ModelSpec, int] = {}
        for job in self.jobs:
            counts[job.model] = counts.get(job.model, 0) + 1
        return counts


def derive_job_seeds(experiment_seed: int, num_jobs: int) -> list[int]:
    """Deterministic spawn-safe per-job NSGA-II seeds.

    One ``SeedSequence`` child per plan position, collapsed to a 64-bit
    integer seed.  The derivation depends only on ``experiment_seed`` and
    the job's position, so any backend, worker count or completion order
    sees the same seed for the same job.
    """
    if experiment_seed < 0:
        raise ValueError(
            f"experiment_seed must be non-negative, got {experiment_seed}"
        )
    root = np.random.SeedSequence(experiment_seed)
    seeds: list[int] = []
    for child in root.spawn(num_jobs):
        state = child.generate_state(2, np.uint32)
        seeds.append((int(state[0]) << 32) | int(state[1]))
    return seeds


def build_attack_plan(
    architectures: Sequence[str],
    seeds: Iterable[int],
    dataset: Sequence,
    attack_config: AttackConfig,
    training: TrainingConfig | None = None,
    detector_config: DetectorConfig | None = None,
    experiment_seed: int | None = None,
) -> AttackPlan:
    """Expand the models × images grid into an ordered :class:`AttackPlan`.

    Job order is exactly the historical nested loop — architectures, then
    model seeds, then scenes — so a serial execution of the plan reproduces
    the original runner's result order (and, with ``experiment_seed=None``,
    its results bit-exactly).  ``dataset`` is any sequence of samples with
    an ``image`` attribute (or raw arrays).
    """
    seeds = list(seeds)
    jobs: list[AttackJob] = []
    labels: list[str] = []
    job_id = 0
    for architecture in architectures:
        spec_label = ARCHITECTURE_ALIASES.get(architecture.lower())
        if spec_label is None:
            raise ValueError(
                f"unknown architecture {architecture!r}; expected one of "
                f"{sorted(ARCHITECTURE_ALIASES)}"
            )
        if spec_label not in labels:
            labels.append(spec_label)
        for seed in seeds:
            model = ModelSpec(
                architecture=architecture,
                seed=int(seed),
                detector=detector_config,
                training=training,
            )
            for scene_index, sample in enumerate(dataset):
                image = getattr(sample, "image", sample)
                jobs.append(
                    AttackJob(
                        job_id=job_id,
                        model=model,
                        image=image,
                        config=attack_config,
                        scene_index=scene_index,
                    )
                )
                job_id += 1

    if experiment_seed is not None:
        for job, seed in zip(jobs, derive_job_seeds(experiment_seed, len(jobs))):
            job.nsga_seed = seed

    return AttackPlan(
        jobs=jobs,
        labels=tuple(labels),
        attack_config=attack_config,
        experiment_seed=experiment_seed,
    )


def execute_attack_job(
    job: AttackJob, store: ActivationCacheStore | None = None
) -> JobOutcome:
    """Run one job and package its result with provenance and cache stats.

    ``store`` is the executing process's activation store (the serial
    backend passes its sweep-level store, pool workers their worker-local
    one); the outcome carries the store's counter *delta* so the engine can
    aggregate per-model and per-worker hit rates no matter where the job
    ran.
    """
    start = time.perf_counter()
    detector = build_cached(job.model)
    config = job.resolved_config()
    use_store = store if (store is not None and config.use_activation_cache) else None
    before = use_store.snapshot() if use_store is not None else None

    attack = ButterflyAttack(detector, config, activation_store=use_store)
    result = attack.attack(job.image)
    result.architecture = job.model.label
    result.model_seed = job.model.seed
    result.scene_index = job.scene_index
    result.job_id = job.job_id

    stats = use_store.snapshot() - before if use_store is not None else None
    return JobOutcome(
        job_id=job.job_id,
        result=result,
        cache_stats=stats,
        duration_seconds=time.perf_counter() - start,
    )
