"""Declarative work plans: the generic job substrate of the experiment engine.

The paper's evaluation is three sweeps over the same seed-varied model zoo
— the architecture comparison (Table I/II), mask transferability across
seeds and defense robustness.  All three are embarrassingly parallel grids
of independent units of work, so this module turns "a unit of sweep work"
into data:

* an **experiment job** is any picklable object with an integer ``job_id``
  and an ``execute(context)`` method returning a :class:`JobOutcome`; the
  :class:`WorkerContext` hands the job the executing process's activation
  store.  Jobs may additionally expose a ``model`` spec (or a ``members``
  tuple of specs) for cache lifecycle and per-model stats attribution, and
  an ``nsga_seed`` field to opt into plan-position seed derivation.
* :class:`ModelSpec` — a picklable recipe for one trained detector
  (architecture, seed, detector/training configs).  Workers rebuild the
  model zoo from specs, so no detector object ever crosses a process
  boundary; a per-process memo (:func:`build_cached`) makes the rebuild a
  one-time cost per ``(worker, model)``.  Any hashable object with a
  ``build() -> Detector`` method and a ``name`` is a valid spec —
  :class:`DetectorInstanceSpec` wraps an already-built detector, and the
  defense sweep contributes a defended-variant spec.
* :class:`AttackJob` — one cell of the models × images grid: a model spec,
  one scene, the attack configuration and an optional pre-derived NSGA-II
  seed.  It is *one instance* of the job protocol; the transfer and
  defense sweeps define their own (see :mod:`repro.experiments.transfer`
  and :mod:`repro.defenses.jobs`).
* :class:`ExperimentPlan` — the ordered list of jobs plus sweep metadata.
  Plan order is the canonical result order; execution backends may finish
  jobs in any order and the engine reassembles by ``job_id``.
  :class:`AttackPlan` extends it with the architecture labels of the
  models × images sweep.
* :func:`derive_job_seeds` — spawn-safe deterministic per-job seeds:
  ``np.random.SeedSequence(experiment_seed).spawn(n)`` assigns entropy by
  *plan position*, never by worker or completion order, so serial and
  pooled sweeps are bit-identical for a fixed experiment seed.
  :func:`apply_experiment_seed` assigns them to every job of a plan that
  accepts one.
* :func:`execute_attack_job` — run one attack job against a (worker-local)
  activation store and package the result with provenance and the job's
  cache-stats delta.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

import numpy as np

from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.results import AttackResult
from repro.core.temporal import SequenceAttack
from repro.data.sequences import SceneSequence, generate_sequence
from repro.detectors.activation_cache import (
    ActivationCacheStore,
    CacheStats,
    CleanActivations,
)
from repro.detectors.base import Detector, DetectorConfig
from repro.detectors.training import TrainingConfig
from repro.detectors.zoo import ARCHITECTURE_ALIASES, build_detector


@dataclass(frozen=True)
class ModelSpec:
    """Recipe for one trained detector, picklable and hashable.

    Two equal specs build bit-identical detectors (training is fully
    deterministic in the seed), which is what lets process-pool workers
    reconstruct the model zoo locally instead of unpickling live models.
    """

    architecture: str
    seed: int
    detector: DetectorConfig | None = None
    training: TrainingConfig | None = None

    def __post_init__(self) -> None:
        if self.architecture.lower() not in ARCHITECTURE_ALIASES:
            raise ValueError(
                f"unknown architecture {self.architecture!r}; expected one of "
                f"{sorted(ARCHITECTURE_ALIASES)}"
            )

    @property
    def label(self) -> str:
        """Canonical architecture label (``single_stage`` / ``transformer``)."""
        return ARCHITECTURE_ALIASES[self.architecture.lower()]

    @property
    def name(self) -> str:
        """Unique model name, matching ``Detector.name`` (label + seed)."""
        return f"{self.label}-seed{self.seed}"

    def build(self) -> Detector:
        """Build and train the detector this spec describes."""
        return build_detector(
            self.architecture, self.seed, config=self.detector, training=self.training
        )


#: Per-process memo of built detectors.  A pool worker attacks each model on
#: several scenes; memoising the (deterministic) build makes the rebuild a
#: one-time cost per worker.  Never shared across processes — under the
#: ``fork`` start method children inherit a copy-on-write snapshot, under
#: ``spawn`` they start empty; both are correct because builds are
#: deterministic.
_DETECTOR_MEMO: dict[ModelSpec, Detector] = {}


def build_cached(spec: ModelSpec) -> Detector:
    """The process-local detector for ``spec``, built on first use."""
    detector = _DETECTOR_MEMO.get(spec)
    if detector is None:
        detector = spec.build()
        _DETECTOR_MEMO[spec] = detector
    return detector


def clear_detector_memo() -> int:
    """Drop all memoised detectors (tests / memory control); returns count."""
    count = len(_DETECTOR_MEMO)
    _DETECTOR_MEMO.clear()
    return count


def detector_if_built(spec) -> Detector | None:
    """The memoised detector for ``spec`` if one exists — never builds.

    The persistent runtime's invalidation broadcast uses this to find the
    worker-local instance whose ``id()`` keys the activation store: a model
    the worker never built has nothing to invalidate, and building one just
    to drop it would be absurd.  Unhashable specs return ``None``.
    """
    try:
        return _DETECTOR_MEMO.get(spec)
    except TypeError:  # pragma: no cover - specs are hashable by contract
        return None


def release_detector(spec) -> bool:
    """Drop one spec's detector from the process-local memo, if present."""
    try:
        return _DETECTOR_MEMO.pop(spec, None) is not None
    except TypeError:  # pragma: no cover - specs are hashable by contract
        return False


def release_plan_models(plan: "ExperimentPlan") -> int:
    """Drop a finished plan's detectors from the process-local memo.

    The sweep runner calls this when a sweep completes so a long-lived
    process (notebook, service) does not accumulate every zoo it ever
    trained; returns the number of entries released.  Pool workers die
    with their pool, so only the parent needs this.
    """
    released = 0
    for spec in plan.model_specs():
        if _DETECTOR_MEMO.pop(spec, None) is not None:
            released += 1
    return released


@dataclass(frozen=True, eq=False)
class DetectorInstanceSpec:
    """Spec adapter wrapping an already-built detector instance.

    The transfer and defense entry points historically accepted live
    :class:`~repro.detectors.base.Detector` objects; this adapter lets them
    ride the spec-based engine unchanged.  The detector is carried *by
    value* — pickling a job ships the whole detector to the worker — so
    pooled runs stay bit-identical under every start method, at the cost
    of a fatter job payload than a :class:`ModelSpec` recipe.  Equality and
    hashing are by detector identity: two specs wrapping the same instance
    memoise to the same entry.
    """

    detector: Detector

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DetectorInstanceSpec)
            and self.detector is other.detector
        )

    def __hash__(self) -> int:
        return hash(id(self.detector))

    @property
    def label(self) -> str:
        return self.detector.architecture

    @property
    def name(self) -> str:
        return self.detector.name

    @property
    def seed(self) -> int:
        return self.detector.seed

    def build(self) -> Detector:
        return self.detector


def as_model_spec(model) -> object:
    """Coerce a detector or spec into an engine-compatible model spec.

    Anything with a ``build()`` method passes through unchanged (it already
    is a spec); a live :class:`~repro.detectors.base.Detector` is wrapped
    in a :class:`DetectorInstanceSpec`.
    """
    if hasattr(model, "build"):
        return model
    if isinstance(model, Detector) or hasattr(model, "predict"):
        return DetectorInstanceSpec(model)
    raise TypeError(
        f"expected a Detector or a model spec with a build() method, got "
        f"{type(model).__name__}"
    )


@dataclass
class WorkerContext:
    """What the executing process hands a job: its activation store.

    One context per store owner — the serial backend's sweep-level store or
    a pool worker's private store.  ``store`` is ``None`` when the plan's
    attack config disables the activation cache.  The per-process detector
    memo is reached through :func:`build_cached` (module state, shared by
    every job the process runs).  ``worker_id`` names the executing worker
    (outcome attribution); long-lived executors such as the persistent
    runtime keep one context for their whole life and stamp it once.
    """

    store: ActivationCacheStore | None = None
    worker_id: str = "serial"

    def detector(self, spec) -> Detector:
        """The process-local detector for ``spec`` (memoised build)."""
        return build_cached(spec)

    def activations(
        self, detector: Detector, image: np.ndarray, config: AttackConfig
    ) -> CleanActivations | None:
        """Cached clean activations for ``(detector, image)``, if enabled.

        Returns ``None`` when the context has no store, the config disables
        the activation cache, or the detector does not support incremental
        inference — callers fall back to the dense path in all three cases
        (bit-identical by the PR 2 contract, only slower).
        """
        if self.store is None or not config.use_activation_cache:
            return None
        return self.store.get(detector, image)

    def job_store(self, config: AttackConfig) -> ActivationCacheStore | None:
        """The store a job should thread into an attack (or ``None``)."""
        if self.store is not None and config.use_activation_cache:
            return self.store
        return None


def job_model_specs(job) -> tuple:
    """The model specs a job builds, for cache lifecycle accounting.

    Jobs expose either a single ``model`` spec (the attack, transfer and
    defense jobs) or a ``members`` tuple (the ensemble defense job); jobs
    with neither take no part in per-model cache lifecycle.
    """
    model = getattr(job, "model", None)
    if model is not None:
        return (model,)
    return tuple(getattr(job, "members", ()) or ())


def job_stats_label(job) -> str | None:
    """The name a job's cache-stats delta is attributed to (or ``None``).

    A job may pin the label explicitly via a ``stats_label`` attribute;
    otherwise its ``model`` spec's name is used.  Multi-model jobs without
    an explicit label (and model-less jobs) return ``None`` — their deltas
    still count toward per-worker and sweep totals.
    """
    label = getattr(job, "stats_label", None)
    if label:
        return str(label)
    model = getattr(job, "model", None)
    if model is not None:
        return model.name
    return None


@dataclass
class AttackJob:
    """One unit of sweep work: attack one model on one scene.

    Attributes
    ----------
    job_id:
        Position in the plan; the engine reassembles completion-ordered
        outcomes back into plan order by this id.
    model:
        The detector recipe (rebuilt inside workers, memoised per process).
    image:
        The evaluation scene, carried by value (scenes are small; shipping
        pixels avoids any worker-side dataset regeneration coupling).
    config:
        The attack configuration shared by the sweep.
    scene_index:
        Index of the scene within the sweep's dataset (provenance).
    nsga_seed:
        Pre-derived NSGA-II seed for this job, or ``None`` to keep
        ``config.nsga.seed`` untouched (the historical behaviour where
        every job runs the same seed).
    """

    job_id: int
    model: ModelSpec
    image: np.ndarray
    config: AttackConfig = field(default_factory=AttackConfig)
    scene_index: int = 0
    nsga_seed: int | None = None

    def __post_init__(self) -> None:
        self.image = np.asarray(self.image, dtype=np.float64)

    def resolved_config(self) -> AttackConfig:
        """The attack config with this job's derived seed applied (if any)."""
        if self.nsga_seed is None:
            return self.config
        return replace(
            self.config, nsga=replace(self.config.nsga, seed=int(self.nsga_seed))
        )

    def execute(self, context: "WorkerContext") -> "JobOutcome":
        """Run the attack and package result, provenance and cache delta.

        The outcome carries the context store's counter *delta* so the
        engine can aggregate per-model and per-worker hit rates no matter
        where the job ran.
        """
        start = time.perf_counter()
        detector = build_cached(self.model)
        config = self.resolved_config()
        use_store = context.job_store(config)
        before = use_store.snapshot() if use_store is not None else None

        attack = ButterflyAttack(detector, config, activation_store=use_store)
        result = attack.attack(self.image)
        result.architecture = self.model.label
        result.model_seed = self.model.seed
        result.scene_index = self.scene_index
        result.job_id = self.job_id

        stats = use_store.snapshot() - before if use_store is not None else None
        return JobOutcome(
            job_id=self.job_id,
            result=result,
            cache_stats=stats,
            duration_seconds=time.perf_counter() - start,
        )


@dataclass(frozen=True)
class SequenceSpec:
    """Picklable recipe for one generated scene sequence.

    Workers rebuild the sequence locally from the recipe (generation is
    deterministic in the seed), so no frame stack ever crosses a process
    boundary — the same ship-the-recipe idiom as :class:`ModelSpec`.
    Mirrors :func:`~repro.data.sequences.generate_sequence`'s parameters
    (with the default class mix).
    """

    num_frames: int = 5
    seed: int = 0
    image_length: int = 96
    image_width: int = 320
    num_objects: tuple[int, int] = (2, 3)
    half: str | None = None
    max_speed: float = 4.0

    def build(self) -> SceneSequence:
        """Generate the sequence this spec describes."""
        return generate_sequence(
            num_frames=self.num_frames,
            seed=self.seed,
            image_length=self.image_length,
            image_width=self.image_width,
            num_objects=self.num_objects,
            half=self.half,
            max_speed=self.max_speed,
        )


@dataclass
class SequenceAttackJob:
    """One unit of the streaming workload: attack one model on one sequence.

    Follows the generic job protocol, so it runs unchanged on every
    backend (serial, process pool, persistent runtime) — the ``model``
    spec opts it into model-affinity scheduling and cache lifecycle, and
    the worker store it receives backs the temporal frame cache (sequence
    bundles ride the same shared-memory segments and lifecycle broadcasts
    as single-scene bundles).  The outcome's ``cache_stats`` delta folds
    in the frame cache's counters, so per-model/per-worker report rows
    carry ``frame_hits``/``frame_misses`` alongside the store traffic.

    Attributes mirror :class:`AttackJob` with the scene swapped for a
    :class:`SequenceSpec` plus the track-objective knobs (``track_k``
    consecutive frames to count a ground-truth track as suppressed,
    ``iou_threshold`` for detection matching, ``frame_cache_size`` rolling
    frame-bundle window).
    """

    job_id: int
    model: ModelSpec
    sequence: SequenceSpec
    config: AttackConfig = field(default_factory=AttackConfig)
    track_k: int = 2
    iou_threshold: float = 0.5
    frame_cache_size: int = 2
    scene_index: int = 0
    nsga_seed: int | None = None

    def resolved_config(self) -> AttackConfig:
        """The attack config with this job's derived seed applied (if any)."""
        if self.nsga_seed is None:
            return self.config
        return replace(
            self.config, nsga=replace(self.config.nsga, seed=int(self.nsga_seed))
        )

    def execute(self, context: "WorkerContext") -> "JobOutcome":
        """Run the sequence attack; fold frame-cache counters into the delta."""
        start = time.perf_counter()
        detector = build_cached(self.model)
        config = self.resolved_config()
        use_store = context.job_store(config)
        before = use_store.snapshot() if use_store is not None else None

        attack = SequenceAttack(
            detector,
            config,
            activation_store=use_store,
            track_k=self.track_k,
            iou_threshold=self.iou_threshold,
            frame_cache_size=self.frame_cache_size,
        )
        result = attack.attack(self.sequence.build())
        result.architecture = self.model.label
        result.model_seed = self.model.seed
        result.scene_index = self.scene_index
        result.job_id = self.job_id

        stats = use_store.snapshot() - before if use_store is not None else None
        # The frame cache's counters live outside the store (a store-backed
        # cache reports only its own eviction/frame traffic, so summing the
        # two snapshots never double-counts delta-store activity).
        frame_counters = (result.incremental or {}).get("frame_cache", {})
        frame_stats = CacheStats(
            **{
                name: int(frame_counters.get(name, 0))
                for name in (
                    "hits",
                    "misses",
                    "evictions",
                    "invalidations",
                    "delta_hits",
                    "delta_misses",
                    "delta_bytes",
                    "frame_hits",
                    "frame_misses",
                )
            }
        )
        if frame_stats != CacheStats():
            stats = frame_stats if stats is None else stats + frame_stats
        return JobOutcome(
            job_id=self.job_id,
            result=result,
            cache_stats=stats,
            duration_seconds=time.perf_counter() - start,
        )


def build_sequence_plan(
    architectures: Sequence[str],
    seeds: Iterable[int],
    sequences: Sequence[SequenceSpec],
    attack_config: AttackConfig,
    training: TrainingConfig | None = None,
    detector_config: DetectorConfig | None = None,
    experiment_seed: int | None = None,
    track_k: int = 2,
    iou_threshold: float = 0.5,
    frame_cache_size: int = 2,
) -> AttackPlan:
    """Expand the models × sequences grid into an ordered :class:`AttackPlan`.

    The streaming analogue of :func:`build_attack_plan`: same nested order
    (architectures, model seeds, then sequences), same plan-position seed
    derivation, with every job a :class:`SequenceAttackJob`.
    """
    seeds = list(seeds)
    jobs: list[SequenceAttackJob] = []
    labels: list[str] = []
    job_id = 0
    for architecture in architectures:
        spec_label = ARCHITECTURE_ALIASES.get(architecture.lower())
        if spec_label is None:
            raise ValueError(
                f"unknown architecture {architecture!r}; expected one of "
                f"{sorted(ARCHITECTURE_ALIASES)}"
            )
        if spec_label not in labels:
            labels.append(spec_label)
        for seed in seeds:
            model = ModelSpec(
                architecture=architecture,
                seed=int(seed),
                detector=detector_config,
                training=training,
            )
            for scene_index, sequence in enumerate(sequences):
                jobs.append(
                    SequenceAttackJob(
                        job_id=job_id,
                        model=model,
                        sequence=sequence,
                        config=attack_config,
                        track_k=track_k,
                        iou_threshold=iou_threshold,
                        frame_cache_size=frame_cache_size,
                        scene_index=scene_index,
                    )
                )
                job_id += 1

    apply_experiment_seed(jobs, experiment_seed)

    return AttackPlan(
        jobs=jobs,
        labels=tuple(labels),
        attack_config=attack_config,
        experiment_seed=experiment_seed,
        name="sequence-attack",
    )


@dataclass
class JobOutcome:
    """One finished job: the job's result payload plus execution metadata.

    ``result`` is whatever the job type produces — an
    :class:`~repro.core.results.AttackResult` for attack jobs, a transfer
    matrix column for cross-evaluation jobs, a defense comparison bundle
    for defense jobs.  The engine never looks inside it; only the sweep
    orchestrator that built the plan does.

    ``restored`` marks an outcome loaded from a checkpoint journal instead
    of executed this run (``worker_id``/``duration_seconds``/``cache_stats``
    then describe the *original* execution).
    """

    job_id: int
    result: object
    cache_stats: CacheStats | None = None
    worker_id: str = "serial"
    duration_seconds: float = 0.0
    restored: bool = False


@dataclass
class ExperimentPlan:
    """An ordered list of experiment jobs plus shared sweep metadata.

    The generic substrate every sweep compiles to: the architecture
    comparison's :class:`AttackPlan`, the transferability stages and the
    defense plans are all instances.  ``attack_config`` supplies the
    activation-cache settings the executing backend uses to provision
    stores; ``name`` labels the plan in reports.
    """

    jobs: list
    attack_config: AttackConfig
    experiment_seed: int | None = None
    name: str = "experiment"

    def __len__(self) -> int:
        return len(self.jobs)

    def model_specs(self) -> list:
        """Unique model specs in first-appearance (plan) order."""
        seen: dict = {}
        for job in self.jobs:
            for spec in job_model_specs(job):
                seen.setdefault(spec, None)
        return list(seen)

    def jobs_per_model(self) -> dict:
        """Number of jobs each model appears in (for lifecycle accounting)."""
        counts: dict = {}
        for job in self.jobs:
            for spec in job_model_specs(job):
                counts[spec] = counts.get(spec, 0) + 1
        return counts


@dataclass
class AttackPlan(ExperimentPlan):
    """The models × images sweep plan: jobs plus architecture labels."""

    labels: tuple[str, ...] = ()


def plan_fingerprint(plan: ExperimentPlan) -> dict:
    """A plan's identity for checkpoint-journal validation.

    Cheap but discriminating: name, job count, experiment seed and a
    digest of the job-id/job-type sequence.  A journal written for one
    plan must never seed the resume of a different one — silently loading
    mismatched outcomes would corrupt the resumed report, so the journal
    header stores this fingerprint and :class:`~repro.experiments.checkpoint.PlanCheckpoint`
    rejects a plan whose fingerprint differs.
    """
    digest = hashlib.sha256()
    for job in plan.jobs:
        digest.update(f"{job.job_id}:{type(job).__name__};".encode())
    return {
        "name": plan.name,
        "num_jobs": len(plan.jobs),
        "experiment_seed": plan.experiment_seed,
        "jobs_digest": digest.hexdigest(),
    }


def seed_from_sequence(sequence: np.random.SeedSequence) -> int:
    """Collapse a ``SeedSequence`` child into a 64-bit integer seed.

    The shared derivation of every plan-position seed (and of the defense
    augmentation seeds): two ``uint32`` words of the sequence's generated
    state packed into one integer, so a derived seed is a pure function of
    the root entropy and the spawn path.
    """
    state = sequence.generate_state(2, np.uint32)
    return (int(state[0]) << 32) | int(state[1])


def derive_job_seeds(experiment_seed: int, num_jobs: int) -> list[int]:
    """Deterministic spawn-safe per-job NSGA-II seeds.

    One ``SeedSequence`` child per plan position, collapsed to a 64-bit
    integer seed.  The derivation depends only on ``experiment_seed`` and
    the job's position, so any backend, worker count or completion order
    sees the same seed for the same job.
    """
    if experiment_seed < 0:
        raise ValueError(
            f"experiment_seed must be non-negative, got {experiment_seed}"
        )
    root = np.random.SeedSequence(experiment_seed)
    return [seed_from_sequence(child) for child in root.spawn(num_jobs)]


def apply_experiment_seed(jobs: Sequence, experiment_seed: int | None) -> None:
    """Assign plan-position-derived NSGA seeds to every job that takes one.

    Seeds are derived for *every* position (so a job's seed never depends
    on which other job types share the plan) but only assigned to jobs
    exposing an ``nsga_seed`` field; jobs without one — e.g. the transfer
    cross-evaluation stage, which runs no NSGA search — are skipped.
    ``experiment_seed=None`` is a no-op (the historical shared-seed mode).
    """
    if experiment_seed is None:
        return
    for job, seed in zip(jobs, derive_job_seeds(experiment_seed, len(jobs))):
        if hasattr(job, "nsga_seed"):
            job.nsga_seed = seed


def build_attack_plan(
    architectures: Sequence[str],
    seeds: Iterable[int],
    dataset: Sequence,
    attack_config: AttackConfig,
    training: TrainingConfig | None = None,
    detector_config: DetectorConfig | None = None,
    experiment_seed: int | None = None,
) -> AttackPlan:
    """Expand the models × images grid into an ordered :class:`AttackPlan`.

    Job order is exactly the historical nested loop — architectures, then
    model seeds, then scenes — so a serial execution of the plan reproduces
    the original runner's result order (and, with ``experiment_seed=None``,
    its results bit-exactly).  ``dataset`` is any sequence of samples with
    an ``image`` attribute (or raw arrays).
    """
    seeds = list(seeds)
    jobs: list[AttackJob] = []
    labels: list[str] = []
    job_id = 0
    for architecture in architectures:
        spec_label = ARCHITECTURE_ALIASES.get(architecture.lower())
        if spec_label is None:
            raise ValueError(
                f"unknown architecture {architecture!r}; expected one of "
                f"{sorted(ARCHITECTURE_ALIASES)}"
            )
        if spec_label not in labels:
            labels.append(spec_label)
        for seed in seeds:
            model = ModelSpec(
                architecture=architecture,
                seed=int(seed),
                detector=detector_config,
                training=training,
            )
            for scene_index, sample in enumerate(dataset):
                image = getattr(sample, "image", sample)
                jobs.append(
                    AttackJob(
                        job_id=job_id,
                        model=model,
                        image=image,
                        config=attack_config,
                        scene_index=scene_index,
                    )
                )
                job_id += 1

    apply_experiment_seed(jobs, experiment_seed)

    return AttackPlan(
        jobs=jobs,
        labels=tuple(labels),
        attack_config=attack_config,
        experiment_seed=experiment_seed,
        name="architecture-comparison",
    )


def execute_attack_job(
    job: AttackJob, store: ActivationCacheStore | None = None
) -> JobOutcome:
    """Run one attack job against ``store`` (thin :meth:`AttackJob.execute`
    wrapper kept for callers that predate the generic job protocol)."""
    return job.execute(WorkerContext(store=store))
