"""Persistent shared-memory worker runtime with model-affinity scheduling.

The one-shot :class:`~repro.experiments.engine.ProcessPoolBackend` loses to
serial on small machines for three structural reasons: every plan pays pool
startup, every job pickles its full scene across the pipe, and every worker
privately rebuilds detectors and ``CleanActivations`` bundles that some
other worker (or the previous plan stage) already built.  This module keeps
the engine's contract — bit-identical results to
:class:`~repro.experiments.engine.SerialBackend` for any plan, worker count
and submission order — while removing all three costs:

* **Long-lived workers** (:class:`PersistentWorkerRuntime`): processes
  spawn once and survive across ``execute_plan`` calls, keeping their
  detector memo and activation store warm.  A transfer sweep's
  cross-evaluation stage lands on workers that still hold the attack
  stage's bundles — under the one-shot pool (and serial, which rebuilds
  its store per ``run()``) that state is rebuilt from scratch.
* **Model-affinity scheduling**: a job for model M routes to the worker
  already holding M (most-overlap first, least-loaded as the tiebreak and
  fallback), so a model's bundles are built once per *runtime*, not once
  per worker.
* **Shared-memory payloads**: scene tensors are interned into
  ``multiprocessing.shared_memory`` segments by the parent
  (:class:`~repro.experiments.shm.SharedScenePool`) and jobs ship segment
  refs instead of pickled arrays; each worker's activation store is a
  :class:`~repro.detectors.activation_cache.SharedMemoryActivationStore`
  whose segments the parent can audit and reap by name prefix.

The runtime also runs the per-model cache lifecycle the serial backend
applies (and the one-shot pool never did): it tracks remaining jobs per
model across the whole plan and broadcasts an invalidation to every worker
when a model's last job finishes, so long sweeps do not thrash worker LRUs
with dead models' scenes.  :meth:`PersistentWorkerRuntime.pin_models`
defers that invalidation for models bridging multi-stage sweeps.

Failure semantics: a job that raises surfaces as a
:class:`~repro.experiments.engine.JobExecutionError` carrying the
worker-side traceback, and an abort-epoch broadcast makes every worker
skip jobs of the failed plan that were already queued to it; a worker
that *dies* is reaped (its leftover segments force-unlinked), respawned
and its jobs re-dispatched, with a per-job crash budget that turns a
poison job into a :class:`~repro.experiments.engine.WorkerCrashError`
instead of an infinite respawn loop.  Idle workers emit periodic
heartbeats, so liveness is policed continuously — including while the
parent merely waits for stats from a worker that will never answer.
Results travel over *per-worker pipes* (multiplexed in the parent with
``multiprocessing.connection.wait``), each with its worker as sole
writer, because a shared result queue is not crash-safe: a worker
SIGKILLed while its (or its feeder thread's) write is in flight would
leave either a torn message that blocks the parent's next read forever —
the surviving writers keep EOF from ever arriving — or a dead holder of
the shared write lock that deadlocks every other worker's sends.  A
private pipe turns any crash, at any instant, into a local EOF.

The runtime is job-agnostic: anything picklable with a ``job_id`` and an
``execute(WorkerContext)`` runs here unchanged.  The streaming sequence
workload (:class:`~repro.experiments.jobs.SequenceAttackJob`) leans on
that — it ships only a tiny :class:`~repro.experiments.jobs.SequenceSpec`
recipe (frames are regenerated in-worker, nothing rides the scene pool),
its per-frame bundles live in the worker's shared-memory store under the
same lifecycle broadcasts, and ``effective_cache_size`` provisions the
store for each job's rolling ``frame_cache_size`` window so warm frames
are not evicted mid-sequence.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import queue as queue_module
from multiprocessing import connection as mp_connection
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.detectors.activation_cache import SharedMemoryActivationStore
from repro.experiments.engine import (
    ExecutionBackend,
    JobExecutionError,
    WorkerCrashError,
    delta_store_size_for_config,
    effective_cache_size,
)
from repro.experiments.jobs import (
    DetectorInstanceSpec,
    ExperimentPlan,
    JobOutcome,
    WorkerContext,
    build_cached,
    detector_if_built,
    job_model_specs,
    release_detector,
)
from repro.experiments.shm import (
    SharedArrayAttachments,
    SharedScenePool,
    extract_shared_arrays,
    list_segments,
    reap_segments,
    restore_shared_arrays,
)

#: Process-wide counter giving each runtime a unique segment-name prefix.
_RUNTIME_SEQ = 0

__all__ = [
    "PersistentPoolBackend",
    "PersistentWorkerRuntime",
    "WorkerCrashError",
]


# --- worker process ----------------------------------------------------------


def _worker_main(
    index: int,
    generation: int,
    segment_prefix: str,
    task_queue,
    result_conn,
    use_cache: bool,
    cache_size: int,
    delta_store_size: int = 0,
    abort_epoch=None,
    heartbeat_interval: float = 1.0,
) -> None:
    """The long-lived worker loop: jobs, lifecycle messages, clean stop.

    All state a worker accumulates — detector memo, shared-memory
    activation store, scene attachments — lives for the whole process and
    is what makes the runtime pay off across plans.  Messages arrive on a
    private FIFO queue, so lifecycle broadcasts (invalidate, detach) are
    ordered against the job stream.

    ``abort_epoch`` is a shared value the parent bumps when a plan dies;
    queued jobs from an epoch at or below it are skipped without being
    restored or executed, so an aborted plan's backlog cannot burn minutes
    of compute producing results nobody will collect.  While the queue is
    idle the worker emits a heartbeat every ``heartbeat_interval`` seconds
    — the parent's proof of life when no job traffic is flowing.

    ``result_conn`` is this worker's *private* pipe to the parent (this
    process is its only writer): sends are synchronous, never interleave
    with other workers and share no lock with them, so a SIGKILL at any
    moment — even mid-``send`` — can corrupt or block nobody else; the
    parent just sees this pipe EOF.
    """
    store = (
        SharedMemoryActivationStore(
            max_entries=cache_size,
            segment_prefix=segment_prefix,
            delta_store_size=delta_store_size,
        )
        if use_cache
        else None
    )
    attachments = SharedArrayAttachments()
    context = WorkerContext(store=store, worker_id=f"worker-{index}")
    job_counters = {"executed": 0, "skipped_stale": 0}
    while True:
        try:
            message = task_queue.get(timeout=heartbeat_interval)
        except queue_module.Empty:
            try:
                result_conn.send(("heartbeat", index, generation, time.monotonic()))
            except (OSError, ValueError):  # pragma: no cover - parent gone
                return
            continue
        kind = message[0]
        if kind == "job":
            _, epoch, job, refs = message
            if abort_epoch is not None and epoch <= abort_epoch.value:
                # The plan this job belongs to already died in the parent;
                # skipping here (before any restore/execute work) is what
                # makes abort cheap even with deep prefetch backlogs.
                job_counters["skipped_stale"] += 1
                continue
            job_counters["executed"] += 1
            try:
                restore_shared_arrays(job, refs, attachments)
                outcome = job.execute(context)
                outcome.worker_id = context.worker_id
                result_conn.send(("done", index, generation, epoch, outcome))
            except Exception as exc:
                result_conn.send(
                    (
                        "error",
                        index,
                        generation,
                        epoch,
                        getattr(job, "job_id", None),
                        f"{type(exc).__name__}: {exc}",
                        traceback.format_exc(),
                    )
                )
            finally:
                # By-value specs (wrapped live detectors) never recur — a
                # fresh copy arrives with every job — so keeping them would
                # grow the memo without bound in a long-lived process.
                for spec in job_model_specs(job):
                    if isinstance(spec, DetectorInstanceSpec):
                        if store is not None:
                            store.invalidate(spec.detector)
                        release_detector(spec)
                if store is not None:
                    store.release_retired()
        elif kind == "invalidate":
            # Per-model lifecycle broadcast: the model's last job finished
            # somewhere in the runtime; drop its bundles and its memo entry.
            _, specs = message
            for spec in specs:
                detector = detector_if_built(spec)
                if detector is not None and store is not None:
                    store.invalidate(detector)
                release_detector(spec)
            if store is not None:
                store.release_retired()
        elif kind == "resize":
            # Grow-only cap broadcast (plan auto-sizing); never changes
            # results, only how many bundles survive between plans.
            _, new_size = message
            if store is not None:
                store.resize(new_size)
        elif kind == "detach":
            attachments.close_all()
        elif kind == "stats":
            result_conn.send(
                (
                    "stats",
                    index,
                    generation,
                    {
                        "store": None if store is None else dict(store.stats),
                        "jobs": dict(job_counters),
                    },
                )
            )
        elif kind == "stop":
            if store is not None:
                store.shutdown()
            attachments.close_all()
            try:
                result_conn.send(("stopped", index, generation))
            except (OSError, ValueError):  # pragma: no cover - parent gone
                pass
            return


# --- parent-side runtime -----------------------------------------------------


@dataclass
class _WorkerHandle:
    """Parent-side bookkeeping for one worker process."""

    index: int
    generation: int
    process: object
    task_queue: object
    reader: object
    segment_prefix: str
    models: set = field(default_factory=set)
    backlog: deque = field(default_factory=deque)
    inflight: dict = field(default_factory=dict)
    assigned: int = 0

    @property
    def worker_id(self) -> str:
        return f"worker-{self.index}"


class PersistentWorkerRuntime:
    """A pool of long-lived workers executing plans with affinity routing.

    Parameters
    ----------
    n_jobs:
        Worker-process count.
    use_cache / cache_size:
        Per-worker activation-store provisioning (a store lives as long as
        its worker, which is the whole point).
    start_method:
        ``multiprocessing`` start method; ``None`` = platform default.
    prefetch:
        Jobs kept in flight per worker.  Small (default 2) so the per-model
        lifecycle broadcasts interleave with the job stream instead of
        arriving after a worker's whole plan share is queued.
    max_crashes_per_job:
        Worker deaths a single job may witness before the runtime raises
        :class:`~repro.experiments.engine.WorkerCrashError` instead of
        re-dispatching it again.
    heartbeat_interval:
        Seconds between idle-worker heartbeats; the parent uses their
        arrival (or any other message) as proof of life and polices the
        process table whenever the result queue goes quiet.
    """

    def __init__(
        self,
        n_jobs: int = 2,
        use_cache: bool = True,
        cache_size: int = 4,
        start_method: str | None = None,
        prefetch: int = 2,
        max_crashes_per_job: int = 3,
        delta_store_size: int = 0,
        heartbeat_interval: float = 1.0,
    ) -> None:
        global _RUNTIME_SEQ
        if n_jobs < 1:
            raise ValueError("n_jobs must be at least 1")
        self.n_jobs = int(n_jobs)
        self.use_cache = bool(use_cache)
        self.cache_size = int(cache_size)
        # The configured cap is the restart signature; the effective cap
        # grows (grow-only) when a plan brings more distinct models, via a
        # "resize" broadcast instead of a warm-state-destroying restart.
        self.effective_cache_size = int(cache_size)
        self.delta_store_size = int(delta_store_size)
        self.prefetch = max(1, int(prefetch))
        self.max_crashes_per_job = max(1, int(max_crashes_per_job))
        self.heartbeat_interval = max(0.05, float(heartbeat_interval))
        self._context = multiprocessing.get_context(start_method)
        self._prefix = f"rpr{os.getpid()}x{_RUNTIME_SEQ}"
        _RUNTIME_SEQ += 1
        self._workers: list[_WorkerHandle] = []
        # Shared with every worker: the highest epoch known to have been
        # aborted.  Workers compare queued jobs against it and skip stale
        # ones instead of executing into the void.
        self._abort_epoch = self._context.Value("q", 0)
        self._heartbeats: dict[int, tuple[int, float]] = {}
        self._epoch = 0
        self._pinned: set = set()
        self._deferred_invalidation: set = set()
        self.started = False
        self.closed = False
        self.workers_respawned = 0
        atexit.register(self.close)

    # -- lifecycle ----------------------------------------------------------
    @property
    def cache_signature(self) -> tuple[bool, int, int]:
        return (self.use_cache, self.cache_size, self.delta_store_size)

    @property
    def start_method_is_fork(self) -> bool:
        return self._context.get_start_method() == "fork"

    @property
    def segment_prefix(self) -> str:
        """Prefix under which every segment of this runtime is named."""
        return self._prefix

    def start(self) -> None:
        """Spawn the workers (idempotent; called lazily by execute)."""
        if self.closed:
            raise RuntimeError("runtime is closed")
        if self.started:
            return
        self._workers = [
            self._spawn(index, generation=0) for index in range(self.n_jobs)
        ]
        self.started = True

    def _spawn(self, index: int, generation: int) -> _WorkerHandle:
        segment_prefix = f"{self._prefix}w{index}g{generation}"
        task_queue = self._context.Queue()
        # Results come back over a per-worker pipe, not a shared queue.
        # A shared channel is not crash-safe: a worker SIGKILLed while its
        # (or its feeder thread's) write is in flight leaves either a torn
        # message — which blocks the parent's next read forever, since the
        # surviving writers keep EOF from ever arriving — or a dead holder
        # of the shared write lock, which deadlocks every other worker's
        # sends.  With a private pipe the worker is its sole writer: sends
        # are synchronous and unshared, and any crash simply EOFs this one
        # pipe, which liveness policing turns into a respawn.
        reader, writer = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_worker_main,
            args=(
                index,
                generation,
                segment_prefix,
                task_queue,
                writer,
                self.use_cache,
                self.effective_cache_size,
                self.delta_store_size,
                self._abort_epoch,
                self.heartbeat_interval,
            ),
            daemon=True,
            name=f"repro-persistent-{index}",
        )
        process.start()
        # The worker owns the write end now; dropping the parent's copy is
        # what makes a dead worker's pipe read as EOF instead of hanging.
        writer.close()
        return _WorkerHandle(
            index=index,
            generation=generation,
            process=process,
            task_queue=task_queue,
            reader=reader,
            segment_prefix=segment_prefix,
        )

    def close(self) -> None:
        """Stop every worker and release all shared memory (idempotent)."""
        if self.closed:
            return
        self.closed = True
        # The safety-net registration from __init__ would otherwise pin
        # this runtime (workers, queues, segments and all) until
        # interpreter exit — a real leak for apps cycling many runtimes.
        atexit.unregister(self.close)
        if not self.started:
            return
        for worker in self._workers:
            try:
                worker.task_queue.put(("stop",))
            except (OSError, ValueError):  # pragma: no cover - queue torn down
                pass
        deadline = time.monotonic() + 10.0
        for worker in self._workers:
            worker.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            # Normal stops already unlinked everything; this is the crash
            # fallback that keeps the no-leaked-segments guarantee.
            reap_segments(worker.segment_prefix)
            try:
                worker.task_queue.close()
            except (OSError, ValueError):  # pragma: no cover
                pass
            if worker.reader is not None:
                try:
                    worker.reader.close()
                except (OSError, ValueError):  # pragma: no cover
                    pass
                worker.reader = None
        reap_segments(self._prefix)
        self._workers = []

    def resize_cache(self, max_entries: int) -> None:
        """Grow every worker's activation-store cap (never shrinks).

        Respawned workers pick the grown cap up through
        ``effective_cache_size``; the configured cap (and with it the
        restart signature) is untouched.
        """
        max_entries = int(max_entries)
        if max_entries <= self.effective_cache_size:
            return
        self.effective_cache_size = max_entries
        if self.started:
            for worker in self._workers:
                worker.task_queue.put(("resize", max_entries))

    def leaked_segments(self) -> list[str]:
        """Live segments under this runtime's prefix (should be [] when idle
        with caches empty, and always [] after :meth:`close`)."""
        return list_segments(self._prefix)

    # -- model pinning ------------------------------------------------------
    def pin_models(self, specs: Sequence) -> None:
        """Defer end-of-model invalidation for ``specs`` until unpinned."""
        self._pinned.update(specs)

    def unpin_models(self, specs: Sequence) -> None:
        """Lift pins; models that finished while pinned are invalidated now."""
        due = []
        for spec in specs:
            self._pinned.discard(spec)
            if spec in self._deferred_invalidation:
                self._deferred_invalidation.discard(spec)
                due.append(spec)
        if due:
            self._broadcast_invalidate(due)

    def _broadcast_invalidate(self, specs: Sequence) -> None:
        if not self.started:
            return
        specs = list(specs)
        for worker in self._workers:
            worker.task_queue.put(("invalidate", specs))
            worker.models.difference_update(specs)

    # -- scheduling ---------------------------------------------------------
    def _pick_worker(self, job) -> _WorkerHandle:
        """Model affinity first (most spec overlap), least-loaded fallback."""
        specs = set(job_model_specs(job))
        if specs:
            candidates = [w for w in self._workers if specs & w.models]
            if candidates:
                return min(
                    candidates,
                    key=lambda w: (-len(specs & w.models), w.assigned, w.index),
                )
        return min(self._workers, key=lambda w: (w.assigned, w.index))

    def _fill(self, worker: _WorkerHandle, epoch: int) -> None:
        """Top the worker's in-flight window up from its backlog."""
        while worker.backlog and len(worker.inflight) < self.prefetch:
            job_id, slim, refs = worker.backlog.popleft()
            worker.inflight[job_id] = (slim, refs)
            worker.task_queue.put(("job", epoch, slim, refs))

    # -- execution ----------------------------------------------------------
    def execute(self, jobs: Sequence, on_outcome=None) -> list[JobOutcome]:
        """Run ``jobs`` on the persistent pool; outcomes in ``jobs`` order.

        Results are bit-identical to serial execution: jobs are
        deterministic in their own payload, so routing, prefetch and
        completion order never leak into outcomes.  ``on_outcome`` (if
        given) is called with each outcome as it streams in — the hook the
        engine's checkpoint journal rides, so a crash mid-plan loses only
        the jobs still in flight.
        """
        self.start()
        self._epoch += 1
        epoch = self._epoch
        jobs = list(jobs)
        scene_pool = SharedScenePool(prefix=f"{self._prefix}s{epoch}")

        for worker in self._workers:
            worker.assigned = 0
            worker.backlog.clear()
            worker.inflight.clear()

        remaining: dict = {}
        specs_by_job: dict = {}
        for job in jobs:
            specs = job_model_specs(job)
            specs_by_job[job.job_id] = specs
            for spec in specs:
                remaining[spec] = remaining.get(spec, 0) + 1

        for job in jobs:
            slim, refs = extract_shared_arrays(job, scene_pool)
            worker = self._pick_worker(job)
            worker.backlog.append((job.job_id, slim, refs))
            worker.assigned += 1
            worker.models.update(job_model_specs(job))

        outcomes: dict = {}
        crashes: dict = {}
        try:
            for worker in self._workers:
                self._fill(worker, epoch)
            while len(outcomes) < len(jobs):
                message = self._next_message(epoch, crashes)
                kind = message[0]
                if kind == "done":
                    _, index, generation, msg_epoch, outcome = message
                    if msg_epoch != epoch:
                        continue  # stale result from an aborted plan
                    worker = self._workers[index]
                    if worker.generation == generation:
                        # Free the slot even for a respawn duplicate, or the
                        # replacement's in-flight window would starve.
                        worker.inflight.pop(outcome.job_id, None)
                        self._fill(worker, epoch)
                    if outcome.job_id in outcomes:
                        continue  # duplicate completion after a respawn
                    outcomes[outcome.job_id] = outcome
                    if on_outcome is not None:
                        on_outcome(outcome)
                    self._finish_models(specs_by_job[outcome.job_id], remaining)
                elif kind == "error":
                    _, index, generation, msg_epoch, job_id, text, tb = message
                    if msg_epoch != epoch:
                        continue
                    raise JobExecutionError(job_id, f"worker-{index}", text, tb)
                # anything else ("stats", "stopped" leftovers) is dropped
        except BaseException:
            self._abort()
            raise
        finally:
            for worker in self._workers:
                try:
                    worker.task_queue.put(("detach",))
                except (OSError, ValueError):  # pragma: no cover
                    pass
            scene_pool.close()
        return [outcomes[job.job_id] for job in jobs]

    def _finish_models(self, specs, remaining: dict) -> None:
        """Decrement per-model job counts; broadcast lifecycle invalidation.

        This is the pooled equivalent of the serial backend's per-model
        lifecycle: once a model's last job (anywhere in the runtime)
        completes, every worker drops its entries — unless the model is
        pinned, in which case the drop is deferred to ``unpin_models``.
        """
        finished = []
        for spec in specs:
            if spec not in remaining:
                # Inventing a count here (the old `.get(spec, 1)`) would
                # silently turn a bookkeeping bug into a premature
                # invalidation broadcast; a model can only finish if the
                # plan setup counted it.
                raise RuntimeError(
                    f"model lifecycle bookkeeping desynced: spec {spec!r} "
                    "finished a job but was never counted for this plan"
                )
            remaining[spec] -= 1
            if remaining[spec] == 0:
                if spec in self._pinned:
                    self._deferred_invalidation.add(spec)
                else:
                    finished.append(spec)
        if finished:
            self._broadcast_invalidate(finished)

    def _get_result(self, timeout: float):
        """Timed read multiplexed over the per-worker result pipes.

        Raises :class:`queue.Empty` on timeout — and on a pipe that turns
        out to hold only a dead worker's EOF, so the caller's
        Empty-handling (liveness policing) reaps the corpse; its reader is
        closed by the respawn and drops out of the wait set.
        """
        readers = [
            worker.reader for worker in self._workers if worker.reader is not None
        ]
        if not readers:  # pragma: no cover - only between spawn batches
            raise queue_module.Empty
        for ready in mp_connection.wait(readers, timeout):
            try:
                return ready.recv()
            except (EOFError, OSError):
                continue
        raise queue_module.Empty

    def _next_message(self, epoch: int, crashes: dict):
        """Block for the next result, policing worker liveness meanwhile."""
        while True:
            try:
                message = self._get_result(0.2)
            except queue_module.Empty:
                self._police_liveness(epoch, crashes)
                continue
            if message[0] == "heartbeat":
                self._note_heartbeat(message)
                continue
            return message

    def _police_liveness(self, epoch: int, crashes: dict) -> None:
        """Respawn any dead worker (heartbeat silence ends up here too)."""
        for worker in list(self._workers):
            if not worker.process.is_alive():
                self._respawn(worker, epoch, crashes)

    def _note_heartbeat(self, message) -> None:
        _, index, generation, stamp = message
        self._heartbeats[index] = (generation, stamp)

    def _respawn(self, worker: _WorkerHandle, epoch: int, crashes: dict) -> None:
        """Reap a dead worker, replace it, and re-dispatch its jobs.

        The slot is *always* left holding a live replacement — even on the
        poison path, where the budget-exhausted job is dropped and
        :class:`~repro.experiments.engine.WorkerCrashError` raised only
        after the replacement is installed.  Raising first would leave
        ``self._workers[index]`` pointing at the reaped corpse (closed task
        queue and all), poisoning every later plan on the same runtime.
        """
        self.workers_respawned += 1
        poison: tuple[object, int] | None = None
        for job_id in worker.inflight:
            crashes[job_id] = crashes.get(job_id, 0) + 1
            if poison is None and crashes[job_id] >= self.max_crashes_per_job:
                poison = (job_id, crashes[job_id])
        self._reap_worker(worker)
        replacement = self._spawn(worker.index, worker.generation + 1)
        self._workers[worker.index] = replacement
        if poison is not None:
            raise WorkerCrashError(*poison)
        # Re-dispatch in-flight jobs first, then the untouched backlog; the
        # fresh process holds no models, so its affinity set restarts from
        # what it is about to run.
        for job_id, (slim, refs) in worker.inflight.items():
            replacement.backlog.append((job_id, slim, refs))
        replacement.backlog.extend(worker.backlog)
        replacement.assigned = worker.assigned
        for job_id, slim, refs in replacement.backlog:
            replacement.models.update(job_model_specs(slim))
        self._fill(replacement, epoch)

    def _reap_worker(self, worker: _WorkerHandle) -> None:
        worker.process.join(timeout=1.0)
        reap_segments(worker.segment_prefix)
        try:
            worker.task_queue.close()
        except (OSError, ValueError):  # pragma: no cover
            pass
        # Completed messages still buffered in the dead worker's pipe are
        # dropped with it: its in-flight jobs are re-dispatched anyway, and
        # re-execution is bit-identical by the engine's core contract.
        if worker.reader is not None:
            try:
                worker.reader.close()
            except (OSError, ValueError):  # pragma: no cover
                pass
            worker.reader = None

    def _abort(self) -> None:
        """Clear plan state after a failure; stale results die by epoch.

        Bumping the shared abort-epoch makes workers *skip* this plan's
        jobs already sitting in their queues — without it, every queued
        job would still execute to completion (minutes of NSGA compute per
        job) just to have its result dropped by the parent's epoch filter.
        """
        self._abort_epoch.value = max(self._abort_epoch.value, self._epoch)
        for worker in self._workers:
            worker.backlog.clear()
            worker.inflight.clear()

    # -- introspection ------------------------------------------------------
    def _collect_worker_stats(self, timeout: float) -> dict[str, dict]:
        """Gather one stats payload per worker slot, surviving dead workers.

        The wait polices liveness: a worker that died before (or instead
        of) answering is respawned and the request re-sent to its
        replacement, so this returns for every slot instead of hanging the
        full timeout on a corpse.  Only payloads from the slot's *current*
        generation count — stale generations answered for processes that
        no longer own the slot.
        """
        self.start()
        requested: dict[int, int] = {}
        for worker in self._workers:
            worker.task_queue.put(("stats",))
            requested[worker.index] = worker.generation
        collected: dict[str, dict] = {}
        crashes: dict = {}
        deadline = time.monotonic() + timeout
        while len(collected) < len(self._workers):
            budget = deadline - time.monotonic()
            if budget <= 0:
                raise TimeoutError("workers did not report stats in time")
            try:
                message = self._get_result(min(0.2, budget))
            except queue_module.Empty:
                self._police_liveness(self._epoch, crashes)
                for worker in self._workers:
                    if requested.get(worker.index) != worker.generation:
                        worker.task_queue.put(("stats",))
                        requested[worker.index] = worker.generation
                continue
            if message[0] == "heartbeat":
                self._note_heartbeat(message)
                continue
            if message[0] != "stats":
                continue  # stale plan traffic
            _, index, generation, payload = message
            worker = self._workers[index]
            if worker.generation == generation:
                collected[worker.worker_id] = payload
        return collected

    def worker_cache_stats(self, timeout: float = 30.0) -> dict[str, dict | None]:
        """Each worker's *cumulative* store counters (test/debug hook).

        Only meaningful between plans (the runtime is single-plan at a
        time); per-job deltas on outcomes remain the source of truth for
        reported statistics.
        """
        return {
            worker_id: payload["store"]
            for worker_id, payload in self._collect_worker_stats(timeout).items()
        }

    def worker_job_stats(self, timeout: float = 30.0) -> dict[str, dict]:
        """Each worker's job counters: ``executed`` and ``skipped_stale``.

        ``skipped_stale`` counts jobs a worker dropped because their epoch
        was at or below the abort broadcast — the observable proof that an
        aborted plan's backlog did not keep executing.
        """
        return {
            worker_id: payload["jobs"]
            for worker_id, payload in self._collect_worker_stats(timeout).items()
        }


# --- engine backend ----------------------------------------------------------


class PersistentPoolBackend(ExecutionBackend):
    """Engine backend running plans on one :class:`PersistentWorkerRuntime`.

    The runtime is created lazily from the first plan's cache settings and
    *reused across* ``run()`` calls — that reuse (warm detector memos, warm
    activation bundles, no pool startup) is what beats both the one-shot
    pool and serial on repeated or multi-stage sweeps.  A plan with
    different cache settings transparently restarts the runtime.

    ``submission_seed`` shuffles dispatch order exactly like the one-shot
    pool (parity suites exercise scheduling independence with it);
    ``warm_start`` pre-builds the first plan's detectors in the parent so
    fork-started workers inherit them copy-on-write.
    """

    name = "persistent"

    def __init__(
        self,
        n_jobs: int = 2,
        start_method: str | None = None,
        submission_seed: int | None = None,
        warm_start: bool = True,
        prefetch: int = 2,
        max_crashes_per_job: int = 3,
    ) -> None:
        if n_jobs < 1:
            raise ValueError("n_jobs must be at least 1")
        self.n_jobs = int(n_jobs)
        self.start_method = start_method
        self.submission_seed = submission_seed
        self.warm_start = warm_start
        self.prefetch = prefetch
        self.max_crashes_per_job = max_crashes_per_job
        self._runtime: PersistentWorkerRuntime | None = None
        self._pinned: set = set()

    @property
    def runtime(self) -> PersistentWorkerRuntime | None:
        """The live runtime (``None`` before the first run / after close)."""
        return self._runtime

    def _ensure_runtime(self, attack_config) -> PersistentWorkerRuntime:
        signature = (
            bool(attack_config.use_activation_cache),
            int(attack_config.activation_cache_size),
            delta_store_size_for_config(attack_config),
        )
        runtime = self._runtime
        if runtime is not None and (
            runtime.closed or runtime.cache_signature != signature
        ):
            runtime.close()
            runtime = None
        if runtime is None:
            runtime = PersistentWorkerRuntime(
                n_jobs=self.n_jobs,
                use_cache=signature[0],
                cache_size=signature[1],
                start_method=self.start_method,
                prefetch=self.prefetch,
                max_crashes_per_job=self.max_crashes_per_job,
                delta_store_size=signature[2],
            )
            if self._pinned:
                runtime.pin_models(list(self._pinned))
            self._runtime = runtime
        return runtime

    def run(self, plan: ExperimentPlan) -> list[JobOutcome]:
        runtime = self._ensure_runtime(plan.attack_config)
        runtime.resize_cache(effective_cache_size(plan))
        jobs = list(plan.jobs)
        if self.submission_seed is not None:
            rng = np.random.default_rng(self.submission_seed)
            jobs = [jobs[i] for i in rng.permutation(len(jobs))]
        if self.warm_start and not runtime.started and runtime.start_method_is_fork:
            for spec in plan.model_specs():
                build_cached(spec)
        return runtime.execute(jobs, on_outcome=self._notify)

    def pin_models(self, specs: Sequence) -> None:
        self._pinned.update(specs)
        if self._runtime is not None:
            self._runtime.pin_models(specs)

    def unpin_models(self, specs: Sequence) -> None:
        for spec in specs:
            self._pinned.discard(spec)
        if self._runtime is not None:
            self._runtime.unpin_models(specs)

    def close(self) -> None:
        if self._runtime is not None:
            self._runtime.close()
            self._runtime = None
