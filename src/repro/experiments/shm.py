"""Shared-memory plumbing for the persistent worker runtime.

The persistent backend (:mod:`repro.experiments.persistent`) keeps worker
processes alive across plans and moves the two bulky payloads out of the
pickle stream:

* **Scene tensors** — a plan's job images (and transfer mask stacks) are
  interned once per distinct array into ``multiprocessing.shared_memory``
  segments by the parent's :class:`SharedScenePool`; each dispatched job
  carries only a :class:`SharedArrayRef` (segment name, shape, dtype) and
  the worker maps it back to a read-only view through its
  :class:`SharedArrayAttachments` cache.  A transfer plan whose N jobs all
  share one scene ships the pixels exactly once, not N times.
* **Activation bundles** — each worker's
  :class:`~repro.detectors.activation_cache.SharedMemoryActivationStore`
  places cached ``CleanActivations`` tensors in segments named under a
  per-worker prefix, so the parent can audit and reap them by name if the
  worker dies (see :func:`reap_segments`).

CPython's :mod:`multiprocessing.resource_tracker` registers *every*
``SharedMemory`` attach — owner or not — and unlinks registered segments
when the attaching process exits.  A worker that merely mapped a parent's
scene segment would therefore destroy it for everyone on shutdown;
:func:`attach_shared_memory` attaches and immediately unregisters, making
attachment side-effect free.  Ownership is strictly creator-side: the scene
pool unlinks what it created, each worker store unlinks what it created,
and the runtime reaps by prefix as the crash fallback.
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass

import numpy as np

from repro.detectors.activation_cache import image_digest

#: Arrays smaller than this are cheaper to pickle than to segment (the
#: attach + mmap round-trip has fixed cost); they stay in the job payload.
SHARE_MIN_BYTES = 16 * 1024

#: Job attributes eligible for shared-memory shipping.  Covers the scene
#: (every job type) and the transfer stage's stacked mask tensor; anything
#: else a job carries is small provenance.
SHAREABLE_JOB_ATTRS: tuple[str, ...] = ("image", "masks")

#: Where the platform exposes POSIX shared memory as files (Linux).  Leak
#: audits and crash reaping scan it; on platforms without it both degrade
#: to no-ops and only the tracker-based cleanup applies.
SHM_DIR = "/dev/shm"


def attach_shared_memory(name: str):
    """Attach to an existing segment without adopting ownership of it.

    Plain ``SharedMemory(name=...)`` registers the mapping with the
    resource tracker even though this process did not create the segment,
    which would unlink it when this process exits; the unregister makes the
    attach purely observational.
    """
    from multiprocessing import resource_tracker, shared_memory

    segment = shared_memory.SharedMemory(name=name)
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker is an implementation detail
        pass
    return segment


def list_segments(prefix: str) -> list[str]:
    """Names of live segments under ``prefix`` (leak audits; Linux only)."""
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - non-Linux fallback
        return []
    return sorted(entry for entry in os.listdir(SHM_DIR) if entry.startswith(prefix))


def reap_segments(prefix: str) -> list[str]:
    """Force-unlink every segment under ``prefix``; returns what was reaped.

    The crash path: a worker killed mid-job cannot run its store's
    ``shutdown()``, so its segments (all named under the worker's prefix)
    would leak.  The runtime reaps them by name before respawning.
    """
    reaped = []
    for entry in list_segments(prefix):
        try:
            os.unlink(os.path.join(SHM_DIR, entry))
            reaped.append(entry)
        except OSError:  # pragma: no cover - raced with normal cleanup
            pass
    return reaped


@dataclass(frozen=True)
class SharedArrayRef:
    """A picklable pointer to an array living in a shared segment."""

    segment: str
    shape: tuple
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape or (1,))))


class SharedScenePool:
    """Parent-side intern pool: one segment per distinct array content.

    ``share()`` is keyed by the array's content digest (dtype + shape +
    bytes, the activation cache's key function), so the models × images
    grid — where every model's job carries the same few scenes — creates
    one segment per scene regardless of how many jobs reference it.  An
    identity fast path skips even the digest when the *same array object*
    recurs (a plan's jobs alias their shared scene/mask arrays), so
    dispatch cost does not scale with jobs × array bytes; the pool
    therefore assumes shared arrays are not mutated during its lifetime,
    which plan dispatch (one ``execute`` call) guarantees.
    """

    _SEQ = 0

    def __init__(self, prefix: str | None = None) -> None:
        if prefix is None:
            prefix = f"rps{os.getpid()}x{SharedScenePool._SEQ}"
            SharedScenePool._SEQ += 1
        self.prefix = prefix
        self._by_digest: dict[bytes, tuple] = {}
        # id() -> (array, ref): the array reference keeps the id alive.
        self._by_id: dict[int, tuple] = {}
        self._seq = 0

    def __len__(self) -> int:
        return len(self._by_digest)

    def share(self, array: np.ndarray) -> SharedArrayRef:
        """The (interned) shared ref for ``array``, creating on first sight."""
        from multiprocessing import shared_memory

        identity = self._by_id.get(id(array))
        if identity is not None and identity[0] is array:
            return identity[1]
        original = array
        array = np.ascontiguousarray(array)
        digest = image_digest(array)
        cached = self._by_digest.get(digest)
        if cached is not None:
            self._by_id[id(original)] = (original, cached[1])
            return cached[1]
        name = f"{self.prefix}n{self._seq}"
        self._seq += 1
        segment = shared_memory.SharedMemory(
            create=True, name=name, size=max(1, array.nbytes)
        )
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        ref = SharedArrayRef(segment=name, shape=array.shape, dtype=str(array.dtype))
        self._by_digest[digest] = (segment, ref)
        self._by_id[id(original)] = (original, ref)
        return ref

    def close(self) -> None:
        """Unlink and unmap every segment this pool created (idempotent)."""
        for segment, _ in self._by_digest.values():
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already reaped
                pass
            try:
                segment.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        self._by_digest.clear()
        self._by_id.clear()


class SharedArrayAttachments:
    """Worker-side cache of attached segments and their read-only views.

    Attaching is cached by segment name — a worker running many jobs over
    the same scene maps it once.  ``close_all()`` drops the mappings (the
    parent broadcasts it at plan end, after which the parent unlinks; an
    unlinked-but-mapped segment stays readable, so ordering is forgiving).
    """

    def __init__(self) -> None:
        self._attached: dict[str, tuple] = {}

    def __len__(self) -> int:
        return len(self._attached)

    def restore(self, ref: SharedArrayRef) -> np.ndarray:
        """The read-only array view behind ``ref``, attaching on first use."""
        cached = self._attached.get(ref.segment)
        if cached is not None:
            return cached[1]
        segment = attach_shared_memory(ref.segment)
        view = np.ndarray(
            tuple(ref.shape), dtype=np.dtype(ref.dtype), buffer=segment.buf
        )
        # Scenes are shared across jobs and workers: read-only so one job
        # cannot corrupt another's input through the common mapping.
        view.flags.writeable = False
        self._attached[ref.segment] = (segment, view)
        return view

    def close_all(self) -> int:
        """Unmap every attachment; returns how many were open."""
        count = len(self._attached)
        for segment, _ in self._attached.values():
            try:
                segment.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        self._attached.clear()
        return count


def extract_shared_arrays(job, pool: SharedScenePool):
    """Strip a job's bulky arrays into the pool; returns ``(slim, refs)``.

    ``slim`` is a shallow copy with the shared attributes nulled (the
    original job is never mutated — the parent's plan stays intact), and
    ``refs`` maps attribute name → :class:`SharedArrayRef`.  Jobs with no
    array meeting :data:`SHARE_MIN_BYTES` pass through unchanged with empty
    refs, so small plans pay zero shared-memory overhead.
    """
    refs: dict[str, SharedArrayRef] = {}
    slim = None
    for attr in SHAREABLE_JOB_ATTRS:
        value = getattr(job, attr, None)
        if isinstance(value, np.ndarray) and value.nbytes >= SHARE_MIN_BYTES:
            if slim is None:
                slim = copy.copy(job)
            refs[attr] = pool.share(value)
            setattr(slim, attr, None)
    return (slim if slim is not None else job, refs)


def restore_shared_arrays(job, refs, attachments: SharedArrayAttachments):
    """Worker-side inverse of :func:`extract_shared_arrays` (in place)."""
    for attr, ref in refs.items():
        setattr(job, attr, attachments.restore(ref))
    return job
