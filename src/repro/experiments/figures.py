"""Qualitative figure scenarios (Figures 1, 3, 4 and 5).

Each function reproduces one of the paper's qualitative demonstrations on a
synthetic scene and returns a :class:`FigureOutcome` bundling the attack
results, the key measurements and an ASCII rendering so the outcome can be
inspected without any plotting library.

* Figure 1 — perturbation on one half makes objects on the *other* half
  disappear (TP→FN),
* Figures 3 & 4 — on the same image, the single-stage detector needs a much
  stronger perturbation than the transformer for a comparable effect,
* Figure 5 — a ghost object (TN→FP) appears on the unperturbed half.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.analysis.visualization import prediction_to_ascii, side_by_side
from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.masks import apply_mask
from repro.core.regions import HalfImageRegion
from repro.core.results import AttackResult, ParetoSolution
from repro.data.dataset import generate_dataset
from repro.detection.errors import ErrorType
from repro.detectors.base import Detector
from repro.nsga.algorithm import NSGAConfig


@dataclass
class FigureOutcome:
    """Outcome of one qualitative figure scenario."""

    name: str
    results: dict[str, AttackResult] = field(default_factory=dict)
    measurements: dict[str, float] = field(default_factory=dict)
    rendering: str = ""
    selected_solutions: dict[str, ParetoSolution] = field(default_factory=dict)

    def summary(self) -> str:
        lines = [f"[{self.name}]"]
        for key, value in self.measurements.items():
            lines.append(f"  {key} = {value:.4f}")
        return "\n".join(lines)


def _default_config(seed: int, perturb_half: str) -> AttackConfig:
    return AttackConfig(
        nsga=NSGAConfig(num_iterations=12, population_size=20, seed=seed),
        region=HalfImageRegion(perturb_half),
    )


def _count_transition(result: AttackResult, error: ErrorType) -> int:
    return sum(
        1
        for solution in result.pareto_front
        for transition in solution.transitions
        if transition.error_type is error
    )


def figure1_disappearing_objects(
    detector: Detector,
    attack_config: Optional[AttackConfig] = None,
    dataset_seed: int = 21,
    perturb_half: str = "right",
    image_length: int = 96,
    image_width: int = 320,
) -> FigureOutcome:
    """Figure 1: objects on the untouched half disappear or degrade.

    The scene places objects only in the half *opposite* to the perturbed
    one, so any change of the prediction is, by construction, a butterfly
    effect.  The measurement reported is the strongest degradation found
    and the number of disappeared objects (TP→FN transitions) on the front.
    """
    object_half = "left" if perturb_half == "right" else "right"
    dataset = generate_dataset(
        num_images=1,
        seed=dataset_seed,
        image_length=image_length,
        image_width=image_width,
        half=object_half,
        num_objects=(2, 3),
    )
    image = dataset[0].image
    config = attack_config if attack_config is not None else _default_config(0, perturb_half)
    attack = ButterflyAttack(detector, config)
    result = attack.attack(image)

    best = result.best_by("degradation")
    perturbed_prediction = detector.predict(apply_mask(image, best.mask.values))
    rendering = side_by_side(
        prediction_to_ascii(result.clean_prediction, image_length, image_width),
        prediction_to_ascii(perturbed_prediction, image_length, image_width),
    )
    return FigureOutcome(
        name="figure1_disappearing_objects",
        results={detector.name: result},
        measurements={
            "best_degradation": best.degradation,
            "best_intensity": best.intensity,
            "clean_objects": float(result.clean_prediction.num_valid),
            "perturbed_objects": float(perturbed_prediction.num_valid),
            "tp_to_fn_on_front": float(_count_transition(result, ErrorType.TP_TO_FN)),
        },
        rendering=rendering,
        selected_solutions={detector.name: best},
    )


def figure3_figure4_contrast(
    single_stage: Detector,
    transformer: Detector,
    attack_config: Optional[AttackConfig] = None,
    dataset_seed: int = 10,
    perturb_half: str = "right",
    image_length: int = 96,
    image_width: int = 320,
) -> FigureOutcome:
    """Figures 3 and 4: same image, both architectures, right-half attack.

    The paper's observation is that on the same image the single-stage
    detector barely changes even under human-recognisable noise, while the
    transformer's left-side boxes change under a much smaller perturbation.
    The measurements capture exactly that contrast: the strongest
    degradation each architecture reaches and the perturbation intensity
    needed for its most-degrading front solution.
    """
    object_half = "left" if perturb_half == "right" else "right"
    dataset = generate_dataset(
        num_images=1,
        seed=dataset_seed,
        image_length=image_length,
        image_width=image_width,
        half=object_half,
        num_objects=(2, 3),
    )
    image = dataset[0].image
    config = attack_config if attack_config is not None else _default_config(0, perturb_half)

    results: dict[str, AttackResult] = {}
    selected: dict[str, ParetoSolution] = {}
    for detector in (single_stage, transformer):
        result = ButterflyAttack(detector, config).attack(image)
        results[detector.name] = result
        selected[detector.name] = result.best_by("degradation")

    ss_best = selected[single_stage.name]
    tf_best = selected[transformer.name]
    rendering = side_by_side(
        prediction_to_ascii(results[single_stage.name].clean_prediction, image_length, image_width),
        prediction_to_ascii(results[transformer.name].clean_prediction, image_length, image_width),
    )
    return FigureOutcome(
        name="figure3_figure4_contrast",
        results=results,
        measurements={
            "single_stage_best_degradation": ss_best.degradation,
            "single_stage_intensity": ss_best.intensity,
            "transformer_best_degradation": tf_best.degradation,
            "transformer_intensity": tf_best.intensity,
            "degradation_gap": ss_best.degradation - tf_best.degradation,
        },
        rendering=rendering,
        selected_solutions=selected,
    )


def figure5_ghost_objects(
    detector: Detector,
    attack_config: Optional[AttackConfig] = None,
    dataset_seed: int = 33,
    perturb_half: str = "right",
    image_length: int = 96,
    image_width: int = 320,
    max_attempts: int = 3,
) -> FigureOutcome:
    """Figure 5: a ghost object (TN→FP) appears on the unperturbed half.

    Several seeds are tried until a front solution exhibits a TN→FP
    transition; the measurement records how many ghost objects appeared and
    on which side of the image.
    """
    object_half = "left" if perturb_half == "right" else "right"
    config = attack_config if attack_config is not None else _default_config(0, perturb_half)

    best_outcome: Optional[FigureOutcome] = None
    for attempt in range(max_attempts):
        dataset = generate_dataset(
            num_images=1,
            seed=dataset_seed + attempt,
            image_length=image_length,
            image_width=image_width,
            half=object_half,
            num_objects=(1, 2),
        )
        image = dataset[0].image
        result = ButterflyAttack(detector, config).attack(image)

        ghost_count = 0
        ghost_on_unperturbed_half = 0
        middle = image_width / 2.0
        ghost_solution: Optional[ParetoSolution] = None
        for solution in result.pareto_front:
            for transition in solution.transitions:
                if transition.error_type is ErrorType.TN_TO_FP and transition.perturbed_box:
                    ghost_count += 1
                    ghost_solution = ghost_solution or solution
                    box = transition.perturbed_box
                    on_left = box.y < middle
                    if (perturb_half == "right" and on_left) or (
                        perturb_half == "left" and not on_left
                    ):
                        ghost_on_unperturbed_half += 1

        outcome = FigureOutcome(
            name="figure5_ghost_objects",
            results={detector.name: result},
            measurements={
                "ghost_objects": float(ghost_count),
                "ghost_on_unperturbed_half": float(ghost_on_unperturbed_half),
                "best_degradation": result.best_by("degradation").degradation,
                "attempts": float(attempt + 1),
            },
            rendering=prediction_to_ascii(
                result.clean_prediction, image_length, image_width
            ),
            selected_solutions=(
                {detector.name: ghost_solution} if ghost_solution is not None else {}
            ),
        )
        if ghost_count > 0:
            return outcome
        best_outcome = outcome
    return best_outcome if best_outcome is not None else FigureOutcome("figure5_ghost_objects")
