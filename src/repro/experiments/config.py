"""Table I and Table II of the paper as configuration objects.

Table I (experiment parametrisation)::

    # models generated                25 YOLOv5 and 25 DETR
    # images tested on each model     16
    # models used in ensemble         16

Table II (configuration for NSGA-II)::

    Number of iterations              100
    Population size                   101
    Crossover probability             pc = 0.5
    Mutation probability              pm = 0.45
    Mutation window size              w = 1 %
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nsga.algorithm import NSGAConfig
from repro.nsga.mutation import MutationConfig

#: Table II, exactly as printed in the paper.
NSGA_TABLE_II: NSGAConfig = NSGAConfig(
    num_iterations=100,
    population_size=101,
    crossover_probability=0.5,
    mutation=MutationConfig(probability=0.45, window_fraction=0.01),
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Table I: the evaluation protocol of Section V-A.

    Attributes
    ----------
    models_per_architecture:
        Number of seed-varied models trained per architecture (paper: 25).
    images_per_model:
        Number of images each model is attacked on (paper: 16).
    ensemble_size:
        Number of models per ensemble (paper: 16).
    model_seeds:
        The seeds used to train the models (paper: 1..25).
    image_length, image_width:
        Evaluation image resolution (synthetic substitute for KITTI's
        1242x375; the wide aspect ratio is preserved).
    n_jobs:
        Worker processes for the models × images sweep (1 = in-process
        serial execution).  The sweep is bit-identical for every worker
        count; this only changes wall-clock time.
    execution_backend:
        ``"auto"`` (serial for ``n_jobs == 1``, a process pool otherwise),
        ``"serial"`` (always the in-process reference executor, even with
        ``n_jobs > 1``) or ``"process"`` (``multiprocessing`` pool of
        ``n_jobs`` workers, each with its own activation-cache store).
        Explicit ``n_jobs``/``backend`` arguments to
        :func:`~repro.experiments.runner.run_architecture_comparison`
        override these.
    """

    models_per_architecture: int = 25
    images_per_model: int = 16
    ensemble_size: int = 16
    model_seeds: tuple[int, ...] = tuple(range(1, 26))
    image_length: int = 96
    image_width: int = 320
    n_jobs: int = 1
    execution_backend: str = "auto"

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be at least 1")
        if self.execution_backend not in ("auto", "serial", "process"):
            raise ValueError(
                "execution_backend must be 'auto', 'serial' or 'process', "
                f"got {self.execution_backend!r}"
            )
        if self.models_per_architecture < 1:
            raise ValueError("models_per_architecture must be at least 1")
        if self.images_per_model < 1:
            raise ValueError("images_per_model must be at least 1")
        if self.ensemble_size < 1:
            raise ValueError("ensemble_size must be at least 1")
        if len(self.model_seeds) < self.models_per_architecture:
            raise ValueError(
                "model_seeds must provide at least models_per_architecture seeds"
            )
        if self.ensemble_size > self.models_per_architecture:
            raise ValueError("ensemble_size cannot exceed models_per_architecture")

    @staticmethod
    def paper() -> "ExperimentConfig":
        """The exact Table I protocol."""
        return ExperimentConfig()

    @staticmethod
    def reduced(
        models_per_architecture: int = 2,
        images_per_model: int = 2,
        ensemble_size: int = 2,
        image_length: int = 64,
        image_width: int = 208,
        n_jobs: int = 1,
        execution_backend: str = "auto",
    ) -> "ExperimentConfig":
        """A laptop/CI-scale protocol with the same structure as Table I."""
        return ExperimentConfig(
            models_per_architecture=models_per_architecture,
            images_per_model=images_per_model,
            ensemble_size=ensemble_size,
            model_seeds=tuple(range(1, models_per_architecture + 1)),
            image_length=image_length,
            image_width=image_width,
            n_jobs=n_jobs,
            execution_backend=execution_backend,
        )


def experiment_table_rows(config: ExperimentConfig | None = None) -> list[dict[str, object]]:
    """Rows reproducing Table I for the given (default: paper) protocol."""
    config = config if config is not None else ExperimentConfig.paper()
    return [
        {
            "Configuration": "# models generated",
            "Value": (
                f"{config.models_per_architecture} YOLOv5(sim) and "
                f"{config.models_per_architecture} DETR(sim)"
            ),
        },
        {
            "Configuration": "# images tested on each model",
            "Value": str(config.images_per_model),
        },
        {
            "Configuration": "# models used in ensemble",
            "Value": str(config.ensemble_size),
        },
    ]


def nsga_table_rows(config: NSGAConfig | None = None) -> list[dict[str, object]]:
    """Rows reproducing Table II for the given (default: paper) configuration."""
    config = config if config is not None else NSGA_TABLE_II
    return [
        {"Parameter": "Number of iterations", "Value": str(config.num_iterations)},
        {"Parameter": "Population size", "Value": str(config.population_size)},
        {
            "Parameter": "Crossover probability",
            "Value": f"pc = {config.crossover_probability}",
        },
        {
            "Parameter": "Mutation probability",
            "Value": f"pm = {config.mutation.probability}",
        },
        {
            "Parameter": "Mutation window size",
            "Value": f"w = {config.mutation.window_fraction:.0%}",
        },
    ]
