"""Append-only checkpoint journals making plan execution restartable.

A :class:`PlanCheckpoint` binds a plan to one JSONL journal file under a
plan directory (one file per plan name, so multi-stage sweeps journal each
stage separately).  The first line is a header carrying the plan's
fingerprint (:func:`~repro.experiments.jobs.plan_fingerprint`); every
following line is one completed :class:`~repro.experiments.jobs.JobOutcome`,
appended and flushed the moment the engine receives it.  On resume,
:meth:`PlanCheckpoint.load` validates the header against the plan and
returns the journaled outcomes so
:func:`~repro.experiments.engine.execute_plan` skips those jobs.

Robustness properties:

* **Bit-exact payloads** — outcome results ride the typed JSON round-trips
  of :mod:`repro.io.serialization` (arrays as base64 raw bytes), so a
  resumed sweep's report is bit-identical to an uninterrupted run — the
  same fingerprint gates the backend parity suites enforce.  Result types
  without a registered codec fall back to pickle-in-base64.
* **Torn-write tolerance** — a process killed mid-append leaves a partial
  final line; :meth:`load` discards it (and truncates the file so later
  appends start on a clean line boundary).  The journaled prefix is always
  a valid resume point because records are only written for *completed*
  jobs.
* **Mismatch rejection** — resuming a journal written for a different plan
  (name, job count, seed or job-id/type sequence) raises
  :class:`CheckpointMismatchError` instead of silently splicing foreign
  outcomes into the report; an existing journal with ``resume=False``
  raises :class:`CheckpointExistsError` instead of silently skipping work.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import warnings
from pathlib import Path
from typing import Any

from repro.core.results import AttackResult
from repro.defenses.jobs import DefenseJobResult, EnsembleDefenseJobResult
from repro.detectors.activation_cache import CacheStats
from repro.experiments.jobs import ExperimentPlan, JobOutcome, plan_fingerprint
from repro.experiments.transfer import TransferColumn
from repro.io.serialization import (
    array_from_jsonable,
    array_to_jsonable,
    attack_result_from_jsonable,
    attack_result_to_jsonable,
)

#: Journal format version stamped into every header line.
JOURNAL_VERSION = 1

#: Header fields compared between a journal and the plan resuming from it.
_FINGERPRINT_KEYS = ("name", "num_jobs", "experiment_seed", "jobs_digest")


class CheckpointError(RuntimeError):
    """Base class for checkpoint-journal failures."""


class CheckpointMismatchError(CheckpointError):
    """The journal on disk was written for a different plan."""


class CheckpointExistsError(CheckpointError):
    """A journal exists but the checkpoint was opened with ``resume=False``."""


class CheckpointCorruptError(CheckpointError):
    """A non-final journal line failed to parse (not a torn tail)."""


# --- result payload codecs ---------------------------------------------------


def _cache_stats_to_jsonable(stats: CacheStats) -> dict[str, int]:
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "evictions": stats.evictions,
        "invalidations": stats.invalidations,
        "delta_hits": stats.delta_hits,
        "delta_misses": stats.delta_misses,
        "delta_bytes": stats.delta_bytes,
    }


def _cache_stats_from_jsonable(data: dict[str, int]) -> CacheStats:
    return CacheStats(
        hits=int(data.get("hits", 0)),
        misses=int(data.get("misses", 0)),
        evictions=int(data.get("evictions", 0)),
        invalidations=int(data.get("invalidations", 0)),
        delta_hits=int(data.get("delta_hits", 0)),
        delta_misses=int(data.get("delta_misses", 0)),
        delta_bytes=int(data.get("delta_bytes", 0)),
    )


def _transfer_column_to_jsonable(column: TransferColumn) -> dict[str, Any]:
    return {
        "target_index": int(column.target_index),
        "target_name": column.target_name,
        "degradations": array_to_jsonable(column.degradations),
    }


def _transfer_column_from_jsonable(data: dict[str, Any]) -> TransferColumn:
    return TransferColumn(
        target_index=int(data["target_index"]),
        target_name=str(data["target_name"]),
        degradations=array_from_jsonable(data["degradations"]),
    )


def _defense_result_to_jsonable(result: DefenseJobResult) -> dict[str, Any]:
    return {
        "role": result.role,
        "attack_result": attack_result_to_jsonable(result.attack_result),
        "best_degradation": float(result.best_degradation),
        "clean_recall": float(result.clean_recall),
    }


def _defense_result_from_jsonable(data: dict[str, Any]) -> DefenseJobResult:
    return DefenseJobResult(
        role=str(data["role"]),
        attack_result=attack_result_from_jsonable(data["attack_result"]),
        best_degradation=float(data["best_degradation"]),
        clean_recall=float(data["clean_recall"]),
    )


def _ensemble_result_to_jsonable(
    result: EnsembleDefenseJobResult,
) -> dict[str, Any]:
    return {
        "attack_result": attack_result_to_jsonable(result.attack_result),
        "member_degradations": [
            float(value) for value in result.member_degradations
        ],
        "fused_degradation": float(result.fused_degradation),
    }


def _ensemble_result_from_jsonable(
    data: dict[str, Any],
) -> EnsembleDefenseJobResult:
    return EnsembleDefenseJobResult(
        attack_result=attack_result_from_jsonable(data["attack_result"]),
        member_degradations=[
            float(value) for value in data.get("member_degradations", [])
        ],
        fused_degradation=float(data["fused_degradation"]),
    )


#: type tag -> (payload class, encoder, decoder).  Every job-result type the
#: repo's sweeps produce has a typed, bit-exact codec; anything else rides
#: the pickle fallback below.
_RESULT_CODECS: dict[str, tuple] = {
    "attack-result": (
        AttackResult,
        attack_result_to_jsonable,
        attack_result_from_jsonable,
    ),
    "transfer-column": (
        TransferColumn,
        _transfer_column_to_jsonable,
        _transfer_column_from_jsonable,
    ),
    "defense-job-result": (
        DefenseJobResult,
        _defense_result_to_jsonable,
        _defense_result_from_jsonable,
    ),
    "ensemble-defense-job-result": (
        EnsembleDefenseJobResult,
        _ensemble_result_to_jsonable,
        _ensemble_result_from_jsonable,
    ),
}


def encode_result(result: object) -> dict[str, Any]:
    """Encode one job-result payload as a tagged JSON-safe dict."""
    for tag, (cls, encoder, _) in _RESULT_CODECS.items():
        if type(result) is cls:
            return {"type": tag, "payload": encoder(result)}
    if result is None or isinstance(result, (bool, int, float, str)):
        return {"type": "json", "payload": result}
    return {
        "type": "pickle",
        "payload": base64.b64encode(
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii"),
    }


def decode_result(data: dict[str, Any]) -> object:
    """Rebuild a job-result payload encoded by :func:`encode_result`."""
    tag = data["type"]
    if tag == "json":
        return data["payload"]
    if tag == "pickle":
        return pickle.loads(base64.b64decode(data["payload"]))
    codec = _RESULT_CODECS.get(tag)
    if codec is None:
        raise CheckpointCorruptError(
            f"journal carries a result of unknown type {tag!r}"
        )
    return codec[2](data["payload"])


def encode_outcome(outcome: JobOutcome) -> dict[str, Any]:
    """Encode one completed job outcome as a JSONL journal record."""
    return {
        "kind": "outcome",
        "job_id": outcome.job_id,
        "worker_id": outcome.worker_id,
        "duration_seconds": outcome.duration_seconds,
        "cache_stats": (
            None
            if outcome.cache_stats is None
            else _cache_stats_to_jsonable(outcome.cache_stats)
        ),
        "result": encode_result(outcome.result),
    }


def decode_outcome(data: dict[str, Any]) -> JobOutcome:
    """Rebuild a journal record as a :class:`JobOutcome` (``restored=True``)."""
    stats = data.get("cache_stats")
    return JobOutcome(
        job_id=data["job_id"],
        result=decode_result(data["result"]),
        cache_stats=None if stats is None else _cache_stats_from_jsonable(stats),
        worker_id=str(data.get("worker_id", "journal")),
        duration_seconds=float(data.get("duration_seconds", 0.0)),
        restored=True,
    )


# --- the journal -------------------------------------------------------------


class PlanCheckpoint:
    """One plan directory's append-only outcome journals.

    Parameters
    ----------
    directory:
        Where journals live; created on first use.  One instance serves a
        whole multi-stage sweep — :meth:`load` binds it to the current
        stage's journal (``<directory>/<plan.name>.journal.jsonl``).
    resume:
        ``True`` loads an existing journal (validating its plan
        fingerprint); ``False`` treats an existing journal as an error so
        a forgotten ``--resume`` cannot silently skip work.
    fsync:
        Also ``fsync`` after every record.  The default (``False``) only
        flushes to the OS — that already survives process death (kill -9
        included); ``fsync=True`` additionally survives machine crashes at
        a per-record latency cost.
    """

    def __init__(
        self,
        directory: "str | Path",
        resume: bool = True,
        fsync: bool = False,
    ) -> None:
        self.directory = Path(directory)
        self.resume = bool(resume)
        self.fsync = bool(fsync)
        self._path: Path | None = None
        self._handle = None

    def journal_path(self, plan: ExperimentPlan) -> Path:
        """The journal file backing ``plan`` (one per plan name)."""
        return self.directory / f"{plan.name}.journal.jsonl"

    # -- engine interface ---------------------------------------------------
    def load(self, plan: ExperimentPlan) -> dict[object, JobOutcome]:
        """Bind to the plan's journal; return journaled outcomes by job id.

        Called by :func:`~repro.experiments.engine.execute_plan` before
        dispatch.  A missing journal starts fresh (header written); an
        existing one is validated and its outcome records returned.
        """
        self.close()
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.journal_path(plan)
        fingerprint = plan_fingerprint(plan)
        restored: dict[object, JobOutcome] = {}
        if path.exists():
            if not self.resume:
                raise CheckpointExistsError(
                    f"journal {path} already exists; pass resume=True "
                    "(--resume) to continue it, or point --checkpoint-dir "
                    "at a fresh directory"
                )
            restored = self._read(path, fingerprint)
            self._handle = path.open("a", encoding="utf-8")
        else:
            self._handle = path.open("w", encoding="utf-8")
            self._append({"kind": "plan", "version": JOURNAL_VERSION, **fingerprint})
        self._path = path
        return restored

    def record(self, outcome: JobOutcome) -> None:
        """Journal one completed outcome (append + flush)."""
        if self._handle is None:
            raise CheckpointError(
                "checkpoint is not bound to a plan; load() runs first"
            )
        self._append(encode_outcome(outcome))

    def close(self) -> None:
        """Release the journal handle (the file stays for future resumes)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._path = None

    def __enter__(self) -> "PlanCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- plumbing -----------------------------------------------------------
    def _append(self, data: dict[str, Any]) -> None:
        line = json.dumps(data, separators=(",", ":"))
        self._handle.write(line + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def _read(
        self, path: Path, fingerprint: dict[str, Any]
    ) -> dict[object, JobOutcome]:
        """Parse a journal, validate its header, drop a torn tail."""
        raw = path.read_bytes()
        records: list[dict[str, Any]] = []
        valid_end = 0
        offset = 0
        for chunk in raw.split(b"\n"):
            end = offset + len(chunk) + 1  # + the newline
            if end > len(raw):
                # Tail beyond the last newline: a record torn by process
                # death mid-append (complete records always end in \n).
                break
            if chunk:
                try:
                    records.append(json.loads(chunk.decode("utf-8")))
                except (UnicodeDecodeError, json.JSONDecodeError) as error:
                    if end >= len(raw):
                        break  # torn final line that happens to end in \n
                    raise CheckpointCorruptError(
                        f"journal {path} has an unparseable non-final line "
                        f"at byte {offset}"
                    ) from error
            valid_end = end
            offset = end
        if valid_end < len(raw):
            warnings.warn(
                f"journal {path} ends in a torn record "
                f"({len(raw) - valid_end} bytes discarded); resuming from "
                "the last complete outcome",
                RuntimeWarning,
                stacklevel=3,
            )
            with path.open("rb+") as handle:
                handle.truncate(valid_end)
        if not records or records[0].get("kind") != "plan":
            raise CheckpointCorruptError(
                f"journal {path} has no plan header; not a checkpoint journal"
            )
        header = records[0]
        mismatched = [
            key
            for key in _FINGERPRINT_KEYS
            if header.get(key) != fingerprint[key]
        ]
        if mismatched:
            raise CheckpointMismatchError(
                f"journal {path} was written for a different plan "
                f"(mismatched: {', '.join(mismatched)}); refusing to resume"
            )
        restored: dict[object, JobOutcome] = {}
        for record in records[1:]:
            if record.get("kind") != "outcome":
                continue
            outcome = decode_outcome(record)
            restored[outcome.job_id] = outcome
        return restored
