"""Experiment harness reproducing the paper's tables and figures.

* :mod:`repro.experiments.config` — Table I (experiment parametrisation)
  and Table II (NSGA-II configuration) as configuration objects, plus
  reduced variants for laptop-scale runs,
* :mod:`repro.experiments.jobs` — the declarative models × images work
  plan (model specs, attack jobs, deterministic per-job seed derivation),
* :mod:`repro.experiments.engine` — interchangeable execution backends
  (in-process serial, ``multiprocessing`` pool) that run a plan with
  bit-identical results,
* :mod:`repro.experiments.runner` — the Figure 2 sweep comparing the
  single-stage and transformer architectures over seeded models and images,
* :mod:`repro.experiments.figures` — the qualitative scenarios of
  Figures 1, 3, 4 and 5.
"""

from repro.experiments.config import (
    ExperimentConfig,
    NSGA_TABLE_II,
    experiment_table_rows,
    nsga_table_rows,
)
from repro.experiments.engine import (
    ExecutionBackend,
    ExecutionReport,
    ProcessPoolBackend,
    SerialBackend,
    execute_plan,
    merge_execution_summaries,
    resolve_backend,
)
from repro.experiments.jobs import (
    AttackJob,
    AttackPlan,
    DetectorInstanceSpec,
    ExperimentPlan,
    JobOutcome,
    ModelSpec,
    WorkerContext,
    apply_experiment_seed,
    as_model_spec,
    build_attack_plan,
    derive_job_seeds,
    execute_attack_job,
    seed_from_sequence,
)
from repro.experiments.runner import ArchitectureComparison, run_architecture_comparison
from repro.experiments.figures import (
    FigureOutcome,
    figure1_disappearing_objects,
    figure3_figure4_contrast,
    figure5_ghost_objects,
)
from repro.experiments.transfer import (
    TransferabilityResult,
    TransferColumn,
    TransferEvalJob,
    build_transfer_attack_plan,
    build_transfer_eval_plan,
    run_transferability_experiment,
    run_transferability_reference,
)

__all__ = [
    "ExperimentConfig",
    "NSGA_TABLE_II",
    "experiment_table_rows",
    "nsga_table_rows",
    "AttackJob",
    "AttackPlan",
    "DetectorInstanceSpec",
    "ExperimentPlan",
    "JobOutcome",
    "ModelSpec",
    "WorkerContext",
    "apply_experiment_seed",
    "as_model_spec",
    "build_attack_plan",
    "derive_job_seeds",
    "execute_attack_job",
    "seed_from_sequence",
    "ExecutionBackend",
    "ExecutionReport",
    "ProcessPoolBackend",
    "SerialBackend",
    "execute_plan",
    "merge_execution_summaries",
    "resolve_backend",
    "ArchitectureComparison",
    "run_architecture_comparison",
    "FigureOutcome",
    "figure1_disappearing_objects",
    "figure3_figure4_contrast",
    "figure5_ghost_objects",
    "TransferabilityResult",
    "TransferColumn",
    "TransferEvalJob",
    "build_transfer_attack_plan",
    "build_transfer_eval_plan",
    "run_transferability_experiment",
    "run_transferability_reference",
]
