"""Experiment harness reproducing the paper's tables and figures.

* :mod:`repro.experiments.config` — Table I (experiment parametrisation)
  and Table II (NSGA-II configuration) as configuration objects, plus
  reduced variants for laptop-scale runs,
* :mod:`repro.experiments.runner` — the Figure 2 sweep comparing the
  single-stage and transformer architectures over seeded models and images,
* :mod:`repro.experiments.figures` — the qualitative scenarios of
  Figures 1, 3, 4 and 5.
"""

from repro.experiments.config import (
    ExperimentConfig,
    NSGA_TABLE_II,
    experiment_table_rows,
    nsga_table_rows,
)
from repro.experiments.runner import ArchitectureComparison, run_architecture_comparison
from repro.experiments.figures import (
    FigureOutcome,
    figure1_disappearing_objects,
    figure3_figure4_contrast,
    figure5_ghost_objects,
)
from repro.experiments.transfer import (
    TransferabilityResult,
    run_transferability_experiment,
)

__all__ = [
    "ExperimentConfig",
    "NSGA_TABLE_II",
    "experiment_table_rows",
    "nsga_table_rows",
    "ArchitectureComparison",
    "run_architecture_comparison",
    "FigureOutcome",
    "figure1_disappearing_objects",
    "figure3_figure4_contrast",
    "figure5_ghost_objects",
    "TransferabilityResult",
    "run_transferability_experiment",
]
