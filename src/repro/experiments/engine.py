"""Pluggable execution backends for experiment work plans.

A sweep's :class:`~repro.experiments.jobs.ExperimentPlan` is pure data —
any ordered list of jobs following the generic job protocol (``job_id`` +
``execute(context)``); this module provides the interchangeable engines
that execute one:

* :class:`SerialBackend` — the in-process reference executor.  It owns one
  sweep-level :class:`~repro.detectors.activation_cache.ActivationCacheStore`
  and reproduces the historical runner's cache lifecycle exactly (entries
  invalidated and stats counters reset once a model's last job finishes, so
  hit rates are per-model, not cumulative).
* :class:`ProcessPoolBackend` — fans jobs out over ``multiprocessing``
  workers.  Each worker owns a private activation store and a private
  detector memo (stores are never shared across processes); jobs return as
  they complete and the engine reassembles them into plan order.
* ``PersistentPoolBackend`` (:mod:`repro.experiments.persistent`) — a pool
  of long-lived workers that survive across ``execute_plan`` calls, with
  model-affinity scheduling and shared-memory scene/activation tensors.
  Resolved by name (``"persistent"``) to avoid an import cycle.

Because every job carries its own pre-derived NSGA-II seed (or the shared
default), and jobs are deterministic given (model specs, image, config,
seed), **all backends produce bit-identical results** for the same plan —
worker count and completion order only change wall-clock time.  The parity
suites in ``tests/experiments/test_engine.py`` (attack jobs),
``tests/experiments/test_transfer.py`` (transfer jobs) and
``tests/defenses/test_evaluation.py`` (defense jobs) enforce this.

:func:`execute_plan` is the single entry point: it runs a backend, restores
plan order, and merges the per-job :class:`CacheStats` deltas into
per-model, per-worker and sweep-level totals.  Two optional layers make
long plans restartable:

* ``checkpoint`` — a :class:`~repro.experiments.checkpoint.PlanCheckpoint`
  journal (duck-typed: ``load(plan)`` + ``record(outcome)``).  Completed
  outcomes are journaled *as they stream in* (via the backend's
  ``on_outcome`` hook, not after ``run()`` returns), so a plan killed
  mid-flight resumes from its journal: journaled jobs are skipped and
  their outcomes loaded.
* ``retry`` — a :class:`RetryPolicy` re-running the un-collected remainder
  of a plan after a :class:`JobExecutionError` (transient worker-side
  failure) or a :class:`WorkerCrashError` (crash budget exhausted), with a
  per-job attempt budget that keeps poison jobs from looping forever.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace as dataclasses_replace
from typing import Callable, Sequence

import numpy as np

from repro.detectors.activation_cache import ActivationCacheStore, CacheStats
from repro.experiments.jobs import (
    ExperimentPlan,
    JobOutcome,
    WorkerContext,
    build_cached,
    job_model_specs,
    job_stats_label,
)

#: Backend names accepted by :func:`resolve_backend` (and the CLI).
BACKEND_NAMES: tuple[str, ...] = ("serial", "process", "persistent")


def effective_cache_size(plan: ExperimentPlan) -> int:
    """The activation-cache entry cap a backend should provision for a plan.

    A cap smaller than the plan's distinct-model count guarantees lifecycle
    thrash — every model's bundle is evicted before its next scene arrives —
    so the cap is auto-grown to the model count (with a one-line warning
    naming both sizes).  A fast-search plan whose fidelity searches on a
    downscaled surrogate scene caches *two* scenes per (detector, scene)
    pair (full plus downscaled), so its floor is twice the model count;
    a streaming plan whose jobs keep a rolling window of frame bundles
    alive (``frame_cache_size``) needs that many entries per model.
    Growth never changes results, only hit rates.
    """
    configured = int(plan.attack_config.activation_cache_size)
    distinct = len(plan.model_specs())
    per_model = 1
    config = plan.attack_config
    if getattr(config, "fast_search", False):
        from repro.detectors.fidelity import resolve_fidelity

        fidelity = resolve_fidelity(getattr(config, "search_fidelity", None))
        if fidelity.scene_scale > 1:
            per_model = 2
    for job in plan.jobs:
        per_model = max(per_model, int(getattr(job, "frame_cache_size", 1)))
    floor = distinct * per_model
    if floor > configured:
        warnings.warn(
            f"activation_cache_size={configured} is below the plan's "
            f"{floor} concurrently live (model, scene) bundles; growing "
            f"the cache to {floor} entries to avoid lifecycle thrash",
            RuntimeWarning,
            stacklevel=2,
        )
        return floor
    return configured


def delta_store_size_for_config(config) -> int:
    """Delta-store entry cap an attack config implies (0 = reuse off)."""
    if not getattr(config, "use_delta_reuse", False):
        return 0
    return int(getattr(config, "delta_store_size", 0))


def plan_delta_store_size(plan: ExperimentPlan) -> int:
    """Delta-store entry cap for a plan's stores (0 = delta reuse off)."""
    return delta_store_size_for_config(plan.attack_config)


class JobExecutionError(RuntimeError):
    """A job raised inside a worker process.

    Captures which job failed, where it ran and the worker-side traceback,
    and — unlike an arbitrary exception re-raised through a pool — survives
    pickling across the process boundary (multi-argument exceptions break
    the default unpickle path, so :meth:`__reduce__` is explicit).
    """

    def __init__(
        self,
        job_id: object,
        worker_id: str,
        message: str,
        worker_traceback: str = "",
    ) -> None:
        super().__init__(
            f"job {job_id!r} failed on worker {worker_id}: {message}"
        )
        self.job_id = job_id
        self.worker_id = worker_id
        self.job_message = message
        self.worker_traceback = worker_traceback

    def __reduce__(self):
        return (
            type(self),
            (self.job_id, self.worker_id, self.job_message, self.worker_traceback),
        )


class WorkerCrashError(RuntimeError):
    """A worker died repeatedly while the same job was in flight.

    Raised by the persistent runtime after the per-job crash budget is
    exhausted; distinguishes a poison job (kills every worker it lands on)
    from a transient worker death, which the runtime absorbs by respawning
    and re-dispatching.  Defined here (not in
    :mod:`repro.experiments.persistent`) so :class:`RetryPolicy` can
    classify it without importing the runtime.
    """

    def __init__(self, job_id: object, crashes: int) -> None:
        super().__init__(
            f"job {job_id!r} was in flight through {crashes} worker deaths; "
            "giving up instead of respawning forever"
        )
        self.job_id = job_id
        self.crashes = crashes


@dataclass(frozen=True)
class RetryPolicy:
    """How :func:`execute_plan` requeues jobs after a worker-side failure.

    ``max_retries`` is the number of *additional* dispatches a failing job
    may get (so ``max_retries=2`` allows three attempts in total).  Once a
    job exhausts its budget the original error propagates — that is the
    poison-job verdict, as opposed to a transient failure that succeeds on
    requeue.  Only failures raised *by workers* are retried: an exception
    escaping :class:`SerialBackend` is an in-process bug, re-running it
    would re-raise identically.
    """

    max_retries: int = 2
    retry_errors: bool = True
    retry_crashes: bool = True

    def should_retry(self, error: BaseException) -> bool:
        """Whether this failure class is requeued at all (budget aside)."""
        if isinstance(error, WorkerCrashError):
            return self.retry_crashes
        if isinstance(error, JobExecutionError):
            return self.retry_errors
        return False


@dataclass
class ExecutionReport:
    """Everything :func:`execute_plan` learned while running a plan.

    ``outcomes`` is in *plan order* regardless of how the backend scheduled
    the jobs.  The cache-stats maps aggregate the per-job deltas: per model
    (the per-model hit rates the sweep reports), per worker (one entry per
    pool process, or ``"serial"``), and in total.

    ``journal_hits`` counts outcomes loaded from the checkpoint journal
    instead of executed this run (0 for a fresh or checkpoint-less run);
    ``retries`` counts failed sub-plan dispatches the :class:`RetryPolicy`
    absorbed.
    """

    outcomes: list[JobOutcome]
    backend: str = "serial"
    n_jobs: int = 1
    per_model: dict[str, CacheStats] = field(default_factory=dict)
    per_worker: dict[str, CacheStats] = field(default_factory=dict)
    duration_seconds: float = 0.0
    cache_enabled: bool = True
    journal_hits: int = 0
    retries: int = 0

    @property
    def cache_stats(self) -> CacheStats:
        """Sweep-level totals merged over all workers."""
        return CacheStats.merge(list(self.per_worker.values()))

    def cache_rows(self) -> list[dict[str, object]]:
        """Per-model cache statistics as report rows."""
        return [
            {
                "model": name,
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "invalidations": stats.invalidations,
                "hit_rate": stats.hit_rate,
            }
            for name, stats in self.per_model.items()
        ]

    def summary(self) -> dict[str, object]:
        """JSON-friendly provenance shared by every sweep's report type.

        The architecture comparison, the transferability report and the
        defense evaluations all persist this same structure, so saved
        reports record how they were produced (backend, worker count,
        wall-clock, cache traffic) in one common shape.
        """
        return {
            "backend": self.backend,
            "n_jobs": self.n_jobs,
            "workers": sorted(self.per_worker),
            "duration_seconds": self.duration_seconds,
            "cache_enabled": self.cache_enabled,
            "cache_stats": self.cache_stats.as_dict(),
            "per_model_cache": {
                name: stats.as_dict() for name, stats in self.per_model.items()
            },
            "journal_hits": self.journal_hits,
            "retries": self.retries,
        }


def merge_execution_summaries(parts: "Sequence[dict]") -> dict[str, object]:
    """Combine stage summaries of a multi-stage sweep into one record.

    The transferability experiment runs two plan executions (mask
    optimisation, then the cross-evaluation matrix); the persisted report
    carries both stage summaries plus combined wall-clock and cache totals.
    """
    merged_stats = CacheStats()
    for part in parts:
        stats = part.get("cache_stats", {})
        merged_stats = merged_stats + CacheStats(
            hits=int(stats.get("hits", 0)),
            misses=int(stats.get("misses", 0)),
            evictions=int(stats.get("evictions", 0)),
            invalidations=int(stats.get("invalidations", 0)),
            delta_hits=int(stats.get("delta_hits", 0)),
            delta_misses=int(stats.get("delta_misses", 0)),
            delta_bytes=int(stats.get("delta_bytes", 0)),
        )
    # A multi-stage sweep may legitimately run its stages on different
    # backends; stamping the whole run with the first stage's name would
    # misreport every later stage, so disagreement is reported as "mixed"
    # (per-stage names stay available under "stages").
    backends = {str(part.get("backend", "serial")) for part in parts}
    if not backends:
        backend = "serial"
    elif len(backends) == 1:
        backend = backends.pop()
    else:
        backend = "mixed"
    return {
        "backend": backend,
        "n_jobs": max((int(part.get("n_jobs", 1)) for part in parts), default=1),
        "duration_seconds": sum(
            float(part.get("duration_seconds", 0.0)) for part in parts
        ),
        "cache_enabled": any(part.get("cache_enabled", False) for part in parts),
        "cache_stats": merged_stats.as_dict(),
        "journal_hits": sum(int(part.get("journal_hits", 0)) for part in parts),
        "retries": sum(int(part.get("retries", 0)) for part in parts),
        "stages": list(parts),
    }


class ExecutionBackend(ABC):
    """Executes a plan's jobs, in any order, returning one outcome each."""

    name: str = "abstract"
    n_jobs: int = 1
    #: Streaming hook set by :func:`execute_plan` when journaling: called
    #: with each completed :class:`JobOutcome` *as it arrives*, before
    #: ``run()`` returns — the property that lets a checkpoint journal
    #: survive the parent dying mid-plan.
    on_outcome: "Callable[[JobOutcome], None] | None" = None

    @abstractmethod
    def run(self, plan: ExperimentPlan) -> list[JobOutcome]:
        """Execute every job of the plan; outcomes may be in any order."""

    def _notify(self, outcome: JobOutcome) -> None:
        """Deliver one completed outcome to the streaming hook, if set."""
        callback = self.on_outcome
        if callback is not None:
            callback(outcome)

    def close(self) -> None:
        """Release backend-held resources (worker processes, shared memory).

        A no-op for the stateless backends; sweeps that *resolve* a backend
        from a name own it and close it when done, while a caller-provided
        instance is left alive for the caller to reuse.
        """

    def pin_models(self, specs: Sequence) -> None:
        """Defer cache invalidation for ``specs`` until they are unpinned.

        Multi-stage sweeps pin the models bridging their stages so the
        per-model lifecycle (drop a finished model's cache entries) does
        not destroy state the next stage will hit.  No-op on backends
        without cross-plan state — serial and the one-shot pool rebuild
        their stores per ``run()`` anyway.
        """

    def unpin_models(self, specs: Sequence) -> None:
        """Lift :meth:`pin_models`, applying any deferred invalidation."""


class SerialBackend(ExecutionBackend):
    """In-process executor reproducing the historical nested loop.

    One sweep-level activation store serves all jobs; once a model's last
    job finishes its entries are invalidated (the sweep never revisits a
    finished model) and the stats counters are reset so the recorded hit
    rates are per-model.  ``order`` optionally executes the jobs in a
    different sequence — results are order-independent (each job's seed is
    baked into the job), which the parity suite exploits to simulate
    arbitrary completion orders without a pool.
    """

    name = "serial"

    def __init__(self, order: Sequence[int] | None = None) -> None:
        self.order = None if order is None else list(order)

    def run(self, plan: ExperimentPlan) -> list[JobOutcome]:
        config = plan.attack_config
        store = (
            ActivationCacheStore(
                max_entries=effective_cache_size(plan),
                delta_store_size=plan_delta_store_size(plan),
            )
            if config.use_activation_cache
            else None
        )
        context = WorkerContext(store=store)
        order = self.order if self.order is not None else range(len(plan.jobs))
        remaining = plan.jobs_per_model()
        outcomes: list[JobOutcome] = []
        for index in order:
            job = plan.jobs[index]
            outcome = job.execute(context)
            outcome.worker_id = "serial"
            outcomes.append(outcome)
            self._notify(outcome)
            for spec in job_model_specs(job):
                remaining[spec] -= 1
                if remaining[spec] == 0 and store is not None:
                    # The sweep never returns to a finished model: drop its
                    # entries (they would only displace live scenes) and
                    # reset the counters so hit rates stay per-model.
                    store.invalidate(build_cached(spec))
                    store.reset_stats()
        return outcomes


# --- process-pool worker plumbing -------------------------------------------
#
# Workers keep exactly one activation store for their whole life (plus the
# per-process detector memo in repro.experiments.jobs).  The initializer
# rebuilds the store from the plan's attack config so forked children never
# reuse the parent's store object.

_WORKER_STORE: ActivationCacheStore | None = None


def _init_worker(use_cache: bool, cache_size: int, delta_store_size: int = 0) -> None:
    global _WORKER_STORE
    _WORKER_STORE = (
        ActivationCacheStore(
            max_entries=cache_size, delta_store_size=delta_store_size
        )
        if use_cache
        else None
    )


def _run_job_in_worker(job) -> JobOutcome:
    worker_id = f"pid-{os.getpid()}"
    try:
        outcome = job.execute(WorkerContext(store=_WORKER_STORE, worker_id=worker_id))
    except Exception as exc:
        # Re-raise as a picklable, self-describing error: the parent's
        # imap_unordered re-raises it with the failing job and the
        # worker-side traceback attached instead of hanging on or silently
        # truncating the outcome list.
        raise JobExecutionError(
            getattr(job, "job_id", None),
            worker_id,
            f"{type(exc).__name__}: {exc}",
            traceback.format_exc(),
        ) from exc
    outcome.worker_id = worker_id
    return outcome


class ProcessPoolBackend(ExecutionBackend):
    """Fan the plan out over a ``multiprocessing`` pool.

    Parameters
    ----------
    n_jobs:
        Number of worker processes.
    start_method:
        ``multiprocessing`` start method (``None`` = platform default).
        Jobs carry their seeds and model specs by value, so every start
        method — including ``spawn`` — produces identical results.
    submission_seed:
        Optional seed shuffling the submission order before dispatch.  With
        ``imap_unordered`` the completion order is nondeterministic anyway;
        shuffling the *submission* order on top lets the parity suite prove
        scheduling independence deterministically.
    warm_start:
        Build the plan's detectors in the parent before forking so workers
        inherit the memo copy-on-write instead of each retraining the zoo.
        Only effective (and only applied) under the ``fork`` start method;
        results are identical either way because builds are deterministic.
    chunksize:
        Jobs handed to a worker per dispatch (``imap_unordered`` batching).
    """

    name = "process"

    def __init__(
        self,
        n_jobs: int = 2,
        start_method: str | None = None,
        submission_seed: int | None = None,
        warm_start: bool = True,
        chunksize: int = 1,
    ) -> None:
        if n_jobs < 1:
            raise ValueError("n_jobs must be at least 1")
        self.n_jobs = int(n_jobs)
        self.start_method = start_method
        self.submission_seed = submission_seed
        self.warm_start = warm_start
        self.chunksize = max(1, int(chunksize))

    def run(self, plan: ExperimentPlan) -> list[JobOutcome]:
        config = plan.attack_config
        jobs = list(plan.jobs)
        if self.submission_seed is not None:
            rng = np.random.default_rng(self.submission_seed)
            jobs = [jobs[i] for i in rng.permutation(len(jobs))]

        context = multiprocessing.get_context(self.start_method)
        if self.warm_start and context.get_start_method() == "fork":
            for spec in plan.model_specs():
                build_cached(spec)

        with context.Pool(
            processes=self.n_jobs,
            initializer=_init_worker,
            initargs=(
                config.use_activation_cache,
                effective_cache_size(plan),
                plan_delta_store_size(plan),
            ),
        ) as pool:
            outcomes = []
            for outcome in pool.imap_unordered(
                _run_job_in_worker, jobs, chunksize=self.chunksize
            ):
                outcomes.append(outcome)
                self._notify(outcome)
        return outcomes


def resolve_backend(
    backend: "str | ExecutionBackend | None" = None, n_jobs: int = 1
) -> ExecutionBackend:
    """Build a backend from a name (or pass an instance through).

    ``None`` auto-selects: serial for ``n_jobs == 1``, a process pool
    otherwise.  ``"persistent"`` builds the long-lived shared-memory
    worker runtime (lazily imported — it depends on this module).
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        backend = "serial" if n_jobs <= 1 else "process"
    name = backend.lower()
    if name == "serial":
        return SerialBackend()
    if name == "process":
        return ProcessPoolBackend(n_jobs=max(1, n_jobs))
    if name == "persistent":
        from repro.experiments.persistent import PersistentPoolBackend

        return PersistentPoolBackend(n_jobs=max(1, n_jobs))
    raise ValueError(
        f"unknown execution backend {backend!r}; expected one of {BACKEND_NAMES}"
    )


def execute_plan(
    plan: ExperimentPlan,
    backend: ExecutionBackend,
    checkpoint=None,
    retry: RetryPolicy | None = None,
) -> ExecutionReport:
    """Run the plan on a backend and aggregate outcomes in plan order.

    Parameters
    ----------
    checkpoint:
        Optional :class:`~repro.experiments.checkpoint.PlanCheckpoint`
        (duck-typed: ``load(plan) -> {job_id: JobOutcome}`` +
        ``record(outcome)``).  Already-journaled jobs are skipped and their
        outcomes loaded (``report.journal_hits`` counts them); every newly
        completed outcome is journaled as it streams in, so an interrupted
        plan resumes where it stopped.
    retry:
        Optional :class:`RetryPolicy`: after a worker-side failure
        (:class:`JobExecutionError` / :class:`WorkerCrashError`) the
        un-collected remainder of the plan is re-dispatched, until the
        failing job exhausts its per-job attempt budget — then the error
        propagates (a poison job).  Outcomes collected before the failure
        are kept (and journaled), never re-run.
    """
    start = time.perf_counter()
    collected: dict = {}
    if checkpoint is not None:
        collected.update(checkpoint.load(plan))
    journal_hits = len(collected)
    retries = 0
    attempts: dict = {}

    def _collect(outcome: JobOutcome) -> None:
        if outcome.job_id in collected:
            return
        collected[outcome.job_id] = outcome
        if checkpoint is not None:
            checkpoint.record(outcome)

    while True:
        pending = [job for job in plan.jobs if job.job_id not in collected]
        if not pending:
            break
        subplan = (
            plan
            if len(pending) == len(plan.jobs)
            else dataclasses_replace(plan, jobs=pending)
        )
        backend.on_outcome = _collect
        try:
            raw = backend.run(subplan)
        except (JobExecutionError, WorkerCrashError) as error:
            count = attempts[error.job_id] = attempts.get(error.job_id, 0) + 1
            if (
                retry is None
                or not retry.should_retry(error)
                or count > retry.max_retries
            ):
                raise
            retries += 1
            continue
        finally:
            backend.on_outcome = None
        if len(raw) != len(subplan.jobs):
            raise RuntimeError(
                f"backend {backend.name!r} returned {len(raw)} outcomes "
                f"for {len(subplan.jobs)} jobs"
            )
        if len({outcome.job_id for outcome in raw}) != len(raw):
            raise RuntimeError(
                f"backend {backend.name!r} returned duplicate job ids"
            )
        for outcome in raw:
            _collect(outcome)
        break
    duration = time.perf_counter() - start

    outcomes = [collected[job.job_id] for job in plan.jobs]
    per_model: dict[str, CacheStats] = {}
    per_worker: dict[str, CacheStats] = {}
    for job, outcome in zip(plan.jobs, outcomes):
        # Worker attribution is independent of the cache: a sweep with the
        # activation cache disabled still reports which workers ran (with
        # zero counters), it just has no per-model cache rows.
        worker = outcome.worker_id
        per_worker.setdefault(worker, CacheStats())
        if outcome.cache_stats is None:
            continue
        per_worker[worker] = per_worker[worker] + outcome.cache_stats
        name = job_stats_label(job)
        if name is None:
            continue
        per_model[name] = per_model.get(name, CacheStats()) + outcome.cache_stats

    return ExecutionReport(
        outcomes=outcomes,
        backend=backend.name,
        n_jobs=getattr(backend, "n_jobs", 1),
        per_model=per_model,
        per_worker=per_worker,
        duration_seconds=duration,
        cache_enabled=plan.attack_config.use_activation_cache,
        journal_hits=journal_hits,
        retries=retries,
    )
