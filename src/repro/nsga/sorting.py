"""Pareto dominance and fast non-dominated sorting (NSGA-II, Deb 2002).

The O(n²·m) pairwise dominance comparisons are evaluated as one NumPy
broadcast (``domination_matrix``); only the cheap front-peeling loop remains
in Python, preserving the exact front ordering of Deb's algorithm (and of
the original nested-loop implementation, kept as a reference in the
property test suite)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nsga.individual import Individual


def dominates(first: np.ndarray, second: np.ndarray) -> bool:
    """True when objective vector ``first`` Pareto-dominates ``second``.

    All objectives are minimised: ``first`` dominates ``second`` when it is
    no worse in every objective and strictly better in at least one.
    """
    first = np.asarray(first, dtype=np.float64)
    second = np.asarray(second, dtype=np.float64)
    if first.shape != second.shape:
        raise ValueError("objective vectors must have the same shape")
    return bool(np.all(first <= second) and np.any(first < second))


def domination_matrix(objectives: np.ndarray) -> np.ndarray:
    """Boolean matrix ``M[p, q]`` = "vector p Pareto-dominates vector q".

    One broadcast pass over an (n, m) objective matrix replaces the n²
    pairwise :func:`dominates` calls of the textbook implementation.
    """
    objectives = np.asarray(objectives, dtype=np.float64)
    less_equal = np.all(objectives[:, None, :] <= objectives[None, :, :], axis=-1)
    strictly_less = np.any(objectives[:, None, :] < objectives[None, :, :], axis=-1)
    return less_equal & strictly_less


def fast_non_dominated_sort(population: Sequence[Individual]) -> list[list[int]]:
    """Sort a population into Pareto fronts.

    Returns a list of fronts, each a list of population indices; the first
    front contains the non-dominated individuals (rank 1).  Individuals'
    ``rank`` attributes are updated in place.
    """
    size = len(population)
    for individual in population:
        if not individual.is_evaluated:
            raise ValueError("all individuals must be evaluated before sorting")

    objectives = np.stack([ind.objectives for ind in population], axis=0)

    dominance = domination_matrix(objectives)
    domination_count = dominance.sum(axis=0).astype(np.int64)
    # np.flatnonzero yields ascending indices — the same order in which the
    # original double loop filled each dominated-by list, so the peeled
    # fronts keep the exact ordering downstream selection depends on.
    dominated_by = [np.flatnonzero(dominance[p]).tolist() for p in range(size)]

    fronts: list[list[int]] = []
    current = [p for p in range(size) if domination_count[p] == 0]
    rank = 1
    while current:
        for index in current:
            population[index].rank = rank
        fronts.append(current)
        next_front: list[int] = []
        for p in current:
            for q in dominated_by[p]:
                domination_count[q] -= 1
                if domination_count[q] == 0:
                    next_front.append(q)
        current = next_front
        rank += 1
    return fronts


def pareto_ranks(population: Sequence[Individual]) -> np.ndarray:
    """Convenience: return the array of Pareto ranks (1-based)."""
    fast_non_dominated_sort(population)
    return np.array([ind.rank for ind in population], dtype=np.int64)
