"""Pareto dominance and fast non-dominated sorting (NSGA-II, Deb 2002)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nsga.individual import Individual


def dominates(first: np.ndarray, second: np.ndarray) -> bool:
    """True when objective vector ``first`` Pareto-dominates ``second``.

    All objectives are minimised: ``first`` dominates ``second`` when it is
    no worse in every objective and strictly better in at least one.
    """
    first = np.asarray(first, dtype=np.float64)
    second = np.asarray(second, dtype=np.float64)
    if first.shape != second.shape:
        raise ValueError("objective vectors must have the same shape")
    return bool(np.all(first <= second) and np.any(first < second))


def fast_non_dominated_sort(population: Sequence[Individual]) -> list[list[int]]:
    """Sort a population into Pareto fronts.

    Returns a list of fronts, each a list of population indices; the first
    front contains the non-dominated individuals (rank 1).  Individuals'
    ``rank`` attributes are updated in place.
    """
    size = len(population)
    for individual in population:
        if not individual.is_evaluated:
            raise ValueError("all individuals must be evaluated before sorting")

    objectives = np.stack([ind.objectives for ind in population], axis=0)

    dominated_by: list[list[int]] = [[] for _ in range(size)]
    domination_count = np.zeros(size, dtype=np.int64)

    for p in range(size):
        for q in range(p + 1, size):
            if dominates(objectives[p], objectives[q]):
                dominated_by[p].append(q)
                domination_count[q] += 1
            elif dominates(objectives[q], objectives[p]):
                dominated_by[q].append(p)
                domination_count[p] += 1

    fronts: list[list[int]] = []
    current = [p for p in range(size) if domination_count[p] == 0]
    rank = 1
    while current:
        for index in current:
            population[index].rank = rank
        fronts.append(current)
        next_front: list[int] = []
        for p in current:
            for q in dominated_by[p]:
                domination_count[q] -= 1
                if domination_count[q] == 0:
                    next_front.append(q)
        current = next_front
        rank += 1
    return fronts


def pareto_ranks(population: Sequence[Individual]) -> np.ndarray:
    """Convenience: return the array of Pareto ranks (1-based)."""
    fast_non_dominated_sort(population)
    return np.array([ind.rank for ind in population], dtype=np.int64)
