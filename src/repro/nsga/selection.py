"""Pareto-sorted binary tournament selection (NSGA-II)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nsga.individual import Individual


def crowded_comparison(first: Individual, second: Individual) -> int:
    """The crowded-comparison operator ``≺_n`` of NSGA-II.

    Returns -1 when ``first`` is preferred, +1 when ``second`` is preferred
    and 0 when they are indistinguishable.  Between two solutions with
    different Pareto ranks the lower rank wins; with equal ranks the one in
    the less crowded region (larger crowding distance) wins.
    """
    if first.rank is None or second.rank is None:
        raise ValueError("individuals must be ranked before comparison")
    if first.rank < second.rank:
        return -1
    if first.rank > second.rank:
        return 1
    first_crowding = first.crowding if first.crowding is not None else 0.0
    second_crowding = second.crowding if second.crowding is not None else 0.0
    if first_crowding > second_crowding:
        return -1
    if first_crowding < second_crowding:
        return 1
    return 0


def binary_tournament(
    population: Sequence[Individual],
    rng: np.random.Generator,
    num_selected: int | None = None,
) -> list[Individual]:
    """Select parents by repeated binary tournaments.

    Each tournament draws two individuals uniformly at random and keeps the
    one preferred by :func:`crowded_comparison`; ties are broken randomly.
    """
    if not population:
        raise ValueError("cannot select from an empty population")
    if num_selected is None:
        num_selected = len(population)
    selected: list[Individual] = []
    size = len(population)
    for _ in range(num_selected):
        i, j = rng.integers(0, size, size=2)
        outcome = crowded_comparison(population[i], population[j])
        if outcome < 0:
            winner = population[i]
        elif outcome > 0:
            winner = population[j]
        else:
            winner = population[i] if rng.random() < 0.5 else population[j]
        selected.append(winner)
    return selected
