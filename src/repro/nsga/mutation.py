"""The paper's four mutation operators on filter-mask genomes.

Section IV-A lists four mutation operations on pixels ("genes"):

1. *complement* — replace randomly chosen pixel values by their complement
   in ``[-255, 255]`` (similar to a bit flip),
2. *shuffle* — shuffle randomly selected pixels (a swap operation),
3. *random value* — assign fresh random values in ``[-255, 255]`` to
   randomly sampled pixels,
4. *inversion* — horizontal and/or vertical inversion of pixels.

Every operator only touches at most ``window_fraction`` of the pixels (the
paper's "mutation window size", Table II: w = 1 %).

Each operator also knows the bounding box of the pixels it touched, which
:func:`mutate_tracked` combines with the parent's *dirty-region bound* (a
box covering the parent's nonzero support) into an O(1) bound for the
child: the child's support is contained in the parent's support plus the
touched pixels.  The incremental-inference path uses these bounds to cap
its exact nonzero scans; they never change results, only scan cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.incremental import BBox, EMPTY_BBOX, bbox_union


@dataclass(frozen=True)
class MutationConfig:
    """Configuration of the mutation stage.

    Attributes
    ----------
    probability:
        Probability that a child is mutated at all (Table II: pm = 0.45).
    window_fraction:
        Maximum fraction of pixels affected by one mutation (Table II: 1 %).
    max_value:
        Bound of the signed perturbation range (paper: 255).
    operators:
        Names of the enabled operators; a uniformly random enabled operator
        is applied to each mutated child.
    """

    probability: float = 0.45
    window_fraction: float = 0.01
    max_value: float = 255.0
    operators: tuple[str, ...] = ("complement", "shuffle", "random", "inversion")

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if not 0.0 < self.window_fraction <= 1.0:
            raise ValueError("window_fraction must be in (0, 1]")
        if self.max_value <= 0:
            raise ValueError("max_value must be positive")
        unknown = set(self.operators) - {"complement", "shuffle", "random", "inversion"}
        if unknown:
            raise ValueError(f"unknown mutation operators: {sorted(unknown)}")
        if not self.operators:
            raise ValueError("at least one mutation operator must be enabled")


@dataclass(frozen=True)
class IntensityAnnealing:
    """Dense-exploration → sparse-exploitation mutation-intensity schedule.

    Anneals the mutation ``window_fraction`` from the configured base value
    at generation 0 towards ``final_window_fraction`` at the last
    generation: early generations explore with broad, dense mutations,
    late generations exploit with small sparse refinements (the log-spaced
    intensity-schedule shape of the degradation literature).

    Annealing changes the *number* of pixels an operator samples, and
    therefore the RNG draw count — which is why it is strictly opt-in: the
    default (no annealing) leaves the draw stream untouched, and a
    constant schedule (``final == base``) is draw-for-draw identical to no
    annealing (the parity suite pins both properties).

    Attributes
    ----------
    final_window_fraction:
        The window fraction reached at the last generation.
    shape:
        ``"log"`` (geometric interpolation, default) or ``"linear"``.
    """

    final_window_fraction: float
    shape: str = "log"

    def __post_init__(self) -> None:
        if not 0.0 < self.final_window_fraction <= 1.0:
            raise ValueError("final_window_fraction must be in (0, 1]")
        if self.shape not in ("log", "linear"):
            raise ValueError(f"shape must be 'log' or 'linear', got {self.shape!r}")

    def window_fraction(self, base: float, generation: int, total: int) -> float:
        """The annealed window fraction for one generation.

        ``generation`` counts the offspring round (0-based) out of
        ``total``; generation 0 returns exactly ``base``, the last
        generation exactly ``final_window_fraction``.
        """
        if total <= 1:
            return base
        t = min(max(generation, 0), total - 1) / (total - 1)
        if self.shape == "linear":
            return base + (self.final_window_fraction - base) * t
        return float(base * (self.final_window_fraction / base) ** t)


def _sample_pixels(
    genome: np.ndarray, window_fraction: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Sample the (row, col) indices of at most ``window_fraction`` pixels."""
    length, width = genome.shape[0], genome.shape[1]
    count = max(1, int(round(window_fraction * length * width)))
    flat = rng.choice(length * width, size=min(count, length * width), replace=False)
    return np.unravel_index(flat, (length, width))


def _indices_bbox(rows: np.ndarray, cols: np.ndarray) -> BBox:
    """Half-open bounding box of a set of sampled (row, col) indices."""
    return (
        int(rows.min()),
        int(rows.max()) + 1,
        int(cols.min()),
        int(cols.max()) + 1,
    )


def _complement_tracked(
    genome: np.ndarray,
    rng: np.random.Generator,
    window_fraction: float,
    max_value: float,
) -> tuple[np.ndarray, BBox]:
    mutated = genome.copy()
    rows, cols = _sample_pixels(mutated, window_fraction, rng)
    values = mutated[rows, cols]
    signs = np.where(values >= 0, 1.0, -1.0)
    mutated[rows, cols] = signs * max_value - values
    return mutated, _indices_bbox(rows, cols)


def _shuffle_tracked(
    genome: np.ndarray,
    rng: np.random.Generator,
    window_fraction: float,
    max_value: float,
) -> tuple[np.ndarray, BBox]:
    mutated = genome.copy()
    rows, cols = _sample_pixels(mutated, window_fraction, rng)
    permutation = rng.permutation(len(rows))
    mutated[rows, cols] = mutated[rows[permutation], cols[permutation]]
    return mutated, _indices_bbox(rows, cols)


def _random_value_tracked(
    genome: np.ndarray,
    rng: np.random.Generator,
    window_fraction: float,
    max_value: float,
) -> tuple[np.ndarray, BBox]:
    mutated = genome.copy()
    rows, cols = _sample_pixels(mutated, window_fraction, rng)
    shape = (len(rows),) + mutated.shape[2:]
    mutated[rows, cols] = rng.integers(
        -int(max_value), int(max_value) + 1, size=shape
    ).astype(mutated.dtype)
    return mutated, _indices_bbox(rows, cols)


def _inversion_tracked(
    genome: np.ndarray,
    rng: np.random.Generator,
    window_fraction: float,
    max_value: float,
) -> tuple[np.ndarray, BBox]:
    mutated = genome.copy()
    length, width = mutated.shape[0], mutated.shape[1]
    count = max(1, int(round(window_fraction * length * width)))
    side = max(2, int(np.sqrt(count)))
    side = min(side, length, width)
    row = int(rng.integers(0, max(1, length - side + 1)))
    col = int(rng.integers(0, max(1, width - side + 1)))
    window = mutated[row : row + side, col : col + side]
    flip_horizontal = bool(rng.random() < 0.5)
    flip_vertical = bool(rng.random() < 0.5)
    if not flip_horizontal and not flip_vertical:
        flip_horizontal = True
    if flip_horizontal:
        window = window[:, ::-1]
    if flip_vertical:
        window = window[::-1, :]
    mutated[row : row + side, col : col + side] = window
    return mutated, (row, row + side, col, col + side)


def complement_mutation(
    genome: np.ndarray,
    rng: np.random.Generator,
    window_fraction: float = 0.01,
    max_value: float = 255.0,
) -> np.ndarray:
    """Replace sampled pixel values by their complement in ``[-max, max]``.

    The complement of value ``v`` is ``sign(v) * max_value - v``, which maps
    0 to ±max and ±max to 0 — the signed-range analogue of a bit flip.
    """
    return _complement_tracked(genome, rng, window_fraction, max_value)[0]


def shuffle_mutation(
    genome: np.ndarray,
    rng: np.random.Generator,
    window_fraction: float = 0.01,
    max_value: float = 255.0,
) -> np.ndarray:
    """Shuffle the values of the sampled pixels among themselves."""
    return _shuffle_tracked(genome, rng, window_fraction, max_value)[0]


def random_value_mutation(
    genome: np.ndarray,
    rng: np.random.Generator,
    window_fraction: float = 0.01,
    max_value: float = 255.0,
) -> np.ndarray:
    """Assign fresh uniform random values in ``[-max, max]`` to sampled pixels."""
    return _random_value_tracked(genome, rng, window_fraction, max_value)[0]


def inversion_mutation(
    genome: np.ndarray,
    rng: np.random.Generator,
    window_fraction: float = 0.01,
    max_value: float = 255.0,
) -> np.ndarray:
    """Horizontally and/or vertically invert a window of pixels.

    A square window containing roughly ``window_fraction`` of the pixels is
    selected at a random location and flipped along one or both axes.
    """
    return _inversion_tracked(genome, rng, window_fraction, max_value)[0]


_TRACKED_OPERATORS = {
    "complement": _complement_tracked,
    "shuffle": _shuffle_tracked,
    "random": _random_value_tracked,
    "inversion": _inversion_tracked,
}

_OPERATORS = {
    "complement": complement_mutation,
    "shuffle": shuffle_mutation,
    "random": random_value_mutation,
    "inversion": inversion_mutation,
}


def mutate(
    genome: np.ndarray,
    rng: np.random.Generator,
    config: MutationConfig | None = None,
) -> np.ndarray:
    """Apply the configured mutation stage to a genome.

    With probability ``config.probability`` one of the enabled operators is
    drawn uniformly at random and applied; otherwise the genome is returned
    unchanged (as a copy).
    """
    return mutate_tracked(genome, rng, config)[0]


def mutate_tracked(
    genome: np.ndarray,
    rng: np.random.Generator,
    config: MutationConfig | None = None,
    parent_bound: BBox | None = None,
) -> tuple[np.ndarray, BBox | None]:
    """:func:`mutate` plus dirty-bound propagation.

    ``parent_bound`` is a box covering the parent genome's nonzero support
    (``None`` = unknown).  Returns ``(child, bound)`` where the bound covers
    the child's support: the union of the parent bound and the box of the
    pixels the operator touched (an unknown parent bound stays unknown —
    :func:`~repro.nn.incremental.bbox_union` is absorbing in ``None``).
    Consumes exactly the same random draws as :func:`mutate`, so seeded
    runs are unchanged.
    """
    child, bound, _ = mutate_tracked_lineage(genome, rng, config, parent_bound)
    return child, bound


def mutate_tracked_lineage(
    genome: np.ndarray,
    rng: np.random.Generator,
    config: MutationConfig | None = None,
    parent_bound: BBox | None = None,
) -> tuple[np.ndarray, BBox | None, BBox]:
    """:func:`mutate_tracked` plus the *lineage* diff bound.

    Returns ``(child, bound, touched)`` where ``touched`` bounds the pixels
    where the child can differ from the input genome: the box the mutation
    operator touched, or ``EMPTY_BBOX`` when no mutation happened (the child
    is a pixel-identical copy).  The cross-generation delta-reuse path uses
    it to cap the exact child-vs-ancestor diff scan; a loose bound never
    changes results, only scan cost.  Consumes exactly the same random
    draws as :func:`mutate`, so seeded runs are unchanged.
    """
    config = config if config is not None else MutationConfig()
    if rng.random() >= config.probability:
        return genome.copy(), parent_bound, EMPTY_BBOX
    operator_name = config.operators[int(rng.integers(0, len(config.operators)))]
    mutated, touched = _TRACKED_OPERATORS[operator_name](
        genome, rng, config.window_fraction, config.max_value
    )
    return mutated, bbox_union(parent_bound, touched), touched
